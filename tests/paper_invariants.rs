//! Cross-crate property tests pinning the paper's definitional invariants
//! on the *real* pipeline (sampled systems, solver routings, processes).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssor::core::weak::{sample_multiset, verify_lemma_5_10, weak_route};
use ssor::core::{sample, PathSystem};
use ssor::flow::solver::{min_congestion_restricted, SolveOptions};
use ssor::flow::Demand;
use ssor::graph::maxflow::min_cut_value;
use ssor::oblivious::{ObliviousRouting, ValiantRouting};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Definition 5.2: the α-sample is α-sparse, valid, and supported on
    /// the base oblivious routing.
    #[test]
    fn alpha_samples_are_alpha_sparse_and_supported(
        dim in 2u32..5,
        alpha in 1usize..6,
        seed in any::<u64>(),
    ) {
        let valiant = ValiantRouting::new(dim);
        let n = 1usize << dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Demand::random_permutation(n, &mut rng);
        prop_assume!(!d.is_empty());
        let ps = sample::alpha_sample(&valiant, &d.support(), alpha, &mut rng);
        prop_assert!(ps.sparsity() <= alpha);
        prop_assert!(ps.is_valid(valiant.graph()));
        for (s, t) in d.support() {
            let support: Vec<Vec<u32>> = valiant
                .path_distribution(s, t)
                .into_iter()
                .map(|(p, _)| p.edges().to_vec())
                .collect();
            for p in ps.paths(s, t).unwrap() {
                prop_assert!(support.contains(&p.edges().to_vec()));
            }
        }
    }

    /// Definition 2.1: (α + cut)-samples respect the cut-aware sparsity
    /// budget per pair.
    #[test]
    fn cut_samples_respect_cut_sparsity(
        dim in 2u32..4,
        alpha in 1usize..4,
        seed in any::<u64>(),
    ) {
        let valiant = ValiantRouting::new(dim);
        let g = valiant.graph().clone();
        let n = 1usize << dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Demand::random_permutation(n, &mut rng);
        prop_assume!(!d.is_empty());
        let ps = sample::alpha_cut_sample(&valiant, &g, &d.support(), alpha, &mut rng);
        prop_assert!(ps.is_cut_sparse(alpha, |s, t| min_cut_value(&g, s, t) as usize));
    }

    /// Lemma 5.10 invariants hold for every (demand, γ, sample) triple.
    #[test]
    fn weak_route_always_satisfies_lemma_5_10(
        dim in 2u32..5,
        alpha in 1usize..6,
        gamma in 0.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let valiant = ValiantRouting::new(dim);
        let n = 1usize << dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Demand::random_permutation(n, &mut rng);
        prop_assume!(!d.is_empty());
        let ms = sample_multiset(&valiant, &d.support(), |_, _| alpha, &mut rng);
        let out = weak_route(valiant.graph(), &ms, &d, gamma);
        prop_assert!(verify_lemma_5_10(valiant.graph(), &d, &out).is_ok());
        // Monotonicity: a larger allowance never routes less.
        let out2 = weak_route(valiant.graph(), &ms, &d, gamma + 5.0);
        prop_assert!(out2.routed_fraction + 1e-9 >= out.routed_fraction);
    }

    /// Definition 5.1 monotonicity: enlarging the path system can only
    /// reduce the Stage-4 congestion.
    #[test]
    fn stage4_congestion_is_monotone_in_the_path_system(
        dim in 2u32..4,
        seed in any::<u64>(),
    ) {
        let valiant = ValiantRouting::new(dim);
        let n = 1usize << dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Demand::random_permutation(n, &mut rng);
        prop_assume!(!d.is_empty());
        let small = sample::alpha_sample(&valiant, &d.support(), 1, &mut rng);
        let extra = sample::alpha_sample(&valiant, &d.support(), 4, &mut rng);
        let big: PathSystem = small.union(&extra);
        let opts = SolveOptions { eps: 0.03, max_iters: 2500 };
        let c_small = min_congestion_restricted(valiant.graph(), &d, small.candidates(), &opts);
        let c_big = min_congestion_restricted(valiant.graph(), &d, big.candidates(), &opts);
        // Allow the solver's certified gap on both sides.
        prop_assert!(
            c_big.congestion <= c_small.congestion * 1.08 + 1e-6,
            "supersets cannot hurt: {} > {}",
            c_big.congestion,
            c_small.congestion
        );
    }
}
