//! Steal-order invariance of the work-stealing sweep scheduler.
//!
//! `ssor_engine::sweep` promises that the assembled report is a pure
//! function of `(cells, master_seed)` — bit-identical at every worker
//! count, under every steal order and input order, and across any
//! kill/resume split of the journal. These tests pin that promise on the
//! two real consumers named in the issue (the failure sweep and an
//! α-grid) plus a property test over random subset/shuffle/resume
//! schedules.
//!
//! The thread sweeps run both ways the scheduler can be sized: through
//! the ambient `RAYON_NUM_THREADS` override (the path CI's 2- and
//! 8-thread jobs exercise) and through `SweepOptions::threads` (the path
//! `run_all` uses).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use ssor::engine::sweep::{cells, grid, run_sweep, SweepCell, SweepOptions};
use ssor::engine::{
    DemandSpec, PathSystemCache, Pipeline, ScenarioSpec, TemplateSpec, TopologySpec,
};
use ssor::flow::SolveOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// `RAYON_NUM_THREADS` is process-global and the vendored shim reads it
/// on every call, so tests that sweep thread counts via the environment
/// must serialize (same idiom as `tests/determinism.rs`).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_lock() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_journal(name: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ssor_sweep_det_{}_{}_{name}.journal",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The failure-sweep pipeline the issue names: same spec at every thread
/// count must serialize to the same bytes.
fn failure_pipeline() -> Pipeline {
    Pipeline::on(TopologySpec::Hypercube { dim: 4 })
        .template(TemplateSpec::Valiant)
        .alpha(2)
        .seed(11)
        .solve_options(SolveOptions::with_eps(0.15))
        .without_opt()
        .demand("complement", DemandSpec::Complement)
}

#[test]
fn failure_sweep_is_invariant_under_the_ambient_thread_count() {
    let _guard = env_lock();
    let p = failure_pipeline();
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        // If the override stopped being honored, the sweep below would
        // compare three identical runs and pass vacuously.
        assert_eq!(
            rayon::current_num_threads(),
            threads,
            "worker-count override not honored; thread sweep would be vacuous"
        );
        let cache = PathSystemCache::new();
        let report = p.failure_sweep(&cache, 2, 4);
        reports.push(serde_json::to_string(&report).unwrap());
        std::env::remove_var("RAYON_NUM_THREADS");
    }
    assert_eq!(reports[0], reports[1], "1 vs 2 threads");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads");
}

#[test]
fn failure_sweep_is_invariant_under_pinned_worker_counts() {
    let _guard = env_lock();
    let p = failure_pipeline();
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let cache = PathSystemCache::new();
        let report = p.failure_sweep_sharded(&cache, 2, 4, Some(threads));
        reports.push(serde_json::to_string(&report).unwrap());
    }
    assert_eq!(reports[0], reports[1], "1 vs 2 workers");
    assert_eq!(reports[0], reports[2], "1 vs 8 workers");
}

#[test]
fn alpha_grid_sweep_is_invariant_across_thread_counts() {
    let _guard = env_lock();
    let scenarios = [ScenarioSpec::HypercubeAdversarial { dim: 3 }];
    let run_grid = |threads: usize| -> String {
        let grid_cells = grid(&scenarios, &[1, 2, 3], 2);
        let cache = PathSystemCache::new();
        let outcome = run_sweep(
            &grid_cells,
            &SweepOptions::default().seed(5).threads(threads),
            |cell, cell_seed| {
                cell.payload
                    .scenario
                    .pipeline()
                    .alpha(cell.payload.alpha)
                    .seed(cell_seed)
                    .solve_options(SolveOptions::with_eps(0.15))
                    .run(&cache)
            },
        );
        assert_eq!(outcome.executed, 6);
        outcome.to_json_string()
    };
    let base = run_grid(1);
    assert_eq!(base, run_grid(2), "alpha grid differs at 2 workers");
    assert_eq!(base, run_grid(8), "alpha grid differs at 8 workers");
}

#[test]
fn resume_after_journal_truncation_never_reruns_a_cell() {
    let _guard = env_lock();
    // Each cell is a one-trial failure sweep under its own derived seed —
    // the example in `examples/sweep_resume.rs` at acceptance scale, kept
    // small here so the property is pinned in the test suite too.
    let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
        .template(TemplateSpec::Valiant)
        .alpha(2)
        .solve_options(SolveOptions::with_eps(0.2))
        .without_opt()
        .demand("pair", DemandSpec::Pairs(vec![(0, 7)]));
    let cache = PathSystemCache::new();
    let ran = AtomicUsize::new(0);
    let eval = |cell: &SweepCell<u64>, cell_seed: u64| {
        ran.fetch_add(1, Ordering::Relaxed);
        let _ = cell;
        p.clone().seed(cell_seed).failure_sweep(&cache, 1, 1)
    };
    let grid_cells = cells((0..24u64).collect::<Vec<_>>());
    let opts = SweepOptions::default().seed(9).threads(2);

    let uninterrupted = run_sweep(&grid_cells, &opts, eval);
    assert_eq!(ran.swap(0, Ordering::Relaxed), 24);

    // Full journaled run, then "kill" it mid-write: keep the first 10
    // complete lines plus a torn prefix of line 11.
    let path = tmp_journal("truncate");
    run_sweep(&grid_cells, &opts.clone().journal(&path), eval);
    assert_eq!(ran.swap(0, Ordering::Relaxed), 24);
    let bytes = std::fs::read(&path).unwrap();
    let mut keep = 0;
    let mut newlines = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            newlines += 1;
            if newlines == 10 {
                keep = i + 1;
                break;
            }
        }
    }
    // Torn tail: half of line 11, no newline — must be ignored on resume.
    let torn_end = (keep + (bytes[keep..].iter().position(|&b| b == b'\n').unwrap())) - 3;
    std::fs::write(&path, &bytes[..torn_end]).unwrap();

    let resumed = run_sweep(&grid_cells, &opts.clone().journal(&path), eval);
    assert_eq!((resumed.executed, resumed.resumed), (14, 10));
    // The atomic run counter proves no journaled cell was evaluated twice.
    assert_eq!(ran.swap(0, Ordering::Relaxed), 14);
    assert_eq!(
        resumed.to_json_string(),
        uninterrupted.to_json_string(),
        "resume after truncation must reassemble the uninterrupted bytes"
    );
    std::fs::remove_file(&path).ok();
}

/// Pure, cheap evaluator for the schedule property test: any dependence
/// on steal order or resume split would show up as differing bytes.
#[derive(Serialize)]
struct ProbeOut {
    payload: u64,
    seed_lane: u64,
}

fn probe(cell: &SweepCell<u64>, cell_seed: u64) -> ProbeOut {
    ProbeOut {
        payload: cell.payload.wrapping_mul(0x9E37_79B9),
        seed_lane: cell_seed % 1000,
    }
}

proptest! {
    /// Random subsets of cells, run in shuffled order and merged through
    /// the journal, assemble to the same report as the full in-order run.
    #[test]
    fn shuffled_subsets_merge_to_the_in_order_report(
        perm_seed in any::<u64>(),
        split in 0usize..=24,
        threads in 1usize..5,
    ) {
        let grid_cells = cells((0..24u64).map(|x| x * 5 + 1).collect::<Vec<_>>());
        // All worker counts below are pinned explicitly, so this property
        // never reads the process environment and needs no ENV_LOCK.
        let opts = SweepOptions::default().seed(perm_seed).threads(threads);
        let full = run_sweep(&grid_cells, &opts.clone().threads(1), probe);

        let mut shuffled = grid_cells.clone();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..i + 1));
        }
        let path = tmp_journal("prop");
        let first = run_sweep(&shuffled[..split], &opts.clone().journal(&path), probe);
        let merged = run_sweep(&shuffled, &opts.clone().journal(&path), probe);
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(first.executed, split);
        prop_assert_eq!(merged.resumed, split);
        prop_assert_eq!(merged.executed, 24 - split);
        prop_assert_eq!(merged.to_json_string(), full.to_json_string());
    }
}
