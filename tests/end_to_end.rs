//! End-to-end integration tests spanning every crate: the full paper
//! pipeline at small scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssor::core::{sample, SemiObliviousRouter};
use ssor::flow::solver::{min_congestion_restricted, min_congestion_unrestricted};
use ssor::flow::{Demand, SolveOptions};
use ssor::graph::generators;
use ssor::oblivious::{ObliviousRouting, RaeckeRouting, ValiantRouting};

/// The headline pipeline: sample α paths from Valiant, route an
/// adversarial permutation, stay within a small factor of OPT.
#[test]
fn hypercube_sample_is_competitive_on_adversarial_permutation() {
    let dim = 5;
    let valiant = ValiantRouting::new(dim);
    let d = Demand::hypercube_bit_reversal(dim);
    let mut rng = StdRng::seed_from_u64(1);
    let ps = sample::alpha_sample(&valiant, &d.support(), 5, &mut rng);
    assert!(ps.sparsity() <= 5);

    let router = SemiObliviousRouter::new(valiant.graph().clone(), ps);
    let rep = router.competitive_report(&d, &SolveOptions::with_eps(0.05));
    assert!(
        rep.ratio <= 6.0,
        "5 sampled paths should be close to OPT, ratio {}",
        rep.ratio
    );
    // Sanity: the ratio cannot dip below ~1 (semi-oblivious >= OPT).
    assert!(rep.semi_oblivious >= rep.opt_lower_bound - 1e-6);
}

/// Sparsity buys competitiveness monotonically (in expectation; we use
/// a fixed seed and allow small non-monotonic noise at adjacent alphas by
/// comparing the endpoints).
#[test]
fn more_paths_help() {
    let dim = 5;
    let valiant = ValiantRouting::new(dim);
    let d = Demand::hypercube_complement(dim);
    let opts = SolveOptions::with_eps(0.05);
    let mut rng = StdRng::seed_from_u64(5);

    let ps1 = sample::alpha_sample(&valiant, &d.support(), 1, &mut rng);
    let ps8 = sample::alpha_sample(&valiant, &d.support(), 8, &mut rng);
    let r1 = SemiObliviousRouter::new(valiant.graph().clone(), ps1)
        .route_fractional(&d, &opts)
        .congestion;
    let r8 = SemiObliviousRouter::new(valiant.graph().clone(), ps8)
        .route_fractional(&d, &opts)
        .congestion;
    assert!(
        r8 < r1,
        "alpha = 8 ({r8}) should beat alpha = 1 ({r1}) on the complement demand"
    );
}

/// Full generality: Räcke sampling on a non-hypercube graph, integral
/// routing via Lemma 6.3, everything verified.
#[test]
fn raecke_pipeline_on_grid_with_integral_rounding() {
    let g = generators::grid(5, 5);
    let mut rng = StdRng::seed_from_u64(9);
    let raecke = RaeckeRouting::build(&g, &Default::default(), &mut rng);
    let d = Demand::random_permutation(25, &mut rng);
    let ps = sample::alpha_cut_sample(&raecke, &g, &d.support(), 3, &mut rng);
    let router = SemiObliviousRouter::new(g.clone(), ps);
    assert!(router.covers(&d));

    let out = router.route_integral(&d, &SolveOptions::with_eps(0.08), &mut rng);
    assert!(out.routing.routes(&d));
    assert!(out.within_lemma_bound(g.m()), "Lemma 6.3 bound violated");

    // Integral congestion is within the rounding bound of fractional OPT.
    let opt = min_congestion_unrestricted(&g, &d, &SolveOptions::with_eps(0.08));
    assert!(
        (out.congestion as f64) <= 12.0 * opt.congestion.max(1.0) + 3.0 * (g.m() as f64).ln(),
        "integral congestion {} wildly above OPT {}",
        out.congestion,
        opt.congestion
    );
}

/// Restricting the solver to the sampled paths can never beat the
/// unrestricted optimum — and materially equals it when the sample holds
/// the whole support of an optimal routing.
#[test]
fn restricted_never_beats_unrestricted() {
    let g = generators::torus(4, 4);
    let mut rng = StdRng::seed_from_u64(13);
    let raecke = RaeckeRouting::build(&g, &Default::default(), &mut rng);
    let d = Demand::random_permutation(16, &mut rng);
    let ps = sample::alpha_sample(&raecke, &d.support(), 4, &mut rng);
    let opts = SolveOptions::with_eps(0.05);
    let restricted = min_congestion_restricted(&g, &d, ps.candidates(), &opts);
    let unrestricted = min_congestion_unrestricted(&g, &d, &opts);
    assert!(restricted.congestion + 1e-9 >= unrestricted.lower_bound);
}

/// The demand-sum lemma (Lemma 5.15) holds across the real pipeline:
/// routing d1 + d2 with the merged routing costs at most the sum.
#[test]
fn demand_sum_composition() {
    let g = generators::hypercube(4);
    let mut rng = StdRng::seed_from_u64(17);
    let valiant = ValiantRouting::new(4);
    let d1 = Demand::random_permutation(16, &mut rng);
    let d2 = Demand::random_permutation(16, &mut rng);
    let opts = SolveOptions::with_eps(0.05);
    let mut pairs = d1.support();
    pairs.extend(d2.support());
    let ps = sample::alpha_sample(&valiant, &pairs, 4, &mut rng);

    let r1 = min_congestion_restricted(&g, &d1, ps.candidates(), &opts);
    let r2 = min_congestion_restricted(&g, &d2, ps.candidates(), &opts);
    let merged = ssor::flow::Routing::demand_weighted_merge(&r1.routing, &d1, &r2.routing, &d2);
    let sum = d1.plus(&d2);
    let cong = merged.congestion(&g, &sum);
    assert!(
        cong <= r1.congestion + r2.congestion + 1e-9,
        "Lemma 5.15 violated: {} > {} + {}",
        cong,
        r1.congestion,
        r2.congestion
    );
}

/// Bounded-congestion lemma (Lemma 5.16) on solver outputs.
#[test]
fn bounded_congestion_lemma_holds_for_solver_routings() {
    let g = generators::ring(10);
    let mut rng = StdRng::seed_from_u64(21);
    let d = Demand::random_permutation(10, &mut rng);
    let sol = min_congestion_unrestricted(&g, &d, &SolveOptions::with_eps(0.05));
    let cong = sol.routing.congestion(&g, &d);
    assert!(cong >= d.size() / g.m() as f64 - 1e-9);
    assert!(cong <= d.size() + 1e-9);
}
