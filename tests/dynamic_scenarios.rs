//! Integration tests for the dynamic-scenario subsystem: warm-started
//! demand streams, failure sweeps over `SubTopology` masks, and the
//! connectivity-retrying Waxman topology behind `GravityWan`.

use ssor::engine::{
    DemandSpec, DynamicReport, PathSystemCache, Pipeline, ScenarioSpec, StreamModel, TemplateSpec,
    TopologySpec,
};
use ssor::flow::SolveOptions;
use ssor::graph::generators;

fn quick() -> SolveOptions {
    SolveOptions::with_eps(0.1)
}

/// Warm-vs-cold equivalence: on every step of a drifting stream, the
/// warm-started congestion must sit within the solver's certified
/// tolerance of a cold solve of the same restricted problem. Both solves
/// stop at a certified gap of `1 + eps`, so their ratio can deviate from
/// 1 by at most ~eps each way.
#[test]
fn warm_stream_congestion_matches_cold_solves_on_every_step() {
    let cache = PathSystemCache::new();
    let model = StreamModel::DiurnalGravity {
        total: 20.0.into(),
        period: 8,
        seed: 5,
    };
    let report = Pipeline::on(TopologySpec::Waxman {
        n: 16,
        a: 0.4.into(),
        b: 0.25.into(),
        seed: 3,
    })
    .alpha(3)
    .seed(7)
    .solve_options(quick())
    .stream(&cache, 12, &model);

    assert_eq!(report.steps.len(), 12);
    let tol = 1.0 + quick().eps + 0.02;
    for step in &report.steps {
        let cold = step.cold_congestion.expect("baseline enabled");
        assert!(
            step.congestion <= cold * tol + 1e-12,
            "step {}: warm {} vs cold {}",
            step.step,
            step.congestion,
            cold
        );
        assert!(
            cold <= step.congestion * tol + 1e-12,
            "step {}: warm {} vs cold {}",
            step.step,
            step.congestion,
            cold
        );
        assert!(step.lower_bound <= step.congestion * (1.0 + 1e-9));
    }
    // Warm starts must not do more total work than cold solves.
    let warm_iters = report.total_iterations();
    let cold_iters = report.cold_total_iterations().expect("baseline enabled");
    assert!(
        warm_iters <= cold_iters,
        "warm {warm_iters} iterations vs cold {cold_iters}"
    );
}

/// Bursty ON/OFF support churn: pairs leave and re-enter the demand;
/// the warm solver's carried state must stay consistent through empty
/// and partial steps.
#[test]
fn bursty_stream_survives_support_churn() {
    let cache = PathSystemCache::new();
    let model = StreamModel::BurstyOnOff {
        pairs: 6,
        rate: 1.0.into(),
        p_on: 0.4.into(),
        p_off: 0.5.into(),
        seed: 11,
    };
    let report = Pipeline::on(TopologySpec::Hypercube { dim: 4 })
        .template(TemplateSpec::Valiant)
        .alpha(3)
        .solve_options(quick())
        .stream(&cache, 15, &model);
    assert_eq!(report.steps.len(), 15);
    for step in &report.steps {
        if step.size == 0.0 {
            assert_eq!(step.congestion, 0.0);
            assert_eq!(step.iterations, 0);
        } else {
            assert!(step.congestion > 0.0, "step {}", step.step);
        }
        if let Some(r) = step.vs_cold {
            assert!(r < 1.2, "step {}: vs_cold {r}", step.step);
        }
    }
}

/// Failure sweep end to end: coverage degrades gracefully with alpha-fold
/// path diversity, re-routes stay certified against the damaged-topology
/// optimum, and the warm re-route agrees with a cold solve on the same
/// survivors.
#[test]
fn failure_sweep_reroutes_and_certifies_against_damaged_opt() {
    let cache = PathSystemCache::new();
    let report = Pipeline::on(TopologySpec::Hypercube { dim: 4 })
        .template(TemplateSpec::Valiant)
        .alpha(4)
        .seed(2)
        .solve_options(quick())
        .demand("complement", DemandSpec::Complement)
        .failure_sweep(&cache, 3, 4);

    assert_eq!(report.trials.len(), 4);
    assert!(report.mean_coverage() > 0.7, "alpha=4 should keep coverage");
    let tol = 1.0 + quick().eps + 0.02;
    for rec in &report.trials {
        assert_eq!(rec.failed_edges.len(), 3);
        let cong = rec.congestion.expect("some pairs covered");
        let cold = rec.cold_congestion.expect("cold baseline present");
        assert!(
            cong <= cold * tol + 1e-12 && cold <= cong * tol + 1e-12,
            "trial {}: warm {} vs cold {}",
            rec.trial,
            cong,
            cold
        );
        let ratio = rec.ratio.expect("OPT baseline enabled");
        assert!(
            ratio >= 1.0 - quick().eps - 0.02,
            "trial {}: ratio {ratio} below 1 is impossible",
            rec.trial
        );
        assert!(ratio < 10.0, "trial {}: ratio {ratio}", rec.trial);
    }
}

/// Trials are reproducible: the same pipeline produces bit-identical
/// failure sets and congestion numbers on a fresh cache.
#[test]
fn failure_sweep_is_deterministic_across_runs() {
    let mk = || {
        Pipeline::on(TopologySpec::LeafSpine {
            spines: 3,
            leaves: 4,
            hosts_per_leaf: 1,
            uplink_mult: 2,
        })
        .template(TemplateSpec::Ksp { k: 4 })
        .alpha(3)
        .seed(9)
        .solve_options(quick())
        .demand("perm", DemandSpec::RandomPermutation { seed: 1 })
        .failure_sweep(&PathSystemCache::new(), 2, 3)
    };
    let a = mk();
    let b = mk();
    for (x, y) in a.trials.iter().zip(b.trials.iter()) {
        assert_eq!(x.failed_edges, y.failed_edges);
        assert_eq!(x.attempts, y.attempts);
        assert_eq!(
            x.congestion.map(f64::to_bits),
            y.congestion.map(f64::to_bits)
        );
    }
}

/// Dynamic scenarios run through the `ScenarioSpec` front door too.
#[test]
fn scenario_spec_dispatches_dynamic_runs() {
    let cache = PathSystemCache::new();
    let sweep = ScenarioSpec::FailureSweep {
        base: Box::new(ScenarioSpec::HypercubeAdversarial { dim: 3 }),
        k_failures: 2,
        trials: 2,
    };
    match sweep.run_dynamic(&cache) {
        Some(DynamicReport::Failures(r)) => {
            // 2 trials x 2 demands (dim 3 has no transpose).
            assert_eq!(r.trials.len(), 4);
        }
        other => panic!("expected a failure report, got {other:?}"),
    }
    let stream = ScenarioSpec::DemandStream {
        base: Box::new(ScenarioSpec::HypercubeAdversarial { dim: 3 }),
        steps: 4,
        model: StreamModel::BurstyOnOff {
            pairs: 5,
            rate: 1.0.into(),
            p_on: 0.5.into(),
            p_off: 0.4.into(),
            seed: 3,
        },
    };
    match stream.run_dynamic(&cache) {
        Some(DynamicReport::Stream(r)) => assert_eq!(r.steps.len(), 4),
        other => panic!("expected a stream report, got {other:?}"),
    }
    assert!(
        ScenarioSpec::HypercubeAdversarial { dim: 3 }
            .run_dynamic(&cache)
            .is_none(),
        "static scenarios decline"
    );
}

/// Regression for the disconnected-Waxman hazard behind `GravityWan`:
/// the raw Waxman draw at the GravityWan parameters (a = 0.4, b = 0.25)
/// is disconnected for unlucky seeds — unreachable pairs would panic
/// deep inside path sampling / the OPT oracle if used as-is. The
/// topology build must detect this at resolve time and retry with
/// derived seeds, deterministically and bounded.
///
/// Probed constants: at n = 20, seed 0 rejects exactly 3 disconnected
/// draws before finding a connected one; seed 1 exhausts all 16 retries
/// and must fall back to the stitched draw.
#[test]
fn gravity_wan_recovers_from_disconnected_waxman_seeds() {
    // Seed 0: genuine retry success after 3 disconnected draws.
    let (g, _, attempts) = generators::waxman_connected(20, 0.4, 0.25, 0, 16);
    assert_eq!(attempts, 3, "seed 0 rejects three disconnected draws");
    assert!(g.is_connected());

    // Seed 1: bounded retries exhaust; stitched fallback still connects.
    let (g1, _, attempts1) = generators::waxman_connected(20, 0.4, 0.25, 1, 16);
    assert_eq!(attempts1, 16, "seed 1 exhausts the retry budget");
    assert!(g1.is_connected());

    // The spec layer builds the same graphs deterministically…
    for seed in [0u64, 1] {
        let spec = ScenarioSpec::GravityWan {
            n: 20,
            total: 15.0.into(),
            seed,
        }
        .topology();
        let a = spec.build_graph();
        let b = spec.build_graph();
        assert!(a.is_connected(), "seed {seed}");
        assert_eq!(
            a.edges().collect::<Vec<_>>(),
            b.edges().collect::<Vec<_>>(),
            "seed {seed}"
        );
    }

    // …and the full GravityWan pipeline routes on the unlucky seed
    // without panicking in path sampling or the OPT oracle.
    let report = ScenarioSpec::GravityWan {
        n: 20,
        total: 15.0.into(),
        seed: 1,
    }
    .pipeline()
    .alpha(2)
    .solve_options(quick())
    .run(&PathSystemCache::new());
    assert!(report.records[0].congestion > 0.0);
}
