//! Golden-report regression tests: fixed-seed `RunReport` and
//! `FailureSweepReport` JSON must stay **byte-stable** across PRs.
//!
//! The sweep layer journals cells as compact JSON and splices resumed
//! cells back verbatim (the vendored `serde_json` shim is encode-only),
//! so any drift in report serialization — field order, float formatting,
//! a renamed key — would silently break resume compatibility and every
//! downstream consumer of `results/*.json`. These fixtures pin the
//! bytes.
//!
//! To bless an *intentional* schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ssor --test golden_reports
//! ```
//!
//! then commit the regenerated files under `tests/fixtures/` and note
//! the schema change in the PR description.

use ssor::engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
use ssor::flow::SolveOptions;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_golden(name: &str, got: &str) {
    let path = fixture(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing fixture {}; bless it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name} drifted from its fixture: report serialization is part of \
         the journal/resume contract — if the change is intentional, re-bless \
         with UPDATE_GOLDEN=1 and call it out in the PR"
    );
}

/// The pinned run: small enough to finish in debug tests, rich enough to
/// cover every serialized field (OPT bounds, ratios, solver stages).
fn pinned_pipeline() -> Pipeline {
    Pipeline::on(TopologySpec::Hypercube { dim: 3 })
        .template(TemplateSpec::Valiant)
        .alpha(2)
        .seed(7)
        .solve_options(SolveOptions::with_eps(0.1))
        .demand("bit-reversal", DemandSpec::BitReversal)
        .demand("complement", DemandSpec::Complement)
}

#[test]
fn run_report_serialization_is_byte_stable() {
    let cache = PathSystemCache::new();
    let report = pinned_pipeline().run(&cache);
    let got = format!("{}\n", serde_json::to_string_pretty(&report).unwrap());
    assert_golden("run_report_hypercube3.json", &got);
}

#[test]
fn failure_sweep_report_serialization_is_byte_stable() {
    let cache = PathSystemCache::new();
    let report = pinned_pipeline().seed(3).failure_sweep(&cache, 1, 2);
    let got = format!("{}\n", serde_json::to_string_pretty(&report).unwrap());
    assert_golden("failure_sweep_report_hypercube3.json", &got);
}
