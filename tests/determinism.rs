//! Thread-count invariance of the engine pipeline.
//!
//! The parallel stages — `par_alpha_sample`'s chunked sampling and the
//! fixed-block `EdgeLoads::par_merge` load reduction — promise results
//! that are a deterministic function of the pipeline spec alone,
//! *identical at any rayon worker count*. This test pins that guarantee:
//! the same scenarios run at 1, 2, and 8 threads (via the
//! `RAYON_NUM_THREADS` override the vendored rayon shim honors, same as
//! real rayon) must produce bit-identical congestion numbers and
//! logically identical sampled path systems.
//!
//! CI runs the whole suite a second time under `RAYON_NUM_THREADS=2`
//! (see `.github/workflows/ci.yml`), so the guarantee is exercised both
//! ways: this test sweeps thread counts in-process, and the CI variant
//! re-runs every other test off the single-thread default.

use proptest::prelude::*;
use rand::SeedableRng;
use ssor::core::PathSystem;
use ssor::engine::{DynamicReport, PathSystemCache, Pipeline, ScenarioSpec, StreamModel};
use ssor::flow::solver::{min_congestion_masked, min_congestion_unrestricted, DemandDelta, Solver};
use ssor::flow::{AllPathsOracle, Demand, SolveOptions};
use ssor::graph::generators;
use ssor::graph::Graph;
use ssor::oblivious::{
    frt::sample_tree_routings_seeded, ElectricalRouting, Metric, ObliviousRouting, RaeckeOptions,
    RaeckeRouting, RandomWalkRouting,
};
use std::sync::{Mutex, MutexGuard};

/// `RAYON_NUM_THREADS` is process-global and the vendored shim reads it
/// on every call, so the tests in this binary — which libtest runs on
/// parallel threads — must not sweep thread counts concurrently: one
/// test's `set_var` would trip another's override-honored guard. Every
/// test takes this lock for its whole body.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_lock() -> MutexGuard<'static, ()> {
    // A poisoned lock just means another test failed; every sweep sets
    // the variable before each run, so continuing is sound.
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One full pipeline execution at a pinned thread count: sampled path
/// system plus the per-demand records, reduced to comparable bits.
fn run_at(threads: usize, pipeline: &Pipeline) -> (PathSystem, Vec<(String, u64, usize)>) {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    // Guard against a pool that ignores mid-process overrides (real
    // rayon pins its global pool on first use): if this stops holding,
    // the sweep below would compare three identical runs and the test
    // would pass vacuously.
    assert_eq!(
        rayon::current_num_threads(),
        threads,
        "worker-count override not honored; thread sweep would be vacuous"
    );
    let cache = PathSystemCache::new();
    let prepared = pipeline.prepare(&cache);
    let paths = prepared.paths().clone();
    let report = pipeline.run(&cache);
    let records = report
        .records
        .iter()
        .map(|r| (r.name.clone(), r.congestion.to_bits(), r.dilation))
        .collect();
    std::env::remove_var("RAYON_NUM_THREADS");
    (paths, records)
}

fn assert_invariant(pipeline: &Pipeline, label: &str) {
    let (paths1, recs1) = run_at(1, pipeline);
    for threads in [2usize, 8] {
        let (paths_n, recs_n) = run_at(threads, pipeline);
        assert_eq!(
            paths1, paths_n,
            "{label}: sampled path system differs at {threads} threads"
        );
        assert_eq!(
            recs1, recs_n,
            "{label}: congestion/dilation records differ at {threads} threads"
        );
    }
}

#[test]
fn engine_results_are_thread_count_invariant() {
    let _guard = env_lock();
    // Hypercube adversary: exercises par_alpha_sample over all 240
    // ordered pairs of Q4 plus the restricted + unrestricted solves.
    let hypercube = ScenarioSpec::HypercubeAdversarial { dim: 4 }
        .pipeline()
        .alpha(3)
        .seed(11)
        .solve_options(SolveOptions::with_eps(0.1));
    assert_invariant(&hypercube, "hypercube-adversary");

    // Gravity WAN: a dense fractional demand whose support (n(n-1) pairs
    // for n = 20) crosses Routing::edge_loads' parallel-accumulation
    // threshold, so the fixed-block par_merge path actually runs.
    let gravity = ScenarioSpec::GravityWan {
        n: 20,
        total: 25.0.into(),
        seed: 7,
    }
    .pipeline()
    .alpha(2)
    .seed(5)
    .solve_options(SolveOptions::with_eps(0.15))
    .without_opt();
    assert_invariant(&gravity, "gravity-wan");
}

/// A dynamic scenario reduced to comparable bits: per-record congestion
/// bit patterns plus the structural fields that must not drift.
fn run_dynamic_at(threads: usize, scenario: &ScenarioSpec) -> Vec<(u64, usize, Vec<u32>)> {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    assert_eq!(
        rayon::current_num_threads(),
        threads,
        "worker-count override not honored; thread sweep would be vacuous"
    );
    let cache = PathSystemCache::new();
    let report = scenario
        .run_dynamic(&cache)
        .expect("dynamic scenario expected");
    std::env::remove_var("RAYON_NUM_THREADS");
    match report {
        DynamicReport::Stream(r) => r
            .steps
            .iter()
            .map(|s| (s.congestion.to_bits(), s.iterations, Vec::new()))
            .collect(),
        DynamicReport::Failures(r) => r
            .trials
            .iter()
            .map(|t| {
                (
                    t.congestion.unwrap_or(0.0).to_bits(),
                    t.iterations,
                    t.failed_edges.clone(),
                )
            })
            .collect(),
    }
}

/// The solver's parallel batch oracle fans per-source Dijkstra trees out
/// over the rayon workers with an index-ordered merge; solves through
/// the unified entry points — unrestricted, failure-masked, and a warm
/// `Solver` chain — must be bit-identical at any worker count.
#[test]
fn solver_entry_points_are_thread_count_invariant() {
    let _guard = env_lock();
    // 28 distinct sources on Q5 — far above the oracle's serial cutoff
    // and above the 8-thread fan-in, so the parallel merge actually runs
    // at every swept width.
    let g = generators::hypercube(5);
    let d = Demand::random_permutation(32, &mut rand::rngs::StdRng::seed_from_u64(3));
    let mut sub = g.sub_topology();
    for e in [2u32, 17, 40, 63] {
        sub.fail_edge(e);
    }
    let usable = sub.usable_edges();
    let opts = SolveOptions::with_eps(0.1);

    let solve_all = |threads: usize| -> Vec<u64> {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        assert_eq!(
            rayon::current_num_threads(),
            threads,
            "worker-count override not honored; thread sweep would be vacuous"
        );
        let open = min_congestion_unrestricted(&g, &d, &opts);
        let masked = min_congestion_masked(&g, &d, &usable, &opts);
        // A warm chain: cold solve, then a drifted re-solve.
        let mut oracle = AllPathsOracle::new(&g);
        let mut warm = Solver::solve(&g, &d, &mut oracle, &opts);
        let drifted = warm.resolve(&g, DemandDelta::Scale(1.25), &mut oracle, &opts);
        std::env::remove_var("RAYON_NUM_THREADS");
        vec![
            open.congestion.to_bits(),
            open.lower_bound.to_bits(),
            open.iterations as u64,
            masked.congestion.to_bits(),
            masked.lower_bound.to_bits(),
            masked.stranded.to_bits(),
            drifted.congestion.to_bits(),
            drifted.lower_bound.to_bits(),
            drifted.iterations as u64,
        ]
    };

    let base = solve_all(1);
    for threads in [2usize, 8] {
        assert_eq!(
            base,
            solve_all(threads),
            "solver results differ at {threads} threads"
        );
    }
}

/// One full template-layer construction at a pinned thread count,
/// reduced to comparable bits: the all-pairs metric (every pairwise
/// distance's bit pattern), a seeded FRT ensemble (every routed path),
/// and a full Räcke build (relative loads + the mixture's distribution
/// weights and supports).
fn template_fingerprint(threads: usize, g: &Graph) -> (Vec<u64>, Vec<Vec<u32>>, Vec<u64>) {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    assert_eq!(
        rayon::current_num_threads(),
        threads,
        "worker-count override not honored; thread sweep would be vacuous"
    );
    let lens: Vec<f64> = (0..g.m()).map(|e| 1.0 + (e % 5) as f64 * 0.25).collect();
    let metric = Metric::build(g, &|e| lens[e as usize]);
    let mut dist_bits = Vec::new();
    for s in g.vertices() {
        for t in g.vertices() {
            dist_bits.push(metric.dist(s, t).to_bits());
        }
    }

    let pairs: Vec<(u32, u32)> = vec![(0, g.n() as u32 - 1), (1, g.n() as u32 / 2), (2, 7)];
    let trees = sample_tree_routings_seeded(g, 8, 21);
    let mut ensemble_paths = Vec::new();
    for tr in &trees {
        for &(s, t) in &pairs {
            ensemble_paths.push(tr.path(g, s, t).edges().to_vec());
        }
    }

    let raecke = RaeckeRouting::build(
        g,
        &RaeckeOptions {
            iterations: 8,
            epsilon: 0.5,
        },
        &mut rand::rngs::StdRng::seed_from_u64(5),
    );
    let mut raecke_bits: Vec<u64> = raecke
        .relative_loads()
        .iter()
        .map(|r| r.to_bits())
        .collect();
    for &(s, t) in &pairs {
        for (p, w) in raecke.path_distribution(s, t) {
            raecke_bits.push(w.to_bits());
            raecke_bits.extend(p.edges().iter().map(|&e| e as u64));
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    (dist_bits, ensemble_paths, raecke_bits)
}

/// Template construction — the parallel all-pairs metric, seeded FRT
/// ensembles, and the full Räcke multiplicative-weights build — must be
/// bit-identical at any rayon worker count (index-ordered Dijkstra
/// fan-out, per-tree derived seed streams, fixed-block canonical-load
/// merges).
#[test]
fn template_construction_is_thread_count_invariant() {
    let _guard = env_lock();
    // A Waxman WAN: irregular degrees and real-valued metric lengths,
    // large enough that every parallel cutoff in the template layer is
    // crossed (n Dijkstra sources, 8 trees, m/64 > 1 load blocks).
    let (g, _, _) = generators::waxman_connected(40, 0.4, 0.25, 9, 16);
    let base = template_fingerprint(1, &g);
    for threads in [2usize, 8] {
        let got = template_fingerprint(threads, &g);
        assert_eq!(
            base.0, got.0,
            "all-pairs metric differs at {threads} threads"
        );
        assert_eq!(
            base.1, got.1,
            "FRT ensemble paths differ at {threads} threads"
        );
        assert_eq!(base.2, got.2, "Raecke build differs at {threads} threads");
    }
}

/// The electrical template's batched per-source PCG solves fan out over
/// `par_ordered_map`, and the random-walk template derives one RNG
/// stream per (s, t) pair — both reduced to comparable bits: every
/// precomputed potential's bit pattern, plus each scheme's path
/// distributions (weights and edge sequences) over a pinned pair set.
fn flow_template_fingerprint(threads: usize, g: &Graph) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    assert_eq!(
        rayon::current_num_threads(),
        threads,
        "worker-count override not honored; thread sweep would be vacuous"
    );
    let pairs: Vec<(u32, u32)> = vec![(0, g.n() as u32 - 1), (1, g.n() as u32 / 2), (2, 7)];

    let electrical = ElectricalRouting::new(g).precomputed();
    let mut potential_bits = Vec::new();
    for s in g.vertices() {
        potential_bits.extend(electrical.potential(s).iter().map(|p| p.to_bits()));
    }
    let mut electrical_bits = Vec::new();
    for &(s, t) in &pairs {
        for (p, w) in electrical.path_distribution(s, t) {
            electrical_bits.push(w.to_bits());
            electrical_bits.extend(p.edges().iter().map(|&e| e as u64));
        }
    }

    let walks = RandomWalkRouting::new(g, 16, 4 * g.n(), 23);
    let mut walk_bits = Vec::new();
    for &(s, t) in &pairs {
        for (p, w) in walks.path_distribution(s, t) {
            walk_bits.push(w.to_bits());
            walk_bits.extend(p.edges().iter().map(|&e| e as u64));
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    (potential_bits, electrical_bits, walk_bits)
}

/// The electrical build (batched Laplacian solves over the ordered
/// parallel map, serial left-to-right PCG reductions) and the
/// random-walk build (per-pair derived seed streams over BFS-tree
/// fallbacks) must be bit-identical at any rayon worker count.
#[test]
fn flow_template_construction_is_thread_count_invariant() {
    let _guard = env_lock();
    let (g, _, _) = generators::waxman_connected(40, 0.4, 0.25, 9, 16);
    let base = flow_template_fingerprint(1, &g);
    for threads in [2usize, 8] {
        let got = flow_template_fingerprint(threads, &g);
        assert_eq!(
            base.0, got.0,
            "electrical potentials differ at {threads} threads"
        );
        assert_eq!(
            base.1, got.1,
            "electrical path distributions differ at {threads} threads"
        );
        assert_eq!(
            base.2, got.2,
            "random-walk distributions differ at {threads} threads"
        );
    }
}

proptest! {
    /// The rayon-parallel `Metric::build` must agree bitwise with a
    /// serial per-source Dijkstra reference on random weighted
    /// multigraphs (whatever the ambient worker count happens to be —
    /// determinism means the comparison holds under every scheduler).
    #[test]
    fn parallel_metric_matches_serial_reference(
        n in 2usize..14,
        p in 0.1f64..0.9,
        extra in 0usize..8,
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        // Held per case: the parallel build below reads
        // RAYON_NUM_THREADS through the shim, which must not race the
        // thread-sweep tests' set_var/remove_var windows.
        let _guard = env_lock();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = generators::erdos_renyi(n, p, &mut rng);
        let m0 = g.m();
        for _ in 0..extra.min(m0) {
            let (u, v) = g.endpoints(rng.gen_range(0..m0) as u32);
            g.add_edge(u, v);
        }
        let lens: Vec<f64> = (0..g.m()).map(|_| 0.5 + rng.gen::<f64>() * 3.0).collect();
        let metric = Metric::build(&g, &|e| lens[e as usize]);
        let csr = g.csr();
        for s in g.vertices() {
            let reference = ssor::graph::shortest_path::dijkstra_tree_csr(
                &csr, s, &|e| lens[e as usize],
            );
            for t in g.vertices() {
                prop_assert_eq!(
                    metric.dist(s, t).to_bits(),
                    reference.dist_to(t).to_bits(),
                    "({}, {})", s, t
                );
            }
        }
    }
}

/// The warm-started stream and the failure sweep are sequential chains
/// of solves, but every solve inside them crosses the rayon-parallel
/// load accumulation — their outputs must still be bit-identical at any
/// worker count.
#[test]
fn dynamic_scenarios_are_thread_count_invariant() {
    let _guard = env_lock();
    let sweep = ScenarioSpec::FailureSweep {
        base: Box::new(ScenarioSpec::HypercubeAdversarial { dim: 4 }),
        k_failures: 3,
        trials: 3,
    };
    let stream = ScenarioSpec::DemandStream {
        base: Box::new(ScenarioSpec::GravityWan {
            n: 20,
            total: 25.0.into(),
            seed: 7,
        }),
        steps: 6,
        model: StreamModel::DiurnalGravity {
            total: 25.0.into(),
            period: 6,
            seed: 4,
        },
    };
    for (scenario, label) in [(sweep, "failure-sweep"), (stream, "demand-stream")] {
        let base = run_dynamic_at(1, &scenario);
        assert!(!base.is_empty(), "{label}: empty report");
        for threads in [2usize, 8] {
            let got = run_dynamic_at(threads, &scenario);
            assert_eq!(base, got, "{label}: records differ at {threads} threads");
        }
    }
}
