//! Thread-count invariance of the engine pipeline.
//!
//! The parallel stages — `par_alpha_sample`'s chunked sampling and the
//! fixed-block `EdgeLoads::par_merge` load reduction — promise results
//! that are a deterministic function of the pipeline spec alone,
//! *identical at any rayon worker count*. This test pins that guarantee:
//! the same scenarios run at 1, 2, and 8 threads (via the
//! `RAYON_NUM_THREADS` override the vendored rayon shim honors, same as
//! real rayon) must produce bit-identical congestion numbers and
//! logically identical sampled path systems.
//!
//! CI runs the whole suite a second time under `RAYON_NUM_THREADS=2`
//! (see `.github/workflows/ci.yml`), so the guarantee is exercised both
//! ways: this test sweeps thread counts in-process, and the CI variant
//! re-runs every other test off the single-thread default.

use ssor::core::PathSystem;
use ssor::engine::{DynamicReport, PathSystemCache, Pipeline, ScenarioSpec, StreamModel};
use ssor::flow::SolveOptions;

/// One full pipeline execution at a pinned thread count: sampled path
/// system plus the per-demand records, reduced to comparable bits.
fn run_at(threads: usize, pipeline: &Pipeline) -> (PathSystem, Vec<(String, u64, usize)>) {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    // Guard against a pool that ignores mid-process overrides (real
    // rayon pins its global pool on first use): if this stops holding,
    // the sweep below would compare three identical runs and the test
    // would pass vacuously.
    assert_eq!(
        rayon::current_num_threads(),
        threads,
        "worker-count override not honored; thread sweep would be vacuous"
    );
    let cache = PathSystemCache::new();
    let prepared = pipeline.prepare(&cache);
    let paths = prepared.paths().clone();
    let report = pipeline.run(&cache);
    let records = report
        .records
        .iter()
        .map(|r| (r.name.clone(), r.congestion.to_bits(), r.dilation))
        .collect();
    std::env::remove_var("RAYON_NUM_THREADS");
    (paths, records)
}

fn assert_invariant(pipeline: &Pipeline, label: &str) {
    let (paths1, recs1) = run_at(1, pipeline);
    for threads in [2usize, 8] {
        let (paths_n, recs_n) = run_at(threads, pipeline);
        assert_eq!(
            paths1, paths_n,
            "{label}: sampled path system differs at {threads} threads"
        );
        assert_eq!(
            recs1, recs_n,
            "{label}: congestion/dilation records differ at {threads} threads"
        );
    }
}

#[test]
fn engine_results_are_thread_count_invariant() {
    // Hypercube adversary: exercises par_alpha_sample over all 240
    // ordered pairs of Q4 plus the restricted + unrestricted solves.
    let hypercube = ScenarioSpec::HypercubeAdversarial { dim: 4 }
        .pipeline()
        .alpha(3)
        .seed(11)
        .solve_options(SolveOptions::with_eps(0.1));
    assert_invariant(&hypercube, "hypercube-adversary");

    // Gravity WAN: a dense fractional demand whose support (n(n-1) pairs
    // for n = 20) crosses Routing::edge_loads' parallel-accumulation
    // threshold, so the fixed-block par_merge path actually runs.
    let gravity = ScenarioSpec::GravityWan {
        n: 20,
        total: 25.0.into(),
        seed: 7,
    }
    .pipeline()
    .alpha(2)
    .seed(5)
    .solve_options(SolveOptions::with_eps(0.15))
    .without_opt();
    assert_invariant(&gravity, "gravity-wan");
}

/// A dynamic scenario reduced to comparable bits: per-record congestion
/// bit patterns plus the structural fields that must not drift.
fn run_dynamic_at(threads: usize, scenario: &ScenarioSpec) -> Vec<(u64, usize, Vec<u32>)> {
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    assert_eq!(
        rayon::current_num_threads(),
        threads,
        "worker-count override not honored; thread sweep would be vacuous"
    );
    let cache = PathSystemCache::new();
    let report = scenario
        .run_dynamic(&cache)
        .expect("dynamic scenario expected");
    std::env::remove_var("RAYON_NUM_THREADS");
    match report {
        DynamicReport::Stream(r) => r
            .steps
            .iter()
            .map(|s| (s.congestion.to_bits(), s.iterations, Vec::new()))
            .collect(),
        DynamicReport::Failures(r) => r
            .trials
            .iter()
            .map(|t| {
                (
                    t.congestion.unwrap_or(0.0).to_bits(),
                    t.iterations,
                    t.failed_edges.clone(),
                )
            })
            .collect(),
    }
}

/// The warm-started stream and the failure sweep are sequential chains
/// of solves, but every solve inside them crosses the rayon-parallel
/// load accumulation — their outputs must still be bit-identical at any
/// worker count.
#[test]
fn dynamic_scenarios_are_thread_count_invariant() {
    let sweep = ScenarioSpec::FailureSweep {
        base: Box::new(ScenarioSpec::HypercubeAdversarial { dim: 4 }),
        k_failures: 3,
        trials: 3,
    };
    let stream = ScenarioSpec::DemandStream {
        base: Box::new(ScenarioSpec::GravityWan {
            n: 20,
            total: 25.0.into(),
            seed: 7,
        }),
        steps: 6,
        model: StreamModel::DiurnalGravity {
            total: 25.0.into(),
            period: 6,
            seed: 4,
        },
    };
    for (scenario, label) in [(sweep, "failure-sweep"), (stream, "demand-stream")] {
        let base = run_dynamic_at(1, &scenario);
        assert!(!base.is_empty(), "{label}: empty report");
        for threads in [2usize, 8] {
            let got = run_dynamic_at(threads, &scenario);
            assert_eq!(base, got, "{label}: records differ at {threads} threads");
        }
    }
}
