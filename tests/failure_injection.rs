//! Failure-injection integration tests: the semi-oblivious story under
//! edge failures (the robustness SMORE values the construction for).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssor::core::{sample, SemiObliviousRouter};
use ssor::flow::solver::min_congestion_restricted;
use ssor::flow::{Demand, SolveOptions};
use ssor::graph::{generators, Graph};
use ssor::oblivious::{ObliviousRouting, RaeckeRouting, ValiantRouting};

/// Failing one hypercube edge leaves most pairs with surviving candidate
/// paths when α > 1, and none when the single sampled path crossed it.
#[test]
fn diversity_survives_single_edge_failure() {
    let dim = 4;
    let valiant = ValiantRouting::new(dim);
    let d = Demand::hypercube_complement(dim);
    let mut rng = StdRng::seed_from_u64(2);

    for (alpha, min_coverage) in [(1usize, 0.5), (4, 0.9)] {
        let mut ps = sample::alpha_sample(&valiant, &d.support(), alpha, &mut rng);
        let before = ps.len();
        // Fail the busiest edge of the sample.
        let mut use_count = vec![0usize; valiant.graph().m()];
        for (s, t) in d.support() {
            for p in ps.paths(s, t).unwrap() {
                for &e in p.edges() {
                    use_count[e as usize] += 1;
                }
            }
        }
        let busiest = use_count
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(e, _)| e as u32)
            .unwrap();
        ps.remove_paths_through(busiest);
        let after = ps.len();
        let coverage = after as f64 / before as f64;
        assert!(
            coverage >= min_coverage,
            "alpha = {alpha}: coverage {coverage} below {min_coverage}"
        );
        if alpha == 4 {
            // The surviving system still routes the covered demand with
            // finite, reasonable congestion.
            let covered = d.filtered(|s, t, _| ps.paths(s, t).is_some());
            assert!(!covered.is_empty());
            let sol = min_congestion_restricted(
                valiant.graph(),
                &covered,
                ps.candidates(),
                &SolveOptions::with_eps(0.1),
            );
            assert!(sol.congestion <= 4.0 * d.size() / valiant.graph().m() as f64 * 8.0 + 8.0);
        }
    }
}

/// After deleting an edge from the *graph*, re-sampling on the damaged
/// graph restores a working router (the full re-provisioning drill).
#[test]
fn reprovision_after_graph_edge_removal() {
    let g = generators::torus(4, 4);
    let mut rng = StdRng::seed_from_u64(3);
    let d = Demand::random_permutation(16, &mut rng);

    // Remove one edge (torus stays connected).
    let kept: Vec<(u32, u32)> = g
        .edges()
        .filter(|&(e, _)| e != 0)
        .map(|(_, uv)| uv)
        .collect();
    let damaged = Graph::from_edges(g.n(), &kept);
    assert!(damaged.is_connected());

    let raecke = RaeckeRouting::build(&damaged, &Default::default(), &mut rng);
    let ps = sample::alpha_sample(&raecke, &d.support(), 4, &mut rng);
    let router = SemiObliviousRouter::new(damaged.clone(), ps);
    assert!(router.covers(&d));
    let rep = router.competitive_report(&d, &SolveOptions::with_eps(0.08));
    assert!(rep.ratio < 12.0, "re-provisioned ratio {}", rep.ratio);
}

/// Path systems never silently contain paths through removed edges.
#[test]
fn remove_paths_through_is_exhaustive() {
    let valiant = ValiantRouting::new(4);
    let d = Demand::hypercube_bit_reversal(4);
    let mut rng = StdRng::seed_from_u64(5);
    let mut ps = sample::alpha_sample(&valiant, &d.support(), 6, &mut rng);
    for dead in [0u32, 7, 13] {
        ps.remove_paths_through(dead);
        for (s, t) in ps.pairs().collect::<Vec<_>>() {
            for p in ps.paths(s, t).unwrap() {
                assert!(!p.contains_edge(dead), "survivor crosses dead edge {dead}");
            }
        }
    }
}
