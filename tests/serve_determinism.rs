//! Determinism suite for the serving plane.
//!
//! The query plane's contract: a reply is a pure function of
//! `(generation, request_id)` — independent of the shard count that
//! answered it and of where generation swaps landed in the query stream.
//! These tests pin that contract from three sides:
//!
//! 1. shard invariance — identical reply streams at 1, 2, and 8 query
//!    shards over the same snapshot;
//! 2. swap invariance — a stress run that swaps generations every `N`
//!    batches (for different `N`, and with a live background rebuilder)
//!    must produce replies that replay bit-exactly from each reply's
//!    recorded generation;
//! 3. flatten exactness — a proptest that the [`RouteTable`] CDFs and
//!    sampling agree *bitwise* with the reference normalization in
//!    `Routing::set_distribution` on random graphs (the serving snapshot
//!    is the same distribution, only flattened).

use proptest::prelude::*;
use ssor::engine::{PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
use ssor::flow::Routing;
use ssor::graph::{generators, Path, RouteTable, RouteTableBuilder, VertexId};
use ssor::serve::{
    answer_batch_on, churned_source, BatchOutcome, ChurnModel, EpochCell, QueryPlane, Rebuilder,
    Request,
};
use std::sync::Arc;

const ALPHA: usize = 4;

fn base_pipeline() -> Pipeline {
    Pipeline::on(TopologySpec::Grid { rows: 3, cols: 3 })
        .template(TemplateSpec::FrtEnsemble { trees: 3 })
        .alpha(2)
}

fn churn() -> ChurnModel {
    ChurnModel::TemplateSeedDrift { master_seed: 2023 }
}

/// Generation `g`'s snapshot, rebuilt from scratch — the offline replay
/// anchor every stress test below compares against.
fn reference_table(g: u64) -> RouteTable {
    churned_source(Arc::new(PathSystemCache::new()), base_pipeline(), churn())(g)
}

fn requests(count: u64, n: u32) -> Vec<Request> {
    (0..count)
        .map(|i| Request {
            id: i,
            s: (i % n as u64) as VertexId,
            t: ((i + 1 + (i / n as u64)) % n as u64) as VertexId,
        })
        .map(|r| {
            if r.s == r.t {
                Request {
                    t: (r.t + 1) % n,
                    ..r
                }
            } else {
                r
            }
        })
        .collect()
}

#[test]
fn replies_identical_at_1_2_8_shards() {
    let table = Arc::new(reference_table(3));
    let reqs = requests(100, 9);
    let cell = Arc::new(EpochCell::new(Arc::clone(&table)));
    let reference = answer_batch_on(&table, ALPHA, 1, &reqs);
    for shards in [1usize, 2, 8] {
        let plane = QueryPlane::new(Arc::clone(&cell), ALPHA, shards);
        assert_eq!(
            plane.answer_batch(&reqs),
            reference,
            "reply stream differs at {shards} shards"
        );
    }
}

/// Drives `batches` query batches against a cell, publishing the next
/// generation every `swap_every` batches, and returns the reply stream.
fn run_with_swap_schedule(
    swap_every: usize,
    batches: usize,
    shards: usize,
    reqs: &[Request],
) -> Vec<BatchOutcome> {
    let mut source = churned_source(Arc::new(PathSystemCache::new()), base_pipeline(), churn());
    let cell = Arc::new(EpochCell::new(Arc::new(source(0))));
    let plane = QueryPlane::new(Arc::clone(&cell), ALPHA, shards);
    let mut generation = 0u64;
    let mut out = Vec::with_capacity(batches);
    for b in 0..batches {
        if b > 0 && b % swap_every == 0 {
            generation += 1;
            cell.publish(Arc::new(source(generation)));
        }
        out.push(plane.answer_batch(reqs));
    }
    out
}

#[test]
fn swap_timing_never_changes_a_generations_replies() {
    let reqs = requests(48, 9);
    // Two very different swap cadences (and shard counts) over the same
    // request stream.
    let fast = run_with_swap_schedule(2, 12, 8, &reqs);
    let slow = run_with_swap_schedule(5, 12, 2, &reqs);
    // Each batch replays bit-exactly from its recorded generation...
    let max_gen = 12 / 2;
    let tables: Vec<RouteTable> = (0..=max_gen).map(reference_table).collect();
    for stream in [&fast, &slow] {
        for batch in stream {
            let g = batch.replies[0].generation;
            assert!(batch.replies.iter().all(|r| r.generation == g));
            let reference = answer_batch_on(&tables[g as usize], ALPHA, 1, &reqs);
            assert_eq!(batch, &reference, "generation {g} does not replay");
        }
    }
    // ...so whenever the two schedules answered from the same generation,
    // their replies are identical even though swaps landed elsewhere.
    for (a, b) in fast.iter().zip(slow.iter()) {
        if a.replies[0].generation == b.replies[0].generation {
            assert_eq!(a, b);
        }
    }
    // Sanity: the cadences actually diverged at some point.
    assert!(
        fast.iter()
            .zip(slow.iter())
            .any(|(a, b)| a.replies[0].generation != b.replies[0].generation),
        "schedules never diverged; the cross-check above is vacuous"
    );
}

#[test]
fn live_rebuilder_stress_stays_replayable() {
    // A background rebuilder swapping as fast as it can build, while the
    // query plane answers batches — every reply must still replay from
    // its recorded generation.
    let mut source = churned_source(
        Arc::new(PathSystemCache::bounded(8)),
        base_pipeline(),
        churn(),
    );
    let cell = Arc::new(EpochCell::new(Arc::new(source(0))));
    let plane = QueryPlane::new(Arc::clone(&cell), ALPHA, 4);
    let max_generations = 6u64;
    let rb = Rebuilder::spawn(Arc::clone(&cell), source, Some(max_generations));
    let reqs = requests(64, 9);
    let mut batches = Vec::new();
    while cell.load().generation() < max_generations {
        batches.push(plane.answer_batch(&reqs));
    }
    batches.push(plane.answer_batch(&reqs));
    assert_eq!(rb.stop(), max_generations);
    let mut seen = std::collections::BTreeSet::new();
    for batch in &batches {
        let g = batch.replies[0].generation;
        seen.insert(g);
        assert_eq!(
            batch,
            &answer_batch_on(&reference_table(g), ALPHA, 1, &reqs),
            "generation {g} does not replay"
        );
    }
    assert!(seen.len() >= 2, "stress never observed a swap");
}

/// Reference selection mirroring `Routing`'s sampling arithmetic: `x`
/// scaled by the left-to-right weight total, first prefix reaching `x`,
/// clamped to the last entry.
fn reference_pick(weights: &[f64], u: f64) -> usize {
    let total: f64 = weights.iter().sum();
    let x = u * total;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if acc >= x {
            return i;
        }
    }
    weights.len() - 1
}

proptest! {
    /// On random connected-enough graphs, the flattened [`RouteTable`]
    /// must agree with [`Routing::set_distribution`] *bitwise*: same
    /// surviving support, CDF entries equal to the prefix sums of the
    /// normalized weights, and every sampled deviate selecting the same
    /// path as the reference scan.
    #[test]
    fn flattened_sampling_matches_routing_reference(
        n in 4usize..12,
        p in 0.3f64..0.9,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng);

        // Random per-pair distributions over up to 3 shortest paths,
        // including zero weights (dropped only after the total).
        let mut routing = Routing::new();
        let mut builder = RouteTableBuilder::new(n, 1);
        let mut pushed = Vec::new();
        for s in 0..n as VertexId {
            for t in 0..n as VertexId {
                if s == t {
                    continue;
                }
                let paths: Vec<Path> = ssor::graph::ksp::k_shortest_paths(&g, s, t, 3, &|_| 1.0);
                if paths.is_empty() {
                    continue; // disconnected pair
                }
                let dist: Vec<(Path, f64)> = paths
                    .into_iter()
                    .enumerate()
                    .map(|(i, path)| {
                        let w = if i > 0 && rng.gen::<f64>() < 0.25 {
                            0.0
                        } else {
                            0.1 + rng.gen::<f64>() * 3.0
                        };
                        (path, w)
                    })
                    .collect();
                routing.set_distribution(s, t, dist.clone());
                builder.push_pair(s, t, &dist);
                pushed.push((s, t));
            }
        }
        prop_assume!(!pushed.is_empty());
        let table = builder.finish();

        for &(s, t) in &pushed {
            let reference = routing.distribution(s, t).unwrap();
            let ids = table.path_ids(s, t).unwrap();
            let cdf = table.cdf(s, t).unwrap();
            prop_assert_eq!(ids.len(), reference.len(), "support mismatch at ({}, {})", s, t);

            // CDF = prefix sums of the reference's normalized weights,
            // bitwise (same left-to-right order, same arithmetic).
            let mut acc = 0.0f64;
            for (k, wp) in reference.iter().enumerate() {
                acc += wp.weight;
                prop_assert_eq!(
                    cdf[k].to_bits(), acc.to_bits(),
                    "cdf[{}] diverges at ({}, {})", k, s, t
                );
                // The flattened entry is the same path.
                prop_assert_eq!(
                    &table.store().materialize(ids[k]), &wp.path,
                    "path {} diverges at ({}, {})", k, s, t
                );
            }

            // Sampling: random deviates plus the exact boundaries.
            let weights: Vec<f64> = reference.iter().map(|wp| wp.weight).collect();
            let mut deviates: Vec<f64> = (0..16).map(|_| rng.gen::<f64>()).collect();
            deviates.extend(cdf.iter().copied().filter(|u| *u < 1.0));
            deviates.push(0.0);
            for u in deviates {
                let picked = table.sample_with(s, t, u).unwrap();
                let expect = ids[reference_pick(&weights, u)];
                prop_assert_eq!(
                    picked, expect,
                    "deviate {} picks differently at ({}, {})", u, s, t
                );
            }
        }
    }
}
