//! # ssor — Sparse Semi-Oblivious Routing
//!
//! A full Rust reproduction of *Sparse Semi-Oblivious Routing: Few Random
//! Paths Suffice* (Zuzic ⓡ Haeupler ⓡ Roeyskoe, PODC 2023,
//! [arXiv:2301.06647](https://arxiv.org/abs/2301.06647)).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] — multigraphs, generators, flows, matchings (`ssor-graph`);
//! * [`flow`] — demands, routings, congestion, LP solvers (`ssor-flow`);
//! * [`oblivious`] — Valiant, bit-fixing, FRT/Räcke, hop-constrained and
//!   baseline routings (`ssor-oblivious`);
//! * [`core`] — the paper's contribution: path systems, `α`-samples, the
//!   semi-oblivious router, the weak-routing process, completion time
//!   (`ssor-core`);
//! * [`lowerbound`] — the Section 8 constructions and the Lemma 8.1
//!   adversary (`ssor-lowerbound`);
//! * [`sim`] — the store-and-forward packet scheduler (`ssor-sim`);
//! * [`te`] — the SMORE traffic-engineering scenario (`ssor-te`);
//! * [`engine`] — the batched, rayon-parallel five-stage pipeline with
//!   memoized path systems (`ssor-engine`);
//! * [`serve`] — routing-as-a-service: the sharded query plane answering
//!   per-pair path samples from epoch-swapped `RouteTable` snapshots,
//!   with a background rebuilder for churn (`ssor-serve`).
//!
//! # Quickstart
//!
//! The [`engine`] pipeline chains all five stages declaratively:
//!
//! ```
//! use ssor::engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
//!
//! let cache = PathSystemCache::new();
//! let report = Pipeline::on(TopologySpec::Hypercube { dim: 4 })
//!     .template(TemplateSpec::Valiant)   // 2. oblivious routing
//!     .alpha(4)                          // 3. α paths per pair (Def. 5.2)
//!     .demand("hard", DemandSpec::BitReversal) // 4. demand arrives
//!     .run(&cache);                      // 5. rates adapt; report vs OPT
//! assert!(report.records[0].ratio.unwrap() < 8.0);
//! ```
//!
//! The same construction, driven by hand through the layer APIs:
//!
//! ```
//! use ssor::core::{sample, SemiObliviousRouter};
//! use ssor::flow::Demand;
//! use ssor::oblivious::{ObliviousRouting, ValiantRouting};
//! use rand::SeedableRng;
//!
//! // 1. An oblivious routing on the 4-dimensional hypercube.
//! let oblivious = ValiantRouting::new(4);
//!
//! // 2. Sample α = 4 candidate paths per pair (the SMORE sweet spot).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let paths = sample::alpha_sample(&oblivious, &sample::all_pairs(16), 4, &mut rng);
//!
//! // 3. Demand arrives; rates adapt optimally within the candidates.
//! let router = SemiObliviousRouter::new(oblivious.graph().clone(), paths);
//! let report = router.competitive_report(&Demand::hypercube_bit_reversal(4), &Default::default());
//! assert!(report.ratio < 8.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ssor_core as core;
pub use ssor_engine as engine;
pub use ssor_flow as flow;
pub use ssor_graph as graph;
pub use ssor_lowerbound as lowerbound;
pub use ssor_oblivious as oblivious;
pub use ssor_serve as serve;
pub use ssor_sim as sim;
pub use ssor_te as te;
