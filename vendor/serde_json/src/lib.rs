//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json): JSON
//! pretty-printing over the `serde` shim's [`serde::Value`] model.
//! Only the encoding direction is implemented — the experiment recorders
//! never parse JSON back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};

/// Errors this shim can produce (only non-finite numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error if the value contains a NaN or infinite number, which
/// JSON cannot represent.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a NaN or infinite number.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // Compact form: pretty-print then strip is wrong (strings may contain
    // whitespace), so walk again without indentation.
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out)?;
    Ok(out)
}

fn write_num(x: f64, out: &mut String) -> Result<(), Error> {
    if !x.is_finite() {
        return Err(Error(format!("non-finite number {x}")));
    }
    if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
    Ok(())
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, indent: usize, out: &mut String) -> Result<(), Error> {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => write_num(*x, out)?,
        Value::Str(s) => write_str(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner);
                    write_value(item, indent + 1, out)?;
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
            } else {
                out.push_str("{\n");
                for (i, (k, val)) in fields.iter().enumerate() {
                    out.push_str(&inner);
                    write_str(k, out);
                    out.push_str(": ");
                    write_value(val, indent + 1, out)?;
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
    Ok(())
}

fn write_compact(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => write_num(*x, out)?,
        Value::Str(s) => write_str(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_compact(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        alpha: usize,
        ratio: f64,
        name: String,
    }

    #[test]
    fn pretty_prints_rows() {
        let rows = vec![
            Row {
                alpha: 1,
                ratio: 2.5,
                name: "a\"b".into(),
            },
            Row {
                alpha: 2,
                ratio: 1.0,
                name: "c".into(),
            },
        ];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.starts_with("[\n"));
        assert!(s.contains("\"alpha\": 1"));
        assert!(s.contains("\"ratio\": 2.5"));
        assert!(s.contains("\\\"")); // escaped quote
        assert!(s.trim_end().ends_with(']'));
    }

    #[test]
    fn integers_print_without_fraction() {
        let s = to_string(&vec![1.0f64, 2.25]).unwrap();
        assert_eq!(s, "[1,2.25]");
    }

    #[test]
    fn non_finite_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn empty_containers() {
        let v: Vec<f64> = vec![];
        assert_eq!(to_string_pretty(&v).unwrap(), "[]");
    }
}
