//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8): the exact
//! API subset this workspace uses, with no external dependencies.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the few third-party crates it needs as minimal,
//! API-compatible implementations. This one provides:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] with the 0.8 trait layout
//!   (blanket `Rng` impl, object-safe `RngCore`);
//! * [`rngs::StdRng`] — deterministic xoshiro256++ seeded via SplitMix64
//!   (not the upstream ChaCha12, but the same contract: a seedable,
//!   reproducible, high-quality generator);
//! * [`rngs::mock::StepRng`] — the arithmetic-sequence mock;
//! * [`seq::SliceRandom`] — `choose` and Fisher–Yates `shuffle`.
//!
//! Streams differ from upstream `rand` (different core generator), so
//! seed-pinned expectations were re-baked when the workspace switched to
//! this shim; determinism per seed is fully preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: object-safe raw output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&chunk[..take]);
            i += take;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias over a 64-bit draw is irrelevant for the
                // experiment-scale spans used here.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

/// Values [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of the type.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (the rand 0.8 layout).
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a value from the standard distribution of `T`
    /// (`f64`/`f32` in `[0, 1)`, full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-width seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream rand.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let take = chunk.len().min(8);
            chunk.copy_from_slice(&bytes[..take]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Upstream rand 0.8 uses ChaCha12 here; the contract this workspace
    /// relies on — seedable, reproducible, statistically solid — is the
    /// same, but the streams differ, so cross-library reproduction of
    /// seed-pinned values is not expected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // xoshiro forbids the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Mock generators for tests.

        use crate::RngCore;

        /// Returns an arithmetic sequence: `start`, `start + increment`, …
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            inc: u64,
        }

        impl StepRng {
            /// Creates the sequence starting at `start` with the given
            /// increment.
            pub fn new(start: u64, increment: u64) -> Self {
                StepRng {
                    v: start,
                    inc: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.inc);
                out
            }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices: uniform choice and Fisher–Yates
    /// shuffle.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
        }
        // Both endpoints of a width-2 range appear.
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[rng.gen_range(0..2usize)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean far from 1/2");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn step_rng_sequence() {
        let mut r = StepRng::new(7, 13);
        assert_eq!(r.next_u64(), 7);
        assert_eq!(r.next_u64(), 20);
        assert_eq!(r.next_u64(), 33);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn dyn_rngcore_object_safe() {
        let mut rng = StdRng::seed_from_u64(6);
        let dynrng: &mut dyn RngCore = &mut rng;
        let _ = dynrng.next_u32();
        // Rng methods work through the trait object too.
        let _ = dynrng.gen_range(0..10usize);
    }
}
