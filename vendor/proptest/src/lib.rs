//! Offline stand-in for [`proptest`](https://docs.rs/proptest): the API
//! subset this workspace's property tests use, implemented over the
//! vendored `rand` shim.
//!
//! Differences from upstream, by design:
//!
//! * cases are generated from a **fixed deterministic seed sequence**, so
//!   every run (local or CI) exercises identical inputs;
//! * there is **no shrinking** — a failure reports the case index, and
//!   re-running reproduces it exactly;
//! * the default case count is 32 (upstream: 256) to keep debug-profile
//!   `cargo test` fast; tests that need more pass
//!   `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of values: the single-method core of this shim.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value and draws
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    rng.gen_range(lo - 1..hi) + 1
                } else {
                    // Full-width range: any value.
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($( ($($name:ident),+) ),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// The `any::<T>()` strategy over [`Arbitrary`] types.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A `Vec` strategy with length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors with length in `len` and elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Runs `f` on deterministically seeded cases until `cfg.cases` accepted
/// cases pass; panics on the first failure, naming the case seed.
pub fn run_test<F>(cfg: ProptestConfig, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cfg.cases.saturating_mul(20).max(200);
    while accepted < cfg.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest shim: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
                cfg.cases
            );
        }
        // Fixed, publicly visible seed schedule: case k uses seed
        // 0x5EED_0000 + k, so any failure is reproducible by index.
        let seed = 0x5EED_0000u64 + attempts as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        attempts += 1;
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed on case seed {seed:#x}: {msg}")
            }
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}: {:?} != {:?}", format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares deterministic property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(x in 0usize..10, (a, b) in strategy) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_test(cfg, |__pt_rng| {
                    $(let $p = $crate::Strategy::generate(&($s), __pt_rng);)+
                    let __pt_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    __pt_result
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::run_test;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y = {}", y);
        }

        #[test]
        fn tuples_and_maps_compose(
            (n, label) in (1usize..5).prop_map(|n| (n, format!("n={n}"))),
        ) {
            prop_assert_eq!(label, format!("n={}", n));
        }

        #[test]
        fn flat_map_builds_dependent_values(
            (n, i) in (2usize..10).prop_flat_map(|n| (Just(n), 0..n)),
        ) {
            prop_assert!(i < n, "dependent draw out of range");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn collection_vec_respects_length(v in crate::collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_endpoints() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(Strategy::generate(&(2usize..=4), &mut rng));
        }
        assert!(seen.contains(&2) && seen.contains(&4), "seen: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_seed() {
        run_test(ProptestConfig::with_cases(5), |rng| {
            let x = Strategy::generate(&(0usize..100), rng);
            prop_assert!(x >= 100, "forced failure {}", x);
            Ok(())
        });
    }
}
