//! Offline stand-in for [`rayon`](https://docs.rs/rayon): the API subset
//! this workspace uses — `par_iter()` / `into_par_iter()` followed by
//! `map(..).collect::<Vec<_>>()` or `for_each(..)` — implemented with
//! `std::thread::scope` and an atomic work counter.
//!
//! The build container has no crates.io access, so this shim stands in for
//! the real work-stealing pool. Semantics match where it matters:
//!
//! * results are returned **in input order**, regardless of which thread
//!   computed them;
//! * closures run concurrently on up to [`current_num_threads`] OS threads
//!   (tasks are claimed one at a time from an atomic counter, so uneven
//!   item costs still balance);
//! * a panic in any closure propagates to the caller.
//!
//! Unlike real rayon there is no global pool — threads are spawned per
//! call — so this is intended for coarse-grained items (an LP solve, a
//! per-pair path sampling), which is exactly how the workspace uses it.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel call may use: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive
/// integer (matching real rayon's global-pool override, and what the CI
/// determinism job pins), otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..n)` with dynamic load balancing and returns results in index
/// order. The engine of every combinator in this shim.
fn par_map_indexed<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for bucket in buckets.drain(..) {
        for (i, u) in bucket {
            slots[i] = Some(u);
        }
    }
    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

/// A parallel iterator over `&[T]` (items are `&T`).
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

/// A parallel iterator over an owned `Vec<T>` (items are `T`).
pub struct ParVec<T> {
    items: Vec<T>,
}

/// The result of [`ParSlice::map`], ready to collect.
pub struct MapSlice<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// The result of [`ParVec::map`], ready to collect.
pub struct MapVec<T, F> {
    items: Vec<T>,
    f: F,
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps each item (by reference) through `f` in parallel.
    pub fn map<U, F: Fn(&'a T) -> U>(self, f: F) -> MapSlice<'a, T, F> {
        MapSlice {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        par_map_indexed(self.items.len(), |i| f(&self.items[i]));
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> MapSlice<'a, T, F> {
    /// Collects the mapped items, preserving input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_ordered_vec(par_map_indexed(self.items.len(), |i| {
            (self.f)(&self.items[i])
        }))
    }
}

impl<T: Send> ParVec<T> {
    /// Maps each item (by value) through `f` in parallel.
    pub fn map<U, F: Fn(T) -> U>(self, f: F) -> MapVec<T, F> {
        MapVec {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        self.map(f).collect::<Vec<()>>();
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> MapVec<T, F> {
    /// Collects the mapped items, preserving input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        let n = self.items.len();
        let queue = Mutex::new(self.items.into_iter().enumerate());
        let pairs = par_map_indexed(n, |_| {
            let next = queue.lock().expect("queue lock").next();
            let (i, item) = next.expect("queue yields one item per slot");
            (i, (self.f)(item))
        });
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for (i, u) in pairs {
            slots[i] = Some(u);
        }
        C::from_ordered_vec(slots.into_iter().map(|s| s.expect("slot filled")).collect())
    }
}

/// Collections a parallel map can materialize into.
pub trait FromParallel<U> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_ordered_vec(v: Vec<U>) -> Self {
        v
    }
}

/// By-reference conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The item type (`&'a T`).
    type Item;
    /// The parallel iterator type.
    type Iter;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// By-value conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The item type.
    type Item;
    /// The parallel iterator type.
    type Iter;
    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParVec<usize>;
    fn into_par_iter(self) -> ParVec<usize> {
        ParVec {
            items: self.collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_by_value() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
        assert_eq!(lens.len(), 100);
    }

    #[test]
    fn range_par_iter() {
        let squares: Vec<usize> = (0..50).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
    }

    #[test]
    fn actually_runs_concurrently_when_multicore() {
        // With one worker this degenerates to sequential, which is fine;
        // the assertion only checks every task ran exactly once.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..256).collect();
        v.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 256);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panics_propagate() {
        // Skip the propagation check on single-core machines, where the
        // sequential fallback panics with the original message instead.
        if super::current_num_threads() <= 1 {
            panic!("parallel worker panicked (sequential fallback)");
        }
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<usize> = v
            .par_iter()
            .map(|&x| if x == 13 { panic!("boom") } else { x })
            .collect();
    }

    #[test]
    fn empty_input() {
        let v: Vec<usize> = vec![];
        let out: Vec<usize> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
