//! Offline stand-in for [`serde`](https://docs.rs/serde): the subset this
//! workspace uses — `#[derive(Serialize)]` on plain structs, serialized to
//! JSON by the sibling `serde_json` shim.
//!
//! The build container has no crates.io access, so instead of the real
//! serde data model this shim serializes through one concrete
//! JSON-shaped [`Value`]. That is all the experiment recorders need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the generated `impl serde::Serialize for ...` resolve even inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A JSON-shaped value: the single data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can be converted to a [`Value`].
///
/// Derivable on structs with named fields via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts `self` to the JSON-shaped data model.
    fn to_value(&self) -> Value;
}

macro_rules! ser_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}
ser_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3usize.to_value(), Value::Num(3.0));
        assert_eq!((-1i32).to_value(), Value::Num(-1.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_string().to_value(), Value::Str("hi".into()));
        assert_eq!(None::<f64>.to_value(), Value::Null);
    }

    #[test]
    fn containers_serialize() {
        let v = vec![1u32, 2, 3];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)])
        );
        assert_eq!(
            (1u32, "a".to_string()).to_value(),
            Value::Array(vec![Value::Num(1.0), Value::Str("a".into())])
        );
    }

    #[test]
    fn derive_on_named_struct() {
        #[derive(Serialize)]
        struct Row {
            alpha: usize,
            ratio: f64,
            label: String,
        }
        let r = Row {
            alpha: 4,
            ratio: 1.5,
            label: "x".into(),
        };
        assert_eq!(
            r.to_value(),
            Value::Object(vec![
                ("alpha".into(), Value::Num(4.0)),
                ("ratio".into(), Value::Num(1.5)),
                ("label".into(), Value::Str("x".into())),
            ])
        );
    }

    #[test]
    fn derive_handles_generic_field_types() {
        #[derive(Serialize)]
        struct Nested {
            rows: Vec<(u32, f64)>,
            opt: Option<bool>,
        }
        let n = Nested {
            rows: vec![(1, 0.5)],
            opt: Some(false),
        };
        match n.to_value() {
            Value::Object(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "rows");
                assert_eq!(fields[1].0, "opt");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
