//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` for structs
//! with named fields, written against `proc_macro` directly (no syn/quote —
//! the build container has no crates.io access).
//!
//! The generated impl converts the struct to `serde::Value::Object` with
//! fields in declaration order, which is exactly what the experiment
//! recorders serialize.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields.
///
/// Limitations (by design, this is a shim): tuple/unit structs, enums,
/// generic parameters, and `#[serde(...)]` attributes are not supported.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, body) = parse_struct(&tokens);
    let fields = parse_named_fields(body);
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!("fields.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n")
        })
        .collect();
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n\
         let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
         {pushes}\
         serde::Value::Object(fields)\n\
         }}\n\
         }}\n"
    );
    out.parse().expect("generated impl parses")
}

/// Finds the struct name and its `{ ... }` body group, skipping attributes
/// and visibility.
fn parse_struct(tokens: &[TokenTree]) -> (String, TokenStream) {
    let mut i = 0;
    // Skip outer attributes: `#` followed by a bracket group.
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    // Skip `pub`, `pub(...)`.
    while let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        } else {
            break;
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        other => panic!("derive(Serialize) shim supports only structs, got {other:?}"),
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, got {other:?}"),
    };
    for t in &tokens[i + 2..] {
        if let TokenTree::Group(g) = t {
            if g.delimiter() == Delimiter::Brace {
                return (name, g.stream());
            }
        }
    }
    panic!("derive(Serialize) shim supports only structs with named fields");
}

/// Extracts field names from a named-field struct body: identifiers
/// immediately followed by `:` at angle-bracket depth 0, at positions that
/// start a field (beginning, or right after a depth-0 comma), skipping
/// attributes and `pub`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut angle_depth: i64 = 0;
    let mut at_field_start = true;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                at_field_start = true;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '#' && at_field_start => {
                // Field attribute: skip `#[...]`.
                i += 2;
            }
            TokenTree::Ident(id) if at_field_start && id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if at_field_start => {
                if let Some(TokenTree::Punct(p)) = tokens.get(i + 1) {
                    if p.as_char() == ':' {
                        fields.push(id.to_string());
                    }
                }
                at_field_start = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    fields
}
