//! The Section 8 lower bound, live: build `C(n, k)` (Figure 1), sample a
//! sparse path system, and let the Lemma 8.1 adversary find the
//! permutation demand that forces congestion `k / α` while the optimum
//! routes it with congestion 1.
//!
//! Run with: `cargo run --release --example lower_bound`

use rand::SeedableRng;
use ssor::core::sample::alpha_sample;
use ssor::flow::solver::{min_congestion_restricted, SolveOptions};
use ssor::lowerbound::{
    c_graph, certify_hitting, find_adversarial_demand, k_for_alpha, optimal_witness,
};
use ssor::oblivious::KspRouting;

fn main() {
    let n = 64;
    let alpha = 1usize;
    let k = k_for_alpha(n, alpha); // floor(n^{1/2α}) = 8
    let (g, meta) = c_graph(n, k);
    println!(
        "== Lemma 8.1 on C({n}, {k}) (Figure 1): {} vertices, {} edges ==\n",
        g.n(),
        g.m()
    );

    // Any sparse path system will do; here, α paths per cross pair.
    let pairs: Vec<(u32, u32)> = meta
        .left_leaves
        .iter()
        .flat_map(|&s| meta.right_leaves.iter().map(move |&t| (s, t)))
        .collect();
    let ksp = KspRouting::new(&g, alpha.max(2));
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let paths = alpha_sample(&ksp, &pairs, alpha, &mut rng);
    println!(
        "installed an α = {alpha} sparse system over all {} cross pairs",
        pairs.len()
    );

    // The adversary: double pigeonhole + Hall matching.
    let adv = find_adversarial_demand(&meta, &paths, alpha);
    println!(
        "adversary pinned hitting set {:?} and matched {} source-target pairs",
        adv.hitting_set, adv.matched
    );
    certify_hitting(&paths, &adv).expect("every candidate path crosses the hitting set");
    println!("certified: every candidate path of the demand crosses the pinned middles\n");

    // Stage 4 on the trapped demand.
    let sol = min_congestion_restricted(
        &g,
        &adv.demand,
        paths.candidates(),
        &SolveOptions::with_eps(0.02),
    );
    let opt = optimal_witness(&g, &meta, &adv.demand);
    println!(
        "semi-oblivious congestion : {:.3} (certified ≥ {:.3})",
        sol.congestion, adv.congestion_lower_bound
    );
    println!(
        "offline integral optimum  : {} (distinct middles witness)",
        opt.congestion(&g)
    );
    println!(
        "\n=> an α-sparse system on C(n, k) cannot beat k/α = {:.1}; sparsity has a price,\n   and Lemma 2.6 shows the α-sample trade-off is within a constant of optimal.",
        adv.congestion_lower_bound
    );
}
