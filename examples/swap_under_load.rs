//! Swap-under-load stress for the serving plane (ISSUE 7): a background
//! [`Rebuilder`] churns template generations and epoch-swaps them in
//! while query threads hammer the [`QueryPlane`] — and every reply must
//! still replay **bit-exactly** from the generation recorded in it.
//!
//! ```text
//! cargo run --release --example swap_under_load
//! ```
//!
//! The run reports per-query latency percentiles for a quiet phase (no
//! swaps) and a churn phase (rebuilder swapping continuously): the epoch
//! protocol promises the p99 of the churn phase stays in the same regime
//! — readers take one brief lock per *swap*, never per query.

use ssor::engine::{PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
use ssor::graph::VertexId;
use ssor::serve::{
    answer_batch_on, churned_source, BatchOutcome, ChurnModel, EpochCell, QueryPlane, Rebuilder,
    Request,
};
use std::sync::Arc;
use std::time::Instant;

const ALPHA: usize = 4;
const BATCH: u64 = 256;
const QUIET_BATCHES: usize = 60;
const CHURN_GENERATIONS: u64 = 8;

fn base_pipeline() -> Pipeline {
    Pipeline::on(TopologySpec::Grid { rows: 4, cols: 4 })
        .template(TemplateSpec::FrtEnsemble { trees: 4 })
        .alpha(3)
}

fn churn() -> ChurnModel {
    ChurnModel::TemplateSeedDrift {
        master_seed: 0x10AD,
    }
}

fn requests(n: u32) -> Vec<Request> {
    (0..BATCH)
        .map(|i| {
            let s = (i * 7 % n as u64) as VertexId;
            let t = ((i * 7 + 1 + i / n as u64) % n as u64) as VertexId;
            Request {
                id: i,
                s,
                t: if t == s { (t + 1) % n } else { t },
            }
        })
        .collect()
}

/// Answers `batches` batches, returning every reply batch plus the
/// per-batch wall times in nanoseconds.
fn drive(plane: &QueryPlane, reqs: &[Request], batches: usize) -> (Vec<BatchOutcome>, Vec<u128>) {
    let mut replies = Vec::with_capacity(batches);
    let mut nanos = Vec::with_capacity(batches);
    for _ in 0..batches {
        // Example prints latency to stderr; never serialized. lint: allow(wall_clock)
        let start = Instant::now();
        replies.push(plane.answer_batch(reqs));
        nanos.push(start.elapsed().as_nanos());
    }
    (replies, nanos)
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let i = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[i]
}

fn report(label: &str, mut nanos: Vec<u128>) -> (u128, u128) {
    nanos.sort_unstable();
    let (p50, p99) = (percentile(&nanos, 0.5), percentile(&nanos, 0.99));
    println!(
        "  {label:<14} batches={:<4} p50={:>9} ns  p99={:>9} ns  ({} queries/batch)",
        nanos.len(),
        p50,
        p99,
        BATCH
    );
    (p50, p99)
}

fn main() {
    println!("swap-under-load: sharded query plane vs live epoch swaps");
    let mut source = churned_source(
        Arc::new(PathSystemCache::bounded(8)),
        base_pipeline(),
        churn(),
    );
    let cell = Arc::new(EpochCell::new(Arc::new(source(0))));
    let plane = QueryPlane::new(Arc::clone(&cell), ALPHA, 4);
    let reqs = requests(16);

    // Phase 1 — quiet: no swaps in flight.
    let (quiet_replies, quiet_nanos) = drive(&plane, &reqs, QUIET_BATCHES);
    let (_, quiet_p99) = report("quiet", quiet_nanos);

    // Phase 2 — churn: the rebuilder swaps generations as fast as it can
    // construct them while the same plane keeps answering.
    let rb = Rebuilder::spawn(Arc::clone(&cell), source, Some(CHURN_GENERATIONS));
    let mut churn_replies = Vec::new();
    let mut churn_nanos = Vec::new();
    while cell.load().generation() < CHURN_GENERATIONS {
        let (mut r, mut t) = drive(&plane, &reqs, 5);
        churn_replies.append(&mut r);
        churn_nanos.append(&mut t);
    }
    let built = rb.stop();
    let (_, churn_p99) = report("under-churn", churn_nanos);
    println!("  generations swapped in while serving: {built}");

    // Verification — every batch from both phases replays bit-exactly
    // from the generation recorded in its replies.
    let mut replay = churned_source(Arc::new(PathSystemCache::new()), base_pipeline(), churn());
    let mut generations = std::collections::BTreeMap::new();
    let mut verified = 0usize;
    for batch in quiet_replies.iter().chain(churn_replies.iter()) {
        let g = batch.replies[0].generation;
        assert!(
            batch.replies.iter().all(|r| r.generation == g),
            "batch answered from mixed generations"
        );
        assert_eq!(batch.unroutable, 0, "all-pairs snapshots route everything");
        let reference = generations.entry(g).or_insert_with(|| replay(g));
        assert_eq!(
            batch,
            &answer_batch_on(reference, ALPHA, 1, &reqs),
            "generation {g} does not replay bit-exactly"
        );
        verified += batch.replies.len();
    }
    println!(
        "  verified {verified} replies across {} generations: all bit-exact",
        generations.len()
    );
    assert!(generations.len() >= 2, "churn phase never observed a swap");

    // The epoch protocol's promise, loosely checked: churn-phase p99 in
    // the same order of magnitude as quiet p99 (readers never block on a
    // swap; allow generous slack for CI noise and cold caches).
    assert!(
        churn_p99 < quiet_p99.max(1) * 50,
        "churn p99 ({churn_p99} ns) blew up vs quiet p99 ({quiet_p99} ns)"
    );
    println!("swap-under-load stress PASSED");
}
