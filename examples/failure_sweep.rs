//! Failure sweep + demand stream: the dynamic-scenario subsystem end to
//! end.
//!
//! Part 1 runs a random-link-failure sweep on a leaf–spine Clos fabric:
//! per trial, two links die (`SubTopology` mask — no graph rebuild),
//! candidate paths crossing them are dropped, and the demand re-routes
//! on the survivors with a warm-started solve, compared against the
//! certified optimum of the *damaged* topology.
//!
//! Part 2 streams a diurnal gravity demand over a Waxman WAN through the
//! same sampled path system, warm-starting every step, and reports the
//! per-step quality ratio against a cold-solve oracle plus the iteration
//! savings.
//!
//! Run with: `cargo run --release --example failure_sweep`

use ssor::engine::{
    DemandSpec, PathSystemCache, Pipeline, StreamModel, TemplateSpec, TopologySpec,
};
use ssor::flow::SolveOptions;

fn main() {
    let cache = PathSystemCache::new();

    println!("== part 1: failure sweep on a leaf-spine Clos fabric ==\n");
    let fabric = TopologySpec::LeafSpine {
        spines: 4,
        leaves: 6,
        hosts_per_leaf: 2,
        uplink_mult: 2,
    };
    let pipeline = Pipeline::on(fabric)
        .template(TemplateSpec::Ksp { k: 6 })
        .alpha(4)
        .seed(7)
        .solve_options(SolveOptions::with_eps(0.1))
        .demand(
            "host-permutation",
            DemandSpec::RandomPermutation { seed: 3 },
        );

    let sweep = pipeline.failure_sweep(&cache, 2, 6);
    println!("trial  failed-links  retries  coverage  congestion  vs-cold   ratio-vs-damaged-OPT");
    for rec in &sweep.trials {
        println!(
            "{:>5}  {:>12}  {:>7}  {:>7.0}%  {:>10.4}  {:>7.4}  {:>12.3}",
            rec.trial,
            format!("{:?}", rec.failed_edges),
            rec.attempts,
            rec.coverage * 100.0,
            rec.congestion.unwrap_or(0.0),
            rec.congestion.unwrap_or(0.0) / rec.cold_congestion.unwrap_or(1.0).max(1e-300),
            rec.ratio.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nmean coverage {:.0}%, stranded mass {:.4}, worst ratio vs damaged OPT {:.3}, wall {:?}\n",
        sweep.mean_coverage() * 100.0,
        sweep.total_stranded(),
        sweep.worst_ratio().unwrap_or(f64::NAN),
        sweep.wall
    );

    println!("== part 2: diurnal demand stream on a Waxman WAN ==\n");
    let wan = Pipeline::on(TopologySpec::Waxman {
        n: 24,
        a: 0.4.into(),
        b: 0.25.into(),
        seed: 5,
    })
    .alpha(4)
    .seed(5)
    .solve_options(SolveOptions::with_eps(0.1));
    let model = StreamModel::DiurnalGravity {
        total: 30.0.into(),
        period: 8,
        seed: 9,
    };

    let warm = wan.stream(&cache, 16, &model);
    println!("step  siz(d)   congestion  iters  cold-iters  warm/cold");
    for s in &warm.steps {
        println!(
            "{:>4}  {:>6.2}  {:>10.4}  {:>5}  {:>10}  {:>9.4}",
            s.step,
            s.size,
            s.congestion,
            s.iterations,
            s.cold_iterations.unwrap_or(0),
            s.vs_cold.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nwarm iterations {} vs cold {} ({:.1}x fewer), worst quality ratio {:.4}",
        warm.total_iterations(),
        warm.cold_total_iterations().unwrap_or(0),
        warm.cold_total_iterations().unwrap_or(0) as f64 / warm.total_iterations().max(1) as f64,
        warm.worst_vs_cold().unwrap_or(f64::NAN),
    );

    // The acceptance gate the CI smoke job checks: warm starts must keep
    // certified quality while doing less solver work.
    assert!(
        warm.worst_vs_cold().unwrap_or(f64::INFINITY) < 1.2,
        "warm quality drifted from the cold oracle"
    );
    assert!(
        warm.total_iterations() <= warm.cold_total_iterations().unwrap_or(0),
        "warm starts did more work than cold solves"
    );
    assert!(sweep.mean_coverage() > 0.5, "fabric lost too much coverage");
    println!("\nOK: warm-started dynamic scenarios are certified and cheaper.");
}
