//! The Section 5.3 proof, run as a program: the weak-routing edge-deletion
//! process, its Lemma 5.10 invariants, and the Lemma 5.8 weak-to-strong
//! loop that turns "route half the demand" into "route all of it".
//!
//! Run with: `cargo run --release --example weak_routing_process`

use rand::SeedableRng;
use ssor::core::special::{process_weak_router, weak_to_strong};
use ssor::core::weak::{sample_multiset, verify_lemma_5_10, weak_route};
use ssor::core::PathSystem;
use ssor::flow::Demand;
use ssor::oblivious::{ObliviousRouting, ValiantRouting};

fn main() {
    let dim = 5;
    let valiant = ValiantRouting::new(dim);
    let d = Demand::hypercube_complement(dim);
    println!(
        "== Section 5.3 live: hypercube n = {}, complement demand (siz = {}) ==\n",
        1 << dim,
        d.size()
    );

    let alpha = 5;
    let mut rng = rand::rngs::StdRng::seed_from_u64(53);
    let samples = sample_multiset(&valiant, &d.support(), |_, _| alpha, &mut rng);
    println!("sampled α = {alpha} candidate paths per pair (multiplicities kept)\n");

    println!(
        "{:>6} {:>14} {:>18} {:>10}",
        "γ", "routed frac", "overcong. edges", "success"
    );
    for gamma in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let out = weak_route(valiant.graph(), &samples, &d, gamma);
        verify_lemma_5_10(valiant.graph(), &d, &out).expect("Lemma 5.10 invariants");
        println!(
            "{gamma:>6.1} {:>14.3} {:>18} {:>10}",
            out.routed_fraction,
            out.overcongested_edges(),
            out.succeeded()
        );
    }
    println!("\n(the sharp γ threshold is the Lemma 5.6 concentration; every row passed");
    println!(" the machine-checked Lemma 5.10 invariants: d' ≤ d, cong ≤ γ, siz = D - ΣΔ)\n");

    // Lemma 5.8: repeat weak routing until everything is covered.
    let gamma = 8.0;
    let mut ps = PathSystem::new();
    for paths in samples.values() {
        for p in paths {
            ps.insert(p.clone());
        }
    }
    let mut weak = process_weak_router(valiant.graph(), &samples, gamma);
    let out = weak_to_strong(valiant.graph(), &d, &ps, &mut weak);
    println!("-- Lemma 5.8 weak-to-strong at γ = {gamma} --");
    println!(
        "covered {:.1}% of the demand in {} round(s), final congestion {:.3}",
        100.0 * out.covered.size() / d.size(),
        out.rounds,
        out.congestion
    );
    println!(
        "budget from the reduction: O(γ log m) = {:.1}",
        4.0 * gamma * (valiant.graph().m() as f64).ln()
    );
    println!("\n=> the probabilistic method of the paper is not just provable — it runs.");
}
