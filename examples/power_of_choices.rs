//! The "power of a few random choices" (Section 1.1): sweep the sparsity
//! `α` and watch the competitive ratio collapse exponentially.
//!
//! Deterministic single-path routing (α = 1, greedy bit-fixing) suffers
//! `Θ(sqrt(n))` congestion on the bit-reversal permutation `[KKT91]`; each
//! extra sampled path improves the ratio polynomially (Theorem 2.5).
//!
//! Run with: `cargo run --release --example power_of_choices`

use rand::SeedableRng;
use ssor::core::{sample, SemiObliviousRouter};
use ssor::flow::{Demand, SolveOptions};
use ssor::oblivious::{BitFixingRouting, ObliviousRouting, ValiantRouting};

fn main() {
    let dim = 6;
    let n = 1usize << dim;
    println!("== power of random choices: hypercube n = {n}, bit-reversal demand ==\n");

    let demand = Demand::hypercube_bit_reversal(dim);
    let opts = SolveOptions::with_eps(0.05);

    // The deterministic strawman: one fixed path per pair.
    let bitfix = BitFixingRouting::new(dim);
    let det_cong = bitfix.congestion(&demand);
    println!("deterministic bit-fixing (1 path): congestion {det_cong:.1}  <- Θ(sqrt(n)) barrier\n");

    println!("{:>5} {:>12} {:>10}", "α", "congestion", "ratio(≤)");
    let valiant = ValiantRouting::new(dim);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for alpha in [1usize, 2, 3, 4, 6, 8] {
        let ps = sample::alpha_sample(&valiant, &demand.support(), alpha, &mut rng);
        let router = SemiObliviousRouter::new(valiant.graph().clone(), ps);
        let rep = router.competitive_report(&demand, &opts);
        println!("{alpha:>5} {:>12.3} {:>9.2}x", rep.semi_oblivious, rep.ratio);
    }
    println!("\n=> each additional sampled path buys a polynomial improvement;");
    println!("   α ≈ 4 already sits near the oblivious optimum (the SMORE sweet spot).");
}
