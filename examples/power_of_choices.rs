//! The "power of a few random choices" (Section 1.1): sweep the sparsity
//! `α` and watch the competitive ratio collapse exponentially.
//!
//! Deterministic single-path routing (α = 1, greedy bit-fixing) suffers
//! `Θ(sqrt(n))` congestion on the bit-reversal permutation `[KKT91]`; each
//! extra sampled path improves the ratio polynomially (Theorem 2.5).
//!
//! The sweep shares one `ssor-engine` cache, so the offline OPT is solved
//! once for all six `α` values.
//!
//! Run with: `cargo run --release --example power_of_choices`

use ssor::engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
use ssor::flow::{Demand, SolveOptions};
use ssor::oblivious::{BitFixingRouting, ObliviousRouting};

fn main() {
    let dim = 6;
    let n = 1usize << dim;
    println!("== power of random choices: hypercube n = {n}, bit-reversal demand ==\n");

    // The deterministic strawman: one fixed path per pair.
    let demand = Demand::hypercube_bit_reversal(dim);
    let det_cong = BitFixingRouting::new(dim).congestion(&demand);
    println!(
        "deterministic bit-fixing (1 path): congestion {det_cong:.1}  <- Θ(sqrt(n)) barrier\n"
    );

    let cache = PathSystemCache::new();
    let base = Pipeline::on(TopologySpec::Hypercube { dim })
        .template(TemplateSpec::Valiant)
        .seed(7)
        .solve_options(SolveOptions::with_eps(0.05))
        .demand("bit-reversal", DemandSpec::BitReversal);

    println!("{:>5} {:>12} {:>10}", "α", "congestion", "ratio(≤)");
    for alpha in [1usize, 2, 3, 4, 6, 8] {
        let rec = &base.clone().alpha(alpha).run(&cache).records[0];
        println!(
            "{alpha:>5} {:>12.3} {:>9.2}x",
            rec.congestion,
            rec.ratio.unwrap()
        );
    }
    println!("\n=> each additional sampled path buys a polynomial improvement;");
    println!("   α ≈ 4 already sits near the oblivious optimum (the SMORE sweet spot).");
}
