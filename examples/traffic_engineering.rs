//! SMORE-style traffic engineering (Section 1.1 consequence): a Waxman
//! WAN, gravity demands drifting over a simulated day, and a fixed
//! `α = 4` Räcke-sampled candidate set whose *rates* re-optimize every
//! snapshot.
//!
//! Run with: `cargo run --release --example traffic_engineering`

use rand::SeedableRng;
use ssor::core::sample::alpha_sample;
use ssor::flow::SolveOptions;
use ssor::oblivious::{RaeckeOptions, RaeckeRouting};
use ssor::te::{evaluate_snapshots, fail_link, GravityModel, Wan};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(18);
    let wan = Wan::random(20, &mut rng);
    println!(
        "== SMORE on a Waxman WAN: {} routers, {} links (capacities as parallel edges: m = {}) ==\n",
        wan.n(),
        wan.link_count(),
        wan.graph.m()
    );

    // A day of gravity-model traffic, one snapshot per "hour".
    let model = GravityModel::sample(wan.n(), 60.0, &mut rng);
    let snapshots: Vec<_> = (0..8)
        .map(|t| model.snapshot(t * 3, 24, &mut rng))
        .collect();

    // Fixed candidate paths: α = 4 samples from Räcke's oblivious routing
    // (exactly SMORE's path selection).
    let raecke = RaeckeRouting::build(&wan.graph, &RaeckeOptions::default(), &mut rng);
    let pairs = snapshots[0].support();
    let paths = alpha_sample(&raecke, &pairs, 4, &mut rng);
    println!(
        "installed candidate paths: sparsity {} over {} pairs\n",
        paths.sparsity(),
        pairs.len()
    );

    let opts = SolveOptions::with_eps(0.08);
    println!(
        "{:>9} {:>12} {:>10} {:>9}",
        "snapshot", "max-util", "opt(lb)", "ratio(≤)"
    );
    let reports = evaluate_snapshots(&wan, &paths, &snapshots, &opts);
    for r in &reports {
        println!(
            "{:>9} {:>12.3} {:>10.3} {:>8.2}x",
            r.snapshot, r.congestion, r.opt_lower_bound, r.ratio
        );
    }

    // Robustness drill: fail the first link whose loss keeps the WAN
    // connected.
    println!("\n-- link failure drill --");
    for link in 0..wan.link_count() {
        let kept: Vec<(u32, u32)> = wan
            .graph
            .edges()
            .filter(|(e, _)| !wan.replicas[link].contains(e))
            .map(|(_, uv)| uv)
            .collect();
        if !ssor::graph::Graph::from_edges(wan.graph.n(), &kept).is_connected() {
            continue;
        }
        let rep = fail_link(&wan, &paths, &snapshots[0], link, &opts);
        println!(
            "failed link {}: {:.1}% of pairs still covered; surviving congestion {:?} (opt lb {:.3})",
            rep.link,
            rep.coverage * 100.0,
            rep.congestion.map(|c| (c * 1000.0).round() / 1000.0),
            rep.opt_lower_bound
        );
        break;
    }
    println!("\n=> rate re-optimization on a fixed sparse path set tracks the moving optimum,");
    println!("   and the diversity of sampled paths gives failure robustness for free.");
}
