//! Completion time (Section 7): hop-scale ladders, the congestion +
//! dilation objective, and an actual packet-level schedule to back the
//! objective up.
//!
//! On a barbell graph, pure congestion minimization happily sends clique
//! traffic around the long handle; the completion-time router must not.
//!
//! Run with: `cargo run --release --example completion_time`

use rand::SeedableRng;
use ssor::core::completion::{CompletionOptions, CompletionTimeRouter};
use ssor::flow::rounding::round_routing;
use ssor::flow::{Demand, SolveOptions};
use ssor::graph::generators;
use ssor::sim::{simulate_routing, Scheduler, SimConfig};

fn main() {
    let g = generators::barbell(8, 10);
    println!(
        "== completion time on a barbell: two 8-cliques, 10-hop handle (n = {}, m = {}) ==\n",
        g.n(),
        g.m()
    );

    // Demand: heavy intra-clique chatter plus one cross-handle pair.
    let mut d = Demand::new();
    for i in 0..7u32 {
        d.set(i, i + 1, 1.0);
        d.set(8 + i, 8 + i + 1, 1.0);
    }
    d.set(0, 8, 1.0); // must cross the handle
    println!("demand: {} pairs, siz(d) = {}", d.support_len(), d.size());

    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let router =
        CompletionTimeRouter::build(&g, &d.support(), &CompletionOptions::default(), &mut rng);
    println!(
        "hop-scale ladder: {:?}; union sparsity {}",
        router.scales(),
        router.path_system().sparsity()
    );

    let route = router.route(&d, &SolveOptions::with_eps(0.05));
    println!(
        "\nchosen scale h = {} -> congestion {:.2}, dilation {}, objective {:.2}",
        router.scales()[route.scale_index],
        route.congestion,
        route.dilation,
        route.objective()
    );

    // Schedule the rounded routing with random ranks and measure makespan.
    let rounded = round_routing(&g, &route.routing, &d, 16, &mut rng);
    for sched in [
        Scheduler::Fifo,
        Scheduler::FarthestToGo,
        Scheduler::RandomRank,
    ] {
        let out = simulate_routing(
            &g,
            &rounded.routing,
            &SimConfig {
                scheduler: sched,
                seed: 5,
            },
        );
        println!(
            "schedule [{sched:?}]: makespan {} vs C + D = {} + {} (overhead {:.2}x)",
            out.makespan,
            out.congestion,
            out.dilation,
            out.overhead()
        );
    }
    println!("\n=> minimizing congestion + dilation over the hop-laddered samples keeps the");
    println!("   actual packet completion time within a small constant of the objective.");
}
