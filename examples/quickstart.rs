//! Quickstart: the paper's construction in five declarative steps.
//!
//! Describes the whole pipeline — topology, oblivious template, sparse
//! `α`-sample (Definition 5.2), demand, rate adaptation — as one
//! `ssor-engine` configuration, runs it, and prints the competitive
//! report (Stage 5).
//!
//! Run with: `cargo run --release --example quickstart`

use ssor::engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
use ssor::flow::{Demand, SolveOptions};

fn main() {
    let dim = 6;
    let n = 1usize << dim;
    println!("== ssor quickstart: {dim}-dimensional hypercube (n = {n}) ==\n");

    let alpha = 4;
    let cache = PathSystemCache::new();
    let pipeline = Pipeline::on(TopologySpec::Hypercube { dim })
        .template(TemplateSpec::Valiant)
        .alpha(alpha)
        .seed(2023)
        .solve_options(SolveOptions::with_eps(0.05))
        .demand("bit-reversal", DemandSpec::BitReversal);

    // Stages 1-3: graph + oblivious routing + sparse sample (parallel
    // across pairs, cached by (topology, template, alpha, seed)).
    let prepared = pipeline.prepare(&cache);
    println!(
        "sampled a path system: sparsity {} (α = {alpha}), {} paths total",
        prepared.paths().sparsity(),
        prepared.paths().total_paths()
    );

    // Stage 3 (demand side): adversarial demand revealed (bit-reversal
    // permutation — the classic hard case for deterministic routing).
    let demand = Demand::hypercube_bit_reversal(dim);
    println!(
        "demand: bit-reversal permutation, siz(d) = {}",
        demand.size()
    );

    // Stages 4-5: adapt rates within the candidates, compare to OPT.
    let report = pipeline.run(&cache);
    let rec = &report.records[0];
    println!("\nsemi-oblivious congestion : {:.3}", rec.congestion);
    println!(
        "offline OPT (lower bound) : {:.3}",
        rec.opt_lower_bound.unwrap()
    );
    println!(
        "offline OPT (upper bound) : {:.3}",
        rec.opt_upper_bound.unwrap()
    );
    println!("competitive ratio (≤)     : {:.2}x", rec.ratio.unwrap());

    // Contrast: the oblivious routing itself (no rate adaptation).
    let template = prepared.template().expect("congestion objective");
    let oblivious_cong = template.congestion(&demand);
    println!("\nfull Valiant (oblivious)  : {oblivious_cong:.3}");
    println!(
        "\n=> {alpha} random paths per pair retain near-oblivious quality with a\n   tiny, pre-installable path system — the paper's headline."
    );
}
