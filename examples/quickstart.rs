//! Quickstart: the paper's construction in five steps.
//!
//! Builds an oblivious routing, samples a sparse path system from it
//! (Definition 5.2), reveals a demand, adapts rates (Stage 4), and prints
//! the competitive report (Stage 5).
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use ssor::core::{sample, SemiObliviousRouter};
use ssor::flow::{Demand, SolveOptions};
use ssor::oblivious::{ObliviousRouting, ValiantRouting};

fn main() {
    let dim = 6;
    let n = 1usize << dim;
    println!("== ssor quickstart: {dim}-dimensional hypercube (n = {n}) ==\n");

    // Stage 1-2: graph + oblivious routing + sparse sample.
    let oblivious = ValiantRouting::new(dim);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2023);
    let alpha = 4;
    let paths = sample::alpha_sample(&oblivious, &sample::all_pairs(n), alpha, &mut rng);
    println!(
        "sampled a path system: sparsity {} (α = {alpha}), {} paths total",
        paths.sparsity(),
        paths.total_paths()
    );

    let router = SemiObliviousRouter::new(oblivious.graph().clone(), paths);

    // Stage 3: adversarial demand revealed (bit-reversal permutation — the
    // classic hard case for deterministic routing).
    let demand = Demand::hypercube_bit_reversal(dim);
    println!("demand: bit-reversal permutation, siz(d) = {}", demand.size());

    // Stage 4-5: adapt rates within the candidates, compare to OPT.
    let opts = SolveOptions::with_eps(0.05);
    let report = router.competitive_report(&demand, &opts);
    println!("\nsemi-oblivious congestion : {:.3}", report.semi_oblivious);
    println!("offline OPT (lower bound) : {:.3}", report.opt_lower_bound);
    println!("offline OPT (upper bound) : {:.3}", report.opt_upper_bound);
    println!("competitive ratio (≤)     : {:.2}x", report.ratio);

    // Contrast: the oblivious routing itself (no rate adaptation).
    let oblivious_cong = oblivious.congestion(&demand);
    println!("\nfull Valiant (oblivious)  : {:.3}", oblivious_cong);
    println!(
        "\n=> {alpha} random paths per pair retain near-oblivious quality with a\n   tiny, pre-installable path system — the paper's headline."
    );
}
