//! Acceptance harness for the sweep layer (ISSUE 6): a **1000-cell
//! failure sweep** must produce bit-identical JSON at 1, 2, and 8
//! workers, and again after a mid-run kill + resume — with the atomic
//! run counter proving no cell ever ran twice.
//!
//! ```text
//! cargo run --release --example sweep_resume
//! ```
//!
//! Each cell is a one-trial failure sweep under its own derived seed
//! (`derive_seed(master, cell.id)`), so the grid is embarrassingly wide
//! and every cell's bytes are a pure function of its identity. The
//! "kill" is simulated the way a real crash lands on the journal: the
//! file is cut mid-line, leaving 400 complete records plus a torn tail
//! that the resume must discard and re-run.

use ssor::engine::sweep::{cells, run_sweep, SweepOptions};
use ssor::engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
use ssor::flow::SolveOptions;
use std::sync::atomic::{AtomicUsize, Ordering};

const CELLS: usize = 1000;
const KEEP_LINES: usize = 400;

fn main() {
    let base = Pipeline::on(TopologySpec::Hypercube { dim: 4 })
        .template(TemplateSpec::Valiant)
        .alpha(2)
        .solve_options(SolveOptions::with_eps(0.2))
        .without_opt()
        .demand("bit-reversal", DemandSpec::BitReversal);
    let cache = PathSystemCache::new();
    let ran = AtomicUsize::new(0);
    let eval = |_cell: &ssor::engine::sweep::SweepCell<u64>, cell_seed: u64| {
        ran.fetch_add(1, Ordering::Relaxed);
        base.clone().seed(cell_seed).failure_sweep(&cache, 2, 1)
    };
    let grid = cells((0..CELLS as u64).collect::<Vec<_>>());
    let opts = SweepOptions::default().seed(0xACCE97);

    println!("sweep_resume: {CELLS}-cell failure sweep, bit-identical across workers + resume");
    let baseline = run_sweep(&grid, &opts.clone().threads(1), eval);
    let baseline_json = baseline.to_json_string();
    assert_eq!(ran.swap(0, Ordering::Relaxed), CELLS);
    println!(
        "  [1 worker]  {} cells, {} report bytes",
        baseline.executed,
        baseline_json.len()
    );

    for threads in [2usize, 8] {
        let got = run_sweep(&grid, &opts.clone().threads(threads), eval);
        assert_eq!(ran.swap(0, Ordering::Relaxed), CELLS);
        assert_eq!(
            got.to_json_string(),
            baseline_json,
            "report bytes differ at {threads} workers"
        );
        println!("  [{threads} workers] bit-identical to the 1-worker report");
    }

    // Kill + resume: full journaled run, then cut the journal mid-line
    // after KEEP_LINES complete records.
    let journal =
        std::env::temp_dir().join(format!("ssor_sweep_resume_{}.journal", std::process::id()));
    std::fs::remove_file(&journal).ok();
    run_sweep(&grid, &opts.clone().threads(8).journal(&journal), eval);
    assert_eq!(ran.swap(0, Ordering::Relaxed), CELLS);
    let bytes = std::fs::read(&journal).unwrap();
    let mut cut = 0;
    let mut lines = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            lines += 1;
            if lines == KEEP_LINES {
                cut = i + 1;
                break;
            }
        }
    }
    // Leave half of the next line — a torn write the resume must discard.
    let torn = cut + bytes[cut..].iter().position(|&b| b == b'\n').unwrap() / 2;
    std::fs::write(&journal, &bytes[..torn]).unwrap();
    println!(
        "  [kill]      journal cut to {KEEP_LINES} complete lines + a torn tail ({} of {} bytes)",
        torn,
        bytes.len()
    );

    let resumed = run_sweep(&grid, &opts.clone().threads(8).journal(&journal), eval);
    assert_eq!(
        (resumed.executed, resumed.resumed),
        (CELLS - KEEP_LINES, KEEP_LINES),
        "resume must skip exactly the journaled cells"
    );
    assert_eq!(
        ran.swap(0, Ordering::Relaxed),
        CELLS - KEEP_LINES,
        "a journaled cell was evaluated twice"
    );
    assert_eq!(
        resumed.to_json_string(),
        baseline_json,
        "resumed report bytes differ from the uninterrupted run"
    );
    std::fs::remove_file(&journal).ok();
    println!(
        "  [resume]    {} re-ran, {} resumed, bytes identical; no cell ran twice",
        resumed.executed, resumed.resumed
    );
    println!("OK");
}
