//! Hop-constrained oblivious routing — the GHZ21 interface, simulated.
//!
//! Section 7 of the paper consumes hop-constrained oblivious routings
//! `[GHZ21]` as a black box: an `h`-hop routing with hop-stretch `β` must
//! satisfy `dil(R, d) <= β h` for all demands while keeping congestion
//! competitive with the best `h`-hop routing. The real GHZ21 construction
//! (hop-constrained expander decompositions) is a paper-sized project on
//! its own; per the substitution policy in DESIGN.md we build the closest
//! faithful stand-in:
//!
//! * a **landmark Valiant** scheme — route `s -> w -> t` through a random
//!   landmark, *rejecting* landmarks whose two legs exceed the hop budget —
//!   which enforces the dilation guarantee *structurally*;
//! * a shortest-path fallback when no landmark fits (in particular for
//!   pairs with `dist(s, t) > β h`, where no `h`-hop routing exists at
//!   all).
//!
//! The interface (`h`, `hop_stretch`, congestion measured empirically)
//! matches Theorem 7.1, which is all the Section 7 construction in
//! `ssor-core` uses.

use crate::traits::{DistributionBuilder, ObliviousRouting};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use ssor_graph::shortest_path::{bfs_trees_csr_batch, SpTree};
use ssor_graph::{Graph, Path, VertexId};

/// Options for [`HopConstrainedRouting::build`].
#[derive(Debug, Clone)]
pub struct HopOptions {
    /// Number of landmark vertices to sample.
    pub landmarks: usize,
    /// Hop-stretch `β`: paths are kept below `β * h` hops whenever the
    /// pair admits any `h`-hop path.
    pub hop_stretch: f64,
}

impl Default for HopOptions {
    fn default() -> Self {
        HopOptions {
            landmarks: 16,
            hop_stretch: 4.0,
        }
    }
}

/// An `h`-hop oblivious routing with structural dilation control.
#[derive(Debug)]
pub struct HopConstrainedRouting {
    graph: Graph,
    h: usize,
    hop_stretch: f64,
    landmarks: Vec<VertexId>,
    /// BFS tree per landmark (legs are read out of these).
    landmark_trees: Vec<SpTree>,
    /// BFS tree per vertex for the shortest-path fallback legs `s -> w`.
    source_trees: Vec<SpTree>,
}

impl HopConstrainedRouting {
    /// Builds the routing for hop budget `h >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected, `h == 0`, or `opts.landmarks == 0`.
    pub fn build<R: Rng + ?Sized>(g: &Graph, h: usize, opts: &HopOptions, rng: &mut R) -> Self {
        assert!(h >= 1, "hop budget must be positive");
        assert!(opts.landmarks >= 1);
        assert!(g.is_connected());
        let mut all: Vec<VertexId> = g.vertices().collect();
        all.shuffle(rng);
        let csr = g.csr();
        let landmarks: Vec<VertexId> = all.into_iter().take(opts.landmarks).collect();
        // Both tree families fan out over rayon workers in source-index
        // order, so the build is bit-identical at any thread count.
        let landmark_trees = bfs_trees_csr_batch(&csr, &landmarks);
        let sources: Vec<VertexId> = g.vertices().collect();
        let source_trees = bfs_trees_csr_batch(&csr, &sources);
        HopConstrainedRouting {
            graph: g.clone(),
            h,
            hop_stretch: opts.hop_stretch,
            landmarks,
            landmark_trees,
            source_trees,
        }
    }

    /// The hop budget `h`.
    pub fn hop_budget(&self) -> usize {
        self.h
    }

    /// The hop-stretch `β` (paths stay within `β * h` when possible).
    pub fn hop_stretch(&self) -> f64 {
        self.hop_stretch
    }

    /// Hop cap `β * h` (rounded up).
    fn cap(&self) -> usize {
        (self.hop_stretch * self.h as f64).ceil() as usize
    }

    /// Indices of landmarks usable for `(s, t)` under the hop cap.
    fn feasible_landmarks(&self, s: VertexId, t: VertexId) -> Vec<usize> {
        let cap = self.cap();
        (0..self.landmarks.len())
            .filter(|&i| {
                let tr = &self.landmark_trees[i];
                let legs = tr.dist_to(s) + tr.dist_to(t);
                legs.is_finite() && legs as usize <= cap
            })
            .collect()
    }

    /// The two-leg path through landmark index `i`, shortcut to simple.
    fn path_via(&self, s: VertexId, t: VertexId, i: usize) -> Path {
        let tr = &self.landmark_trees[i];
        let leg1 = tr
            .path_to(&self.graph, s)
            .expect("connected graph")
            .reversed();
        let leg2 = tr.path_to(&self.graph, t).expect("connected graph");
        leg1.concat(&leg2).shortcut()
    }

    /// Shortest-path fallback.
    fn fallback(&self, s: VertexId, t: VertexId) -> Path {
        self.source_trees[s as usize]
            .path_to(&self.graph, t)
            .expect("connected graph")
    }
}

impl ObliviousRouting for HopConstrainedRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        let feasible = self.feasible_landmarks(s, t);
        if feasible.is_empty() {
            return self.fallback(s, t);
        }
        let i = feasible[rng.gen_range(0..feasible.len())];
        self.path_via(s, t, i)
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        let feasible = self.feasible_landmarks(s, t);
        if feasible.is_empty() {
            return vec![(self.fallback(s, t), 1.0)];
        }
        let w = 1.0 / feasible.len() as f64;
        let mut acc = DistributionBuilder::new();
        for i in feasible {
            acc.add(&self.path_via(s, t, i), w);
        }
        acc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_oblivious_routing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_flow::Demand;
    use ssor_graph::generators;

    #[test]
    fn respects_hop_cap_when_feasible() {
        let g = generators::hypercube(4); // diameter 4
        let mut rng = StdRng::seed_from_u64(1);
        let r = HopConstrainedRouting::build(
            &g,
            4,
            &HopOptions {
                landmarks: 8,
                hop_stretch: 2.0,
            },
            &mut rng,
        );
        for s in [0u32, 5] {
            for t in g.vertices() {
                if s == t {
                    continue;
                }
                for (p, _) in r.path_distribution(s, t) {
                    assert!(
                        p.hop() <= 8
                            || p.hop() == ssor_graph::shortest_path::hop_distance(&g, s, t),
                        "path of {} hops exceeds cap",
                        p.hop()
                    );
                }
            }
        }
    }

    #[test]
    fn fallback_on_tight_budget_is_shortest_path() {
        // Budget 1 with stretch 1: nothing fits through a landmark except
        // trivial cases, so the fallback shortest path is used.
        let g = generators::ring(8);
        let mut rng = StdRng::seed_from_u64(2);
        let r = HopConstrainedRouting::build(
            &g,
            1,
            &HopOptions {
                landmarks: 4,
                hop_stretch: 1.0,
            },
            &mut rng,
        );
        let p = r.sample_path(0, 4, &mut StdRng::seed_from_u64(3));
        assert_eq!(p.hop(), 4, "fallback must be the 4-hop shortest path");
    }

    #[test]
    fn validates_as_oblivious_routing() {
        let g = generators::grid(3, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let r = HopConstrainedRouting::build(&g, 5, &Default::default(), &mut rng);
        let pairs: Vec<(u32, u32)> = vec![(0, 11), (1, 10), (4, 7), (0, 1)];
        validate_oblivious_routing(&r, &pairs).unwrap();
    }

    #[test]
    fn dilation_bounded_by_stretch_times_budget() {
        let g = generators::hypercube(4);
        let mut rng = StdRng::seed_from_u64(5);
        let h = 4;
        let opts = HopOptions {
            landmarks: 12,
            hop_stretch: 3.0,
        };
        let r = HopConstrainedRouting::build(&g, h, &opts, &mut rng);
        let d = Demand::hypercube_complement(4);
        let dil = r.dilation(&d);
        assert!(dil <= (3.0 * h as f64) as usize, "dil = {dil}");
    }

    #[test]
    fn larger_budgets_admit_more_landmarks() {
        let g = generators::ring(16);
        let mut rng = StdRng::seed_from_u64(6);
        let opts = HopOptions {
            landmarks: 16,
            hop_stretch: 2.0,
        };
        let tight = HopConstrainedRouting::build(&g, 2, &opts, &mut rng.clone());
        let loose = HopConstrainedRouting::build(&g, 8, &opts, &mut rng);
        let ft = tight.feasible_landmarks(0, 3).len();
        let fl = loose.feasible_landmarks(0, 3).len();
        assert!(
            fl >= ft,
            "loose budget ({fl}) should allow at least as many landmarks as tight ({ft})"
        );
    }
}
