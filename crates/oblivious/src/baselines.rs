//! Baseline routings: deterministic shortest path, ECMP, k-shortest
//! paths, and generic-graph Valiant load balancing — the comparators
//! used by the traffic-engineering literature (SMORE `[KYY+18]`) and by
//! experiments E4/E7.

use crate::traits::{DistributionBuilder, ObliviousRouting};
use rand::{Rng, RngCore};
use ssor_graph::ksp::k_shortest_paths;
use ssor_graph::shortest_path::{bfs_trees_csr_batch, SpTree};
use ssor_graph::{EdgeId, Graph, Path, VertexId};

/// One BFS tree per vertex, fanned out over rayon workers in
/// source-index order (see [`bfs_trees_csr_batch`]); the shared
/// precompute of the per-source baselines.
fn all_source_bfs_trees(g: &Graph) -> Vec<SpTree> {
    let csr = g.csr();
    let sources: Vec<VertexId> = g.vertices().collect();
    bfs_trees_csr_batch(&csr, &sources)
}

/// Deterministic single shortest path per pair (BFS, lowest-edge-id
/// tie-breaking). The `1`-sparse deterministic strawman on general graphs.
#[derive(Debug)]
pub struct ShortestPathRouting {
    graph: Graph,
    trees: Vec<SpTree>,
}

impl ShortestPathRouting {
    /// Precomputes one BFS tree per source (rayon-parallel across
    /// sources, bit-identical at any thread count).
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    pub fn new(g: &Graph) -> Self {
        assert!(g.is_connected());
        ShortestPathRouting {
            graph: g.clone(),
            trees: all_source_bfs_trees(g),
        }
    }
}

impl ObliviousRouting for ShortestPathRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, _rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        self.trees[s as usize]
            .path_to(&self.graph, t)
            .expect("connected")
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        vec![(
            self.trees[s as usize]
                .path_to(&self.graph, t)
                .expect("connected"),
            1.0,
        )]
    }
}

/// Uniform distribution over the `k` shortest simple paths (Yen), the
/// classic traffic-engineering candidate selector SMORE compares against.
#[derive(Debug)]
pub struct KspRouting {
    graph: Graph,
    k: usize,
}

impl KspRouting {
    /// Creates the routing; paths are computed per query (Yen is the
    /// expensive part, so callers should cache via `path_distribution`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `g` is disconnected.
    pub fn new(g: &Graph, k: usize) -> Self {
        assert!(k >= 1);
        assert!(g.is_connected());
        KspRouting {
            graph: g.clone(),
            k,
        }
    }

    /// Number of candidate paths per pair.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ObliviousRouting for KspRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        let ps = k_shortest_paths(&self.graph, s, t, self.k, &|_| 1.0);
        let i = rng.gen_range(0..ps.len());
        ps.into_iter().nth(i).expect("index drawn from 0..len")
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        let ps = k_shortest_paths(&self.graph, s, t, self.k, &|_| 1.0);
        assert!(!ps.is_empty(), "graph must be connected");
        let w = 1.0 / ps.len() as f64;
        ps.into_iter().map(|p| (p, w)).collect()
    }
}

/// ECMP: the uniform distribution over *all* shortest `(s, t)`-paths.
///
/// Sampling and edge marginals use shortest-path DAG counting (exact,
/// polynomial); `path_distribution` enumerates the support and therefore
/// caps it at [`EcmpRouting::MAX_SUPPORT`] paths (renormalized) — hypercube
/// pairs can have exponentially many shortest paths.
#[derive(Debug)]
pub struct EcmpRouting {
    graph: Graph,
    trees: Vec<SpTree>,
}

impl EcmpRouting {
    /// Cap on the explicit support returned by `path_distribution`.
    pub const MAX_SUPPORT: usize = 64;

    /// Precomputes BFS trees (distances) from every source
    /// (rayon-parallel across sources, bit-identical at any thread
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    pub fn new(g: &Graph) -> Self {
        assert!(g.is_connected());
        EcmpRouting {
            graph: g.clone(),
            trees: all_source_bfs_trees(g),
        }
    }

    /// Number of shortest `s -> t` paths through each vertex-level DP.
    /// `counts[v]` = number of shortest `s -> v` paths (saturating).
    fn count_from(&self, s: VertexId) -> Vec<u128> {
        let dist = &self.trees[s as usize].dist;
        let n = self.graph.n();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        // `total_cmp`, not `partial_cmp().unwrap()`: a NaN distance (a
        // poisoned tree from a caller-supplied length function) must not
        // panic mid-build — NaNs order last and simply never extend a
        // shortest-path count.
        order.sort_by(|&a, &b| dist[a as usize].total_cmp(&dist[b as usize]));
        let mut counts = vec![0u128; n];
        counts[s as usize] = 1;
        for &v in &order {
            if counts[v as usize] == 0 {
                continue;
            }
            for a in self.graph.neighbors(v) {
                if dist[a.to as usize] == dist[v as usize] + 1.0 {
                    counts[a.to as usize] =
                        counts[a.to as usize].saturating_add(counts[v as usize]);
                }
            }
        }
        counts
    }
}

impl ObliviousRouting for EcmpRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        // Walk backwards from t, choosing predecessors proportionally to
        // their path counts from s.
        let dist = &self.trees[s as usize].dist;
        let counts = self.count_from(s);
        let mut rev_vertices = vec![t];
        let mut rev_edges: Vec<EdgeId> = Vec::new();
        let mut cur = t;
        while cur != s {
            let preds: Vec<(VertexId, EdgeId, u128)> = self
                .graph
                .neighbors(cur)
                .iter()
                .filter(|a| dist[a.to as usize] + 1.0 == dist[cur as usize])
                .map(|a| (a.to, a.edge, counts[a.to as usize]))
                .collect();
            let total: u128 = preds.iter().map(|&(_, _, c)| c).sum();
            let mut x = (rng.gen::<f64>() * total as f64) as u128;
            let mut chosen = preds.len() - 1;
            for (i, &(_, _, c)) in preds.iter().enumerate() {
                if x < c {
                    chosen = i;
                    break;
                }
                x -= c;
            }
            let (pv, pe, _) = preds[chosen];
            rev_vertices.push(pv);
            rev_edges.push(pe);
            cur = pv;
        }
        rev_vertices.reverse();
        rev_edges.reverse();
        Path::from_edges(&self.graph, s, &rev_edges).expect("DAG walk is a valid path")
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        // Enumerate shortest paths by DFS over the shortest-path DAG,
        // capped at MAX_SUPPORT (then renormalized).
        let dist = &self.trees[s as usize].dist;
        let mut out: Vec<Path> = Vec::new();
        let mut stack_edges: Vec<EdgeId> = Vec::new();
        let mut stack_verts: Vec<VertexId> = vec![s];
        fn dfs(
            g: &Graph,
            dist: &[f64],
            t: VertexId,
            stack_verts: &mut Vec<VertexId>,
            stack_edges: &mut Vec<EdgeId>,
            out: &mut Vec<Path>,
            cap: usize,
        ) {
            if out.len() >= cap {
                return;
            }
            let cur = *stack_verts.last().expect("DFS stack seeded with s");
            if cur == t {
                out.push(
                    Path::from_edges(g, stack_verts[0], stack_edges)
                        .expect("DFS follows graph adjacency"),
                );
                return;
            }
            for a in g.neighbors(cur) {
                if dist[a.to as usize] == dist[cur as usize] + 1.0 {
                    stack_verts.push(a.to);
                    stack_edges.push(a.edge);
                    dfs(g, dist, t, stack_verts, stack_edges, out, cap);
                    stack_verts.pop();
                    stack_edges.pop();
                }
            }
        }
        dfs(
            &self.graph,
            dist,
            t,
            &mut stack_verts,
            &mut stack_edges,
            &mut out,
            Self::MAX_SUPPORT,
        );
        let w = 1.0 / out.len() as f64;
        out.into_iter().map(|p| (p, w)).collect()
    }

    fn edge_marginals(&self, s: VertexId, t: VertexId) -> Vec<(EdgeId, f64)> {
        // Exact marginals via forward/backward counting:
        // P[e=(u,v) on path] = cnt_s(u) * cnt_t(v) / cnt_s(t) for DAG arcs.
        let dist_s = &self.trees[s as usize].dist;
        let cnt_s = self.count_from(s);
        let cnt_t = self.count_from(t);
        let total = cnt_s[t as usize] as f64;
        let mut out = Vec::new();
        for (e, (u, v)) in self.graph.edges() {
            // Orient along increasing distance from s.
            let (a, b) = if dist_s[u as usize] + 1.0 == dist_s[v as usize] {
                (u, v)
            } else if dist_s[v as usize] + 1.0 == dist_s[u as usize] {
                (v, u)
            } else {
                continue;
            };
            // On a shortest s-t path iff dist_s(a) + 1 + dist_t(b) = dist(s,t).
            let dist_t = &self.trees[t as usize].dist;
            if dist_s[a as usize] + 1.0 + dist_t[b as usize] == dist_s[t as usize] {
                let p = (cnt_s[a as usize] as f64) * (cnt_t[b as usize] as f64) / total;
                if p > 0.0 {
                    out.push((e, p));
                }
            }
        }
        out
    }
}

/// Generic-graph Valiant load balancing: route `s -> t` through a
/// uniformly random intermediate vertex `w` along shortest paths
/// (`s -> w -> t`, shortcut to a simple path).
///
/// The hypercube-native `ValiantRouting` exploits bit-fixing structure;
/// this is the topology-agnostic version the template bake-off runs on
/// WANs and Clos fabrics. Worst-case it doubles dilation in exchange
/// for spreading load over `n` intermediate hubs.
#[derive(Debug)]
pub struct VlbRouting {
    graph: Graph,
    trees: Vec<SpTree>,
}

impl VlbRouting {
    /// Precomputes one BFS tree per vertex (rayon-parallel across
    /// sources, bit-identical at any thread count).
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    pub fn new(g: &Graph) -> Self {
        assert!(g.is_connected());
        VlbRouting {
            graph: g.clone(),
            trees: all_source_bfs_trees(g),
        }
    }

    /// The `s -> t` path through intermediate `w` (shortcut to simple).
    fn via(&self, s: VertexId, w: VertexId, t: VertexId) -> Path {
        if w == s || w == t {
            return self.trees[s as usize]
                .path_to(&self.graph, t)
                .expect("connected");
        }
        let first = self.trees[s as usize]
            .path_to(&self.graph, w)
            .expect("connected");
        let second = self.trees[w as usize]
            .path_to(&self.graph, t)
            .expect("connected");
        first.concat(&second).shortcut()
    }
}

impl ObliviousRouting for VlbRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        // Uniform intermediate: exactly the distribution
        // `path_distribution` enumerates, sampled in O(1) draws.
        let w = rng.gen_range(0..self.graph.n()) as VertexId;
        self.via(s, w, t)
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        let n = self.graph.n();
        let w = 1.0 / n as f64;
        let mut builder = DistributionBuilder::new();
        for mid in 0..n as VertexId {
            builder.add(&self.via(s, mid, t), w);
        }
        let mut parts = builder.finish();
        // Renormalize the fp residue of summing n copies of 1/n.
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        for (_, w) in parts.iter_mut() {
            *w /= total;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_oblivious_routing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_flow::Demand;
    use ssor_graph::generators;

    #[test]
    fn shortest_path_routing_is_shortest() {
        let g = generators::grid(3, 4);
        let r = ShortestPathRouting::new(&g);
        for (s, t) in [(0u32, 11u32), (2, 9)] {
            let p = r.path_distribution(s, t)[0].0.clone();
            assert_eq!(p.hop(), ssor_graph::shortest_path::hop_distance(&g, s, t));
        }
        validate_oblivious_routing(&r, &[(0, 11), (3, 8)])
            .expect("shortest-path routing must validate");
    }

    #[test]
    fn ksp_routing_has_k_paths_when_available() {
        let g = generators::torus(3, 3);
        let r = KspRouting::new(&g, 3);
        let dist = r.path_distribution(0, 4);
        assert_eq!(dist.len(), 3);
        validate_oblivious_routing(&r, &[(0, 4), (1, 8)]).expect("ksp routing must validate");
    }

    #[test]
    fn ecmp_marginals_sum_to_expected_path_length() {
        // Sum of edge marginals = expected hop count = shortest distance
        // (all shortest paths have equal length).
        let g = generators::hypercube(4);
        let r = EcmpRouting::new(&g);
        for (s, t) in [(0u32, 15u32), (1, 14), (3, 5)] {
            let sum: f64 = r.edge_marginals(s, t).iter().map(|&(_, p)| p).sum();
            let d = ssor_graph::shortest_path::hop_distance(&g, s, t) as f64;
            assert!((sum - d).abs() < 1e-9, "({s},{t}): {sum} vs {d}");
        }
    }

    #[test]
    fn ecmp_sampling_produces_shortest_paths() {
        let g = generators::hypercube(3);
        let r = EcmpRouting::new(&g);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..30 {
            let p = r.sample_path(0, 7, &mut rng);
            assert_eq!(p.hop(), 3);
            assert!(p.is_simple());
            assert!(p.is_valid(&g));
        }
    }

    #[test]
    fn ecmp_distribution_uniform_on_grid() {
        // 2x2 grid: exactly 2 shortest paths between opposite corners.
        let g = generators::grid(2, 2);
        let r = EcmpRouting::new(&g);
        let dist = r.path_distribution(0, 3);
        assert_eq!(dist.len(), 2);
        for (_, w) in &dist {
            assert!((w - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn ecmp_count_from_tolerates_nan_distances() {
        // Regression: the shortest-path DAG ordering used
        // `partial_cmp().unwrap()`, so a single NaN distance (a poisoned
        // tree) panicked mid-build. With `total_cmp` the NaN vertex
        // orders last and contributes no counts.
        let g = generators::grid(2, 2);
        let mut r = EcmpRouting::new(&g);
        r.trees[0].dist[3] = f64::NAN;
        let marginals = r.edge_marginals(0, 1);
        assert!(marginals.iter().all(|&(_, p)| p.is_finite()));
    }

    #[test]
    fn ecmp_beats_single_path_on_complement_demand() {
        let g = generators::hypercube(4);
        let ecmp = EcmpRouting::new(&g);
        let sp = ShortestPathRouting::new(&g);
        let d = Demand::hypercube_complement(4);
        assert!(ecmp.congestion(&d) <= sp.congestion(&d) + 1e-9);
    }

    #[test]
    fn vlb_validates_and_spreads_over_intermediates() {
        let g = generators::grid(3, 3);
        let r = VlbRouting::new(&g);
        validate_oblivious_routing(&r, &[(0, 8), (2, 6), (1, 5)])
            .expect("vlb routing must validate");
        // More than one distinct path: intermediates off the shortest
        // path produce genuinely different routes.
        assert!(r.path_distribution(0, 8).len() > 1);
    }

    #[test]
    fn vlb_samples_match_the_enumerated_support() {
        let g = generators::torus(3, 3);
        let r = VlbRouting::new(&g);
        let dist = r.path_distribution(0, 4);
        let support: Vec<_> = dist.iter().map(|(p, _)| p.edges().to_vec()).collect();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let p = r.sample_path(0, 4, &mut rng);
            assert!(support.contains(&p.edges().to_vec()));
        }
    }

    #[test]
    fn vlb_dilation_at_most_twice_shortest() {
        let g = generators::hypercube(3);
        let r = VlbRouting::new(&g);
        for (s, t) in [(0u32, 7u32), (1, 6), (2, 5)] {
            let d = ssor_graph::shortest_path::hop_distance(&g, s, t);
            for (p, _) in r.path_distribution(s, t) {
                assert!(p.hop() <= 2 * d, "detour {} vs shortest {d}", p.hop());
            }
        }
    }
}
