//! # ssor-oblivious
//!
//! Oblivious-routing substrate for the `ssor` workspace (reproduction of
//! *Sparse Semi-Oblivious Routing: Few Random Paths Suffice*, PODC 2023).
//!
//! The paper's construction (Definition 5.2) is "sample a few paths from
//! any good oblivious routing"; this crate supplies the oblivious routings
//! to sample from:
//!
//! * [`ValiantRouting`] — Valiant–Brebner randomized hypercube routing
//!   `[VB81]`, `O(1)`-congested on permutation demands;
//! * [`BitFixingRouting`] — the deterministic strawman hit by the
//!   `Ω̃(sqrt(n))` lower bound `[KKT91]` (experiment E4);
//! * [`RaeckeRouting`] — Räcke's `O(log n)`-competitive general-graph
//!   routing via multiplicative weights over [`frt`] tree embeddings
//!   `[Räc08]`, the scheme SMORE samples in production;
//! * [`HopConstrainedRouting`] — the GHZ21 hop-constrained interface
//!   (simulated; see DESIGN.md substitutions) consumed by Section 7;
//! * [`ElectricalRouting`] — routing along unit electrical currents from
//!   per-source preconditioned Laplacian solves (`O(n)` solves for an
//!   all-pairs template);
//! * [`RandomWalkRouting`] — oblivious routing via random walks
//!   `[SS14]` (Schapira–Shahaf), the cheap sampling baseline;
//! * [`ShortestPathRouting`] / [`EcmpRouting`] / [`KspRouting`] /
//!   [`VlbRouting`] — traffic-engineering baselines.
//!
//! All of them implement [`ObliviousRouting`], whose contract is checked by
//! [`validate_oblivious_routing`].
//!
//! # Examples
//!
//! ```
//! use ssor_oblivious::{ObliviousRouting, ValiantRouting};
//! use ssor_flow::Demand;
//!
//! let r = ValiantRouting::new(4);
//! let d = Demand::hypercube_bit_reversal(4);
//! // Valiant keeps permutation congestion constant-ish.
//! assert!(r.congestion(&d) < 4.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baselines;
pub mod electrical;
pub mod frt;
mod hop;
mod raecke;
mod randomwalk;
mod traits;
mod valiant;

pub use baselines::{EcmpRouting, KspRouting, ShortestPathRouting, VlbRouting};
pub use electrical::{ElectricalError, ElectricalOptions, ElectricalRouting};
pub use frt::{sample_tree_routings_seeded, tree_seed, FrtTree, Metric, TreeRouting};
pub use hop::{HopConstrainedRouting, HopOptions};
pub use raecke::{RaeckeOptions, RaeckeRouting};
pub use randomwalk::RandomWalkRouting;
pub use traits::{
    validate_oblivious_routing, DistributionBuilder, ObliviousRouting, TemplateStageStats,
};
pub use valiant::{BitFixingRouting, ValiantRouting};
