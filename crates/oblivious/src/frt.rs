//! FRT random hierarchical tree embeddings, and the tree-based routing that
//! maps tree paths back to graph paths.
//!
//! Räcke's 2008 construction of `O(log n)`-competitive oblivious routing
//! reduces to low-distortion probabilistic tree embeddings; FRT supplies
//! those (`O(log n)` expected distortion). A single FRT tree gives a
//! deterministic path map; a *distribution* over trees (built in
//! [`RaeckeRouting`](crate::RaeckeRouting)) gives the oblivious routing.
//!
//! Construction is rayon-parallel and seed-derived: [`Metric::build`]
//! fans its per-source Dijkstra trees over workers in index order, and
//! tree *ensembles* draw each tree from its own [`tree_seed`]-derived
//! RNG stream ([`sample_tree_routings_seeded`]), so outputs are
//! bit-identical at any thread count. The one remaining threaded-RNG
//! entry point is crate-private: the Räcke multiplicative-weights loop
//! threads a single RNG through its inherently sequential iterations to
//! keep its historical byte-stable stream.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ssor_graph::generators::mix_seed;
use ssor_graph::shortest_path::{dijkstra_trees_csr_batch, SpTree};
use ssor_graph::{par_ordered_map, EdgeId, Graph, Path, VertexId};
use std::sync::Arc;

/// All-pairs shortest-path structure under a fixed length function: one
/// Dijkstra tree per source. `O(n^2)` memory — intended for the paper's
/// experiment scales (n up to a few thousand).
#[derive(Debug)]
pub struct Metric {
    trees: Vec<SpTree>,
}

impl Metric {
    /// Builds the metric with one Dijkstra per vertex, over a CSR
    /// adjacency flattened once and shared by all `n` runs. The
    /// per-source trees fan out over rayon workers (via
    /// [`dijkstra_trees_csr_batch`]) and come back in source-index
    /// order, so the metric is bit-identical at any thread count.
    pub fn build(g: &Graph, len: &(dyn Fn(EdgeId) -> f64 + Sync)) -> Self {
        let csr = g.csr();
        let sources: Vec<VertexId> = g.vertices().collect();
        let trees = dijkstra_trees_csr_batch(&csr, &sources, len);
        Metric { trees }
    }

    /// Unit-length (hop) metric.
    pub fn hops(g: &Graph) -> Self {
        Metric::build(g, &|_| 1.0)
    }

    /// Distance from `u` to `v`.
    pub fn dist(&self, u: VertexId, v: VertexId) -> f64 {
        self.trees[u as usize].dist_to(v)
    }

    /// A shortest `u -> v` path under the metric's lengths.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable from `u`.
    pub fn path(&self, g: &Graph, u: VertexId, v: VertexId) -> Path {
        if u == v {
            return Path::trivial(u);
        }
        self.trees[u as usize]
            .path_to(g, v)
            .expect("metric requires a connected graph")
    }

    /// Largest finite pairwise distance.
    pub fn diameter(&self) -> f64 {
        let mut best: f64 = 0.0;
        for t in &self.trees {
            for &d in &t.dist {
                if d.is_finite() {
                    best = best.max(d);
                }
            }
        }
        best
    }
}

/// One FRT hierarchical decomposition tree.
///
/// `chains[v][i]` is the cluster center of vertex `v` at level `i`
/// (level 0 = the vertex itself, top level = one cluster for the whole
/// graph). Two vertices share the level-`i` cluster iff their chains agree
/// at every level `>= i` — chain-prefix comparison keeps the family
/// laminar.
#[derive(Debug, Clone)]
pub struct FrtTree {
    levels: usize,
    chains: Vec<Vec<VertexId>>,
}

/// Tag mixed into per-tree seeds by [`FrtTree::sample_seeded`] callers
/// (see [`sample_tree_routings_seeded`]), decorrelating tree streams from
/// every other derived-seed stream in the workspace.
const FRT_TREE_STREAM_TAG: u64 = 0xF27E_E5EE_DF12_7AB1;

/// The derived seed for tree `index` of an ensemble built from `seed` —
/// public so a single tree of a parallel ensemble can be reproduced in
/// isolation.
///
/// # Examples
///
/// ```
/// use ssor_oblivious::frt::tree_seed;
/// assert_eq!(tree_seed(7, 3), tree_seed(7, 3));
/// assert_ne!(tree_seed(7, 3), tree_seed(7, 4));
/// assert_ne!(tree_seed(7, 3), tree_seed(8, 3));
/// ```
pub fn tree_seed(seed: u64, index: usize) -> u64 {
    mix_seed(seed ^ FRT_TREE_STREAM_TAG ^ mix_seed(index as u64))
}

impl FrtTree {
    /// Samples an FRT tree for the given metric: random permutation `pi`,
    /// random `beta in [1, 2)`, level-`i` radius `beta * 2^{i-2}`.
    ///
    /// This is the crate-private *serial path*: it consumes randomness
    /// from a caller-threaded RNG, so consecutive samples are
    /// order-dependent and cannot fan out over threads. Ensemble code
    /// uses [`FrtTree::sample_seeded`] with [`tree_seed`]-derived
    /// per-tree streams (see [`sample_tree_routings_seeded`]); the only
    /// threaded caller left is the Räcke multiplicative-weights loop,
    /// whose iterations are inherently sequential and whose byte-stable
    /// output stream is pinned to this path.
    pub(crate) fn sample<R: Rng + ?Sized>(metric: &Metric, n: usize, rng: &mut R) -> Self {
        assert!(n >= 1);
        let mut pi: Vec<VertexId> = (0..n as VertexId).collect();
        pi.shuffle(rng);
        // FRT samples beta with density 1/(beta ln 2) on [1, 2); inverse
        // CDF sampling: beta = 2^u for u uniform in [0, 1).
        let beta = 2f64.powf(rng.gen::<f64>());

        let diam = metric.diameter().max(1.0);
        // Smallest L with beta * 2^{L-2} >= diam (so the top level is a
        // single cluster regardless of beta >= 1). Computed in f64: for
        // ordinary diameters this selects the identical level count as
        // the former `1u64 << (L-2)` comparison (both sides are exact
        // below 2^52), and for extreme but finite diameters — e.g. a
        // length function spanning the full clamped ratio range — the
        // loop keeps growing until the top radius genuinely covers the
        // graph instead of overflowing a 64-bit shift.
        let target = diam.ceil() * 2.0;
        let mut levels = 2usize;
        while 2f64.powi((levels - 2) as i32) < target {
            levels += 1;
        }

        let mut chains = vec![Vec::with_capacity(levels + 1); n];
        for (v, chain) in chains.iter_mut().enumerate() {
            chain.push(v as VertexId); // level 0: singleton
        }
        for i in 1..=levels {
            let r = beta * 2f64.powi(i as i32 - 2);
            for (v, chain) in chains.iter_mut().enumerate() {
                let c = pi
                    .iter()
                    .copied()
                    .find(|&c| metric.dist(c, v as VertexId) <= r)
                    .expect("top radius covers the whole graph");
                chain.push(c);
            }
        }
        FrtTree { levels, chains }
    }

    /// Samples an FRT tree from its own derived RNG stream: a pure
    /// function of `(metric, n, seed)`, independent of whatever other
    /// trees are being sampled around it — which is what lets ensemble
    /// builders fan tree sampling out over rayon workers with
    /// thread-count-invariant output (each tree's stream never depends
    /// on sampling order).
    pub fn sample_seeded(metric: &Metric, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        FrtTree::sample(metric, n, &mut rng)
    }

    /// Number of levels above the leaves.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The center chain of `v` (level 0 through the top).
    pub fn chain(&self, v: VertexId) -> &[VertexId] {
        &self.chains[v as usize]
    }

    /// The meeting level of `s` and `t`: the smallest `i` such that the
    /// chains agree at every level `>= i` (0 iff `s == t`).
    pub fn meeting_level(&self, s: VertexId, t: VertexId) -> usize {
        let (cs, ct) = (&self.chains[s as usize], &self.chains[t as usize]);
        let mut level = self.levels + 1;
        for i in (0..=self.levels).rev() {
            if cs[i] != ct[i] {
                break;
            }
            level = i;
        }
        level.min(self.levels)
    }

    /// The tree-path waypoints from `s` to `t`: centers going up `s`'s
    /// chain to the meeting cluster, then down `t`'s chain. Consecutive
    /// duplicates are removed.
    pub fn waypoints(&self, s: VertexId, t: VertexId) -> Vec<VertexId> {
        let j = self.meeting_level(s, t);
        let mut w: Vec<VertexId> = Vec::with_capacity(2 * j + 1);
        for i in 0..=j {
            w.push(self.chains[s as usize][i]);
        }
        for i in (0..j).rev() {
            w.push(self.chains[t as usize][i]);
        }
        w.dedup();
        w
    }

    /// Distance between `s` and `t` in the (virtual) tree, using level
    /// radii as edge lengths — an upper bound proxy for the embedding
    /// distortion.
    pub fn tree_distance(&self, s: VertexId, t: VertexId) -> f64 {
        let j = self.meeting_level(s, t);
        // Edge from level i-1 to i costs 2^i; both sides climb to level j.
        2.0 * (0..=j).map(|i| 2f64.powi(i as i32)).sum::<f64>()
    }
}

/// Deterministic path map derived from one FRT tree: the `s -> t` path is
/// the concatenation of shortest paths between consecutive tree waypoints,
/// shortcut to a simple path.
#[derive(Debug, Clone)]
pub struct TreeRouting {
    metric: Arc<Metric>,
    tree: Arc<FrtTree>,
}

impl TreeRouting {
    /// Wraps a tree with the metric used to map its segments.
    pub fn new(metric: Arc<Metric>, tree: Arc<FrtTree>) -> Self {
        TreeRouting { metric, tree }
    }

    /// The underlying FRT tree.
    pub fn tree(&self) -> &FrtTree {
        &self.tree
    }

    /// The (deterministic, simple) routed path for `(s, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `s == t`.
    pub fn path(&self, g: &Graph, s: VertexId, t: VertexId) -> Path {
        assert_ne!(s, t, "tree routing needs distinct endpoints");
        let wps = self.tree.waypoints(s, t);
        let mut acc = Path::trivial(s);
        for w in wps.windows(2) {
            acc = acc.concat(&self.metric.path(g, w[0], w[1]));
        }
        let p = acc.shortcut();
        debug_assert_eq!(p.source(), s);
        debug_assert_eq!(p.target(), t);
        p
    }
}

/// Samples `count` hop-metric [`TreeRouting`]s in parallel, each from its
/// own [`tree_seed`]-derived RNG stream — the plain "FRT ensemble"
/// baseline. (A routing that sampled a *fresh* tree per path draw would
/// be wasteful; [`RaeckeRouting`](crate::RaeckeRouting) instead holds a
/// fixed mixture of [`TreeRouting`]s.)
///
/// Tree `i`'s randomness is a pure function of `(seed, i)`, so the trees
/// fan out over rayon workers (index-ordered collect) and the ensemble is
/// bit-identical at any thread count.
///
/// # Examples
///
/// ```
/// use ssor_oblivious::frt::sample_tree_routings_seeded;
///
/// let g = ssor_graph::generators::ring(8);
/// let trees = sample_tree_routings_seeded(&g, 4, 7);
/// assert_eq!(trees.len(), 4);
/// // Deterministic per seed:
/// let again = sample_tree_routings_seeded(&g, 4, 7);
/// assert_eq!(trees[2].path(&g, 0, 5), again[2].path(&g, 0, 5));
/// ```
pub fn sample_tree_routings_seeded(g: &Graph, count: usize, seed: u64) -> Vec<TreeRouting> {
    let metric = Arc::new(Metric::hops(g));
    sample_trees_for_metric(g, &metric, count, seed)
}

/// Below this many trees the ensemble sampling stays serial (the
/// vendored rayon shim spawns threads per call); wall-clock only, the
/// derived seed streams make results identical either way.
const ENSEMBLE_PAR_MIN_TREES: usize = 2;

/// The seeded parallel ensemble core: `count` trees over a shared
/// prebuilt metric, tree `i` drawn from [`tree_seed`]`(seed, i)`.
pub(crate) fn sample_trees_for_metric(
    g: &Graph,
    metric: &Arc<Metric>,
    count: usize,
    seed: u64,
) -> Vec<TreeRouting> {
    let indices: Vec<usize> = (0..count).collect();
    par_ordered_map(&indices, ENSEMBLE_PAR_MIN_TREES, |&i| {
        let tree = Arc::new(FrtTree::sample_seeded(metric, g.n(), tree_seed(seed, i)));
        TreeRouting::new(Arc::clone(metric), tree)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_graph::generators;

    #[test]
    fn metric_matches_bfs_on_unit_lengths() {
        let g = generators::grid(3, 4);
        let m = Metric::hops(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                let hop = ssor_graph::shortest_path::hop_distance(&g, s, t);
                assert_eq!(m.dist(s, t) as usize, hop);
            }
        }
        assert_eq!(m.diameter() as usize, 5);
    }

    #[test]
    fn chains_start_at_self_and_end_together() {
        let g = generators::ring(10);
        let metric = Metric::hops(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = FrtTree::sample(&metric, g.n(), &mut rng);
        let top = tree.levels();
        let root = tree.chain(0)[top];
        for v in g.vertices() {
            assert_eq!(tree.chain(v)[0], v);
            assert_eq!(tree.chain(v)[top], root, "single top cluster");
        }
    }

    #[test]
    fn meeting_level_is_symmetric_and_zero_iff_equal() {
        let g = generators::grid(4, 4);
        let metric = Metric::hops(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let tree = FrtTree::sample(&metric, g.n(), &mut rng);
        for s in g.vertices() {
            assert_eq!(tree.meeting_level(s, s), 0);
            for t in g.vertices() {
                assert_eq!(tree.meeting_level(s, t), tree.meeting_level(t, s));
                if s != t {
                    assert!(tree.meeting_level(s, t) >= 1);
                }
            }
        }
    }

    #[test]
    fn tree_paths_are_simple_valid_and_connect() {
        let g = generators::hypercube(4);
        let metric = Arc::new(Metric::hops(&g));
        let mut rng = StdRng::seed_from_u64(11);
        let tree = Arc::new(FrtTree::sample(&metric, g.n(), &mut rng));
        let tr = TreeRouting::new(metric, tree);
        for s in [0u32, 3, 7] {
            for t in g.vertices() {
                if s == t {
                    continue;
                }
                let p = tr.path(&g, s, t);
                assert_eq!(p.source(), s);
                assert_eq!(p.target(), t);
                assert!(p.is_simple());
                assert!(p.is_valid(&g));
            }
        }
    }

    #[test]
    fn expected_stretch_is_logarithmic_ish() {
        // FRT guarantees E[tree dist] <= O(log n) * dist. Check the routed
        // path stretch averaged over trees stays well below the diameter
        // blowup a bad embedding would give.
        let g = generators::ring(16);
        let routings = sample_tree_routings_seeded(&g, 24, 17);
        let mut total_stretch = 0.0;
        let mut count = 0;
        for (s, t) in [(0u32, 1u32), (2, 3), (10, 11), (15, 0)] {
            for tr in &routings {
                let p = tr.path(&g, s, t);
                total_stretch += p.hop() as f64 / 1.0; // dist = 1
                count += 1;
            }
        }
        let avg = total_stretch / count as f64;
        // log2(16) = 4; allow generous slack, but far below diameter 8.
        assert!(avg <= 6.0, "average stretch {avg} too large");
    }

    #[test]
    fn seeded_ensemble_is_deterministic_and_order_independent() {
        // Tree i is a pure function of (seed, i): the whole ensemble is
        // reproducible, sensitive to the seed, and a larger ensemble is
        // an extension of a smaller one (per-tree streams cannot shift).
        let g = generators::grid(4, 4);
        let a = sample_tree_routings_seeded(&g, 6, 3);
        let b = sample_tree_routings_seeded(&g, 6, 3);
        let c = sample_tree_routings_seeded(&g, 6, 4);
        let prefix = sample_tree_routings_seeded(&g, 3, 3);
        let pairs = [(0u32, 15u32), (3, 12), (5, 10)];
        for (i, (ta, tb)) in a.iter().zip(b.iter()).enumerate() {
            for &(s, t) in &pairs {
                assert_eq!(ta.path(&g, s, t), tb.path(&g, s, t), "tree {i}");
            }
        }
        for (i, tp) in prefix.iter().enumerate() {
            for &(s, t) in &pairs {
                assert_eq!(a[i].path(&g, s, t), tp.path(&g, s, t), "prefix tree {i}");
            }
        }
        assert!(
            pairs
                .iter()
                .any(|&(s, t)| { (0..6).any(|i| a[i].path(&g, s, t) != c[i].path(&g, s, t)) }),
            "different seeds should differ somewhere"
        );
        for tr in &a {
            for &(s, t) in &pairs {
                let p = tr.path(&g, s, t);
                assert!(p.is_simple() && p.is_valid(&g));
            }
        }
    }

    #[test]
    fn extreme_but_finite_metrics_sample_without_overflow() {
        // Huge length functions used to push the levels loop into a
        // `1 << 64` overflow (or, with a capped shift, into a top radius
        // that failed to cover the graph). The f64 loop must keep
        // growing levels until the top cluster genuinely covers every
        // vertex, for any finite diameter.
        let g = generators::ring(6);
        for big in [
            1.099511627776e12, /* 2^40, the Raecke ratio clamp */
            1e18,
        ] {
            let metric = Metric::build(&g, &move |e| if e == 0 { big } else { 1.0 });
            let tree = FrtTree::sample_seeded(&metric, g.n(), 9);
            assert!(tree.levels() >= 2);
            let top = tree.levels();
            let root = tree.chain(0)[top];
            for v in g.vertices() {
                assert_eq!(tree.chain(v)[top], root, "single top cluster (len {big})");
            }
        }
    }

    #[test]
    fn waypoints_start_and_end_correctly() {
        let g = generators::grid(3, 3);
        let metric = Metric::hops(&g);
        let mut rng = StdRng::seed_from_u64(23);
        let tree = FrtTree::sample(&metric, g.n(), &mut rng);
        let w = tree.waypoints(0, 8);
        assert_eq!(*w.first().unwrap(), 0);
        assert_eq!(*w.last().unwrap(), 8);
        // No consecutive duplicates.
        for pair in w.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn tree_distance_dominates_metric_distance() {
        // The FRT guarantee "tree distance >= true distance" holds per
        // sample (not just in expectation).
        let g = generators::grid(4, 4);
        let metric = Metric::hops(&g);
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..5 {
            let tree = FrtTree::sample(&metric, g.n(), &mut rng);
            for s in g.vertices() {
                for t in g.vertices() {
                    if s != t {
                        assert!(
                            tree.tree_distance(s, t) + 1e-9 >= metric.dist(s, t),
                            "tree distance must dominate"
                        );
                    }
                }
            }
        }
    }
}
