//! Electrical-flow oblivious routing over per-source Laplacian
//! potentials.
//!
//! Routing `s -> t` along the unit electrical current (potentials solving
//! `L φ = e_s - e_t`) is a classic *demand-independent* fractional routing:
//! the current is acyclic (flows down potential), so it decomposes into a
//! distribution over simple paths — an oblivious routing in the paper's
//! sense. Its worst-case competitiveness is polynomial, not polylog
//! (it is the baseline the tree-based schemes beat), which makes it a
//! useful comparison point for the A1 ablation.
//!
//! # Scaling structure
//!
//! The naive formulation pays one Laplacian solve per `(s, t)` pair —
//! `O(n²)` solves for an all-pairs template. This module instead solves
//! **per-source** systems `L ψ_s = e_s − (1/n)𝟙` (one per source, each a
//! legal kernel-orthogonal right-hand side) and derives every pair's
//! potentials by superposition: `L (ψ_s − ψ_t) = e_s − e_t`, so the
//! `s → t` current falls out of the difference `ψ_s − ψ_t` with no
//! further solve. An all-pairs template costs `n` solves, each running
//! on [`ssor_graph::CsrLaplacian`]'s preconditioned CG (Jacobi by
//! default) instead of the old unpreconditioned `Graph::edges`-walking
//! loop, and independent sources fan out over rayon via
//! `CsrLaplacian::solve_batch` — input-order collected, so builds are
//! bit-identical at any thread count (the PR 5 discipline).
//!
//! The original per-pair entry points ([`solve_laplacian`],
//! [`electrical_flow`], [`effective_resistance`]) remain as the
//! slow-but-simple reference implementation the per-source path is
//! tested against.

use crate::traits::{ObliviousRouting, TemplateStageStats};
use rand::{Rng, RngCore};
use ssor_flow::decompose::{decompose, EdgeFlow};
use ssor_graph::{CsrLaplacian, Graph, Path, Preconditioner, VertexId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sparse symmetric Laplacian application: `y = L x` for the weighted
/// graph Laplacian with conductance `w_e` per edge. The textbook
/// edge-walk reference; the hot path uses [`CsrLaplacian::apply`],
/// which is bitwise identical (pinned by proptest in `ssor-graph`).
fn apply_laplacian(g: &Graph, w: &[f64], x: &[f64], y: &mut [f64]) {
    y.iter_mut().for_each(|v| *v = 0.0);
    for (e, (u, v)) in g.edges() {
        let c = w[e as usize];
        let d = x[u as usize] - x[v as usize];
        y[u as usize] += c * d;
        y[v as usize] -= c * d;
    }
}

/// Solves `L φ = b` (with `b ⊥ 1`) by conjugate gradients on the
/// pseudo-inverse, keeping iterates orthogonal to the all-ones kernel.
/// Returns the potentials (mean-centered).
///
/// This is the unpreconditioned per-pair *reference* solver; template
/// construction goes through [`CsrLaplacian::solve`] instead.
///
/// # Panics
///
/// Panics on dimension mismatch, or if `b` is not orthogonal to the
/// kernel *relative to its own scale* (`|Σb| > 1e-6 · ‖b‖₁`). The check
/// must be relative: an absolute threshold rejects legitimately scaled
/// demand vectors while passing tiny vectors with 100% drift.
pub fn solve_laplacian(g: &Graph, w: &[f64], b: &[f64], tol: f64, max_iters: usize) -> Vec<f64> {
    let n = g.n();
    assert_eq!(b.len(), n);
    assert_eq!(w.len(), g.m());
    let bsum: f64 = b.iter().sum();
    let bl1: f64 = b.iter().map(|v| v.abs()).sum();
    assert!(
        bsum.abs() <= 1e-6 * bl1.max(f64::MIN_POSITIVE),
        "b must be orthogonal to the kernel relative to its scale (sum {bsum}, l1 {bl1})"
    );

    let center = |x: &mut Vec<f64>| {
        let mean = x.iter().sum::<f64>() / n as f64;
        x.iter_mut().for_each(|v| *v -= mean);
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    center(&mut r);
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = rs.sqrt().max(f64::MIN_POSITIVE);

    for _ in 0..max_iters {
        if rs.sqrt() <= tol * b_norm {
            break;
        }
        apply_laplacian(g, w, &p, &mut ap);
        let pap: f64 = p.iter().zip(ap.iter()).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-300 {
            break;
        }
        let alpha = rs / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs;
        rs = rs_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    center(&mut x);
    x
}

/// The unit `s -> t` electrical flow (currents per edge, oriented along
/// the stored edge direction), for unit conductances scaled by `w`.
///
/// Per-pair reference path: one fresh solve per call. Template
/// construction derives pair flows from cached per-source potentials
/// instead (see [`ElectricalRouting`]).
pub fn electrical_flow(g: &Graph, w: &[f64], s: VertexId, t: VertexId) -> EdgeFlow {
    let n = g.n();
    let mut b = vec![0.0; n];
    b[s as usize] = 1.0;
    b[t as usize] = -1.0;
    let phi = solve_laplacian(g, w, &b, 1e-10, 4 * n + 200);
    g.edges()
        .map(|(e, (u, v))| w[e as usize] * (phi[u as usize] - phi[v as usize]))
        .collect()
}

/// Effective resistance between `s` and `t` under conductances `w`
/// (per-pair reference path; see
/// [`ElectricalRouting::effective_resistance_between`] for the
/// per-source-potentials version).
pub fn effective_resistance(g: &Graph, w: &[f64], s: VertexId, t: VertexId) -> f64 {
    let n = g.n();
    let mut b = vec![0.0; n];
    b[s as usize] = 1.0;
    b[t as usize] = -1.0;
    let phi = solve_laplacian(g, w, &b, 1e-10, 4 * n + 200);
    phi[s as usize] - phi[t as usize]
}

/// Why an [`ElectricalRouting`] could not be constructed.
///
/// The Laplacian of a disconnected graph has a larger kernel than the
/// all-ones vector, so "the" electrical flow between components does not
/// exist — the solver would silently return an arbitrary vector instead
/// of a routing. The fallible constructors surface that as a proper
/// error rather than asserting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectricalError {
    /// The graph is disconnected; no electrical flow exists between
    /// components.
    Disconnected,
}

impl std::fmt::Display for ElectricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElectricalError::Disconnected => {
                write!(f, "electrical routing needs a connected graph")
            }
        }
    }
}

impl std::error::Error for ElectricalError {}

/// Solver knobs for [`ElectricalRouting`] — carried by
/// `TemplateSpec::Electrical` in the engine, so both fields must stay a
/// pure function of the spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectricalOptions {
    /// CG convergence threshold: stop when `‖r‖₂ ≤ tolerance · ‖b‖₂`.
    pub tolerance: f64,
    /// Which preconditioner the solves run under.
    pub preconditioner: Preconditioner,
}

impl Default for ElectricalOptions {
    /// `tolerance = 1e-10`, Jacobi preconditioning — the settings every
    /// pre-existing electrical test was calibrated against.
    fn default() -> Self {
        ElectricalOptions {
            tolerance: 1e-10,
            preconditioner: Preconditioner::Jacobi,
        }
    }
}

/// Oblivious routing along unit electrical flows (unit conductances by
/// default).
///
/// Pair flows come from cached per-source potentials `ψ_s` (see the
/// module docs): the first query touching source `s` solves
/// `L ψ_s = e_s − (1/n)𝟙` once, and every later pair involving `s`
/// reuses it. [`ElectricalRouting::precomputed`] batch-solves all
/// sources up front (rayon fan-out, input-order collected) — the
/// all-pairs template build, `O(n)` solves total.
///
/// # Examples
///
/// ```
/// use ssor_oblivious::{ElectricalRouting, ObliviousRouting};
///
/// let g = ssor_graph::generators::ring(6);
/// let r = ElectricalRouting::new(&g);
/// let dist = r.path_distribution(0, 3);
/// // The two sides of the ring have equal resistance: 50/50 split.
/// assert_eq!(dist.len(), 2);
/// assert!((dist[0].1 - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct ElectricalRouting {
    graph: Graph,
    conductance: Vec<f64>,
    lap: CsrLaplacian,
    opts: ElectricalOptions,
    /// Per-source potentials, filled lazily or by
    /// [`Self::precomputed`]. Vertex-indexed (no hash container), so
    /// cache hits are an array load.
    potentials: Mutex<Vec<Option<Arc<Vec<f64>>>>>,
    /// Laplacian solves performed so far — the observable the O(n)
    /// scaling test asserts on.
    solves: AtomicUsize,
    stats: Option<TemplateStageStats>,
}

impl ElectricalRouting {
    /// Unit conductances on every edge, or
    /// [`ElectricalError::Disconnected`] when no electrical flow exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_graph::Graph;
    /// use ssor_oblivious::{ElectricalError, ElectricalRouting};
    ///
    /// let split = Graph::from_edges(4, &[(0, 1), (2, 3)]);
    /// assert_eq!(
    ///     ElectricalRouting::try_new(&split).unwrap_err(),
    ///     ElectricalError::Disconnected,
    /// );
    /// ```
    pub fn try_new(g: &Graph) -> Result<Self, ElectricalError> {
        Self::try_with_conductances(g, vec![1.0; g.m()])
    }

    /// Custom conductances, or [`ElectricalError::Disconnected`] when no
    /// electrical flow exists.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or any conductance is nonpositive
    /// (both are caller bugs, unlike disconnection, which can be a
    /// property of the data).
    pub fn try_with_conductances(
        g: &Graph,
        conductance: Vec<f64>,
    ) -> Result<Self, ElectricalError> {
        Self::try_with_options(g, conductance, ElectricalOptions::default())
    }

    /// Custom conductances and solver options, or
    /// [`ElectricalError::Disconnected`] when no electrical flow exists.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, any conductance is nonpositive, or
    /// `tolerance` is not finite and positive.
    pub fn try_with_options(
        g: &Graph,
        conductance: Vec<f64>,
        opts: ElectricalOptions,
    ) -> Result<Self, ElectricalError> {
        assert_eq!(conductance.len(), g.m());
        assert!(conductance.iter().all(|&c| c > 0.0));
        assert!(
            opts.tolerance > 0.0 && opts.tolerance.is_finite(),
            "tolerance must be finite and positive"
        );
        if !g.is_connected() {
            return Err(ElectricalError::Disconnected);
        }
        let lap = CsrLaplacian::new(g, &conductance);
        Ok(ElectricalRouting {
            graph: g.clone(),
            conductance,
            lap,
            opts,
            potentials: Mutex::new(vec![None; g.n()]),
            solves: AtomicUsize::new(0),
            stats: None,
        })
    }

    /// Unit conductances on every edge.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (use
    /// [`ElectricalRouting::try_new`] to handle that as an error).
    pub fn new(g: &Graph) -> Self {
        Self::try_new(g).expect("electrical routing needs a connected graph")
    }

    /// Custom conductances.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, any conductance is nonpositive, or
    /// the graph is disconnected (use
    /// [`ElectricalRouting::try_with_conductances`] to handle the latter
    /// as an error).
    pub fn with_conductances(g: &Graph, conductance: Vec<f64>) -> Self {
        Self::try_with_conductances(g, conductance)
            .expect("electrical routing needs a connected graph")
    }

    /// Unit conductances with custom solver options.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or the options are invalid.
    pub fn with_options(g: &Graph, opts: ElectricalOptions) -> Self {
        Self::try_with_options(g, vec![1.0; g.m()], opts)
            .expect("electrical routing needs a connected graph")
    }

    /// The solver options this routing was built with.
    pub fn options(&self) -> ElectricalOptions {
        self.opts
    }

    /// Laplacian solves performed so far (lazy and precomputed alike) —
    /// `n` solves cover an all-pairs template.
    pub fn laplacian_solves(&self) -> usize {
        self.solves.load(Ordering::Relaxed)
    }

    /// Batch-solves `ψ_s` for every vertex up front, fanning sources
    /// over rayon workers (input-order collected, so the cache is
    /// bit-identical at any thread count), and records the build wall
    /// into [`ObliviousRouting::build_stats`]. The all-pairs template
    /// build: `O(n)` solves, after which every pair query is solve-free.
    pub fn precomputed(self) -> Self {
        let sources: Vec<VertexId> = (0..self.graph.n() as VertexId).collect();
        self.precompute_sources(&sources)
    }

    /// Batch-solves `ψ_s` for the given sources only — the shape the
    /// standing bench uses to time per-source solves on graphs too large
    /// for an `n × n` potentials cache.
    pub fn precompute_sources(mut self, sources: &[VertexId]) -> Self {
        let n = self.graph.n();
        let t0 = std::time::Instant::now(); // lint: allow(wall_clock) — feeds TemplateStageStats only
        let rhs: Vec<Vec<f64>> = sources.iter().map(|&s| source_rhs(n, s)).collect();
        let solved = self.lap.solve_batch(
            &rhs,
            self.opts.preconditioner,
            self.opts.tolerance,
            4 * n + 200,
        );
        let wall = t0.elapsed();
        self.solves.fetch_add(sources.len(), Ordering::Relaxed);
        {
            let mut cache = self.potentials.lock().expect("potentials cache lock");
            for (&s, sol) in sources.iter().zip(solved) {
                cache[s as usize] = Some(Arc::new(sol.potentials));
            }
        }
        let prev = self.stats.unwrap_or_default();
        self.stats = Some(TemplateStageStats {
            metric_wall: prev.metric_wall + wall,
            tree_wall: Duration::ZERO,
            load_wall: Duration::ZERO,
            total_wall: prev.total_wall + wall,
            tree_stage_parallel: false,
        });
        self
    }

    /// `ψ_s`, from the cache or via one solve. Solving happens outside
    /// the lock; a racing double-compute wastes work but yields the same
    /// bits, so first-write-wins keeps the cache deterministic.
    pub fn potential(&self, s: VertexId) -> Arc<Vec<f64>> {
        if let Some(p) = self.potentials.lock().expect("potentials cache lock")[s as usize].clone()
        {
            return p;
        }
        let n = self.graph.n();
        let b = source_rhs(n, s);
        self.solves.fetch_add(1, Ordering::Relaxed);
        let sol = self.lap.solve(
            &b,
            self.opts.preconditioner,
            self.opts.tolerance,
            4 * n + 200,
        );
        let psi = Arc::new(sol.potentials);
        let mut cache = self.potentials.lock().expect("potentials cache lock");
        let slot = &mut cache[s as usize];
        if slot.is_none() {
            *slot = Some(psi);
        }
        slot.clone().expect("slot was just filled")
    }

    /// The unit `s -> t` current per edge, from potential superposition:
    /// `L (ψ_s − ψ_t) = e_s − e_t`.
    fn pair_flow(&self, s: VertexId, t: VertexId) -> EdgeFlow {
        let ps = self.potential(s);
        let pt = self.potential(t);
        self.graph
            .edges()
            .map(|(e, (u, v))| {
                let du = ps[u as usize] - pt[u as usize];
                let dv = ps[v as usize] - pt[v as usize];
                self.conductance[e as usize] * (du - dv)
            })
            .collect()
    }

    /// Effective resistance between `s` and `t` via per-source
    /// potentials: `(ψ_s − ψ_t)[s] − (ψ_s − ψ_t)[t]`.
    pub fn effective_resistance_between(&self, s: VertexId, t: VertexId) -> f64 {
        let ps = self.potential(s);
        let pt = self.potential(t);
        (ps[s as usize] - pt[s as usize]) - (ps[t as usize] - pt[t as usize])
    }
}

/// The per-source right-hand side `e_s − (1/n)𝟙` (sums to 0 exactly in
/// exact arithmetic; within the relative kernel check in floats).
fn source_rhs(n: usize, s: VertexId) -> Vec<f64> {
    let mut b = vec![-1.0 / n as f64; n];
    b[s as usize] += 1.0;
    b
}

impl ObliviousRouting for ElectricalRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        let dist = self.path_distribution(s, t);
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for (p, w) in &dist {
            x -= w;
            if x <= 0.0 {
                return p.clone();
            }
        }
        // Floating-point residue landed past the end of the CDF: fall
        // back to an explicit, NaN-safe max over the weights instead of
        // whatever happens to be last in sort order.
        dist.into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("electrical distribution is never empty")
            .0
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        let flow = self.pair_flow(s, t);
        let mut parts = decompose(&self.graph, flow, s, t, 1e-9);
        // Numerical residue: renormalize to exactly 1.
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        assert!(total > 0.5, "electrical flow lost more than half its mass");
        for (_, w) in parts.iter_mut() {
            *w /= total;
        }
        // `total_cmp`, not `partial_cmp().unwrap()`: a NaN weight out of
        // a barely-converged CG solve must not panic the sort (it orders
        // deterministically instead).
        parts.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.edges().cmp(b.0.edges())));
        parts
    }

    fn build_stats(&self) -> Option<TemplateStageStats> {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_oblivious_routing;
    use ssor_graph::generators;

    #[test]
    fn laplacian_solver_on_path_graph() {
        // Path 0-1-2: unit current 0 -> 2 gives potential drops of 1 per
        // edge (resistance 1 each): phi_0 - phi_2 = 2.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let w = vec![1.0, 1.0];
        let r = effective_resistance(&g, &w, 0, 2);
        assert!((r - 2.0).abs() < 1e-6, "series resistance adds, got {r}");
    }

    #[test]
    fn parallel_edges_halve_resistance() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let r = effective_resistance(&g, &[1.0, 1.0], 0, 1);
        assert!((r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ring_splits_by_resistance() {
        // Ring of 5, 0 -> 2: sides have resistance 2 and 3; current splits
        // 3/5 vs 2/5.
        let g = generators::ring(5);
        let r = ElectricalRouting::new(&g);
        let dist = r.path_distribution(0, 2);
        assert_eq!(dist.len(), 2);
        assert!(
            (dist[0].1 - 0.6).abs() < 1e-6,
            "short side carries 3/5, got {}",
            dist[0].1
        );
        assert!((dist[1].1 - 0.4).abs() < 1e-6);
    }

    #[test]
    fn flow_conserves_on_grids() {
        let g = generators::grid(4, 4);
        let w = vec![1.0; g.m()];
        let flow = electrical_flow(&g, &w, 0, 15);
        assert!(ssor_flow::decompose::is_conserving(
            &g, &flow, 0, 15, 1.0, 1e-6
        ));
    }

    #[test]
    fn per_source_pair_flow_conserves_too() {
        let g = generators::grid(4, 4);
        let r = ElectricalRouting::new(&g);
        let flow = r.pair_flow(0, 15);
        assert!(ssor_flow::decompose::is_conserving(
            &g, &flow, 0, 15, 1.0, 1e-6
        ));
    }

    #[test]
    fn validates_as_oblivious_routing() {
        let g = generators::grid(3, 3);
        let r = ElectricalRouting::new(&g);
        validate_oblivious_routing(&r, &[(0, 8), (2, 6), (1, 5)]).unwrap();
    }

    #[test]
    fn disconnected_graphs_are_a_proper_error() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(
            ElectricalRouting::try_new(&g).unwrap_err(),
            ElectricalError::Disconnected
        );
        assert_eq!(
            ElectricalRouting::try_with_conductances(&g, vec![1.0; g.m()]).unwrap_err(),
            ElectricalError::Disconnected
        );
        // The panicking constructors still panic, with a telling message.
        let caught = std::panic::catch_unwind(|| ElectricalRouting::new(&g));
        assert!(caught.is_err());
    }

    #[test]
    fn conductance_bias_shifts_mass() {
        // Ring of 4, 0 -> 2, one side has 10x conductance.
        let g = generators::ring(4); // edges (0,1),(1,2),(2,3),(3,0)
        let r = ElectricalRouting::with_conductances(&g, vec![10.0, 10.0, 1.0, 1.0]);
        let dist = r.path_distribution(0, 2);
        // Side through vertex 1 has resistance 0.2, other side 2.0:
        // mass ratio 10:1.
        assert!(dist[0].1 > 0.85);
        assert_eq!(dist[0].0.vertices()[1], 1);
    }

    #[test]
    fn congestion_reasonable_on_hypercube_permutation() {
        use ssor_flow::Demand;
        let r = ElectricalRouting::new(&generators::hypercube(4));
        let d = Demand::hypercube_complement(4);
        let cong = r.congestion(&d);
        // Sanity window: better than single-path worst case, worse than 0.
        assert!(cong > 0.5 && cong < 16.0, "cong = {cong}");
    }

    #[test]
    fn all_pairs_template_costs_n_solves() {
        // The tentpole observable: querying every ordered pair costs n
        // Laplacian solves (one per source), not n(n-1).
        let g = generators::grid(4, 4);
        let n = g.n();
        let r = ElectricalRouting::new(&g);
        for s in 0..n as VertexId {
            for t in 0..n as VertexId {
                if s != t {
                    r.path_distribution(s, t);
                }
            }
        }
        assert_eq!(r.laplacian_solves(), n, "one solve per source");
        // And a precomputed build pays exactly the same n, up front.
        let pre = ElectricalRouting::new(&g).precomputed();
        assert_eq!(pre.laplacian_solves(), n);
        pre.path_distribution(0, 15);
        assert_eq!(
            pre.laplacian_solves(),
            n,
            "queries after precompute are solve-free"
        );
        assert!(pre.build_stats().is_some());
    }

    #[test]
    fn precomputed_matches_lazy_bitwise() {
        let (g, _, _) = generators::waxman_connected(30, 0.4, 0.25, 7, 16);
        let lazy = ElectricalRouting::new(&g);
        let pre = ElectricalRouting::new(&g).precomputed();
        for (s, t) in [(0, 29), (3, 17), (12, 5)] {
            let a = lazy.path_distribution(s, t);
            let b = pre.path_distribution(s, t);
            assert_eq!(a.len(), b.len());
            for ((pa, wa), (pb, wb)) in a.iter().zip(&b) {
                assert_eq!(pa.edges(), pb.edges());
                assert_eq!(wa.to_bits(), wb.to_bits());
            }
        }
    }

    #[test]
    fn per_source_resistance_matches_reference_and_closed_forms() {
        // Ring closed form: R(0, k) = k(n−k)/n.
        let n = 8;
        let g = generators::ring(n);
        let w = vec![1.0; g.m()];
        let r = ElectricalRouting::new(&g);
        for k in 1..n {
            let expect = (k * (n - k)) as f64 / n as f64;
            let per_source = r.effective_resistance_between(0, k as VertexId);
            let per_pair = effective_resistance(&g, &w, 0, k as VertexId);
            assert!(
                (per_source - expect).abs() < 1e-8,
                "ring R(0,{k}): per-source {per_source} vs closed form {expect}"
            );
            assert!(
                (per_source - per_pair).abs() < 1e-8,
                "ring R(0,{k}): per-source {per_source} vs per-pair {per_pair}"
            );
        }
        // Grid spot checks against the per-pair reference.
        let g = generators::grid(4, 4);
        let w = vec![1.0; g.m()];
        let r = ElectricalRouting::new(&g);
        for (s, t) in [(0, 15), (1, 14), (5, 10)] {
            let a = r.effective_resistance_between(s, t);
            let b = effective_resistance(&g, &w, s, t);
            assert!((a - b).abs() < 1e-8, "grid R({s},{t}): {a} vs {b}");
        }
    }

    #[test]
    fn kernel_check_is_relative_not_absolute() {
        // Legitimately scaled demand vectors must not panic...
        let g = generators::ring(6);
        let w = vec![1.0; g.m()];
        let mut big = vec![0.0; 6];
        big[0] = 1e300;
        big[3] = -1e300;
        let phi = solve_laplacian(&g, &w, &big, 1e-10, 200);
        assert!(phi.iter().all(|p| p.is_finite()));
        // ...and neither must denormal-scale ones.
        let mut tiny = vec![0.0; 6];
        tiny[0] = 1e-310;
        tiny[3] = -1e-310;
        let phi = solve_laplacian(&g, &w, &tiny, 1e-10, 200);
        assert_eq!(phi.len(), 6);
    }

    #[test]
    #[should_panic(expected = "orthogonal to the kernel")]
    fn kernel_check_rejects_full_relative_drift() {
        // 100% relative drift at tiny absolute scale: the old absolute
        // `|Σb| < 1e-6` check accepted this silently.
        let g = generators::ring(4);
        let w = vec![1.0; g.m()];
        solve_laplacian(&g, &w, &[1e-9, 1e-9, 0.0, 0.0], 1e-10, 10);
    }

    #[test]
    fn options_are_respected() {
        let g = generators::grid(3, 3);
        let loose = ElectricalRouting::with_options(
            &g,
            ElectricalOptions {
                tolerance: 1e-4,
                preconditioner: Preconditioner::None,
            },
        );
        assert_eq!(loose.options().preconditioner, Preconditioner::None);
        // Both settings still produce a valid routing.
        validate_oblivious_routing(&loose, &[(0, 8), (2, 6)])
            .expect("loose-tolerance electrical routing must validate");
    }
}
