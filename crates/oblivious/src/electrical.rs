//! Electrical-flow oblivious routing, with a conjugate-gradient Laplacian
//! solver as the substrate.
//!
//! Routing `s -> t` along the unit electrical current (potentials solving
//! `L φ = e_s - e_t`) is a classic *demand-independent* fractional routing:
//! the current is acyclic (flows down potential), so it decomposes into a
//! distribution over simple paths — an oblivious routing in the paper's
//! sense. Its worst-case competitiveness is polynomial, not polylog
//! (it is the baseline the tree-based schemes beat), which makes it a
//! useful comparison point for the A1 ablation.

use crate::traits::ObliviousRouting;
use rand::{Rng, RngCore};
use ssor_flow::decompose::{decompose, EdgeFlow};
use ssor_graph::{Graph, Path, VertexId};

/// Sparse symmetric Laplacian application: `y = L x` for the weighted
/// graph Laplacian with conductance `w_e` per edge.
fn apply_laplacian(g: &Graph, w: &[f64], x: &[f64], y: &mut [f64]) {
    y.iter_mut().for_each(|v| *v = 0.0);
    for (e, (u, v)) in g.edges() {
        let c = w[e as usize];
        let d = x[u as usize] - x[v as usize];
        y[u as usize] += c * d;
        y[v as usize] -= c * d;
    }
}

/// Solves `L φ = b` (with `b ⊥ 1`) by conjugate gradients on the
/// pseudo-inverse, keeping iterates orthogonal to the all-ones kernel.
/// Returns the potentials (mean-centered).
///
/// # Panics
///
/// Panics if `b` does not sum to (nearly) zero or dimensions mismatch.
pub fn solve_laplacian(g: &Graph, w: &[f64], b: &[f64], tol: f64, max_iters: usize) -> Vec<f64> {
    let n = g.n();
    assert_eq!(b.len(), n);
    assert_eq!(w.len(), g.m());
    let bsum: f64 = b.iter().sum();
    assert!(
        bsum.abs() < 1e-6,
        "b must be orthogonal to the kernel (sum {bsum})"
    );

    let center = |x: &mut Vec<f64>| {
        let mean = x.iter().sum::<f64>() / n as f64;
        x.iter_mut().for_each(|v| *v -= mean);
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    center(&mut r);
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs: f64 = r.iter().map(|v| v * v).sum();
    let b_norm = rs.sqrt().max(1e-30);

    for _ in 0..max_iters {
        if rs.sqrt() <= tol * b_norm {
            break;
        }
        apply_laplacian(g, w, &p, &mut ap);
        let pap: f64 = p.iter().zip(ap.iter()).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-300 {
            break;
        }
        let alpha = rs / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs;
        rs = rs_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    center(&mut x);
    x
}

/// The unit `s -> t` electrical flow (currents per edge, oriented along
/// the stored edge direction), for unit conductances scaled by `w`.
pub fn electrical_flow(g: &Graph, w: &[f64], s: VertexId, t: VertexId) -> EdgeFlow {
    let n = g.n();
    let mut b = vec![0.0; n];
    b[s as usize] = 1.0;
    b[t as usize] = -1.0;
    let phi = solve_laplacian(g, w, &b, 1e-10, 4 * n + 200);
    g.edges()
        .map(|(e, (u, v))| w[e as usize] * (phi[u as usize] - phi[v as usize]))
        .collect()
}

/// Effective resistance between `s` and `t` under conductances `w`.
pub fn effective_resistance(g: &Graph, w: &[f64], s: VertexId, t: VertexId) -> f64 {
    let n = g.n();
    let mut b = vec![0.0; n];
    b[s as usize] = 1.0;
    b[t as usize] = -1.0;
    let phi = solve_laplacian(g, w, &b, 1e-10, 4 * n + 200);
    phi[s as usize] - phi[t as usize]
}

/// Why an [`ElectricalRouting`] could not be constructed.
///
/// The Laplacian of a disconnected graph has a larger kernel than the
/// all-ones vector, so "the" electrical flow between components does not
/// exist — the solver would silently return an arbitrary vector instead
/// of a routing. The fallible constructors surface that as a proper
/// error rather than asserting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectricalError {
    /// The graph is disconnected; no electrical flow exists between
    /// components.
    Disconnected,
}

impl std::fmt::Display for ElectricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElectricalError::Disconnected => {
                write!(f, "electrical routing needs a connected graph")
            }
        }
    }
}

impl std::error::Error for ElectricalError {}

/// Oblivious routing along unit electrical flows (unit conductances).
///
/// # Examples
///
/// ```
/// use ssor_oblivious::{ElectricalRouting, ObliviousRouting};
///
/// let g = ssor_graph::generators::ring(6);
/// let r = ElectricalRouting::new(&g);
/// let dist = r.path_distribution(0, 3);
/// // The two sides of the ring have equal resistance: 50/50 split.
/// assert_eq!(dist.len(), 2);
/// assert!((dist[0].1 - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct ElectricalRouting {
    graph: Graph,
    conductance: Vec<f64>,
}

impl ElectricalRouting {
    /// Unit conductances on every edge, or
    /// [`ElectricalError::Disconnected`] when no electrical flow exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_graph::Graph;
    /// use ssor_oblivious::{ElectricalError, ElectricalRouting};
    ///
    /// let split = Graph::from_edges(4, &[(0, 1), (2, 3)]);
    /// assert_eq!(
    ///     ElectricalRouting::try_new(&split).unwrap_err(),
    ///     ElectricalError::Disconnected,
    /// );
    /// ```
    pub fn try_new(g: &Graph) -> Result<Self, ElectricalError> {
        Self::try_with_conductances(g, vec![1.0; g.m()])
    }

    /// Custom conductances, or [`ElectricalError::Disconnected`] when no
    /// electrical flow exists.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or any conductance is nonpositive
    /// (both are caller bugs, unlike disconnection, which can be a
    /// property of the data).
    pub fn try_with_conductances(
        g: &Graph,
        conductance: Vec<f64>,
    ) -> Result<Self, ElectricalError> {
        assert_eq!(conductance.len(), g.m());
        assert!(conductance.iter().all(|&c| c > 0.0));
        if !g.is_connected() {
            return Err(ElectricalError::Disconnected);
        }
        Ok(ElectricalRouting {
            graph: g.clone(),
            conductance,
        })
    }

    /// Unit conductances on every edge.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (use
    /// [`ElectricalRouting::try_new`] to handle that as an error).
    pub fn new(g: &Graph) -> Self {
        Self::try_new(g).expect("electrical routing needs a connected graph")
    }

    /// Custom conductances.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, any conductance is nonpositive, or
    /// the graph is disconnected (use
    /// [`ElectricalRouting::try_with_conductances`] to handle the latter
    /// as an error).
    pub fn with_conductances(g: &Graph, conductance: Vec<f64>) -> Self {
        Self::try_with_conductances(g, conductance)
            .expect("electrical routing needs a connected graph")
    }
}

impl ObliviousRouting for ElectricalRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        let dist = self.path_distribution(s, t);
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for (p, w) in &dist {
            x -= w;
            if x <= 0.0 {
                return p.clone();
            }
        }
        // Floating-point residue landed past the end of the CDF: fall
        // back to an explicit, NaN-safe max over the weights instead of
        // whatever happens to be last in sort order.
        dist.into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("electrical distribution is never empty")
            .0
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        let flow = electrical_flow(&self.graph, &self.conductance, s, t);
        let mut parts = decompose(&self.graph, flow, s, t, 1e-9);
        // Numerical residue: renormalize to exactly 1.
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        assert!(total > 0.5, "electrical flow lost more than half its mass");
        for (_, w) in parts.iter_mut() {
            *w /= total;
        }
        // `total_cmp`, not `partial_cmp().unwrap()`: a NaN weight out of
        // a barely-converged CG solve must not panic the sort (it orders
        // deterministically instead).
        parts.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.edges().cmp(b.0.edges())));
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_oblivious_routing;
    use ssor_graph::generators;

    #[test]
    fn laplacian_solver_on_path_graph() {
        // Path 0-1-2: unit current 0 -> 2 gives potential drops of 1 per
        // edge (resistance 1 each): phi_0 - phi_2 = 2.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let w = vec![1.0, 1.0];
        let r = effective_resistance(&g, &w, 0, 2);
        assert!((r - 2.0).abs() < 1e-6, "series resistance adds, got {r}");
    }

    #[test]
    fn parallel_edges_halve_resistance() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let r = effective_resistance(&g, &[1.0, 1.0], 0, 1);
        assert!((r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ring_splits_by_resistance() {
        // Ring of 5, 0 -> 2: sides have resistance 2 and 3; current splits
        // 3/5 vs 2/5.
        let g = generators::ring(5);
        let r = ElectricalRouting::new(&g);
        let dist = r.path_distribution(0, 2);
        assert_eq!(dist.len(), 2);
        assert!(
            (dist[0].1 - 0.6).abs() < 1e-6,
            "short side carries 3/5, got {}",
            dist[0].1
        );
        assert!((dist[1].1 - 0.4).abs() < 1e-6);
    }

    #[test]
    fn flow_conserves_on_grids() {
        let g = generators::grid(4, 4);
        let w = vec![1.0; g.m()];
        let flow = electrical_flow(&g, &w, 0, 15);
        assert!(ssor_flow::decompose::is_conserving(
            &g, &flow, 0, 15, 1.0, 1e-6
        ));
    }

    #[test]
    fn validates_as_oblivious_routing() {
        let g = generators::grid(3, 3);
        let r = ElectricalRouting::new(&g);
        validate_oblivious_routing(&r, &[(0, 8), (2, 6), (1, 5)]).unwrap();
    }

    #[test]
    fn disconnected_graphs_are_a_proper_error() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(
            ElectricalRouting::try_new(&g).unwrap_err(),
            ElectricalError::Disconnected
        );
        assert_eq!(
            ElectricalRouting::try_with_conductances(&g, vec![1.0; g.m()]).unwrap_err(),
            ElectricalError::Disconnected
        );
        // The panicking constructors still panic, with a telling message.
        let caught = std::panic::catch_unwind(|| ElectricalRouting::new(&g));
        assert!(caught.is_err());
    }

    #[test]
    fn conductance_bias_shifts_mass() {
        // Ring of 4, 0 -> 2, one side has 10x conductance.
        let g = generators::ring(4); // edges (0,1),(1,2),(2,3),(3,0)
        let r = ElectricalRouting::with_conductances(&g, vec![10.0, 10.0, 1.0, 1.0]);
        let dist = r.path_distribution(0, 2);
        // Side through vertex 1 has resistance 0.2, other side 2.0:
        // mass ratio 10:1.
        assert!(dist[0].1 > 0.85);
        assert_eq!(dist[0].0.vertices()[1], 1);
    }

    #[test]
    fn congestion_reasonable_on_hypercube_permutation() {
        use ssor_flow::Demand;
        let r = ElectricalRouting::new(&generators::hypercube(4));
        let d = Demand::hypercube_complement(4);
        let cong = r.congestion(&d);
        // Sanity window: better than single-path worst case, worse than 0.
        assert!(cong > 0.5 && cong < 16.0, "cong = {cong}");
    }
}
