//! Hypercube routings: Valiant–Brebner randomized routing `[VB81]` and the
//! deterministic greedy bit-fixing strawman it repairs.
//!
//! Valiant's trick (Section 3 / Section 5.1 of the paper): route `s -> t`
//! by greedily bit-fixing `s -> w` for a uniformly random intermediate `w`,
//! then `w -> t`. For any permutation demand the expected congestion of any
//! edge is `O(1)`.
//!
//! Deterministic bit-fixing alone is the classic negative example: on the
//! bit-reversal or transpose permutations its congestion is `Θ(sqrt(n))`
//! `[KKT91]`, which experiment E4 regenerates.

use crate::traits::{DistributionBuilder, ObliviousRouting};
use rand::{Rng, RngCore};

use ssor_graph::{generators, Graph, Path, VertexId};

/// Greedy bit-fixing vertex sequence from `s` to `t` (ascending bit order).
fn bit_fix_vertices(s: VertexId, t: VertexId, dim: u32) -> Vec<VertexId> {
    let mut verts = vec![s];
    let mut cur = s;
    for b in 0..dim {
        if (cur ^ t) & (1 << b) != 0 {
            cur ^= 1 << b;
            verts.push(cur);
        }
    }
    verts
}

/// The Valiant–Brebner oblivious routing on the `dim`-dimensional
/// hypercube: uniform random intermediate, greedy bit-fixing on both legs,
/// with the concatenation shortcut to a simple path.
///
/// # Examples
///
/// ```
/// use ssor_oblivious::{ObliviousRouting, ValiantRouting};
/// use rand::SeedableRng;
///
/// let r = ValiantRouting::new(4);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let p = r.sample_path(0, 15, &mut rng);
/// assert_eq!(p.source(), 0);
/// assert_eq!(p.target(), 15);
/// assert!(p.is_simple());
/// ```
#[derive(Debug)]
pub struct ValiantRouting {
    dim: u32,
    graph: Graph,
}

impl ValiantRouting {
    /// Creates the routing on a fresh `dim`-dimensional hypercube.
    pub fn new(dim: u32) -> Self {
        ValiantRouting {
            dim,
            graph: generators::hypercube(dim),
        }
    }

    /// The hypercube dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The (simple) two-leg path through intermediate `w`.
    pub fn path_via(&self, s: VertexId, t: VertexId, w: VertexId) -> Path {
        let mut verts = bit_fix_vertices(s, w, self.dim);
        verts.extend_from_slice(&bit_fix_vertices(w, t, self.dim)[1..]);
        Path::from_vertices(&self.graph, &verts)
            .expect("bit-fixing steps are hypercube edges")
            .shortcut()
    }
}

impl ObliviousRouting for ValiantRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t, "no path needed for s == t");
        let n = 1u32 << self.dim;
        let w = rng.gen_range(0..n);
        self.path_via(s, t, w)
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        let n = 1u32 << self.dim;
        let mut acc = DistributionBuilder::new();
        let w_prob = 1.0 / n as f64;
        for w in 0..n {
            acc.add(&self.path_via(s, t, w), w_prob);
        }
        acc.finish()
    }
}

/// Deterministic greedy bit-fixing: the unique ascending-bit path. This is
/// a 1-sparse *deterministic* oblivious routing — exactly the object the
/// `Ω̃(sqrt(n))` lower bound of `[KKT91]` applies to.
#[derive(Debug)]
pub struct BitFixingRouting {
    dim: u32,
    graph: Graph,
}

impl BitFixingRouting {
    /// Creates the routing on a fresh `dim`-dimensional hypercube.
    pub fn new(dim: u32) -> Self {
        BitFixingRouting {
            dim,
            graph: generators::hypercube(dim),
        }
    }

    /// The deterministic path for `(s, t)`.
    pub fn path(&self, s: VertexId, t: VertexId) -> Path {
        Path::from_vertices(&self.graph, &bit_fix_vertices(s, t, self.dim))
            .expect("bit-fixing steps are hypercube edges")
    }
}

impl ObliviousRouting for BitFixingRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, _rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        self.path(s, t)
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        vec![(self.path(s, t), 1.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_oblivious_routing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_flow::Demand;
    use std::collections::HashMap;

    #[test]
    fn bit_fixing_path_is_shortest() {
        let r = BitFixingRouting::new(4);
        for (s, t) in [(0u32, 15u32), (3, 9), (5, 6)] {
            let p = r.path(s, t);
            assert_eq!(p.hop(), (s ^ t).count_ones() as usize);
            assert!(p.is_simple());
        }
    }

    #[test]
    fn valiant_paths_are_simple_and_correct() {
        let r = ValiantRouting::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            use rand::Rng;
            let s = rng.gen_range(0..16);
            let mut t = rng.gen_range(0..16);
            if s == t {
                t = (t + 1) % 16;
            }
            let p = r.sample_path(s, t, &mut rng);
            assert_eq!(p.source(), s);
            assert_eq!(p.target(), t);
            assert!(p.is_simple());
            assert!(p.is_valid(r.graph()));
            assert!(p.hop() <= 2 * 4);
        }
    }

    #[test]
    fn distributions_validate() {
        let v = ValiantRouting::new(3);
        let b = BitFixingRouting::new(3);
        let pairs: Vec<(u32, u32)> = (0..8)
            .flat_map(|s| (0..8).filter(move |&t| t != s).map(move |t| (s, t)))
            .collect();
        validate_oblivious_routing(&v, &pairs).unwrap();
        validate_oblivious_routing(&b, &pairs).unwrap();
    }

    #[test]
    fn valiant_congestion_on_permutation_is_constant_like() {
        // cong(R, d) for a random permutation should be O(1) (small),
        // while deterministic bit-fixing on bit-reversal is much larger.
        let dim = 5;
        let v = ValiantRouting::new(dim);
        let d = Demand::hypercube_bit_reversal(dim);
        let cv = v.congestion(&d);
        let b = BitFixingRouting::new(dim);
        let cb = b.congestion(&d);
        assert!(cv < cb, "valiant {cv} should beat bit-fixing {cb}");
        assert!(
            cb >= (1u64 << (dim / 2)) as f64 / 2.0,
            "bit-reversal forces sqrt(n)-ish congestion, got {cb}"
        );
    }

    #[test]
    fn path_via_matches_distribution_mass() {
        let v = ValiantRouting::new(3);
        let dist = v.path_distribution(0, 7);
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The direct path s->t appears whenever w lies on it; mass of each
        // merged path is a multiple of 1/8.
        for (_, w) in &dist {
            let k = w * 8.0;
            assert!((k - k.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_frequencies_match_distribution() {
        let v = ValiantRouting::new(3);
        let dist = v.path_distribution(1, 6);
        let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 4000;
        for _ in 0..trials {
            let p = v.sample_path(1, 6, &mut rng);
            *counts.entry(p.edges().to_vec()).or_insert(0) += 1;
        }
        for (p, w) in &dist {
            let f = *counts.get(p.edges()).unwrap_or(&0) as f64 / trials as f64;
            assert!(
                (f - w).abs() < 0.05,
                "path {:?}: empirical {f} vs exact {w}",
                p
            );
        }
    }
}
