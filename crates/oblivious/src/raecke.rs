//! Räcke-style oblivious routing: a multiplicative-weights-built mixture of
//! FRT tree routings `[Räc08]`.
//!
//! Räcke's `O(log n)`-competitive construction finds a distribution over
//! decomposition trees minimizing the maximum *relative load* any edge
//! suffers when the whole graph ("each edge routes its own capacity") is
//! routed through a tree. His reduction is exactly a multiplicative-weights
//! game whose oracle is a low-distortion tree embedding; we instantiate the
//! oracle with FRT trees over the adaptively re-weighted length metric.
//! This is also precisely the construction SMORE `[KYY+18]` samples from in
//! production traffic engineering.
//!
//! The multiplicative-weights *iterations* are inherently sequential (each
//! metric depends on the previous loads), but everything inside one
//! iteration is rayon-parallel with thread-count-invariant output: the
//! all-pairs metric fans its Dijkstra trees over workers
//! ([`Metric::build`]), and the canonical-load accumulation walks its `m`
//! tree paths in fixed edge blocks merged through
//! [`EdgeLoads::par_merge`]. Where the build time went is recorded as a
//! [`TemplateStageStats`] (see [`RaeckeRouting::build_stats`]).

use crate::frt::{sample_trees_for_metric, FrtTree, Metric, TreeRouting};
use crate::traits::{DistributionBuilder, ObliviousRouting, TemplateStageStats};
use rand::{Rng, RngCore};
use ssor_graph::{par_ordered_map, EdgeLoads, Graph, Path, VertexId};
use std::sync::Arc;
use std::time::Instant;

/// Options for [`RaeckeRouting::build`].
#[derive(Debug, Clone)]
pub struct RaeckeOptions {
    /// Number of trees in the mixture.
    pub iterations: usize,
    /// Multiplicative-weights learning rate.
    pub epsilon: f64,
}

impl Default for RaeckeOptions {
    fn default() -> Self {
        RaeckeOptions {
            iterations: 12,
            epsilon: 0.5,
        }
    }
}

/// Canonical demands are walked in fixed blocks of this many edges; the
/// block structure is part of the deterministic contract (every partial
/// is a sum of unit loads, so the merged result equals the serial sweep
/// bit for bit at any thread count).
const LOAD_BLOCK_EDGES: usize = 64;

/// Cap on the multiplicative penalty exponent. Out-of-range learning
/// rates (or a NaN load ratio) would otherwise push `exp` to infinity in
/// a single step; `0.5 * ld / rho <= 0.5` in any sane configuration, so
/// the clamp is bit-invisible there.
const MAX_PENALTY_EXPONENT: f64 = 600.0;

/// Cap on the max/min length ratio after renormalization (`2^40`).
/// Repeated `exp` scaling grows the ratio by up to `e^epsilon` per
/// iteration, which overflows to infinity (and then `inf/inf = NaN` once
/// every edge is loaded) on long runs; relative lengths beyond this cap
/// cannot meaningfully change a shortest path, so they saturate instead.
/// Normal runs stay far below it and are bitwise unaffected.
const MAX_LENGTH_RATIO: f64 = 1.099511627776e12;

/// A mixture of FRT tree routings built by multiplicative weights.
///
/// # Examples
///
/// ```
/// use ssor_oblivious::{ObliviousRouting, RaeckeRouting};
/// use rand::SeedableRng;
///
/// let g = ssor_graph::generators::grid(3, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = RaeckeRouting::build(&g, &Default::default(), &mut rng);
/// let mut rng2 = rand::rngs::StdRng::seed_from_u64(2);
/// let p = r.sample_path(0, 8, &mut rng2);
/// assert_eq!((p.source(), p.target()), (0, 8));
/// ```
#[derive(Debug)]
pub struct RaeckeRouting {
    graph: Graph,
    trees: Vec<TreeRouting>,
    /// Mixture weights, summing to 1.
    weights: Vec<f64>,
    /// Max relative load per iteration (diagnostic; Räcke's objective).
    relative_loads: Vec<f64>,
    /// Where the construction spent its wall-clock.
    stats: TemplateStageStats,
}

/// The canonical "every edge ships one unit between its endpoints" load
/// of one tree routing: `canonical` lists the endpoint pairs (with
/// multiplicity for parallel edges), walked in fixed
/// [`LOAD_BLOCK_EDGES`]-sized blocks fanned over rayon workers and merged
/// in block order. All contributions are exact unit sums, so the result
/// is bit-identical to the serial edge-order sweep at any thread count.
fn canonical_loads(g: &Graph, tr: &TreeRouting, canonical: &[(VertexId, VertexId)]) -> EdgeLoads {
    let m = g.m();
    let block_load = |chunk: &[(VertexId, VertexId)]| {
        let mut load = EdgeLoads::zeros(m);
        for &(u, v) in chunk {
            load.add_edges(tr.path(g, u, v).edges(), 1.0);
        }
        load
    };
    let blocks: Vec<&[(VertexId, VertexId)]> = canonical.chunks(LOAD_BLOCK_EDGES).collect();
    // One worker (or one block): a single accumulation pass, no partials
    // to materialize. Unit sums are exact, so both paths agree bit for
    // bit.
    if blocks.len() == 1 || rayon::current_num_threads() == 1 {
        return block_load(canonical);
    }
    let partials = par_ordered_map(&blocks, 2, |chunk| block_load(chunk));
    EdgeLoads::par_merge(&partials)
}

impl RaeckeRouting {
    /// Builds the mixture on `g`.
    ///
    /// Each iteration: (1) build the length metric from the current edge
    /// weights, (2) sample an FRT tree for it, (3) route the canonical
    /// "every edge ships one unit between its endpoints" demand through the
    /// tree and record each edge's load, (4) multiplicatively penalize
    /// loaded edges so the next tree avoids them.
    ///
    /// Steps (1) and (3) run rayon-parallel with thread-count-invariant
    /// output; step (2) deliberately stays on the caller's threaded RNG
    /// (the crate-private serial path, `FrtTree::sample`) because the
    /// iterations are sequential anyway, and the mixture's byte-stable
    /// output stream is pinned to it.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or has no edges.
    pub fn build<R: Rng + ?Sized>(g: &Graph, opts: &RaeckeOptions, rng: &mut R) -> Self {
        assert!(g.m() > 0, "graph must have edges");
        assert!(g.is_connected(), "Raecke routing needs a connected graph");
        assert!(opts.iterations > 0);
        // Stage timings below feed TemplateStageStats — diagnostics only,
        // never part of the deterministic report surface.
        let build_start = Instant::now(); // lint: allow(wall_clock)
        let m = g.m();
        let canonical: Vec<(VertexId, VertexId)> = g.edges().map(|(_, uv)| uv).collect();
        let mut lengths = vec![1.0f64; m];
        let mut trees = Vec::with_capacity(opts.iterations);
        let mut relative_loads = Vec::with_capacity(opts.iterations);
        let mut stats = TemplateStageStats::default();

        for _ in 0..opts.iterations {
            let lens = lengths.clone();
            let stage = Instant::now(); // lint: allow(wall_clock)
            let metric = Arc::new(Metric::build(g, &move |e| lens[e as usize]));
            stats.metric_wall += stage.elapsed();

            let stage = Instant::now(); // lint: allow(wall_clock)
            let tree = Arc::new(FrtTree::sample(&metric, g.n(), rng));
            let tr = TreeRouting::new(Arc::clone(&metric), tree);
            stats.tree_wall += stage.elapsed();

            let stage = Instant::now(); // lint: allow(wall_clock)
            let load = canonical_loads(g, &tr, &canonical);
            stats.load_wall += stage.elapsed();
            let rho = load.max().max(1.0);
            relative_loads.push(rho);

            // Multiplicative penalty, then renormalize to keep lengths
            // bounded. The exponent and ratio clamps only bite in
            // degenerate regimes (huge learning rates, very long runs)
            // where the unclamped update overflows to inf/NaN.
            for (l, ld) in lengths.iter_mut().zip(load.iter()) {
                *l *= (opts.epsilon * ld / rho).min(MAX_PENALTY_EXPONENT).exp();
            }
            let min_len = lengths.iter().cloned().fold(f64::INFINITY, f64::min);
            for l in lengths.iter_mut() {
                *l = (*l / min_len).min(MAX_LENGTH_RATIO);
            }

            trees.push(tr);
        }
        stats.total_wall = build_start.elapsed();
        let w = 1.0 / trees.len() as f64;
        RaeckeRouting {
            graph: g.clone(),
            weights: vec![w; trees.len()],
            relative_loads,
            trees,
            stats,
        }
    }

    /// A uniform mixture over explicitly-provided tree routings (no
    /// multiplicative-weights adaptation) — the carrier for the plain
    /// "FRT ensemble" template built by [`RaeckeRouting::frt_ensemble`].
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty.
    pub fn uniform_mixture(g: &Graph, trees: Vec<TreeRouting>) -> Self {
        assert!(!trees.is_empty(), "a mixture needs at least one tree");
        let w = 1.0 / trees.len() as f64;
        RaeckeRouting {
            graph: g.clone(),
            weights: vec![w; trees.len()],
            relative_loads: Vec::new(),
            trees,
            stats: TemplateStageStats::default(),
        }
    }

    /// The plain FRT-ensemble template: `count` hop-metric trees, each
    /// sampled from its own derived seed stream
    /// ([`crate::frt::tree_seed`]), mixed uniformly.
    ///
    /// Unlike [`RaeckeRouting::build`], every tree here is independent of
    /// the others, so the whole ensemble fans out over rayon workers —
    /// the construction is a pure, thread-count-invariant function of
    /// `(g, count, seed)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_oblivious::{ObliviousRouting, RaeckeRouting};
    ///
    /// let g = ssor_graph::generators::grid(3, 3);
    /// let r = RaeckeRouting::frt_ensemble(&g, 8, 42);
    /// assert_eq!(r.trees().len(), 8);
    /// let dist = r.path_distribution(0, 8);
    /// let total: f64 = dist.iter().map(|(_, w)| w).sum();
    /// assert!((total - 1.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `g` has no edges, or `g` is disconnected.
    pub fn frt_ensemble(g: &Graph, count: usize, seed: u64) -> Self {
        assert!(count > 0, "ensemble needs at least one tree");
        assert!(g.m() > 0, "graph must have edges");
        assert!(g.is_connected(), "FRT ensemble needs a connected graph");
        // Stage timings feed TemplateStageStats — diagnostics only.
        let build_start = Instant::now(); // lint: allow(wall_clock)
        let stage = Instant::now(); // lint: allow(wall_clock)
        let metric = Arc::new(Metric::hops(g));
        let metric_wall = stage.elapsed();
        let stage = Instant::now(); // lint: allow(wall_clock)
        let trees = sample_trees_for_metric(g, &metric, count, seed);
        let tree_wall = stage.elapsed();
        let mut mixture = RaeckeRouting::uniform_mixture(g, trees);
        mixture.stats = TemplateStageStats {
            metric_wall,
            tree_wall,
            load_wall: std::time::Duration::ZERO,
            total_wall: build_start.elapsed(),
            tree_stage_parallel: true,
        };
        mixture
    }

    /// The trees in the mixture.
    pub fn trees(&self) -> &[TreeRouting] {
        &self.trees
    }

    /// Max relative load observed at each iteration (diagnostic; empty
    /// for mixtures not built by multiplicative weights).
    pub fn relative_loads(&self) -> &[f64] {
        &self.relative_loads
    }
}

impl ObliviousRouting for RaeckeRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        // Renormalized CDF: scale the uniform draw by the actual weight
        // sum, so floating-point shortfall (weights summing to slightly
        // under 1) cannot silently shift residual mass onto the last
        // tree — tree `i` is drawn with probability `w_i / total`,
        // matching `path_distribution` exactly.
        let total: f64 = self.weights.iter().sum();
        let mut x = rng.gen::<f64>() * total;
        for (tr, &w) in self.trees.iter().zip(self.weights.iter()) {
            x -= w;
            if x <= 0.0 {
                return tr.path(&self.graph, s, t);
            }
        }
        // Unreachable for positive weights (the subtractions telescope
        // to `(u - 1) * total <= 0`); kept as a safe landing for an
        // all-zero-weight mixture.
        self.trees.last().unwrap().path(&self.graph, s, t)
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        let mut acc = DistributionBuilder::new();
        for (tr, &w) in self.trees.iter().zip(self.weights.iter()) {
            acc.add(&tr.path(&self.graph, s, t), w);
        }
        acc.finish()
    }

    fn build_stats(&self) -> Option<TemplateStageStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_oblivious_routing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_flow::solver::{min_congestion_unrestricted, SolveOptions};
    use ssor_flow::Demand;
    use ssor_graph::generators;

    #[test]
    fn builds_and_validates_on_grid() {
        let g = generators::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let r = RaeckeRouting::build(&g, &Default::default(), &mut rng);
        let pairs: Vec<(u32, u32)> = vec![(0, 8), (2, 6), (1, 7), (3, 5)];
        validate_oblivious_routing(&r, &pairs).unwrap();
        assert_eq!(r.trees().len(), 12);
        let stats = r.build_stats().expect("raecke tracks build stats");
        assert!(stats.total_wall.as_nanos() > 0);
        assert!(stats.metric_wall + stats.tree_wall + stats.load_wall <= stats.total_wall * 2);
    }

    #[test]
    fn competitive_on_random_demands() {
        // The mixture should be within a polylog factor of OPT on random
        // permutation demands; we assert a loose factor.
        let g = generators::random_regular(24, 3, &mut StdRng::seed_from_u64(5));
        let mut rng = StdRng::seed_from_u64(2);
        let r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 16,
                epsilon: 0.5,
            },
            &mut rng,
        );
        let d = Demand::random_permutation(24, &mut rng);
        let cong = r.congestion(&d);
        let opt = min_congestion_unrestricted(&g, &d, &SolveOptions::default());
        let ratio = cong / opt.lower_bound.max(1e-9);
        assert!(
            ratio < 20.0,
            "Raecke ratio {ratio} too large (cong {cong}, opt lb {})",
            opt.lower_bound
        );
    }

    #[test]
    fn relative_loads_trend_reasonably() {
        let g = generators::ring(12);
        let mut rng = StdRng::seed_from_u64(3);
        let r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 10,
                epsilon: 0.5,
            },
            &mut rng,
        );
        assert_eq!(r.relative_loads().len(), 10);
        for &rho in r.relative_loads() {
            assert!(rho >= 1.0);
            // A ring has 12 edges; no tree should overload an edge by more
            // than the total canonical demand.
            assert!(rho <= 12.0);
        }
    }

    #[test]
    fn extreme_learning_rates_survive_without_nan() {
        // Regression: repeated `exp` scaling used to drive length ratios
        // to inf (then `inf/inf = NaN` once every edge was loaded), which
        // poisoned the metric and eventually overflowed the FRT levels
        // loop. The exponent/ratio clamps must keep long, hot runs finite
        // and the resulting mixture valid.
        let g = generators::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 40,
                epsilon: 50.0,
            },
            &mut rng,
        );
        assert_eq!(r.relative_loads().len(), 40);
        for &rho in r.relative_loads() {
            assert!(rho.is_finite() && rho >= 1.0, "rho = {rho}");
        }
        validate_oblivious_routing(&r, &[(0, 8), (2, 6)]).unwrap();
    }

    #[test]
    fn high_iteration_runs_stay_finite() {
        // The same overflow reached via many mild steps instead of a few
        // huge ones: 600 iterations at epsilon 2.0 pushes the unclamped
        // ratio toward e^1200 >> f64::MAX.
        let g = generators::ring(6);
        let mut rng = StdRng::seed_from_u64(8);
        let r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 600,
                epsilon: 2.0,
            },
            &mut rng,
        );
        for &rho in r.relative_loads() {
            assert!(rho.is_finite(), "rho = {rho}");
        }
        validate_oblivious_routing(&r, &[(0, 3), (1, 4)]).unwrap();
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_graphs() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RaeckeRouting::build(&g, &Default::default(), &mut rng);
    }

    #[test]
    fn sampling_matches_mixture() {
        let g = generators::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 6,
                epsilon: 0.5,
            },
            &mut rng,
        );
        let dist = r.path_distribution(0, 8);
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sampled paths always come from the distribution's support.
        let support: Vec<Vec<u32>> = dist.iter().map(|(p, _)| p.edges().to_vec()).collect();
        for seed in 0..20 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let p = r.sample_path(0, 8, &mut rng2);
            assert!(support.contains(&p.edges().to_vec()));
        }
    }

    #[test]
    fn sampling_renormalizes_short_weight_sums() {
        // Regression: when floating-point weights sum to less than 1, the
        // shortfall used to land entirely on the last tree. The CDF is
        // now renormalized, so empirical frequencies must match
        // `path_distribution` weights *renormalized by their sum*.
        let g = generators::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(12);
        let mut r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 2,
                epsilon: 0.5,
            },
            &mut rng,
        );
        // Deliberately short weight sum: 0.25 + 0.375 = 0.625.
        r.weights = vec![0.25, 0.375];
        let dist = r.path_distribution(0, 8);
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((total - 0.625).abs() < 1e-12);

        let mut counts = vec![0usize; dist.len()];
        let draws = 4000u64;
        for seed in 0..draws {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let p = r.sample_path(0, 8, &mut rng2);
            let i = dist
                .iter()
                .position(|(q, _)| q.edges() == p.edges())
                .expect("sampled path must come from the distribution");
            counts[i] += 1;
        }
        for (i, (_, w)) in dist.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.05,
                "path {i}: sampled {got:.3}, mixture says {expect:.3}"
            );
        }
    }

    #[test]
    fn frt_ensemble_is_deterministic_and_valid() {
        let g = generators::grid(3, 4);
        let a = RaeckeRouting::frt_ensemble(&g, 6, 21);
        let b = RaeckeRouting::frt_ensemble(&g, 6, 21);
        validate_oblivious_routing(&a, &[(0, 11), (3, 8), (1, 10)]).unwrap();
        for (s, t) in [(0u32, 11u32), (2, 9)] {
            assert_eq!(a.path_distribution(s, t), b.path_distribution(s, t));
        }
        assert!(a.relative_loads().is_empty(), "no MW adaptation ran");
        let stats = a.build_stats().expect("ensemble tracks build stats");
        assert_eq!(stats.load_wall.as_nanos(), 0);
        // Seeded ensembles sample trees in parallel, so the tree stage
        // counts toward the parallel share (~100% for this template).
        assert!(stats.tree_stage_parallel);
        assert!(stats.parallel_share() > 0.8, "{}", stats.parallel_share());
    }
}
