//! Räcke-style oblivious routing: a multiplicative-weights-built mixture of
//! FRT tree routings `[Räc08]`.
//!
//! Räcke's `O(log n)`-competitive construction finds a distribution over
//! decomposition trees minimizing the maximum *relative load* any edge
//! suffers when the whole graph ("each edge routes its own capacity") is
//! routed through a tree. His reduction is exactly a multiplicative-weights
//! game whose oracle is a low-distortion tree embedding; we instantiate the
//! oracle with FRT trees over the adaptively re-weighted length metric.
//! This is also precisely the construction SMORE `[KYY+18]` samples from in
//! production traffic engineering.

use crate::frt::{FrtTree, Metric, TreeRouting};
use crate::traits::{DistributionBuilder, ObliviousRouting};
use rand::{Rng, RngCore};
use ssor_graph::{EdgeLoads, Graph, Path, VertexId};
use std::sync::Arc;

/// Options for [`RaeckeRouting::build`].
#[derive(Debug, Clone)]
pub struct RaeckeOptions {
    /// Number of trees in the mixture.
    pub iterations: usize,
    /// Multiplicative-weights learning rate.
    pub epsilon: f64,
}

impl Default for RaeckeOptions {
    fn default() -> Self {
        RaeckeOptions {
            iterations: 12,
            epsilon: 0.5,
        }
    }
}

/// A mixture of FRT tree routings built by multiplicative weights.
///
/// # Examples
///
/// ```
/// use ssor_oblivious::{ObliviousRouting, RaeckeRouting};
/// use rand::SeedableRng;
///
/// let g = ssor_graph::generators::grid(3, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = RaeckeRouting::build(&g, &Default::default(), &mut rng);
/// let mut rng2 = rand::rngs::StdRng::seed_from_u64(2);
/// let p = r.sample_path(0, 8, &mut rng2);
/// assert_eq!((p.source(), p.target()), (0, 8));
/// ```
#[derive(Debug)]
pub struct RaeckeRouting {
    graph: Graph,
    trees: Vec<TreeRouting>,
    /// Mixture weights, summing to 1.
    weights: Vec<f64>,
    /// Max relative load per iteration (diagnostic; Räcke's objective).
    relative_loads: Vec<f64>,
}

impl RaeckeRouting {
    /// Builds the mixture on `g`.
    ///
    /// Each iteration: (1) build the length metric from the current edge
    /// weights, (2) sample an FRT tree for it, (3) route the canonical
    /// "every edge ships one unit between its endpoints" demand through the
    /// tree and record each edge's load, (4) multiplicatively penalize
    /// loaded edges so the next tree avoids them.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or has no edges.
    pub fn build<R: Rng + ?Sized>(g: &Graph, opts: &RaeckeOptions, rng: &mut R) -> Self {
        assert!(g.m() > 0, "graph must have edges");
        assert!(g.is_connected(), "Raecke routing needs a connected graph");
        assert!(opts.iterations > 0);
        let m = g.m();
        let mut lengths = vec![1.0f64; m];
        let mut trees = Vec::with_capacity(opts.iterations);
        let mut relative_loads = Vec::with_capacity(opts.iterations);

        for _ in 0..opts.iterations {
            let lens = lengths.clone();
            let metric = Arc::new(Metric::build(g, &move |e| lens[e as usize]));
            let tree = Arc::new(FrtTree::sample(&metric, g.n(), rng));
            let tr = TreeRouting::new(Arc::clone(&metric), tree);

            // Canonical demand: one unit between the endpoints of every
            // edge (so parallel edges contribute multiplicity). Relative
            // load of edge f = number of canonical units crossing f.
            let mut load = EdgeLoads::zeros(m);
            for (_, (u, v)) in g.edges() {
                let p = tr.path(g, u, v);
                load.add_edges(p.edges(), 1.0);
            }
            let rho = load.max().max(1.0);
            relative_loads.push(rho);

            // Multiplicative penalty, then renormalize to keep lengths
            // bounded.
            for (l, ld) in lengths.iter_mut().zip(load.iter()) {
                *l *= (opts.epsilon * ld / rho).exp();
            }
            let min_len = lengths.iter().cloned().fold(f64::INFINITY, f64::min);
            for l in lengths.iter_mut() {
                *l /= min_len;
            }

            trees.push(tr);
        }
        let w = 1.0 / trees.len() as f64;
        RaeckeRouting {
            graph: g.clone(),
            weights: vec![w; trees.len()],
            relative_loads,
            trees,
        }
    }

    /// The trees in the mixture.
    pub fn trees(&self) -> &[TreeRouting] {
        &self.trees
    }

    /// Max relative load observed at each iteration (diagnostic).
    pub fn relative_loads(&self) -> &[f64] {
        &self.relative_loads
    }
}

impl ObliviousRouting for RaeckeRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        let mut x = rng.gen::<f64>();
        for (tr, &w) in self.trees.iter().zip(self.weights.iter()) {
            x -= w;
            if x <= 0.0 {
                return tr.path(&self.graph, s, t);
            }
        }
        self.trees.last().unwrap().path(&self.graph, s, t)
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        let mut acc = DistributionBuilder::new();
        for (tr, &w) in self.trees.iter().zip(self.weights.iter()) {
            acc.add(&tr.path(&self.graph, s, t), w);
        }
        acc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_oblivious_routing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_flow::solver::{min_congestion_unrestricted, SolveOptions};
    use ssor_flow::Demand;
    use ssor_graph::generators;

    #[test]
    fn builds_and_validates_on_grid() {
        let g = generators::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let r = RaeckeRouting::build(&g, &Default::default(), &mut rng);
        let pairs: Vec<(u32, u32)> = vec![(0, 8), (2, 6), (1, 7), (3, 5)];
        validate_oblivious_routing(&r, &pairs).unwrap();
        assert_eq!(r.trees().len(), 12);
    }

    #[test]
    fn competitive_on_random_demands() {
        // The mixture should be within a polylog factor of OPT on random
        // permutation demands; we assert a loose factor.
        let g = generators::random_regular(24, 3, &mut StdRng::seed_from_u64(5));
        let mut rng = StdRng::seed_from_u64(2);
        let r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 16,
                epsilon: 0.5,
            },
            &mut rng,
        );
        let d = Demand::random_permutation(24, &mut rng);
        let cong = r.congestion(&d);
        let opt = min_congestion_unrestricted(&g, &d, &SolveOptions::default());
        let ratio = cong / opt.lower_bound.max(1e-9);
        assert!(
            ratio < 20.0,
            "Raecke ratio {ratio} too large (cong {cong}, opt lb {})",
            opt.lower_bound
        );
    }

    #[test]
    fn relative_loads_trend_reasonably() {
        let g = generators::ring(12);
        let mut rng = StdRng::seed_from_u64(3);
        let r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 10,
                epsilon: 0.5,
            },
            &mut rng,
        );
        assert_eq!(r.relative_loads().len(), 10);
        for &rho in r.relative_loads() {
            assert!(rho >= 1.0);
            // A ring has 12 edges; no tree should overload an edge by more
            // than the total canonical demand.
            assert!(rho <= 12.0);
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_graphs() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RaeckeRouting::build(&g, &Default::default(), &mut rng);
    }

    #[test]
    fn sampling_matches_mixture() {
        let g = generators::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let r = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: 6,
                epsilon: 0.5,
            },
            &mut rng,
        );
        let dist = r.path_distribution(0, 8);
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sampled paths always come from the distribution's support.
        let support: Vec<Vec<u32>> = dist.iter().map(|(p, _)| p.edges().to_vec()).collect();
        for seed in 0..20 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let p = r.sample_path(0, 8, &mut rng2);
            assert!(support.contains(&p.edges().to_vec()));
        }
    }
}
