//! The oblivious-routing abstraction (Section 4 of the paper).
//!
//! An oblivious routing `R = {R(s, t)}` fixes, independently of the demand,
//! a distribution over simple `(s, t)`-paths for every pair. The paper's
//! semi-oblivious construction (Definition 5.2) only ever *samples* from
//! `R(s, t)`, so that is the one required method; everything else
//! (materializing distributions, exact congestion) has default
//! implementations that concrete routings can specialize.

use rand::RngCore;
use ssor_flow::{Demand, Routing};
use ssor_graph::{EdgeId, EdgeLoads, Graph, Path, PathStore, VertexId};

/// An oblivious routing over a fixed graph.
///
/// Implementations must guarantee that [`sample_path`](Self::sample_path)
/// returns a *simple* path from `s` to `t`, and that
/// [`path_distribution`](Self::path_distribution) returns the exact (finite)
/// distribution that `sample_path` draws from.
pub trait ObliviousRouting {
    /// The graph this routing is defined over.
    fn graph(&self) -> &Graph;

    /// Draws one path from `R(s, t)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `s == t` or vertices are out of range.
    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path;

    /// The full distribution `R(s, t)` as `(path, probability)` pairs with
    /// probabilities summing to 1. Identical paths must be merged.
    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)>;

    /// Marginal edge probabilities `P[e in R(s, t)]`, sparse.
    ///
    /// The default sort-merges the distribution's `(edge, weight)` pairs
    /// — `O(k log k)` in the support's total edge count `k`, with no
    /// hashing and no `O(m)` dense pass per pair — and returns them in
    /// edge-id order; routings with huge supports (e.g. ECMP) can
    /// override with closed-form marginals.
    fn edge_marginals(&self, s: VertexId, t: VertexId) -> Vec<(EdgeId, f64)> {
        let mut acc: Vec<(EdgeId, f64)> = Vec::new();
        for (p, w) in self.path_distribution(s, t) {
            acc.extend(p.edges().iter().map(|&e| (e, w)));
        }
        // Stable sort: entries sharing an edge keep path_distribution
        // order, so the per-edge f64 summation order (and with it the
        // last bit of every marginal) is pinned across toolchains.
        acc.sort_by_key(|&(e, _)| e);
        let mut out: Vec<(EdgeId, f64)> = Vec::new();
        for (e, w) in acc {
            match out.last_mut() {
                Some(last) if last.0 == e => last.1 += w,
                _ => out.push((e, w)),
            }
        }
        out
    }

    /// Materializes `R` on the support of `d` as a [`Routing`].
    fn routing_for(&self, d: &Demand) -> Routing {
        let mut r = Routing::new();
        for (s, t) in d.support() {
            r.set_distribution(s, t, self.path_distribution(s, t));
        }
        r
    }

    /// Exact `cong(R, d)` (Section 4), computed from edge marginals.
    fn congestion(&self, d: &Demand) -> f64 {
        let mut load = EdgeLoads::for_graph(self.graph());
        for ((s, t), w) in d.iter() {
            for (e, p) in self.edge_marginals(s, t) {
                load.add(e, w * p);
            }
        }
        load.max()
    }

    /// `dil(R, d)`: maximum hop length in the supports used by `d`.
    fn dilation(&self, d: &Demand) -> usize {
        let mut best = 0;
        for ((s, t), _) in d.iter() {
            for (p, w) in self.path_distribution(s, t) {
                if w > 0.0 {
                    best = best.max(p.hop());
                }
            }
        }
        best
    }

    /// Per-stage construction timings, for templates that track them
    /// (the Räcke/FRT builders do; cheap deterministic templates return
    /// `None`). The engine surfaces these next to its solver stats so a
    /// run reports where template time went and how much of it was
    /// parallelizable.
    fn build_stats(&self) -> Option<TemplateStageStats> {
        None
    }
}

/// Where a template construction spent its wall-clock, split by stage.
///
/// The tree-based templates have exactly three cost centers: the
/// all-pairs metric (`n` Dijkstra trees, rayon-parallel), FRT tree
/// sampling (parallel for seeded ensembles, inherently sequential inside
/// the Räcke multiplicative-weights loop), and the canonical-load
/// accumulation (`m` path walks per iteration, rayon-parallel in fixed
/// blocks). [`parallel_share`](TemplateStageStats::parallel_share) is the
/// fraction of the build that fans out over workers — the single-core
/// headroom a multi-core runner converts into wall-clock.
///
/// # Examples
///
/// ```
/// use ssor_oblivious::TemplateStageStats;
/// use std::time::Duration;
///
/// let stats = TemplateStageStats {
///     metric_wall: Duration::from_millis(6),
///     tree_wall: Duration::from_millis(2),
///     load_wall: Duration::from_millis(2),
///     total_wall: Duration::from_millis(10),
///     tree_stage_parallel: false,
/// };
/// assert!((stats.parallel_share() - 0.8).abs() < 1e-9);
/// assert!(
///     (TemplateStageStats { tree_stage_parallel: true, ..stats }.parallel_share() - 1.0).abs()
///         < 1e-9
/// );
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateStageStats {
    /// Wall-clock spent building all-pairs metrics (parallelizable).
    pub metric_wall: std::time::Duration,
    /// Wall-clock spent sampling FRT trees (parallelizable for seeded
    /// ensembles, sequential inside the multiplicative-weights loop —
    /// see [`tree_stage_parallel`](Self::tree_stage_parallel)).
    pub tree_wall: std::time::Duration,
    /// Wall-clock spent accumulating canonical loads (parallelizable).
    pub load_wall: std::time::Duration,
    /// Wall-clock of the whole construction.
    pub total_wall: std::time::Duration,
    /// Whether the tree-sampling stage ran on the parallel seeded path
    /// (`true` for seeded ensembles, `false` when trees consume a
    /// sequential threaded RNG, as inside the Räcke
    /// multiplicative-weights loop).
    pub tree_stage_parallel: bool,
}

impl TemplateStageStats {
    /// Fraction of the total build spent in rayon-parallel stages
    /// (metric construction, canonical-load accumulation, and tree
    /// sampling when the build used seed-derived per-tree streams);
    /// 0 when no time was recorded.
    pub fn parallel_share(&self) -> f64 {
        let total = self.total_wall.as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        let mut par = self.metric_wall + self.load_wall;
        if self.tree_stage_parallel {
            par += self.tree_wall;
        }
        (par.as_secs_f64() / total).min(1.0)
    }
}

/// Accumulates weighted path draws into an exact, deduplicated
/// distribution — the one flow-accumulation loop shared by every template
/// whose `R(s, t)` is "enumerate deterministic sub-routings and merge
/// identical paths" (Räcke tree mixtures, Valiant intermediates,
/// hop-constrained landmarks).
///
/// Identical paths are collapsed through a [`PathStore`] arena: each
/// `add` interns once (hash + id compare) and accumulates into a dense
/// per-id weight table, replacing the former per-template
/// `HashMap<Vec<u32>, (Path, f64)>` accumulators. [`finish`] materializes
/// the merged support sorted by edge sequence, the canonical order
/// `path_distribution` implementations promise.
///
/// [`finish`]: DistributionBuilder::finish
///
/// # Examples
///
/// ```
/// use ssor_graph::{Graph, Path};
/// use ssor_oblivious::DistributionBuilder;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// let direct = Path::from_vertices(&g, &[0, 2]).unwrap();
/// let detour = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
/// let mut acc = DistributionBuilder::new();
/// acc.add(&direct, 0.25);
/// acc.add(&detour, 0.5);
/// acc.add(&direct, 0.25); // merges with the first draw
/// let dist = acc.finish();
/// assert_eq!(dist.len(), 2);
/// assert_eq!(dist.iter().map(|(_, w)| w).sum::<f64>(), 1.0);
/// ```
#[derive(Debug, Default)]
pub struct DistributionBuilder {
    store: PathStore,
    weights: Vec<f64>,
}

impl DistributionBuilder {
    /// An empty accumulator.
    pub fn new() -> Self {
        DistributionBuilder::default()
    }

    /// Adds one draw of `path` with probability mass `w` (merging with
    /// any previous draws of the same path).
    pub fn add(&mut self, path: &Path, w: f64) {
        let id = self.store.intern(path);
        if id.index() == self.weights.len() {
            self.weights.push(w);
        } else {
            self.weights[id.index()] += w;
        }
    }

    /// The merged `(path, probability)` support, sorted by edge sequence.
    pub fn finish(self) -> Vec<(Path, f64)> {
        let mut out: Vec<(Path, f64)> = self
            .store
            .ids()
            .zip(self.weights)
            .map(|(id, w)| (self.store.materialize(id), w))
            .collect();
        out.sort_by(|a, b| a.0.edges().cmp(b.0.edges()));
        out
    }
}

/// Checks the structural contract of an implementation on the given pairs:
/// simple valid paths with correct endpoints, probabilities summing to 1.
/// Intended for tests.
pub fn validate_oblivious_routing<O: ObliviousRouting + ?Sized>(
    routing: &O,
    pairs: &[(VertexId, VertexId)],
) -> Result<(), String> {
    let g = routing.graph();
    for &(s, t) in pairs {
        let dist = routing.path_distribution(s, t);
        if dist.is_empty() {
            return Err(format!("empty distribution for ({s}, {t})"));
        }
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("({s}, {t}): probabilities sum to {total}"));
        }
        let mut seen = std::collections::HashSet::new();
        for (p, w) in &dist {
            if *w <= 0.0 {
                return Err(format!("({s}, {t}): nonpositive weight {w}"));
            }
            if p.source() != s || p.target() != t {
                return Err(format!("({s}, {t}): path endpoints {:?}", p));
            }
            if !p.is_valid(g) {
                return Err(format!("({s}, {t}): invalid path {:?}", p));
            }
            if !p.is_simple() {
                return Err(format!("({s}, {t}): non-simple path {:?}", p));
            }
            if !seen.insert(p.edges().to_vec()) {
                return Err(format!("({s}, {t}): duplicate path {:?}", p));
            }
        }
    }
    Ok(())
}
