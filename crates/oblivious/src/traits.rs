//! The oblivious-routing abstraction (Section 4 of the paper).
//!
//! An oblivious routing `R = {R(s, t)}` fixes, independently of the demand,
//! a distribution over simple `(s, t)`-paths for every pair. The paper's
//! semi-oblivious construction (Definition 5.2) only ever *samples* from
//! `R(s, t)`, so that is the one required method; everything else
//! (materializing distributions, exact congestion) has default
//! implementations that concrete routings can specialize.

use rand::RngCore;
use ssor_flow::{Demand, Routing};
use ssor_graph::{EdgeId, Graph, Path, VertexId};
use std::collections::HashMap;

/// An oblivious routing over a fixed graph.
///
/// Implementations must guarantee that [`sample_path`](Self::sample_path)
/// returns a *simple* path from `s` to `t`, and that
/// [`path_distribution`](Self::path_distribution) returns the exact (finite)
/// distribution that `sample_path` draws from.
pub trait ObliviousRouting {
    /// The graph this routing is defined over.
    fn graph(&self) -> &Graph;

    /// Draws one path from `R(s, t)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `s == t` or vertices are out of range.
    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path;

    /// The full distribution `R(s, t)` as `(path, probability)` pairs with
    /// probabilities summing to 1. Identical paths must be merged.
    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)>;

    /// Marginal edge probabilities `P[e in R(s, t)]`, sparse.
    ///
    /// The default derives them from [`path_distribution`]; routings with
    /// huge supports (e.g. ECMP) can override with closed-form marginals.
    ///
    /// [`path_distribution`]: Self::path_distribution
    fn edge_marginals(&self, s: VertexId, t: VertexId) -> Vec<(EdgeId, f64)> {
        let mut acc: HashMap<EdgeId, f64> = HashMap::new();
        for (p, w) in self.path_distribution(s, t) {
            for &e in p.edges() {
                *acc.entry(e).or_insert(0.0) += w;
            }
        }
        let mut v: Vec<(EdgeId, f64)> = acc.into_iter().collect();
        v.sort_unstable_by_key(|&(e, _)| e);
        v
    }

    /// Materializes `R` on the support of `d` as a [`Routing`].
    fn routing_for(&self, d: &Demand) -> Routing {
        let mut r = Routing::new();
        for (s, t) in d.support() {
            r.set_distribution(s, t, self.path_distribution(s, t));
        }
        r
    }

    /// Exact `cong(R, d)` (Section 4), computed from edge marginals.
    fn congestion(&self, d: &Demand) -> f64 {
        let mut load = vec![0.0f64; self.graph().m()];
        for ((s, t), w) in d.iter() {
            for (e, p) in self.edge_marginals(s, t) {
                load[e as usize] += w * p;
            }
        }
        load.into_iter().fold(0.0, f64::max)
    }

    /// `dil(R, d)`: maximum hop length in the supports used by `d`.
    fn dilation(&self, d: &Demand) -> usize {
        let mut best = 0;
        for ((s, t), _) in d.iter() {
            for (p, w) in self.path_distribution(s, t) {
                if w > 0.0 {
                    best = best.max(p.hop());
                }
            }
        }
        best
    }
}

/// Checks the structural contract of an implementation on the given pairs:
/// simple valid paths with correct endpoints, probabilities summing to 1.
/// Intended for tests.
pub fn validate_oblivious_routing<O: ObliviousRouting + ?Sized>(
    routing: &O,
    pairs: &[(VertexId, VertexId)],
) -> Result<(), String> {
    let g = routing.graph();
    for &(s, t) in pairs {
        let dist = routing.path_distribution(s, t);
        if dist.is_empty() {
            return Err(format!("empty distribution for ({s}, {t})"));
        }
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("({s}, {t}): probabilities sum to {total}"));
        }
        let mut seen = std::collections::HashSet::new();
        for (p, w) in &dist {
            if *w <= 0.0 {
                return Err(format!("({s}, {t}): nonpositive weight {w}"));
            }
            if p.source() != s || p.target() != t {
                return Err(format!("({s}, {t}): path endpoints {:?}", p));
            }
            if !p.is_valid(g) {
                return Err(format!("({s}, {t}): invalid path {:?}", p));
            }
            if !p.is_simple() {
                return Err(format!("({s}, {t}): non-simple path {:?}", p));
            }
            if !seen.insert(p.edges().to_vec()) {
                return Err(format!("({s}, {t}): duplicate path {:?}", p));
            }
        }
    }
    Ok(())
}
