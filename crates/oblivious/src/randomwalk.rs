//! Oblivious routing via random walks (Schapira–Shahaf `[SS14]`).
//!
//! The scheme: to route `s -> t`, launch a uniform random walk at `s`
//! and follow it until it hits `t` (truncated at a length cap). Each
//! walk is demand-independent, so the empirical distribution of
//! shortcut walks is an oblivious routing — the cheapest general-graph
//! template in the workspace (no metric embedding, no Laplacian solve),
//! and the natural baseline the A1 bake-off measures the expensive
//! schemes against.
//!
//! Determinism: the per-pair walk ensemble is a pure function of
//! `(graph, walks, max_len, seed)`. Each pair gets its own RNG stream
//! via nested [`derive_seed`] over a scheme tag, the source, and the
//! target — never a thread-local entropy source — so
//! [`RandomWalkRouting::path_distribution`] is bit-stable across runs
//! and thread counts, and the engine can fingerprint builds the same
//! way it does for FRT ensembles.

use crate::traits::{DistributionBuilder, ObliviousRouting};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use ssor_graph::shortest_path::{bfs_trees_csr_batch, SpTree};
use ssor_graph::{derive_seed, EdgeId, Graph, Path, VertexId};

/// Stream tag decorrelating random-walk seeds from every other consumer
/// of the same master seed (the engine's stream-tag discipline).
const RW_STREAM_TAG: u64 = 0x5257_4b53_5331_3465;

/// Oblivious routing via truncated uniform random walks `[SS14]`.
///
/// `walks` walks per pair, each at most `max_len` steps; walks that hit
/// the target are shortcut to simple paths, walks that do not fall back
/// to the BFS shortest path (so every pair's distribution has full
/// mass even on walk-hostile topologies).
///
/// # Examples
///
/// ```
/// use ssor_oblivious::{ObliviousRouting, RandomWalkRouting};
///
/// let g = ssor_graph::generators::ring(6);
/// let r = RandomWalkRouting::new(&g, 16, 64, 7);
/// let dist = r.path_distribution(0, 3);
/// let total: f64 = dist.iter().map(|(_, w)| w).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct RandomWalkRouting {
    graph: Graph,
    /// BFS trees for the truncated-walk fallback path, one per source.
    trees: Vec<SpTree>,
    walks: usize,
    max_len: usize,
    seed: u64,
}

impl RandomWalkRouting {
    /// Builds the routing: `walks` truncated walks per pair, each at
    /// most `max_len` steps, all streams derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `walks == 0`, `max_len == 0`, or `g` is disconnected
    /// (the BFS fallback needs every pair reachable).
    pub fn new(g: &Graph, walks: usize, max_len: usize, seed: u64) -> Self {
        assert!(walks >= 1, "need at least one walk per pair");
        assert!(max_len >= 1, "walks must be allowed at least one step");
        assert!(g.is_connected());
        let csr = g.csr();
        let sources: Vec<VertexId> = g.vertices().collect();
        RandomWalkRouting {
            graph: g.clone(),
            trees: bfs_trees_csr_batch(&csr, &sources),
            walks,
            max_len,
            seed,
        }
    }

    /// Walks per pair.
    pub fn walks(&self) -> usize {
        self.walks
    }

    /// Walk length cap.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// One uniform random walk `s -> t`, shortcut to a simple path, or
    /// `None` if it fails to hit `t` within `max_len` steps.
    fn walk(&self, s: VertexId, t: VertexId, rng: &mut StdRng) -> Option<Path> {
        let mut cur = s;
        let mut edges: Vec<EdgeId> = Vec::new();
        for _ in 0..self.max_len {
            let arcs = self.graph.neighbors(cur);
            let a = arcs[rng.gen_range(0..arcs.len())];
            edges.push(a.edge);
            cur = a.to;
            if cur == t {
                let p = Path::from_edges(&self.graph, s, &edges)
                    .expect("walk follows graph adjacency")
                    .shortcut();
                return Some(p);
            }
        }
        None
    }
}

impl ObliviousRouting for RandomWalkRouting {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        assert_ne!(s, t);
        // Sample from the fixed per-pair ensemble (the template the
        // engine fingerprints), not a fresh walk: the caller's RNG picks
        // *within* the distribution, it does not perturb its support.
        let dist = self.path_distribution(s, t);
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for (p, w) in &dist {
            x -= w;
            if x <= 0.0 {
                return p.clone();
            }
        }
        dist.into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("random-walk distribution is never empty")
            .0
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        assert_ne!(s, t);
        // Per-pair stream: tag ^ master, then source, then target — the
        // same nested derive_seed discipline as the FRT tree ensemble.
        let pair_seed = derive_seed(derive_seed(self.seed ^ RW_STREAM_TAG, s as u64), t as u64);
        let mut rng = StdRng::seed_from_u64(pair_seed);
        let w = 1.0 / self.walks as f64;
        let mut builder = DistributionBuilder::new();
        let mut fallback_mass = 0.0;
        for _ in 0..self.walks {
            match self.walk(s, t, &mut rng) {
                Some(p) => builder.add(&p, w),
                None => fallback_mass += w,
            }
        }
        if fallback_mass > 0.0 {
            let p = self.trees[s as usize]
                .path_to(&self.graph, t)
                .expect("connected");
            builder.add(&p, fallback_mass);
        }
        let mut parts = builder.finish();
        // Renormalize the fp residue of summing `walks` copies of 1/walks.
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        for (_, w) in parts.iter_mut() {
            *w /= total;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::validate_oblivious_routing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_graph::generators;

    #[test]
    fn validates_as_oblivious_routing() {
        let g = generators::grid(3, 3);
        let r = RandomWalkRouting::new(&g, 16, 128, 11);
        validate_oblivious_routing(&r, &[(0, 8), (2, 6), (1, 5)])
            .expect("random-walk routing must validate");
    }

    #[test]
    fn distribution_is_reproducible() {
        let g = generators::torus(3, 3);
        let a = RandomWalkRouting::new(&g, 24, 64, 5);
        let b = RandomWalkRouting::new(&g, 24, 64, 5);
        for (s, t) in [(0u32, 4u32), (1, 8), (2, 6)] {
            let da = a.path_distribution(s, t);
            let db = b.path_distribution(s, t);
            assert_eq!(da.len(), db.len());
            for ((pa, wa), (pb, wb)) in da.iter().zip(&db) {
                assert_eq!(pa.edges(), pb.edges());
                assert_eq!(wa.to_bits(), wb.to_bits());
            }
        }
        // A different master seed gives a different ensemble (on a
        // topology with real branching).
        let c = RandomWalkRouting::new(&g, 24, 64, 6);
        let changed = [(0u32, 4u32), (1, 8), (2, 6)].iter().any(|&(s, t)| {
            let da = a.path_distribution(s, t);
            let dc = c.path_distribution(s, t);
            da.len() != dc.len()
                || da
                    .iter()
                    .zip(&dc)
                    .any(|((pa, wa), (pc, wc))| pa.edges() != pc.edges() || wa != wc)
        });
        assert!(changed, "seed must steer the walk ensemble");
    }

    #[test]
    fn truncated_walks_fall_back_to_shortest_paths() {
        // max_len 1 on a path graph: a walk from 0 can only ever reach
        // vertex 1, so routing 0 -> 3 relies entirely on the fallback.
        let g = ssor_graph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = RandomWalkRouting::new(&g, 8, 1, 3);
        let dist = r.path_distribution(0, 3);
        assert_eq!(dist.len(), 1);
        assert!((dist[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(dist[0].0.hop(), 3);
    }

    #[test]
    fn sample_path_draws_from_the_ensemble() {
        let g = generators::grid(3, 3);
        let r = RandomWalkRouting::new(&g, 8, 64, 2);
        let dist = r.path_distribution(0, 8);
        let support: Vec<_> = dist.iter().map(|(p, _)| p.edges().to_vec()).collect();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let p = r.sample_path(0, 8, &mut rng);
            assert!(support.contains(&p.edges().to_vec()));
        }
    }

    #[test]
    fn walks_spread_mass_on_rings() {
        // On a ring both directions are symmetric; with enough walks the
        // ensemble should discover both sides of 0 -> 3.
        let g = generators::ring(6);
        let r = RandomWalkRouting::new(&g, 64, 128, 13);
        let dist = r.path_distribution(0, 3);
        assert!(dist.len() >= 2, "walks found only one side of the ring");
    }
}
