//! Special demands and the reduction pipeline of Section 5.4.
//!
//! * [`is_special`] / [`special_from_support`] — Definition 5.5:
//!   `d(s, t) ∈ {0, α + cut_G(s, t)}`;
//! * [`bucket_decompose`] — the Lemma 5.9 bucketing that reduces arbitrary
//!   demands to special ones at a `O(log m)` factor;
//! * [`weak_to_strong`] — the Lemma 5.8 loop that turns a weakly-
//!   competitive router (routes half the demand) into a fully competitive
//!   one at a `O(log m)` factor.

use crate::path_system::PathSystem;
use crate::weak::{weak_route, SampleMultiset, WeakRouteResult};
use ssor_flow::{Demand, Routing};
use ssor_graph::maxflow::min_cut_value;
use ssor_graph::{Graph, VertexId};
use std::collections::HashMap;

/// Memoizing wrapper around Dinic for `cnt_G(s, t) = α + cut_G(s, t)`.
#[derive(Debug)]
pub struct CutCache<'a> {
    graph: &'a Graph,
    cache: HashMap<(VertexId, VertexId), u64>,
}

impl<'a> CutCache<'a> {
    /// Creates an empty cache for `graph`.
    pub fn new(graph: &'a Graph) -> Self {
        CutCache {
            graph,
            cache: HashMap::new(),
        }
    }

    /// `cut_G(s, t)`, memoized per unordered pair.
    pub fn cut(&mut self, s: VertexId, t: VertexId) -> u64 {
        if s == t {
            return 0;
        }
        let key = (s.min(t), s.max(t));
        *self
            .cache
            .entry(key)
            .or_insert_with(|| min_cut_value(self.graph, s, t))
    }

    /// `cnt_G(s, t) = alpha + cut_G(s, t)` (Section 5.3 notation).
    pub fn cnt(&mut self, alpha: usize, s: VertexId, t: VertexId) -> u64 {
        alpha as u64 + self.cut(s, t)
    }
}

/// Whether `d` is `α`-special (Definition 5.5): every entry is 0 or
/// exactly `α + cut_G(s, t)`.
pub fn is_special(g: &Graph, d: &Demand, alpha: usize) -> bool {
    let mut cuts = CutCache::new(g);
    d.iter()
        .all(|((s, t), w)| (w - cuts.cnt(alpha, s, t) as f64).abs() < 1e-9)
}

/// The unique `α`-special demand with the given support.
pub fn special_from_support(g: &Graph, pairs: &[(VertexId, VertexId)], alpha: usize) -> Demand {
    let mut cuts = CutCache::new(g);
    let mut d = Demand::new();
    for &(s, t) in pairs {
        d.set(s, t, cuts.cnt(alpha, s, t) as f64);
    }
    d
}

/// One bucket of the Lemma 5.9 decomposition.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// The sub-demand `d_i` (actual demand mass in this ratio range).
    pub part: Demand,
    /// The dominating special demand `d'_i` on the same support.
    pub special: Demand,
    /// The scale `2^{i-l}` with `2^{i-l-1} d'_i <= d_i < 2^{i-l} d'_i`.
    pub scale: f64,
}

/// Splits `d` into `O(log(n^2 m))` buckets by the ratio
/// `d(s, t) / cnt_G(s, t)` (powers of two), each dominated by a scaled
/// special demand — the constructive content of Lemma 5.9.
///
/// The parts sum back to `d` exactly, and for every bucket
/// `part <= scale * special` pointwise with `part > (scale / 2) * special`.
pub fn bucket_decompose(g: &Graph, d: &Demand, alpha: usize) -> Vec<Bucket> {
    let mut cuts = CutCache::new(g);
    // Group support pairs by floor(log2(ratio)).
    let mut groups: HashMap<i32, Vec<(VertexId, VertexId)>> = HashMap::new();
    for ((s, t), w) in d.iter() {
        let cnt = cuts.cnt(alpha, s, t) as f64;
        let ratio = w / cnt;
        let bucket = ratio.log2().floor() as i32;
        groups.entry(bucket).or_default().push((s, t));
    }
    let mut keys: Vec<i32> = groups.keys().copied().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|b| {
            let pairs = &groups[&b];
            let mut part = Demand::new();
            let mut special = Demand::new();
            for &(s, t) in pairs {
                part.set(s, t, d.get(s, t));
                special.set(s, t, cuts.cnt(alpha, s, t) as f64);
            }
            // ratio in [2^b, 2^{b+1}) => part <= 2^{b+1} * special.
            Bucket {
                part,
                special,
                scale: 2f64.powi(b + 1),
            }
        })
        .collect()
}

/// A weak router: given a demand, returns a routing of *at least half* of
/// it (Definition 5.4). The closure form lets tests plug in either the
/// real sampling process or synthetic ones.
pub type WeakRouter<'a> = dyn FnMut(&Demand) -> WeakRouteResult + 'a;

/// Outcome of the Lemma 5.8 weak-to-strong loop.
#[derive(Debug, Clone)]
pub struct StrongRouteResult {
    /// Combined routing for (almost) all of the demand.
    pub routing: Routing,
    /// Demand actually covered by `routing` (equal to the input except for
    /// an `O(siz(d)/m)` remainder routed arbitrarily).
    pub covered: Demand,
    /// Rounds of weak routing used.
    pub rounds: usize,
    /// Final congestion of the combined routing on `covered`.
    pub congestion: f64,
}

/// Lemma 5.8, constructively: repeatedly weak-route the remaining demand,
/// keep the pairs that got at least a quarter of their demand through
/// (rescaled to carry them fully), and recurse on the rest; after
/// `O(log m)` rounds the leftovers are negligible and are routed on
/// arbitrary candidate paths.
///
/// # Panics
///
/// Panics if `paths` misses a support pair of `d` (needed for the
/// final arbitrary-path step).
pub fn weak_to_strong(
    g: &Graph,
    d: &Demand,
    paths: &PathSystem,
    weak: &mut WeakRouter<'_>,
) -> StrongRouteResult {
    let m = g.m() as f64;
    let target = d.size() / m;
    let max_rounds = (2.0 * m.ln().max(1.0)).ceil() as usize + 2;

    let mut remaining = d.clone();
    let mut covered = Demand::new();
    let mut combined: Option<Routing> = None;
    let mut rounds = 0;

    while remaining.size() > target && rounds < max_rounds && !remaining.is_empty() {
        rounds += 1;
        let out = weak(&remaining);
        // d'': pairs where at least a quarter of the remaining demand was
        // routed, taken in full.
        let quarter = remaining.filtered(|s, t, w| out.routed.get(s, t) >= w / 4.0);
        if quarter.is_empty() {
            break; // weak router made no usable progress
        }
        // Route d'' by reusing R' (scaling weights per pair is free since
        // Routing stores distributions; congestion scales by <= 4).
        let piece_routing = out.routing;
        let new_covered = covered.plus(&quarter);
        combined = Some(match combined {
            None => piece_routing,
            Some(prev) => Routing::demand_weighted_merge(&prev, &covered, &piece_routing, &quarter),
        });
        covered = new_covered;
        remaining = remaining.minus_clamped(&quarter);
    }

    // Route the remainder on arbitrary candidate paths (Lemma 5.16 keeps
    // this term below siz(d)/m <= cong(R, d) when the loop ran to target).
    if !remaining.is_empty() {
        let mut arb = Routing::new();
        for ((s, t), _) in remaining.iter() {
            let cand = paths
                .first_path(s, t)
                .unwrap_or_else(|| panic!("no candidate paths for ({s}, {t})"));
            arb.set_distribution(s, t, vec![(cand, 1.0)]);
        }
        let new_covered = covered.plus(&remaining);
        combined = Some(match combined {
            None => arb,
            Some(prev) => Routing::demand_weighted_merge(&prev, &covered, &arb, &remaining),
        });
        covered = new_covered;
    }

    let routing = combined.unwrap_or_default();
    let congestion = routing.congestion(g, &covered);
    StrongRouteResult {
        routing,
        covered,
        rounds,
        congestion,
    }
}

/// Convenience: a weak router backed by the Section 5.3 process over a
/// fixed sample multiset and allowance `gamma`.
pub fn process_weak_router<'a>(
    g: &'a Graph,
    samples: &'a SampleMultiset,
    gamma: f64,
) -> impl FnMut(&Demand) -> WeakRouteResult + 'a {
    move |d: &Demand| weak_route(g, samples, d, gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak::sample_multiset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_graph::generators;
    use ssor_oblivious::{ObliviousRouting, ValiantRouting};

    #[test]
    fn special_demand_roundtrip() {
        let g = generators::hypercube(3);
        let pairs = vec![(0u32, 7u32), (1, 6)];
        let d = special_from_support(&g, &pairs, 2);
        assert!(is_special(&g, &d, 2));
        // Hypercube cut = 3, so entries are 2 + 3 = 5.
        assert_eq!(d.get(0, 7), 5.0);
        assert!(!is_special(&g, &d, 1));
    }

    #[test]
    fn buckets_partition_the_demand() {
        let g = generators::hypercube(3);
        let mut d = Demand::new();
        d.set(0, 7, 1.0);
        d.set(1, 6, 10.0);
        d.set(2, 5, 100.0);
        let buckets = bucket_decompose(&g, &d, 2);
        assert!(
            buckets.len() >= 2,
            "widely-spread ratios need multiple buckets"
        );
        let mut sum = Demand::new();
        for b in &buckets {
            sum = sum.plus(&b.part);
            assert!(is_special(&g, &b.special, 2));
            // part <= scale * special pointwise, and > scale/2 * special.
            for ((s, t), w) in b.part.iter() {
                let cap = b.scale * b.special.get(s, t);
                assert!(w <= cap + 1e-9, "part {w} exceeds scale*special {cap}");
                assert!(w > cap / 2.0 - 1e-9, "bucket too coarse");
            }
        }
        for ((s, t), w) in d.iter() {
            assert!((sum.get(s, t) - w).abs() < 1e-9);
        }
    }

    #[test]
    fn weak_to_strong_covers_everything() {
        let dim = 4;
        let r = ValiantRouting::new(dim);
        let d = Demand::hypercube_complement(dim);
        let pairs = d.support();
        let mut rng = StdRng::seed_from_u64(11);
        let samples = sample_multiset(&r, &pairs, |_, _| 6, &mut rng);
        // Build the PathSystem view for the arbitrary-path fallback.
        let mut ps = PathSystem::new();
        for paths in samples.values() {
            for p in paths {
                ps.insert(p.clone());
            }
        }
        let gamma = 10.0;
        let mut weak = process_weak_router(r.graph(), &samples, gamma);
        let out = weak_to_strong(r.graph(), &d, &ps, &mut weak);
        // Everything covered.
        for ((s, t), w) in d.iter() {
            assert!((out.covered.get(s, t) - w).abs() < 1e-6, "pair ({s},{t})");
        }
        // Congestion within the Lemma 5.8 budget: O(gamma log m) plus the
        // remainder term.
        let bound =
            4.0 * gamma * (r.graph().m() as f64).ln() + d.size() / r.graph().m() as f64 + gamma;
        assert!(
            out.congestion <= bound,
            "cong {} vs bound {bound}",
            out.congestion
        );
        assert!(out.rounds >= 1);
    }

    #[test]
    fn cut_cache_memoizes_and_matches_dinic() {
        let g = generators::two_cliques_bridge(4, 2);
        let mut cc = CutCache::new(&g);
        let direct = min_cut_value(&g, 3, 7);
        assert_eq!(cc.cut(3, 7), direct);
        assert_eq!(cc.cut(7, 3), direct, "unordered memoization");
        assert_eq!(cc.cnt(5, 3, 7), 5 + direct);
        assert_eq!(cc.cut(2, 2), 0);
    }
}
