//! The semi-oblivious router: Stage 4 and Stage 5 of the pipeline in
//! Section 2.1.
//!
//! Stage 2 built the path system (see [`crate::sample`]); once the demand
//! is revealed (Stage 3), [`SemiObliviousRouter`] adapts the sending rates
//! optimally within the candidate paths (Stage 4, a packing LP) and
//! reports competitive ratios against the offline optimum and against the
//! base oblivious routing (Stage 5).

use crate::path_system::PathSystem;
use rand::Rng;
use ssor_flow::rounding::{round_routing, RoundingOutcome};
use ssor_flow::solver::{
    min_congestion_restricted, min_congestion_unrestricted, MinCongSolution, SolveOptions,
};
use ssor_flow::Demand;
use ssor_graph::Graph;

/// A semi-oblivious routing ready to serve demands: a graph plus a path
/// system (Definition 5.1).
///
/// # Examples
///
/// ```
/// use ssor_core::{sample::alpha_sample, sample::all_pairs, SemiObliviousRouter};
/// use ssor_flow::Demand;
/// use ssor_oblivious::{ObliviousRouting, ValiantRouting};
/// use rand::SeedableRng;
///
/// let r = ValiantRouting::new(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let ps = alpha_sample(&r, &all_pairs(8), 4, &mut rng);
/// let router = SemiObliviousRouter::new(r.graph().clone(), ps);
/// let d = Demand::hypercube_complement(3);
/// let sol = router.route_fractional(&d, &Default::default());
/// assert!(sol.congestion > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SemiObliviousRouter {
    graph: Graph,
    paths: PathSystem,
}

/// A competitive-ratio report (Stage 5).
#[derive(Debug, Clone)]
pub struct CompetitiveReport {
    /// Congestion achieved by the semi-oblivious routing (`cong_R(P, d)`,
    /// up to the solver's certified gap).
    pub semi_oblivious: f64,
    /// Certified *lower bound* on the offline fractional optimum.
    pub opt_lower_bound: f64,
    /// Offline optimum primal value (upper bound on OPT).
    pub opt_upper_bound: f64,
    /// `semi_oblivious / opt_lower_bound` — an upper bound on the true
    /// competitive ratio.
    pub ratio: f64,
}

impl SemiObliviousRouter {
    /// Wraps a graph and a path system.
    ///
    /// # Panics
    ///
    /// Panics if the path system contains a path invalid for `graph`.
    pub fn new(graph: Graph, paths: PathSystem) -> Self {
        assert!(paths.is_valid(&graph), "path system invalid for graph");
        SemiObliviousRouter { graph, paths }
    }

    /// The graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The path system.
    pub fn paths(&self) -> &PathSystem {
        &self.paths
    }

    /// Whether every pair of `d`'s support has at least one candidate.
    pub fn covers(&self, d: &Demand) -> bool {
        d.support()
            .iter()
            .all(|&(s, t)| self.paths.covers_pair(s, t))
    }

    /// Stage 4 (fractional): the demand-dependent optimal rates on the
    /// candidate paths — `cong_R(P, d)` of Definition 5.1.
    ///
    /// # Panics
    ///
    /// Panics if the path system does not cover the demand's support: a
    /// partially-routed solution would be compared against the OPT of
    /// the *full* demand downstream, silently inflating every
    /// competitive ratio. Callers that expect missing coverage (failure
    /// drills) restrict the demand first and use the solver's stranded
    /// reporting instead.
    pub fn route_fractional(&self, d: &Demand, opts: &SolveOptions) -> MinCongSolution {
        let sol = min_congestion_restricted(&self.graph, d, self.paths.candidates(), opts);
        assert!(
            sol.stranded == 0.0,
            "path system does not cover the demand: {} mass stranded on pairs {:?}",
            sol.stranded,
            sol.dropped_pairs
        );
        sol
    }

    /// Stage 4 (integral): route, then round with Lemma 6.3 plus local
    /// search — `cong_Z(P, d)` of Definition 6.1 (up to rounding loss).
    ///
    /// # Panics
    ///
    /// Panics if `d` is not integral or is not covered.
    pub fn route_integral<R: Rng + ?Sized>(
        &self,
        d: &Demand,
        opts: &SolveOptions,
        rng: &mut R,
    ) -> RoundingOutcome {
        let frac = self.route_fractional(d, opts);
        round_routing(&self.graph, &frac.routing, d, 32, rng)
    }

    /// Stage 5: competitive ratio against the offline fractional optimum.
    /// The reported `ratio` uses the *dual lower bound* on OPT, so it is an
    /// upper bound on the true ratio (conservative).
    pub fn competitive_report(&self, d: &Demand, opts: &SolveOptions) -> CompetitiveReport {
        let semi = self.route_fractional(d, opts);
        let opt = min_congestion_unrestricted(&self.graph, d, opts);
        let lb = opt.lower_bound.max(f64::MIN_POSITIVE);
        CompetitiveReport {
            semi_oblivious: semi.congestion,
            opt_lower_bound: opt.lower_bound,
            opt_upper_bound: opt.congestion,
            ratio: if d.is_empty() {
                1.0
            } else {
                semi.congestion / lb
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{all_pairs, alpha_sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_graph::{generators, Path};
    use ssor_oblivious::{ObliviousRouting, ValiantRouting};

    #[test]
    fn full_path_system_is_one_competitive() {
        // If P contains every simple path, the routing is 1-competitive
        // (the Definition 5.1 remark).
        let g = generators::ring(6);
        let mut ps = PathSystem::new();
        for s in g.vertices() {
            for t in g.vertices() {
                if s != t {
                    for p in ssor_graph::ksp::all_simple_paths(&g, s, t, 6) {
                        ps.insert(p);
                    }
                }
            }
        }
        let router = SemiObliviousRouter::new(g, ps);
        let d = Demand::from_pairs(&[(0, 3), (1, 4), (2, 5)]);
        let rep = router.competitive_report(&d, &SolveOptions::with_eps(0.02));
        assert!(
            rep.semi_oblivious <= rep.opt_upper_bound * 1.05 + 1e-9,
            "semi {} vs opt {}",
            rep.semi_oblivious,
            rep.opt_upper_bound
        );
    }

    #[test]
    fn sparse_sample_covers_and_routes() {
        let r = ValiantRouting::new(4);
        let mut rng = StdRng::seed_from_u64(5);
        let ps = alpha_sample(&r, &all_pairs(16), 4, &mut rng);
        let router = SemiObliviousRouter::new(r.graph().clone(), ps);
        let d = Demand::hypercube_bit_reversal(4);
        assert!(router.covers(&d));
        let sol = router.route_fractional(&d, &SolveOptions::default());
        assert!(sol.routing.covers(&d));
        // Semi-oblivious congestion is at least the offline optimum.
        let rep = router.competitive_report(&d, &SolveOptions::default());
        assert!(
            rep.ratio >= 0.9,
            "ratio {} below 1 is impossible",
            rep.ratio
        );
    }

    #[test]
    fn integral_route_is_integral_and_bounded() {
        let r = ValiantRouting::new(3);
        let mut rng = StdRng::seed_from_u64(6);
        let ps = alpha_sample(&r, &all_pairs(8), 4, &mut rng);
        let router = SemiObliviousRouter::new(r.graph().clone(), ps);
        let d = Demand::hypercube_complement(3);
        let out = router.route_integral(&d, &SolveOptions::default(), &mut rng);
        assert!(out.routing.routes(&d));
        assert!(out.within_lemma_bound(router.graph().m()));
    }

    #[test]
    fn missing_coverage_detected() {
        let g = generators::ring(5);
        let mut ps = PathSystem::new();
        ps.insert(Path::from_vertices(&g, &[0, 1]).unwrap());
        let router = SemiObliviousRouter::new(g, ps);
        assert!(router.covers(&Demand::from_pairs(&[(0, 1)])));
        assert!(!router.covers(&Demand::from_pairs(&[(1, 3)])));
    }

    #[test]
    fn empty_demand_ratio_is_one() {
        let g = generators::ring(5);
        let router = SemiObliviousRouter::new(g, PathSystem::new());
        let rep = router.competitive_report(&Demand::new(), &SolveOptions::default());
        assert_eq!(rep.ratio, 1.0);
    }
}
