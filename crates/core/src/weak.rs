//! The weak-routing dynamic process of Section 5.3, as an executable
//! algorithm.
//!
//! The proof of the Main Lemma (Lemma 5.6) *constructs* a routing: start
//! with every sampled path carrying its share of the demand, sweep the
//! edges in a fixed order, and whenever an edge's current congestion
//! exceeds the allowance `γ`, zero out every path crossing it. Lemma 5.10
//! shows the surviving weights route a subdemand `d'` with `cong <= γ`,
//! and the probabilistic argument shows `siz(d') >= siz(d)/2` w.h.p.
//!
//! Running this process for real (experiment E9) lets us *measure* the
//! failure probability and the deletion patterns the proof reasons about.

use rand::Rng;
use ssor_flow::{Demand, Routing};
use ssor_graph::{Graph, Path, VertexId};
use ssor_oblivious::ObliviousRouting;
use std::collections::BTreeMap;

/// A sampled path multiset: unlike [`crate::PathSystem`], duplicates are
/// kept, because the process weights paths by their sample multiplicity
/// (the `X(s,t)_{i,p}` variables of Section 5.3).
pub type SampleMultiset = BTreeMap<(VertexId, VertexId), Vec<Path>>;

/// Draws `count(s, t)` paths per pair, *keeping* duplicates.
pub fn sample_multiset<O: ObliviousRouting + ?Sized, R: Rng>(
    routing: &O,
    pairs: &[(VertexId, VertexId)],
    mut count: impl FnMut(VertexId, VertexId) -> usize,
    rng: &mut R,
) -> SampleMultiset {
    let mut out = SampleMultiset::new();
    for &(s, t) in pairs {
        let c = count(s, t);
        assert!(c >= 1, "need at least one sample per pair");
        let paths = (0..c).map(|_| routing.sample_path(s, t, rng)).collect();
        out.insert((s, t), paths);
    }
    out
}

/// Outcome of the Section 5.3 process.
#[derive(Debug, Clone)]
pub struct WeakRouteResult {
    /// The surviving subdemand `d'`.
    pub routed: Demand,
    /// The routing `R'` carrying `d'` with congestion at most `gamma`.
    pub routing: Routing,
    /// `Δ_k`: total weight deleted while processing edge `k`.
    pub deltas: Vec<f64>,
    /// The congestion allowance used.
    pub gamma: f64,
    /// `siz(d') / siz(d)` — the process *succeeds* (in the sense of
    /// Definition 5.4) when this is at least 1/2.
    pub routed_fraction: f64,
}

impl WeakRouteResult {
    /// Whether at least half the demand survived (the weak-competitiveness
    /// success criterion).
    pub fn succeeded(&self) -> bool {
        self.routed_fraction >= 0.5
    }

    /// Number of edges whose processing deleted positive weight
    /// (the "overcongested" edges of the bad-pattern analysis).
    pub fn overcongested_edges(&self) -> usize {
        self.deltas.iter().filter(|&&d| d > 0.0).count()
    }
}

/// Runs the dynamic process: initial weight `d(s,t) / |samples(s,t)|` per
/// sampled path (so a pair's samples share its demand equally — for
/// special demands this is weight 1 per sample, exactly the paper), then
/// the fixed-order edge sweep with allowance `gamma`.
///
/// # Panics
///
/// Panics if some pair in `d`'s support has no samples.
pub fn weak_route(g: &Graph, samples: &SampleMultiset, d: &Demand, gamma: f64) -> WeakRouteResult {
    // Flatten to (pair index, path, weight), preserving multiplicity.
    struct Item {
        pair: (VertexId, VertexId),
        path: Path,
        weight: f64,
        alive: bool,
    }
    let mut items: Vec<Item> = Vec::new();
    for ((s, t), dem) in d.iter() {
        let paths = samples
            .get(&(s, t))
            .unwrap_or_else(|| panic!("no samples for pair ({s}, {t})"));
        assert!(!paths.is_empty());
        let w = dem / paths.len() as f64;
        for p in paths {
            items.push(Item {
                pair: (s, t),
                path: p.clone(),
                weight: w,
                alive: true,
            });
        }
    }

    // Index: edge -> item indices crossing it.
    let mut through: Vec<Vec<usize>> = vec![Vec::new(); g.m()];
    for (i, it) in items.iter().enumerate() {
        for &e in it.path.edges() {
            through[e as usize].push(i);
        }
    }

    // Fixed-order sweep.
    let mut deltas = vec![0.0f64; g.m()];
    for e in 0..g.m() {
        let cong: f64 = through[e]
            .iter()
            .filter(|&&i| items[i].alive)
            .map(|&i| items[i].weight)
            .sum();
        if cong > gamma {
            let mut deleted = 0.0;
            for &i in &through[e] {
                if items[i].alive {
                    items[i].alive = false;
                    deleted += items[i].weight;
                }
            }
            deltas[e] = deleted;
        }
    }

    // Assemble d' and R' from the survivors.
    let mut per_pair: BTreeMap<(VertexId, VertexId), Vec<(Path, f64)>> = BTreeMap::new();
    for it in &items {
        if it.alive {
            per_pair
                .entry(it.pair)
                .or_default()
                .push((it.path.clone(), it.weight));
        }
    }
    let mut routed = Demand::new();
    let mut routing = Routing::new();
    for (&(s, t), paths) in &per_pair {
        let total: f64 = paths.iter().map(|(_, w)| w).sum();
        if total > 0.0 {
            routed.set(s, t, total);
            routing.set_distribution(s, t, paths.clone());
        }
    }
    let size = d.size();
    let routed_fraction = if size > 0.0 {
        routed.size() / size
    } else {
        1.0
    };
    WeakRouteResult {
        routed,
        routing,
        deltas,
        gamma,
        routed_fraction,
    }
}

/// Checks the three bullets of Lemma 5.10 on a process outcome:
/// `d' <= d`, `cong(R', d') <= γ`, and `siz(d') = siz(d) - Σ_k Δ_k`.
pub fn verify_lemma_5_10(g: &Graph, d: &Demand, out: &WeakRouteResult) -> Result<(), String> {
    for ((s, t), w) in out.routed.iter() {
        if w > d.get(s, t) + 1e-9 {
            return Err(format!("d'({s},{t}) = {w} exceeds d = {}", d.get(s, t)));
        }
    }
    let cong = out.routing.congestion(g, &out.routed);
    if cong > out.gamma + 1e-9 {
        return Err(format!("cong {} exceeds gamma {}", cong, out.gamma));
    }
    let delta_sum: f64 = out.deltas.iter().sum();
    let lhs = out.routed.size();
    let rhs = d.size() - delta_sum;
    if (lhs - rhs).abs() > 1e-6 * d.size().max(1.0) {
        return Err(format!("siz(d') = {lhs} but D - ΣΔ = {rhs}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_oblivious::ValiantRouting;

    fn complement_setup(
        dim: u32,
        alpha: usize,
        seed: u64,
    ) -> (ValiantRouting, SampleMultiset, Demand) {
        let r = ValiantRouting::new(dim);
        let d = Demand::hypercube_complement(dim);
        let pairs = d.support();
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = sample_multiset(&r, &pairs, |_, _| alpha, &mut rng);
        (r, samples, d)
    }

    #[test]
    fn generous_gamma_routes_everything() {
        let (r, samples, d) = complement_setup(4, 4, 1);
        let out = weak_route(r.graph(), &samples, &d, 1e9);
        assert!(out.succeeded());
        assert!((out.routed_fraction - 1.0).abs() < 1e-9);
        assert_eq!(out.overcongested_edges(), 0);
        verify_lemma_5_10(r.graph(), &d, &out).unwrap();
    }

    #[test]
    fn zero_gamma_deletes_everything() {
        let (r, samples, d) = complement_setup(3, 2, 2);
        let out = weak_route(r.graph(), &samples, &d, 0.0);
        assert!(!out.succeeded());
        assert_eq!(out.routed.size(), 0.0);
        verify_lemma_5_10(r.graph(), &d, &out).unwrap();
    }

    #[test]
    fn moderate_gamma_satisfies_lemma_5_10() {
        for seed in 0..5 {
            let (r, samples, d) = complement_setup(4, 6, seed);
            for gamma in [1.0, 2.0, 4.0, 8.0] {
                let out = weak_route(r.graph(), &samples, &d, gamma);
                verify_lemma_5_10(r.graph(), &d, &out).unwrap();
            }
        }
    }

    #[test]
    fn weak_routing_succeeds_at_polylog_gamma_whp() {
        // The heart of Lemma 5.6: with alpha = Θ(log n) samples from
        // Valiant and gamma polylog, the process routes at least half the
        // demand. dim 5: n = 32, alpha = 5, gamma = 12 is comfortable.
        let mut successes = 0;
        for seed in 0..10 {
            let (r, samples, d) = complement_setup(5, 5, seed);
            let out = weak_route(r.graph(), &samples, &d, 12.0);
            if out.succeeded() {
                successes += 1;
            }
        }
        assert!(
            successes >= 9,
            "only {successes}/10 runs routed half the demand"
        );
    }

    #[test]
    fn deltas_are_recorded_per_edge() {
        let (r, samples, d) = complement_setup(3, 8, 3);
        // Tiny gamma: every loaded edge overcongests.
        let out = weak_route(r.graph(), &samples, &d, 0.2);
        assert!(out.overcongested_edges() > 0);
        let delta_sum: f64 = out.deltas.iter().sum();
        assert!(delta_sum > 0.0);
        assert!((delta_sum + out.routed.size() - d.size()).abs() < 1e-6);
    }

    #[test]
    fn sample_multiset_keeps_duplicates() {
        let r = ValiantRouting::new(2);
        let mut rng = StdRng::seed_from_u64(4);
        // 20 samples over a support of at most ~4 distinct paths must
        // contain duplicates.
        let ms = sample_multiset(&r, &[(0, 3)], |_, _| 20, &mut rng);
        assert_eq!(ms[&(0, 3)].len(), 20);
    }
}
