//! Deterministic path selection — the Section 1.1 "Deterministic Routing"
//! consequence, made executable.
//!
//! The paper observes that selecting `O(log n)` paths per pair *is* a
//! deterministic oblivious structure once the random sampling is
//! derandomized. We implement the standard method-of-conditional-
//! expectations route: choose paths greedily from the oblivious routing's
//! support, minimizing an exponential congestion potential against the
//! uniform reference demand. The selection is demand-oblivious (it only
//! looks at the routing and the pair list) and fully deterministic.
//!
//! Experiment E4 compares it against random `α`-samples and against the
//! `Ω̃(sqrt(n))` single-path barrier.

use crate::path_system::PathSystem;
use ssor_graph::VertexId;
use ssor_oblivious::ObliviousRouting;

/// Options for [`derandomized_sample`].
#[derive(Debug, Clone)]
pub struct DerandomizeOptions {
    /// Exponential potential sharpness. Larger values penalize emerging
    /// hot spots harder; `ln(m)`-ish values mimic the Chernoff-based
    /// pessimistic estimator.
    pub beta: f64,
}

impl Default for DerandomizeOptions {
    fn default() -> Self {
        DerandomizeOptions { beta: 2.0 }
    }
}

/// Deterministically selects (up to) `alpha` support paths per pair,
/// round-robin over pairs, each time taking the support path minimizing
/// the potential increase `sum_{e in p} exp(beta * load_e)` where `load`
/// accumulates `1/alpha` per chosen path (the uniform reference demand
/// split over the slots).
///
/// The result is a valid `α`-sparse path system chosen without any
/// randomness — the deterministic oblivious structure of Section 1.1.
///
/// # Panics
///
/// Panics if `alpha == 0` or a pair has `s == t`.
pub fn derandomized_sample<O: ObliviousRouting + ?Sized>(
    routing: &O,
    pairs: &[(VertexId, VertexId)],
    alpha: usize,
    opts: &DerandomizeOptions,
) -> PathSystem {
    assert!(alpha >= 1);
    let g = routing.graph();
    let m = g.m();
    let mut load = vec![0.0f64; m];
    let mut ps = PathSystem::new();
    let slot_weight = 1.0 / alpha as f64;

    // Cache supports (sorted deterministically by the trait contract).
    let supports: Vec<Vec<ssor_graph::Path>> = pairs
        .iter()
        .map(|&(s, t)| {
            assert_ne!(s, t);
            routing
                .path_distribution(s, t)
                .into_iter()
                .map(|(p, _)| p)
                .collect()
        })
        .collect();

    for _round in 0..alpha {
        for (pi, &(_s, _t)) in pairs.iter().enumerate() {
            let support = &supports[pi];
            // Marginal potential of adding p.
            let mut best: Option<(usize, f64)> = None;
            for (i, p) in support.iter().enumerate() {
                let cost: f64 = p
                    .edges()
                    .iter()
                    .map(|&e| (opts.beta * load[e as usize]).exp())
                    .sum();
                if best.is_none_or(|(_, b)| cost < b) {
                    best = Some((i, cost));
                }
            }
            let (i, _) = best.expect("nonempty support");
            let p = &support[i];
            for &e in p.edges() {
                load[e as usize] += slot_weight;
            }
            ps.insert(p.clone());
        }
    }
    ps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::all_pairs;
    use crate::SemiObliviousRouter;
    use ssor_flow::{Demand, SolveOptions};
    use ssor_oblivious::{BitFixingRouting, ValiantRouting};

    #[test]
    fn selection_is_deterministic() {
        let r = ValiantRouting::new(3);
        let pairs = all_pairs(8);
        let a = derandomized_sample(&r, &pairs, 3, &Default::default());
        let b = derandomized_sample(&r, &pairs, 3, &Default::default());
        assert_eq!(a, b);
        assert!(a.sparsity() <= 3);
        assert!(a.is_valid(r.graph()));
    }

    #[test]
    fn beats_single_deterministic_path_on_bit_reversal() {
        let dim = 6;
        let valiant = ValiantRouting::new(dim);
        let d = Demand::hypercube_bit_reversal(dim);
        let alpha = 6;
        let ps = derandomized_sample(&valiant, &d.support(), alpha, &Default::default());
        let router = SemiObliviousRouter::new(valiant.graph().clone(), ps);
        let cong = router
            .route_fractional(&d, &SolveOptions::with_eps(0.05))
            .congestion;

        let bitfix = BitFixingRouting::new(dim);
        use ssor_oblivious::ObliviousRouting as _;
        let det = bitfix.congestion(&d);
        assert!(
            cong < det / 1.5,
            "derandomized {alpha}-selection ({cong}) must clearly beat 1 path ({det})"
        );
    }

    #[test]
    fn spreads_over_distinct_paths() {
        // On a pair with a rich support, rounds should pick distinct paths
        // (the potential punishes reusing loaded edges).
        let r = ValiantRouting::new(4);
        let ps = derandomized_sample(&r, &[(0, 15)], 4, &Default::default());
        assert!(
            ps.paths(0, 15).unwrap().len() >= 3,
            "selection collapsed onto few paths"
        );
    }

    #[test]
    fn single_support_pairs_are_fine() {
        // Bit-fixing has a singleton support; selection must not loop.
        let r = BitFixingRouting::new(3);
        let ps = derandomized_sample(&r, &all_pairs(8), 4, &Default::default());
        assert_eq!(ps.sparsity(), 1, "singleton supports collapse by dedup");
    }
}
