//! The Corollary 6.2 auxiliary-graph reduction, executable.
//!
//! Corollary 6.2 derives the `α`-sample result from the `(α + cut)`-sample
//! theorem by a graph surgery: attach two fresh degree-1 vertices
//! `a_{s,t}, b_{s,t}` to `s` and `t` for every pair; between the auxiliary
//! vertices the min cut is exactly 1, so an `(α - 1 + cut)`-sample on the
//! auxiliary graph draws exactly `α` paths, which map back to `(s, t)`-
//! paths in the original graph.
//!
//! We implement the surgery literally so tests can confirm the two
//! constructions coincide — the reduction is *executable*, not just
//! prose.

use crate::path_system::PathSystem;
use crate::sample::alpha_cut_sample;
use rand::{Rng, RngCore};
use ssor_graph::{EdgeId, Graph, Path, VertexId};
use ssor_oblivious::ObliviousRouting;

/// The auxiliary graph `G2` of Corollary 6.2, restricted to the pairs of
/// interest (the corollary uses all `n^2` pairs; building only the needed
/// ones keeps the surgery cheap).
#[derive(Debug)]
pub struct AuxGraph {
    /// The extended graph: original vertices, then `2 * pairs.len()`
    /// auxiliary vertices.
    pub graph: Graph,
    /// For pair index `i`: the auxiliary pair `(a_i, b_i)`.
    pub aux_pairs: Vec<(VertexId, VertexId)>,
    /// For pair index `i`: the two bridge edges `(a_i - s, t - b_i)`.
    pub bridges: Vec<(EdgeId, EdgeId)>,
    /// The original pairs, aligned with `aux_pairs`.
    pub pairs: Vec<(VertexId, VertexId)>,
}

impl AuxGraph {
    /// Performs the surgery on `g` for the given pairs.
    ///
    /// # Panics
    ///
    /// Panics if some pair has `s == t`.
    pub fn build(g: &Graph, pairs: &[(VertexId, VertexId)]) -> AuxGraph {
        let n = g.n();
        let mut g2 = Graph::new(n + 2 * pairs.len());
        for (_, (u, v)) in g.edges() {
            g2.add_edge(u, v);
        }
        let mut aux_pairs = Vec::with_capacity(pairs.len());
        let mut bridges = Vec::with_capacity(pairs.len());
        for (i, &(s, t)) in pairs.iter().enumerate() {
            assert_ne!(s, t);
            let a = (n + 2 * i) as VertexId;
            let b = (n + 2 * i + 1) as VertexId;
            let e1 = g2.add_edge(a, s);
            let e2 = g2.add_edge(t, b);
            aux_pairs.push((a, b));
            bridges.push((e1, e2));
        }
        AuxGraph {
            graph: g2,
            aux_pairs,
            bridges,
            pairs: pairs.to_vec(),
        }
    }

    /// Maps a path between auxiliary endpoints back to the original graph
    /// (strips the two bridge edges). Edge ids below the original `m` are
    /// shared between the graphs by construction.
    ///
    /// # Panics
    ///
    /// Panics if the path does not start and end at auxiliary vertices of
    /// this reduction.
    pub fn map_back(&self, g: &Graph, p: &Path) -> Path {
        assert!(
            p.hop() >= 2,
            "auxiliary paths have at least two bridge hops"
        );
        let inner = &p.edges()[1..p.edges().len() - 1];
        let start = p.vertices()[1];
        Path::from_edges(g, start, inner).expect("inner path lives in the original graph")
    }
}

/// The oblivious routing `R2` of Corollary 6.2: routes `(a_i, b_i)` by
/// bridging into `R(s_i, t_i)`.
#[derive(Debug)]
pub struct AuxRouting<'a, O: ObliviousRouting + ?Sized> {
    aux: &'a AuxGraph,
    base: &'a O,
    /// pair index by auxiliary source vertex.
    index_of: std::collections::HashMap<VertexId, usize>,
}

impl<'a, O: ObliviousRouting + ?Sized> AuxRouting<'a, O> {
    /// Wraps the base routing for the auxiliary graph.
    pub fn new(aux: &'a AuxGraph, base: &'a O) -> Self {
        let index_of = aux
            .aux_pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, _))| (a, i))
            .collect();
        AuxRouting {
            aux,
            base,
            index_of,
        }
    }

    fn extend(&self, i: usize, inner: Path) -> Path {
        let (a, _b) = self.aux.aux_pairs[i];
        let (e1, e2) = self.aux.bridges[i];
        let mut edges = Vec::with_capacity(inner.hop() + 2);
        edges.push(e1);
        edges.extend_from_slice(inner.edges());
        edges.push(e2);
        Path::from_edges(&self.aux.graph, a, &edges).expect("bridged path valid")
    }

    fn pair_index(&self, s: VertexId, t: VertexId) -> usize {
        let i = *self
            .index_of
            .get(&s)
            .unwrap_or_else(|| panic!("{s} is not an auxiliary source"));
        assert_eq!(self.aux.aux_pairs[i].1, t, "mismatched auxiliary pair");
        i
    }
}

impl<O: ObliviousRouting + ?Sized> ObliviousRouting for AuxRouting<'_, O> {
    fn graph(&self) -> &Graph {
        &self.aux.graph
    }

    fn sample_path(&self, s: VertexId, t: VertexId, rng: &mut dyn RngCore) -> Path {
        let i = self.pair_index(s, t);
        let (os, ot) = self.aux.pairs[i];
        self.extend(i, self.base.sample_path(os, ot, rng))
    }

    fn path_distribution(&self, s: VertexId, t: VertexId) -> Vec<(Path, f64)> {
        let i = self.pair_index(s, t);
        let (os, ot) = self.aux.pairs[i];
        self.base
            .path_distribution(os, ot)
            .into_iter()
            .map(|(p, w)| (self.extend(i, p), w))
            .collect()
    }
}

/// The Corollary 6.2 construction end to end: `(α - 1 + cut)`-sample on
/// the auxiliary graph, mapped back — distributionally identical to a
/// direct `α`-sample, which tests assert structurally.
///
/// # Panics
///
/// Panics if `alpha < 2` (the corollary assumes `α >= 2`).
pub fn alpha_sample_via_reduction<O: ObliviousRouting + ?Sized, R: Rng>(
    base: &O,
    g: &Graph,
    pairs: &[(VertexId, VertexId)],
    alpha: usize,
    rng: &mut R,
) -> PathSystem {
    assert!(alpha >= 2, "Corollary 6.2 assumes alpha >= 2");
    let aux = AuxGraph::build(g, pairs);
    let routing = AuxRouting::new(&aux, base);
    let sampled = alpha_cut_sample(&routing, &aux.graph, &aux.aux_pairs, alpha - 1, rng);
    let mut out = PathSystem::new();
    for (a, b) in aux.aux_pairs.iter().copied() {
        if let Some(paths) = sampled.paths(a, b) {
            for p in &paths {
                out.insert(aux.map_back(g, p));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{all_pairs, alpha_sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_graph::maxflow::min_cut_value;
    use ssor_oblivious::ValiantRouting;

    #[test]
    fn aux_graph_has_unit_cuts_between_aux_pairs() {
        let g = ssor_graph::generators::hypercube(3);
        let pairs = vec![(0u32, 7u32), (1, 6)];
        let aux = AuxGraph::build(&g, &pairs);
        assert_eq!(aux.graph.n(), 8 + 4);
        assert_eq!(aux.graph.m(), g.m() + 4);
        for &(a, b) in &aux.aux_pairs {
            assert_eq!(
                min_cut_value(&aux.graph, a, b),
                1,
                "Corollary 6.2's key property"
            );
        }
    }

    #[test]
    fn reduction_sample_matches_direct_sample_shape() {
        let r = ValiantRouting::new(3);
        let g = r.graph().clone();
        let pairs = all_pairs(8);
        let alpha = 4;
        let mut rng1 = StdRng::seed_from_u64(1);
        let via = alpha_sample_via_reduction(&r, &g, &pairs, alpha, &mut rng1);
        assert!(via.is_valid(&g));
        assert!(via.sparsity() <= alpha, "(α-1) + cut(=1) = α draws");
        // Every mapped-back path is in the base support.
        for (s, t) in via.pairs() {
            let support: Vec<Vec<u32>> = r
                .path_distribution(s, t)
                .into_iter()
                .map(|(p, _)| p.edges().to_vec())
                .collect();
            for p in via.paths(s, t).unwrap() {
                assert!(support.contains(&p.edges().to_vec()));
            }
        }
        // Same sparsity profile as a direct sample (same number of draws).
        let mut rng2 = StdRng::seed_from_u64(1);
        let direct = alpha_sample(&r, &pairs, alpha, &mut rng2);
        assert_eq!(via.len(), direct.len());
    }

    #[test]
    fn map_back_strips_bridges_exactly() {
        let g = ssor_graph::generators::ring(5);
        let pairs = vec![(0u32, 2u32)];
        let aux = AuxGraph::build(&g, &pairs);
        let inner = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        let r = ssor_oblivious::ShortestPathRouting::new(&g);
        let routing = AuxRouting::new(&aux, &r);
        let bridged = routing.extend(0, inner.clone());
        assert_eq!(bridged.hop(), inner.hop() + 2);
        let back = aux.map_back(&g, &bridged);
        assert_eq!(back, inner);
    }

    #[test]
    #[should_panic(expected = "alpha >= 2")]
    fn rejects_alpha_one() {
        let r = ValiantRouting::new(2);
        let g = r.graph().clone();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = alpha_sample_via_reduction(&r, &g, &[(0, 3)], 1, &mut rng);
    }
}
