//! Sampling path systems from oblivious routings (Definition 5.2) — the
//! paper's entire construction.
//!
//! * [`alpha_sample`] — `α` iid draws from `R(s, t)` per pair (Theorem 2.5
//!   / Corollary 6.2 setting);
//! * [`alpha_cut_sample`] — `α + cut_G(s, t)` draws per pair (Theorem 5.3
//!   setting, needed for arbitrary fractional demands: the two-cliques
//!   example of Section 2.1 shows `cut` many paths are necessary).

use crate::path_system::PathSystem;
use rand::Rng;
use ssor_graph::maxflow::min_cut_value;
use ssor_graph::{Graph, VertexId};
use ssor_oblivious::ObliviousRouting;
use std::collections::HashMap;

/// Draws `count` paths (with replacement) from `R(s, t)` into `ps`.
fn draw_into<O: ObliviousRouting + ?Sized, R: Rng>(
    ps: &mut PathSystem,
    routing: &O,
    s: VertexId,
    t: VertexId,
    count: usize,
    rng: &mut R,
) {
    for _ in 0..count {
        ps.insert(routing.sample_path(s, t, rng));
    }
}

/// An `α`-sample of the oblivious routing on the given pairs
/// (Definition 5.2): for each pair, `α` paths sampled with replacement
/// from `R(s, t)` (duplicates collapse, so `|P(s, t)| <= α`).
///
/// # Panics
///
/// Panics if `alpha == 0` or some pair has `s == t`.
///
/// # Examples
///
/// ```
/// use ssor_core::sample::alpha_sample;
/// use ssor_oblivious::ValiantRouting;
/// use rand::SeedableRng;
///
/// let r = ValiantRouting::new(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ps = alpha_sample(&r, &[(0, 7), (1, 6)], 4, &mut rng);
/// assert!(ps.sparsity() <= 4);
/// assert_eq!(ps.len(), 2);
/// ```
pub fn alpha_sample<O: ObliviousRouting + ?Sized, R: Rng>(
    routing: &O,
    pairs: &[(VertexId, VertexId)],
    alpha: usize,
    rng: &mut R,
) -> PathSystem {
    assert!(alpha >= 1, "alpha must be positive");
    let mut ps = PathSystem::new();
    for &(s, t) in pairs {
        assert_ne!(s, t, "pairs must have distinct endpoints");
        draw_into(&mut ps, routing, s, t, alpha, rng);
    }
    ps
}

/// An `(α + cut_G)`-sample (Definition 5.2): `α + cut_G(s, t)` draws per
/// pair, where `cut_G(s, t)` is the unit-capacity minimum cut computed by
/// Dinic. Cut values are memoized per unordered pair.
///
/// # Panics
///
/// Panics if `alpha == 0`, some pair has `s == t`, or the graph is
/// disconnected between a pair.
pub fn alpha_cut_sample<O: ObliviousRouting + ?Sized, R: Rng>(
    routing: &O,
    graph: &Graph,
    pairs: &[(VertexId, VertexId)],
    alpha: usize,
    rng: &mut R,
) -> PathSystem {
    assert!(alpha >= 1, "alpha must be positive");
    let mut cut_cache: HashMap<(VertexId, VertexId), u64> = HashMap::new();
    let mut ps = PathSystem::new();
    for &(s, t) in pairs {
        assert_ne!(s, t, "pairs must have distinct endpoints");
        let key = (s.min(t), s.max(t));
        let cut = *cut_cache
            .entry(key)
            .or_insert_with(|| min_cut_value(graph, s, t));
        assert!(cut >= 1, "graph disconnected between {s} and {t}");
        draw_into(&mut ps, routing, s, t, alpha + cut as usize, rng);
    }
    ps
}

/// All ordered pairs `(s, t)`, `s != t`, of an `n`-vertex graph — the full
/// domain a semi-oblivious routing must pre-install paths for.
pub fn all_pairs(n: usize) -> Vec<(VertexId, VertexId)> {
    let mut v = Vec::with_capacity(n * (n - 1));
    for s in 0..n as VertexId {
        for t in 0..n as VertexId {
            if s != t {
                v.push((s, t));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_graph::generators;
    use ssor_oblivious::{KspRouting, ValiantRouting};

    #[test]
    fn alpha_sample_sparsity_bound() {
        let r = ValiantRouting::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = all_pairs(16);
        let ps = alpha_sample(&r, &pairs, 3, &mut rng);
        assert!(ps.sparsity() <= 3);
        assert_eq!(ps.len(), pairs.len());
        assert!(ps.is_valid(r.graph()));
    }

    #[test]
    fn alpha_sample_paths_come_from_support() {
        let r = ValiantRouting::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        let ps = alpha_sample(&r, &[(0, 7)], 5, &mut rng);
        let support: Vec<Vec<u32>> = r
            .path_distribution(0, 7)
            .into_iter()
            .map(|(p, _)| p.edges().to_vec())
            .collect();
        for p in ps.paths(0, 7).unwrap() {
            assert!(support.contains(&p.edges().to_vec()));
        }
    }

    #[test]
    fn cut_sample_counts_include_cut() {
        // Two-cliques bridge: cut between opposite-side vertices is the
        // bridge count; sampling must request alpha + cut paths.
        let g = generators::two_cliques_bridge(5, 3);
        let r = KspRouting::new(&g, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = vec![(4u32, 9u32)]; // no bridge touches vertex 4 or 9
        let ps = alpha_cut_sample(&r, &g, &pairs, 2, &mut rng);
        // 2 + cut(=3) = 5 draws; dedup may reduce, but the KSP support has
        // 8 distinct paths so we expect close to 5 distinct ones.
        let got = ps.paths(4, 9).unwrap().len();
        assert!((2..=5).contains(&got), "got {got}");
        assert!(ps.is_cut_sparse(2, |s, t| min_cut_value(&g, s, t) as usize));
    }

    #[test]
    fn larger_alpha_never_reduces_coverage() {
        let r = ValiantRouting::new(3);
        let pairs = all_pairs(8);
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let small = alpha_sample(&r, &pairs, 1, &mut r1);
        let large = alpha_sample(&r, &pairs, 6, &mut r2);
        assert!(large.total_paths() >= small.total_paths());
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_zero_alpha() {
        let r = ValiantRouting::new(3);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = alpha_sample(&r, &[(0, 1)], 0, &mut rng);
    }

    #[test]
    fn all_pairs_count() {
        assert_eq!(all_pairs(5).len(), 20);
        assert!(all_pairs(3).iter().all(|&(s, t)| s != t));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let r = ValiantRouting::new(4);
        let pairs = all_pairs(16);
        let a = alpha_sample(&r, &pairs, 2, &mut StdRng::seed_from_u64(9));
        let b = alpha_sample(&r, &pairs, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
