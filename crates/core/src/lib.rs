//! # ssor-core
//!
//! The primary contribution of *Sparse Semi-Oblivious Routing: Few Random
//! Paths Suffice* (Zuzic ⓡ Haeupler ⓡ Roeyskoe, PODC 2023), as a library.
//!
//! A **semi-oblivious routing** is a sparse path system chosen before
//! demands are known (Definition 2.1/5.1); once the demand arrives, only
//! the sending *rates* over those paths adapt. The paper proves that the
//! embarrassingly simple construction — *sample `α` paths per pair from
//! any competitive oblivious routing* (Definition 5.2) — is
//! `polylog`-competitive at `α = Θ(log n / log log n)` and improves
//! exponentially with every extra path.
//!
//! Crate layout, mapped to the paper:
//!
//! * [`PathSystem`] — Definition 2.1;
//! * [`sample`] — Definition 5.2: [`sample::alpha_sample`] and
//!   [`sample::alpha_cut_sample`];
//! * [`SemiObliviousRouter`] — Stages 4–5 (rate adaptation via the
//!   restricted LP; competitive reports with certified optimality gaps);
//! * [`weak`] — the Section 5.3 edge-deletion process and its Lemma 5.10
//!   invariants, executable;
//! * [`special`] — Definition 5.5 special demands, the Lemma 5.9
//!   bucketing, and the Lemma 5.8 weak-to-strong loop;
//! * [`chernoff`] — Appendix B tail bounds and the paper's parameter
//!   arithmetic (log-space);
//! * [`completion`] — the Section 7 union-over-hop-scales construction
//!   for the congestion + dilation objective.
//!
//! # Examples
//!
//! ```
//! use ssor_core::{sample, SemiObliviousRouter};
//! use ssor_flow::Demand;
//! use ssor_oblivious::{ObliviousRouting, ValiantRouting};
//! use rand::SeedableRng;
//!
//! // Stage 1-2: graph + sparse path system (4 Valiant samples per pair).
//! let oblivious = ValiantRouting::new(4);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let paths = sample::alpha_sample(&oblivious, &sample::all_pairs(16), 4, &mut rng);
//! let router = SemiObliviousRouter::new(oblivious.graph().clone(), paths);
//!
//! // Stage 3-5: demand revealed, rates adapt, congestion compared to OPT.
//! let demand = Demand::hypercube_bit_reversal(4);
//! let report = router.competitive_report(&demand, &Default::default());
//! assert!(report.ratio < 8.0, "four random paths already do well");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chernoff;
pub mod completion;
pub mod derandomize;
mod path_system;
pub mod reduction;
mod router;
pub mod sample;
pub mod special;
pub mod weak;

pub use path_system::PathSystem;
pub use router::{CompetitiveReport, SemiObliviousRouter};
