//! Completion-time (congestion + dilation) semi-oblivious routing —
//! Section 7 of the paper.
//!
//! The construction of Lemmas 2.8/2.9: pick geometric hop scales
//! `h_1 = 1, h_{i+1} = ceil(h_i * log n)` (or `n^{1/α}` steps in the
//! low-sparsity case), take an `α`-sample from a *hop-constrained*
//! oblivious routing at every scale, and union the samples. To route a
//! demand, solve Stage 4 on each scale's sub-system and keep whichever
//! scale minimizes `congestion + dilation`.

use crate::path_system::PathSystem;
use crate::sample::alpha_sample;
use rand::Rng;
use ssor_flow::solver::{min_congestion_restricted, SolveOptions};
use ssor_flow::{Demand, Routing};
use ssor_graph::{Graph, VertexId};
use ssor_oblivious::{HopConstrainedRouting, HopOptions};

/// How the hop scales grow between levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleGrowth {
    /// `h_{i+1} = ceil(h_i * log2 n)` — the Lemma 2.8 (logarithmic
    /// sparsity) ladder with `O(log n / log log n)` scales.
    Log,
    /// `h_{i+1} = ceil(h_i * n^{1/α})` — the Lemma 2.9 (low sparsity)
    /// ladder with `O(α)` scales.
    Poly {
        /// The sparsity parameter `α`.
        alpha: usize,
    },
}

/// Options for [`CompletionTimeRouter::build`].
#[derive(Debug, Clone)]
pub struct CompletionOptions {
    /// Paths sampled per pair per scale.
    pub alpha: usize,
    /// Scale ladder growth rule.
    pub growth: ScaleGrowth,
    /// Options for the per-scale hop-constrained routings.
    pub hop: HopOptions,
}

impl Default for CompletionOptions {
    fn default() -> Self {
        CompletionOptions {
            alpha: 4,
            growth: ScaleGrowth::Log,
            hop: HopOptions::default(),
        }
    }
}

/// The union-of-scales path system with per-scale routing support.
#[derive(Debug)]
pub struct CompletionTimeRouter {
    graph: Graph,
    /// Hop budget per scale (increasing).
    scales: Vec<usize>,
    /// `α`-sample per scale.
    per_scale: Vec<PathSystem>,
    /// Union of all per-scale systems (the object whose sparsity
    /// Lemmas 2.8/2.9 bound).
    union: PathSystem,
}

/// A completion-time routing outcome.
#[derive(Debug, Clone)]
pub struct CompletionRoute {
    /// The chosen routing.
    pub routing: Routing,
    /// Its max edge congestion.
    pub congestion: f64,
    /// Its dilation (max hops used).
    pub dilation: usize,
    /// Index into [`CompletionTimeRouter::scales`] of the winning scale.
    pub scale_index: usize,
}

impl CompletionRoute {
    /// The completion-time objective `congestion + dilation`.
    pub fn objective(&self) -> f64 {
        self.congestion + self.dilation as f64
    }
}

impl CompletionTimeRouter {
    /// Builds the ladder: hop-constrained routing + `α`-sample per scale.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or `pairs` is empty.
    pub fn build<R: Rng>(
        g: &Graph,
        pairs: &[(VertexId, VertexId)],
        opts: &CompletionOptions,
        rng: &mut R,
    ) -> Self {
        assert!(!pairs.is_empty());
        let n = g.n() as f64;
        let factor = match opts.growth {
            ScaleGrowth::Log => n.log2().max(2.0),
            ScaleGrowth::Poly { alpha } => n.powf(1.0 / alpha as f64).max(2.0),
        };
        let mut scales = vec![1usize];
        while *scales.last().unwrap() < g.n() {
            let next = ((*scales.last().unwrap() as f64) * factor).ceil() as usize;
            scales.push(next.min(g.n()));
            if *scales.last().unwrap() >= g.n() {
                break;
            }
        }

        let mut per_scale = Vec::with_capacity(scales.len());
        let mut union = PathSystem::new();
        for &h in &scales {
            let hop_routing = HopConstrainedRouting::build(g, h, &opts.hop, rng);
            let ps = alpha_sample(&hop_routing, pairs, opts.alpha, rng);
            union = union.union(&ps);
            per_scale.push(ps);
        }
        CompletionTimeRouter {
            graph: g.clone(),
            scales,
            per_scale,
            union,
        }
    }

    /// The hop-scale ladder.
    pub fn scales(&self) -> &[usize] {
        &self.scales
    }

    /// The union path system; its sparsity is what Lemma 2.8 bounds by
    /// `O((log n / log log n)^2)` (resp. `α^2` for Lemma 2.9).
    pub fn path_system(&self) -> &PathSystem {
        &self.union
    }

    /// Routes `d` at every scale and returns the scale minimizing
    /// `congestion + dilation` (the completion-time objective, Section 7).
    ///
    /// # Panics
    ///
    /// Panics if some scale misses coverage for `d`'s support (cannot
    /// happen for systems built over the demand's pairs).
    pub fn route(&self, d: &Demand, opts: &SolveOptions) -> CompletionRoute {
        assert!(!d.is_empty(), "empty demand has nothing to route");
        let mut best: Option<CompletionRoute> = None;
        for (i, ps) in self.per_scale.iter().enumerate() {
            let sol = min_congestion_restricted(&self.graph, d, ps.candidates(), opts);
            // A scale that strands demand would win the objective
            // precisely because it fails to route traffic — enforce the
            // documented coverage contract instead.
            assert!(
                sol.stranded == 0.0,
                "scale {i} misses coverage: {} mass stranded on pairs {:?}",
                sol.stranded,
                sol.dropped_pairs
            );
            let dil = sol.routing.dilation(d);
            let cand = CompletionRoute {
                congestion: sol.congestion,
                dilation: dil,
                routing: sol.routing,
                scale_index: i,
            };
            if best
                .as_ref()
                .is_none_or(|b| cand.objective() < b.objective())
            {
                best = Some(cand);
            }
        }
        best.expect("at least one scale")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_graph::generators;

    #[test]
    fn ladder_reaches_the_diameter() {
        let g = generators::ring(16);
        let pairs = vec![(0u32, 8u32), (1, 9)];
        let mut rng = StdRng::seed_from_u64(1);
        let r = CompletionTimeRouter::build(&g, &pairs, &Default::default(), &mut rng);
        assert_eq!(r.scales()[0], 1);
        assert!(
            *r.scales().last().unwrap() >= 8,
            "top scale must reach the diameter"
        );
        for w in r.scales().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn poly_growth_uses_fewer_scales() {
        let g = generators::ring(32);
        let pairs = vec![(0u32, 16u32)];
        let mut rng = StdRng::seed_from_u64(2);
        let log = CompletionTimeRouter::build(&g, &pairs, &Default::default(), &mut rng);
        let poly = CompletionTimeRouter::build(
            &g,
            &pairs,
            &CompletionOptions {
                growth: ScaleGrowth::Poly { alpha: 1 },
                ..Default::default()
            },
            &mut rng,
        );
        assert!(poly.scales().len() <= log.scales().len());
    }

    #[test]
    fn sparsity_is_alpha_times_scales() {
        let g = generators::hypercube(4);
        let d = Demand::hypercube_complement(4);
        let pairs = d.support();
        let mut rng = StdRng::seed_from_u64(3);
        let opts = CompletionOptions {
            alpha: 3,
            ..Default::default()
        };
        let r = CompletionTimeRouter::build(&g, &pairs, &opts, &mut rng);
        assert!(
            r.path_system().sparsity() <= 3 * r.scales().len(),
            "union sparsity {} vs bound {}",
            r.path_system().sparsity(),
            3 * r.scales().len()
        );
    }

    #[test]
    fn routing_picks_reasonable_objective() {
        // Barbell: clique pairs can use short intra-clique paths; the
        // completion router should not pick needlessly long detours.
        let g = generators::barbell(5, 4);
        let d = Demand::from_pairs(&[(0, 1), (2, 3)]);
        let pairs = d.support();
        let mut rng = StdRng::seed_from_u64(4);
        let r = CompletionTimeRouter::build(&g, &pairs, &Default::default(), &mut rng);
        let out = r.route(&d, &SolveOptions::default());
        assert!(
            out.dilation <= 4,
            "intra-clique traffic must stay short, got {}",
            out.dilation
        );
        assert!(out.objective() <= 6.0, "objective {}", out.objective());
    }

    #[test]
    fn dilation_of_scale_limited_routes() {
        // On a ring, antipodal traffic needs dilation >= n/2; the chosen
        // scale must accommodate that.
        let g = generators::ring(12);
        let d = Demand::from_pairs(&[(0, 6)]);
        let mut rng = StdRng::seed_from_u64(5);
        let r = CompletionTimeRouter::build(&g, &d.support(), &Default::default(), &mut rng);
        let out = r.route(&d, &SolveOptions::default());
        assert!(out.dilation >= 6);
        assert!(out.congestion <= 1.0 + 1e-9);
    }
}
