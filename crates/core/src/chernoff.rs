//! Tail bounds and parameter arithmetic from Appendix B and Lemma 5.6.
//!
//! All quantities that overflow `f64` (the paper's bounds routinely look
//! like `m^{16(h+7)/α}`) are exposed in natural-log space.

/// Chernoff bound for negatively associated 0/1 sums, large-deviation form
/// (Lemma B.5): `P[X >= δμ] <= exp(-δμ ln(δ) / 4)` for `δ >= 2`.
///
/// Returns the log-probability bound (`<= 0`).
///
/// # Panics
///
/// Panics if `delta < 2` or `mu < 0`.
pub fn log_chernoff_large_deviation(mu: f64, delta: f64) -> f64 {
    assert!(delta >= 2.0, "Lemma B.5 needs delta >= 2");
    assert!(mu >= 0.0);
    -(delta * mu * delta.ln()) / 4.0
}

/// Chernoff bound, moderate form (Lemma B.6):
/// `P[X >= (1+δ)μ] <= exp(-δ²μ / (2+δ))` for `δ > 0`.
///
/// Returns the log-probability bound.
///
/// # Panics
///
/// Panics if `delta <= 0` or `mu < 0`.
pub fn log_chernoff_moderate(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0);
    assert!(mu >= 0.0);
    -(delta * delta * mu) / (2.0 + delta)
}

/// Log of the Lemma 5.6 failure probability `m^{-(h+3) |supp(d)|}`.
pub fn log_main_lemma_failure(m: usize, h: f64, support: usize) -> f64 {
    -(h + 3.0) * (support as f64) * (m as f64).ln()
}

/// Log of the bad-pattern count bound `m^{6 D / α}` (Lemma 5.13).
pub fn log_bad_pattern_count(m: usize, demand_size: f64, alpha: usize) -> f64 {
    6.0 * demand_size / alpha as f64 * (m as f64).ln()
}

/// The Lemma 5.6 congestion allowance *factor*
/// `α + m^{16(h+7)/α}` in log space: returns
/// `ln(α + exp(16(h+7)/α * ln m))` computed stably.
pub fn log_allowance_factor(m: usize, h: f64, alpha: usize) -> f64 {
    let a = (alpha as f64).ln();
    let b = 16.0 * (h + 7.0) / alpha as f64 * (m as f64).ln();
    // log(exp(a) + exp(b)) = max + log1p(exp(min - max)).
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// `α = Θ(log n / log log n)` — the logarithmic-sparsity choice of
/// Theorem 2.3 (clamped to at least 1).
pub fn theorem_2_3_alpha(n: usize) -> usize {
    let ln = (n as f64).ln().max(std::f64::consts::E);
    let lnln = ln.ln().max(1.0);
    (ln / lnln).ceil().max(1.0) as usize
}

/// The paper's `n^{O(1/α)}` competitiveness *shape* for the low-sparsity
/// trade-off (Theorem 2.5), with the constant taken as 1:
/// `n^{1/α}`. Used by experiments to plot the predicted curve.
pub fn low_sparsity_shape(n: usize, alpha: usize) -> f64 {
    (n as f64).powf(1.0 / alpha as f64)
}

/// The lower-bound curve `n^{1/(2α)} / α` from Lemma 8.1/8.2 (with
/// `k = floor(n^{1/(2α)})`).
pub fn lower_bound_shape(n: usize, alpha: usize) -> f64 {
    (n as f64).powf(1.0 / (2.0 * alpha as f64)).floor() / alpha as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_deviation_decreases_in_delta() {
        let a = log_chernoff_large_deviation(1.0, 2.0);
        let b = log_chernoff_large_deviation(1.0, 8.0);
        assert!(b < a, "bigger deviations are less likely");
        assert!(a < 0.0);
    }

    #[test]
    fn moderate_bound_matches_formula() {
        let lb = log_chernoff_moderate(10.0, 1.0);
        assert!((lb - (-10.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "delta >= 2")]
    fn large_deviation_rejects_small_delta() {
        let _ = log_chernoff_large_deviation(1.0, 1.5);
    }

    #[test]
    fn failure_probability_union_bounds() {
        // The Corollary 5.7 union bound: sum over support sizes k of
        // n^{2k} * m^{-(h+3)k} <= m^{-h} when m >= n. Verify in log space
        // for a concrete parameterization.
        let (n, m, h) = (64usize, 256usize, 2.0);
        let mut total = f64::NEG_INFINITY;
        for k in 1..=(n * n) {
            let log_count = 2.0 * k as f64 * (n as f64).ln();
            let log_fail = log_main_lemma_failure(m, h, k);
            let term = log_count + log_fail;
            // log-sum-exp accumulate.
            let (hi, lo) = if total >= term {
                (total, term)
            } else {
                (term, total)
            };
            total = hi + (lo - hi).exp().ln_1p();
        }
        assert!(
            total <= -h * (m as f64).ln() + 1e-9,
            "union bound violated: {total}"
        );
    }

    #[test]
    fn allowance_factor_is_monotone_in_h() {
        let a = log_allowance_factor(1000, 1.0, 8);
        let b = log_allowance_factor(1000, 4.0, 8);
        assert!(b > a);
    }

    #[test]
    fn allowance_factor_decreases_with_alpha() {
        let a = log_allowance_factor(1000, 2.0, 2);
        let b = log_allowance_factor(1000, 2.0, 16);
        assert!(b < a, "more paths means smaller allowance");
    }

    #[test]
    fn theorem_2_3_alpha_grows_slowly() {
        let tiny = theorem_2_3_alpha(2);
        assert!(
            (1..=4).contains(&tiny),
            "tiny n clamps to a small constant, got {tiny}"
        );
        let a256 = theorem_2_3_alpha(256);
        let a65536 = theorem_2_3_alpha(65536);
        assert!((2..=6).contains(&a256), "a256 = {a256}");
        assert!(a65536 >= a256);
        assert!(a65536 <= 8);
    }

    /// Monte-Carlo check of Lemma B.5/B.6 on genuinely negatively
    /// associated variables: one-hot indicator blocks (Lemma B.2) summed
    /// across independent blocks (Lemma B.3) — exactly the `X(s,t)_{i,p}`
    /// structure of Section 5.3.
    #[test]
    fn chernoff_bounds_hold_empirically_for_one_hot_sums() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(424242);
        let blocks = 40; // independent one-hot blocks of width 8
        let width = 8;
        // X = number of blocks whose hot index lands in {0,1}: mu = 10.
        let trials = 20_000;
        let mut exceed_moderate = 0usize; // X >= 2*mu
        let mut exceed_large = 0usize; // X >= 3*mu
        for _ in 0..trials {
            let mut x = 0;
            for _ in 0..blocks {
                if rng.gen_range(0..width) < 2 {
                    x += 1;
                }
            }
            let mu = blocks as f64 * 2.0 / width as f64;
            if (x as f64) >= 2.0 * mu {
                exceed_moderate += 1;
            }
            if (x as f64) >= 3.0 * mu {
                exceed_large += 1;
            }
        }
        let mu = blocks as f64 * 2.0 / width as f64;
        // Lemma B.6 with delta = 1: P[X >= 2mu] <= exp(-mu/3).
        let bound_moderate = log_chernoff_moderate(mu, 1.0).exp();
        let emp_moderate = exceed_moderate as f64 / trials as f64;
        assert!(
            emp_moderate <= bound_moderate * 1.2 + 3.0 / trials as f64,
            "Lemma B.6 violated empirically: {emp_moderate} vs bound {bound_moderate}"
        );
        // Lemma B.5 with delta = 3 >= 2: P[X >= 3mu] <= exp(-3mu ln(3)/4).
        let bound_large = log_chernoff_large_deviation(mu, 3.0).exp();
        let emp_large = exceed_large as f64 / trials as f64;
        assert!(
            emp_large <= bound_large * 1.2 + 3.0 / trials as f64,
            "Lemma B.5 violated empirically: {emp_large} vs bound {bound_large}"
        );
    }

    #[test]
    fn shapes_cross_over_correctly() {
        // Upper-bound shape n^{1/α} decays exponentially in α; the
        // lower-bound shape n^{1/2α}/α stays below it.
        let n = 4096;
        for alpha in 1..=10 {
            assert!(lower_bound_shape(n, alpha) <= low_sparsity_shape(n, alpha));
        }
        assert!(low_sparsity_shape(n, 12) < low_sparsity_shape(n, 1));
    }
}
