//! Path systems (Definition 2.1): the combinatorial object a semi-oblivious
//! routing *is*.

use ssor_flow::Candidates;
use ssor_graph::{Graph, Path, PathId, PathStore, VertexId};
use std::collections::BTreeMap;

/// A path system `P = {P(s, t)}`: a set of simple `(s, t)`-paths per vertex
/// pair (Definition 2.1). A semi-oblivious routing is exactly a path system
/// together with the Stage-4 promise to route optimally within it
/// (Definition 5.1).
///
/// Paths are stored interned in a [`PathStore`] arena: each distinct path
/// lives once, a pair's candidate list is a `Vec<PathId>`, and the
/// duplicate check in [`PathSystem::insert`] is a hash lookup plus an id
/// scan — never an edge-vector comparison. Owned [`Path`]s appear only at
/// the boundary ([`PathSystem::paths`] materializes; use
/// [`PathSystem::path_ids`] + [`PathSystem::store`] in hot paths).
///
/// # Examples
///
/// ```
/// use ssor_core::PathSystem;
/// use ssor_graph::{generators, Path};
///
/// let g = generators::ring(6);
/// let mut ps = PathSystem::new();
/// ps.insert(Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
/// ps.insert(Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
/// assert_eq!(ps.sparsity(), 2);
/// assert_eq!(ps.paths(0, 3).unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PathSystem {
    store: PathStore,
    per_pair: BTreeMap<(VertexId, VertexId), Vec<PathId>>,
}

impl PathSystem {
    /// The empty path system.
    pub fn new() -> Self {
        PathSystem::default()
    }

    /// Adds `path` to `P(source, target)` unless an identical path (same
    /// edge sequence) is already present. Returns whether it was inserted.
    ///
    /// Duplicates are collapsed because Definition 5.2 samples *with
    /// replacement* into a *set*: drawing the same path twice still yields
    /// one candidate, so `|P(s, t)| <= α` after `α` draws. The check is
    /// arena-backed — the path is interned once (hash + dedup in the
    /// [`PathStore`]) and membership is an `O(|P(s, t)|)` scan over
    /// `Copy`able [`PathId`]s, not a scan comparing edge vectors.
    ///
    /// # Panics
    ///
    /// Panics if the path is not simple or has zero hops.
    pub fn insert(&mut self, path: Path) -> bool {
        assert!(path.is_simple(), "path systems contain simple paths only");
        assert!(path.hop() >= 1, "paths must have at least one edge");
        let key = (path.source(), path.target());
        self.push_interned(key, path.vertices(), path.edges())
    }

    /// The one intern-then-dedup-push sequence every mutating entry point
    /// funnels through ([`insert`], [`absorb`], [`with_hop_cap`]).
    ///
    /// [`insert`]: PathSystem::insert
    /// [`absorb`]: PathSystem::absorb
    /// [`with_hop_cap`]: PathSystem::with_hop_cap
    fn push_interned(
        &mut self,
        key: (VertexId, VertexId),
        vertices: &[VertexId],
        edges: &[ssor_graph::EdgeId],
    ) -> bool {
        let id = self.store.intern_parts(vertices, edges);
        let entry = self.per_pair.entry(key).or_default();
        if entry.contains(&id) {
            false
        } else {
            entry.push(id);
            true
        }
    }

    /// The candidate paths for `(s, t)`, materialized as owned [`Path`]s.
    ///
    /// Boundary/debug accessor: hot paths should read
    /// [`PathSystem::path_ids`] against [`PathSystem::store`] instead.
    pub fn paths(&self, s: VertexId, t: VertexId) -> Option<Vec<Path>> {
        self.per_pair
            .get(&(s, t))
            .map(|ids| ids.iter().map(|&id| self.store.materialize(id)).collect())
    }

    /// The interned candidate ids for `(s, t)`, if any.
    pub fn path_ids(&self, s: VertexId, t: VertexId) -> Option<&[PathId]> {
        self.per_pair.get(&(s, t)).map(|v| v.as_slice())
    }

    /// Whether `(s, t)` has at least one candidate (no materialization).
    pub fn covers_pair(&self, s: VertexId, t: VertexId) -> bool {
        // Entries are created on insert and dropped when emptied, so
        // presence implies at least one candidate.
        self.per_pair.contains_key(&(s, t))
    }

    /// The first candidate path for `(s, t)`, materialized — the
    /// "arbitrary candidate" callers (Lemma 5.16 remainder routing, stale
    /// TE rates) without cloning the whole list.
    pub fn first_path(&self, s: VertexId, t: VertexId) -> Option<Path> {
        self.per_pair
            .get(&(s, t))
            .map(|ids| self.store.materialize(ids[0]))
    }

    /// The arena the candidate ids resolve against.
    pub fn store(&self) -> &PathStore {
        &self.store
    }

    /// The borrowed `(store, per-pair ids)` view the Stage-4 solvers
    /// consume (see [`ssor_flow::Candidates`]).
    pub fn candidates(&self) -> Candidates<'_> {
        Candidates::new(&self.store, &self.per_pair)
    }

    /// Pairs with at least one candidate path.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.per_pair.keys().copied()
    }

    /// Number of pairs covered.
    pub fn len(&self) -> usize {
        self.per_pair.len()
    }

    /// Whether no pair is covered.
    pub fn is_empty(&self) -> bool {
        self.per_pair.is_empty()
    }

    /// Sparsity: `max_{(s,t)} |P(s, t)|` (Definition 2.1's `α`).
    pub fn sparsity(&self) -> usize {
        self.per_pair.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of stored paths.
    pub fn total_paths(&self) -> usize {
        self.per_pair.values().map(Vec::len).sum()
    }

    /// Whether every pair's candidate count is at most
    /// `alpha + cut_bound(s, t)` for a caller-supplied cut function —
    /// checks `(α + cut_G)`-sparsity per Definition 2.1.
    pub fn is_cut_sparse(
        &self,
        alpha: usize,
        mut cut_bound: impl FnMut(VertexId, VertexId) -> usize,
    ) -> bool {
        self.per_pair
            .iter()
            .all(|(&(s, t), ps)| ps.len() <= alpha + cut_bound(s, t))
    }

    /// Absorbs every path of `other` into `self` (deduplicating), copying
    /// the raw vertex/edge data between arenas without materializing
    /// [`Path`] objects.
    pub fn absorb(&mut self, other: &PathSystem) {
        for (&key, ids) in &other.per_pair {
            for &oid in ids {
                self.push_interned(key, other.store.vertices(oid), other.store.edges(oid));
            }
        }
    }

    /// Union of two path systems (used by the Section 7 completion-time
    /// construction, which unions per-hop-scale samples).
    pub fn union(&self, other: &PathSystem) -> PathSystem {
        let mut out = self.clone();
        out.absorb(other);
        out
    }

    /// Removes all paths crossing edge `e` (used for failure experiments),
    /// returning the number of removed paths. Pairs may become empty and
    /// are then dropped entirely. The arena is append-only, so removal
    /// drops ids without reclaiming the underlying path data.
    pub fn remove_paths_through(&mut self, e: ssor_graph::EdgeId) -> usize {
        let store = &self.store;
        let mut removed = 0;
        self.per_pair.retain(|_, ids| {
            let before = ids.len();
            ids.retain(|&id| !store.contains_edge(id, e));
            removed += before - ids.len();
            !ids.is_empty()
        });
        removed
    }

    /// Restriction to paths with at most `max_hop` hops; pairs left without
    /// candidates are dropped.
    pub fn with_hop_cap(&self, max_hop: usize) -> PathSystem {
        let mut out = PathSystem::new();
        for (&key, ids) in &self.per_pair {
            for &id in ids {
                if self.store.hop(id) <= max_hop {
                    out.push_interned(key, self.store.vertices(id), self.store.edges(id));
                }
            }
        }
        out
    }

    /// Validates every path against `g` (without materializing).
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.per_pair.iter().all(|(&(s, t), ids)| {
            ids.iter().all(|&id| {
                self.store.source(id) == s
                    && self.store.target(id) == t
                    && self.store.is_valid(id, g)
                    && self.store.is_simple(id)
            })
        })
    }

    /// Maximum hop length over all stored paths (global dilation bound).
    pub fn max_hop(&self) -> usize {
        self.per_pair
            .values()
            .flat_map(|ids| ids.iter().map(|&id| self.store.hop(id)))
            .max()
            .unwrap_or(0)
    }
}

/// Logical equality: same pairs, and per pair the same path sequences in
/// the same order — independent of arena ids or interning history, so two
/// systems built by differently-chunked parallel samplers compare equal
/// whenever their contents agree.
impl PartialEq for PathSystem {
    fn eq(&self, other: &PathSystem) -> bool {
        self.per_pair.len() == other.per_pair.len()
            && self
                .per_pair
                .iter()
                .zip(other.per_pair.iter())
                .all(|((ka, ids_a), (kb, ids_b))| {
                    ka == kb
                        && ids_a.len() == ids_b.len()
                        && ids_a.iter().zip(ids_b.iter()).all(|(&a, &b)| {
                            self.store.edges(a) == other.store.edges(b)
                                && self.store.vertices(a) == other.store.vertices(b)
                        })
                })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::generators;

    fn ring_system() -> (Graph, PathSystem) {
        let g = generators::ring(6);
        let mut ps = PathSystem::new();
        ps.insert(Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        ps.insert(Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        ps.insert(Path::from_vertices(&g, &[1, 2]).unwrap());
        (g, ps)
    }

    #[test]
    fn insert_dedups_identical_paths() {
        let (g, mut ps) = ring_system();
        let dup = Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap();
        assert!(!ps.insert(dup));
        assert_eq!(ps.paths(0, 3).unwrap().len(), 2);
        // The arena holds each distinct path once.
        assert_eq!(ps.store().len(), 3);
    }

    #[test]
    fn sparsity_and_counts() {
        let (_, ps) = ring_system();
        assert_eq!(ps.sparsity(), 2);
        assert_eq!(ps.total_paths(), 3);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    #[should_panic(expected = "simple")]
    fn rejects_non_simple_paths() {
        let g = generators::ring(4);
        let walk = Path::from_vertices(&g, &[0, 1, 0, 1]).unwrap();
        PathSystem::new().insert(walk);
    }

    #[test]
    fn union_merges_and_dedups() {
        let (g, ps) = ring_system();
        let mut other = PathSystem::new();
        other.insert(Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap()); // dup
        other.insert(Path::from_vertices(&g, &[2, 3]).unwrap()); // new
        let u = ps.union(&other);
        assert_eq!(u.total_paths(), 4);
    }

    #[test]
    fn remove_paths_through_edge() {
        let (g, mut ps) = ring_system();
        // Edge 0 connects ring vertices 0-1; it is on path 0-1-2-3 and 1-2? no:
        // path 1-2 uses edge (1,2) which is edge id 1.
        let removed = ps.remove_paths_through(0);
        assert_eq!(removed, 1);
        assert_eq!(ps.paths(0, 3).unwrap().len(), 1);
        let _ = g;
    }

    #[test]
    fn hop_cap_restricts() {
        let (_, ps) = ring_system();
        let capped = ps.with_hop_cap(1);
        assert_eq!(capped.total_paths(), 1);
        assert!(capped.paths(0, 3).is_none());
    }

    #[test]
    fn cut_sparsity_check() {
        let (_, ps) = ring_system();
        // Every pair on a ring has cut 2, so alpha = 0 suffices.
        assert!(ps.is_cut_sparse(0, |_, _| 2));
        assert!(!ps.is_cut_sparse(0, |_, _| 1));
        assert!(ps.is_cut_sparse(2, |_, _| 0));
    }

    #[test]
    fn validity() {
        let (g, ps) = ring_system();
        assert!(ps.is_valid(&g));
        assert_eq!(ps.max_hop(), 3);
    }

    #[test]
    fn equality_ignores_interning_history() {
        let (g, ps) = ring_system();
        // Build the same logical system with a different arena layout
        // (extra interned-then-unused data, different insertion order of
        // other pairs' paths).
        let mut other = PathSystem::new();
        other.insert(Path::from_vertices(&g, &[1, 2]).unwrap());
        other.insert(Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        other.insert(Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        assert_eq!(ps, other);
        let mut different = other.clone();
        different.insert(Path::from_vertices(&g, &[2, 3]).unwrap());
        assert_ne!(ps, different);
    }

    #[test]
    fn candidates_view_matches_contents() {
        let (_, ps) = ring_system();
        let view = ps.candidates();
        assert_eq!(view.ids(0, 3).unwrap().len(), 2);
        assert_eq!(view.materialize(1, 2).unwrap(), ps.paths(1, 2).unwrap());
    }
}
