//! Path systems (Definition 2.1): the combinatorial object a semi-oblivious
//! routing *is*.

use ssor_graph::{Graph, Path, VertexId};
use std::collections::BTreeMap;

/// A path system `P = {P(s, t)}`: a set of simple `(s, t)`-paths per vertex
/// pair (Definition 2.1). A semi-oblivious routing is exactly a path system
/// together with the Stage-4 promise to route optimally within it
/// (Definition 5.1).
///
/// # Examples
///
/// ```
/// use ssor_core::PathSystem;
/// use ssor_graph::{generators, Path};
///
/// let g = generators::ring(6);
/// let mut ps = PathSystem::new();
/// ps.insert(Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
/// ps.insert(Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
/// assert_eq!(ps.sparsity(), 2);
/// assert_eq!(ps.paths(0, 3).unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathSystem {
    per_pair: BTreeMap<(VertexId, VertexId), Vec<Path>>,
}

impl PathSystem {
    /// The empty path system.
    pub fn new() -> Self {
        PathSystem::default()
    }

    /// Adds `path` to `P(source, target)` unless an identical path (same
    /// edge sequence) is already present. Returns whether it was inserted.
    ///
    /// Duplicates are collapsed because Definition 5.2 samples *with
    /// replacement* into a *set*.
    ///
    /// # Panics
    ///
    /// Panics if the path is not simple or has zero hops.
    pub fn insert(&mut self, path: Path) -> bool {
        assert!(path.is_simple(), "path systems contain simple paths only");
        assert!(path.hop() >= 1, "paths must have at least one edge");
        let key = (path.source(), path.target());
        let entry = self.per_pair.entry(key).or_default();
        if entry.iter().any(|p| p.edges() == path.edges()) {
            false
        } else {
            entry.push(path);
            true
        }
    }

    /// The candidate paths for `(s, t)`, if any.
    pub fn paths(&self, s: VertexId, t: VertexId) -> Option<&[Path]> {
        self.per_pair.get(&(s, t)).map(|v| v.as_slice())
    }

    /// Pairs with at least one candidate path.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.per_pair.keys().copied()
    }

    /// Number of pairs covered.
    pub fn len(&self) -> usize {
        self.per_pair.len()
    }

    /// Whether no pair is covered.
    pub fn is_empty(&self) -> bool {
        self.per_pair.is_empty()
    }

    /// Sparsity: `max_{(s,t)} |P(s, t)|` (Definition 2.1's `α`).
    pub fn sparsity(&self) -> usize {
        self.per_pair.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of stored paths.
    pub fn total_paths(&self) -> usize {
        self.per_pair.values().map(Vec::len).sum()
    }

    /// Whether every pair's candidate count is at most
    /// `alpha + cut_bound(s, t)` for a caller-supplied cut function —
    /// checks `(α + cut_G)`-sparsity per Definition 2.1.
    pub fn is_cut_sparse(
        &self,
        alpha: usize,
        mut cut_bound: impl FnMut(VertexId, VertexId) -> usize,
    ) -> bool {
        self.per_pair
            .iter()
            .all(|(&(s, t), ps)| ps.len() <= alpha + cut_bound(s, t))
    }

    /// Union of two path systems (used by the Section 7 completion-time
    /// construction, which unions per-hop-scale samples).
    pub fn union(&self, other: &PathSystem) -> PathSystem {
        let mut out = self.clone();
        for paths in other.per_pair.values() {
            for p in paths {
                out.insert(p.clone());
            }
        }
        out
    }

    /// Removes all paths crossing edge `e` (used for failure experiments),
    /// returning the number of removed paths. Pairs may become empty and
    /// are then dropped entirely.
    pub fn remove_paths_through(&mut self, e: ssor_graph::EdgeId) -> usize {
        let mut removed = 0;
        self.per_pair.retain(|_, paths| {
            let before = paths.len();
            paths.retain(|p| !p.contains_edge(e));
            removed += before - paths.len();
            !paths.is_empty()
        });
        removed
    }

    /// Restriction to paths with at most `max_hop` hops; pairs left without
    /// candidates are dropped.
    pub fn with_hop_cap(&self, max_hop: usize) -> PathSystem {
        let mut out = PathSystem::new();
        for paths in self.per_pair.values() {
            for p in paths {
                if p.hop() <= max_hop {
                    out.insert(p.clone());
                }
            }
        }
        out
    }

    /// Validates every path against `g`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.per_pair.iter().all(|(&(s, t), paths)| {
            paths
                .iter()
                .all(|p| p.source() == s && p.target() == t && p.is_valid(g) && p.is_simple())
        })
    }

    /// Read-only view of the underlying map (for the flow solvers).
    pub fn as_map(&self) -> &BTreeMap<(VertexId, VertexId), Vec<Path>> {
        &self.per_pair
    }

    /// Maximum hop length over all stored paths (global dilation bound).
    pub fn max_hop(&self) -> usize {
        self.per_pair
            .values()
            .flat_map(|ps| ps.iter().map(Path::hop))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::generators;

    fn ring_system() -> (Graph, PathSystem) {
        let g = generators::ring(6);
        let mut ps = PathSystem::new();
        ps.insert(Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        ps.insert(Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        ps.insert(Path::from_vertices(&g, &[1, 2]).unwrap());
        (g, ps)
    }

    #[test]
    fn insert_dedups_identical_paths() {
        let (g, mut ps) = ring_system();
        let dup = Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap();
        assert!(!ps.insert(dup));
        assert_eq!(ps.paths(0, 3).unwrap().len(), 2);
    }

    #[test]
    fn sparsity_and_counts() {
        let (_, ps) = ring_system();
        assert_eq!(ps.sparsity(), 2);
        assert_eq!(ps.total_paths(), 3);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    #[should_panic(expected = "simple")]
    fn rejects_non_simple_paths() {
        let g = generators::ring(4);
        let walk = Path::from_vertices(&g, &[0, 1, 0, 1]).unwrap();
        PathSystem::new().insert(walk);
    }

    #[test]
    fn union_merges_and_dedups() {
        let (g, ps) = ring_system();
        let mut other = PathSystem::new();
        other.insert(Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap()); // dup
        other.insert(Path::from_vertices(&g, &[2, 3]).unwrap()); // new
        let u = ps.union(&other);
        assert_eq!(u.total_paths(), 4);
    }

    #[test]
    fn remove_paths_through_edge() {
        let (g, mut ps) = ring_system();
        // Edge 0 connects ring vertices 0-1; it is on path 0-1-2-3 and 1-2? no:
        // path 1-2 uses edge (1,2) which is edge id 1.
        let removed = ps.remove_paths_through(0);
        assert_eq!(removed, 1);
        assert_eq!(ps.paths(0, 3).unwrap().len(), 1);
        let _ = g;
    }

    #[test]
    fn hop_cap_restricts() {
        let (_, ps) = ring_system();
        let capped = ps.with_hop_cap(1);
        assert_eq!(capped.total_paths(), 1);
        assert!(capped.paths(0, 3).is_none());
    }

    #[test]
    fn cut_sparsity_check() {
        let (_, ps) = ring_system();
        // Every pair on a ring has cut 2, so alpha = 0 suffices.
        assert!(ps.is_cut_sparse(0, |_, _| 2));
        assert!(!ps.is_cut_sparse(0, |_, _| 1));
        assert!(ps.is_cut_sparse(2, |_, _| 0));
    }

    #[test]
    fn validity() {
        let (g, ps) = ring_system();
        assert!(ps.is_valid(&g));
        assert_eq!(ps.max_hop(), 3);
    }
}
