//! # ssor-engine
//!
//! The batched, parallel routing pipeline for the `ssor` workspace
//! (reproduction of *Sparse Semi-Oblivious Routing: Few Random Paths
//! Suffice*, PODC 2023).
//!
//! The paper's construction decomposes into five stages that every
//! experiment repeats:
//!
//! 1. **Topology** — build the graph ([`TopologySpec`] →
//!    `ssor_graph::generators`);
//! 2. **Template** — build an oblivious routing over it ([`TemplateSpec`]
//!    → any `ssor_oblivious::ObliviousRouting`);
//! 3. **Sample** — draw `α` paths per pair (Definition 5.2), *in parallel
//!    across pairs* ([`sampling::par_alpha_sample`]) and *memoized* by
//!    `(topology, template, α, seed)` ([`PathSystemCache`]);
//! 4. **Adapt** — reveal a demand and optimize the rates within the
//!    candidates (`ssor_core::SemiObliviousRouter`), *in parallel across
//!    the demand batch*, with offline-OPT baselines memoized per
//!    `(topology, demand)`;
//! 5. **Simulate** — optionally round and packet-simulate the result
//!    (`ssor_sim`).
//!
//! [`Pipeline`] chains the stages behind a builder; [`ScenarioSpec`]
//! names complete workloads (hypercube adversaries, random permutations,
//! gravity WAN traffic, the Section 8 lower-bound gadget) so that a new
//! experiment is a configuration value, not a new binary.
//!
//! # Examples
//!
//! An `α`-sweep that shares one cache — graphs, templates, and OPT
//! baselines are computed once, and only the `α`-dependent work repeats:
//!
//! ```
//! use ssor_engine::{PathSystemCache, Pipeline, ScenarioSpec};
//!
//! let cache = PathSystemCache::new();
//! let base = ScenarioSpec::HypercubeAdversarial { dim: 3 }.pipeline();
//! let mut last = f64::INFINITY;
//! for alpha in [1usize, 4] {
//!     let report = base.clone().alpha(alpha).run(&cache);
//!     let mean = report.mean_ratio().unwrap();
//!     assert!(mean <= last * 1.2 + 1e-9, "more paths should not hurt");
//!     last = mean;
//! }
//! assert!(cache.stats().hits > 0, "the sweep reused cached stages");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod pipeline;
mod report_json;
pub mod sampling;
mod snapshot;
mod spec;
mod stream;
pub mod sweep;

pub use cache::{
    CacheStats, OptBounds, PathSystemCache, SharedTemplate, TemplateBuildStats, TemplateBuilder,
};
pub use pipeline::{EvalRecord, Objective, Pipeline, PreparedPipeline, RunReport};
pub use snapshot::{route_table_all_pairs, route_table_from_template};
pub use spec::{
    DemandSpec, Param, ResolveCtx, ScenarioSpec, StreamModel, TemplateSpec, TopologySpec,
};
pub use stream::{DynamicReport, FailureSweepReport, FailureTrial, StreamReport, StreamStep};
pub use sweep::{run_sweep, CellRecord, SweepCell, SweepOptions, SweepOutcome};
