//! Reports for the dynamic-scenario runners ([`crate::Pipeline::stream`]
//! and [`crate::Pipeline::failure_sweep`]).
//!
//! A *stream* run routes a time-evolving demand sequence through the
//! pipeline's fixed sampled path system with warm-started incremental
//! solves (a kept `ssor_flow::Solver`), optionally checking every step
//! against a cold-solve oracle of the same restricted problem. A
//! *failure sweep* knocks random edge sets out through a
//! `ssor_graph::SubTopology` mask, drops the candidate paths crossing
//! them, and re-routes the base demands on the survivors — comparing
//! against the offline optimum of the damaged topology.

use crate::cache::TemplateBuildStats;
use ssor_graph::EdgeId;
use std::time::Duration;

/// One step of a [`StreamReport`].
#[derive(Debug, Clone)]
pub struct StreamStep {
    /// Step index in the stream.
    pub step: usize,
    /// `siz(d)` of the step's demand.
    pub size: f64,
    /// Congestion of the (warm-started) solve.
    pub congestion: f64,
    /// Certified dual lower bound of the solve.
    pub lower_bound: f64,
    /// Frank–Wolfe iterations the solve took.
    pub iterations: usize,
    /// Whether the solve certified its target gap (see
    /// `ssor_flow::MinCongSolution::converged`).
    pub converged: bool,
    /// Congestion of the cold-solve oracle on the same step (absent when
    /// the baseline is disabled or this is itself a cold run).
    pub cold_congestion: Option<f64>,
    /// Iterations the cold-solve oracle took.
    pub cold_iterations: Option<usize>,
    /// `congestion / cold_congestion` — the warm solve's quality relative
    /// to solving from scratch (1.0 when both are zero).
    pub vs_cold: Option<f64>,
    /// Makespan of the packet simulation, when stage 5 is enabled and
    /// the step's demand is integral.
    pub makespan: Option<usize>,
}

/// The result of a stream run: one [`StreamStep`] per demand, in order.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Per-step records.
    pub steps: Vec<StreamStep>,
    /// Wall-clock duration of the whole run (excluding stage 1–3
    /// preparation answered by the cache).
    pub wall: Duration,
    /// What the single stage-2 template build behind the whole stream
    /// cost (`cached` when a shared cache had already built it).
    pub template: Option<TemplateBuildStats>,
}

impl StreamReport {
    /// Total solver iterations across the stream.
    pub fn total_iterations(&self) -> usize {
        self.steps.iter().map(|s| s.iterations).sum()
    }

    /// Total cold-oracle iterations, if the baseline ran on every step.
    pub fn cold_total_iterations(&self) -> Option<usize> {
        self.steps.iter().map(|s| s.cold_iterations).sum()
    }

    /// Whether every step's solve certified its target gap.
    pub fn all_converged(&self) -> bool {
        self.steps.iter().all(|s| s.converged)
    }

    /// Worst (largest) per-step `vs_cold` ratio; `None` without a
    /// baseline.
    pub fn worst_vs_cold(&self) -> Option<f64> {
        self.steps
            .iter()
            .filter_map(|s| s.vs_cold)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Geometric mean of the per-step `vs_cold` ratios; `None` without a
    /// baseline.
    pub fn mean_vs_cold(&self) -> Option<f64> {
        let ratios: Vec<f64> = self.steps.iter().filter_map(|s| s.vs_cold).collect();
        if ratios.is_empty() {
            None
        } else {
            Some((ratios.iter().map(|x| x.ln()).sum::<f64>() / ratios.len() as f64).exp())
        }
    }
}

/// One `(trial, demand)` record of a [`FailureSweepReport`].
#[derive(Debug, Clone)]
pub struct FailureTrial {
    /// Trial index.
    pub trial: usize,
    /// Name of the base demand this record re-routes.
    pub demand: String,
    /// The knocked-out edge ids (base-graph ids), sorted.
    pub failed_edges: Vec<EdgeId>,
    /// Derived-seed draws *rejected* because they disconnected the
    /// topology (0 = first draw accepted; the bound reached means the
    /// last draw was kept even though it disconnects).
    pub attempts: usize,
    /// Fraction of the demand's pairs with at least one surviving
    /// candidate path.
    pub coverage: f64,
    /// Stranded demand *mass*: demand with no surviving candidate path,
    /// plus anything the solves themselves had to drop as unroutable
    /// (e.g. a pair the damage physically disconnected). The
    /// mass-weighted complement of `coverage`.
    pub stranded: f64,
    /// Congestion of the warm-started re-route on the covered
    /// sub-demand (`None` if nothing survived).
    pub congestion: Option<f64>,
    /// Iterations the warm re-route took.
    pub iterations: usize,
    /// Congestion of a cold restricted solve on the same survivors.
    pub cold_congestion: Option<f64>,
    /// Certified lower bound on the optimum over the *damaged* topology
    /// (masked all-paths solve on the covered sub-demand).
    pub opt_lower_bound: Option<f64>,
    /// `congestion / opt_lower_bound` — competitiveness after failures.
    pub ratio: Option<f64>,
}

/// The result of a failure sweep: `trials × demands` records, trials
/// outermost, in order.
#[derive(Debug, Clone)]
pub struct FailureSweepReport {
    /// Per-(trial, demand) records.
    pub trials: Vec<FailureTrial>,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
    /// What the *single* intact-topology template build behind the whole
    /// sweep cost: the template is constructed once (or shared from the
    /// cache) and every trial re-routes against it — trials never
    /// rebuild templates.
    pub template: Option<TemplateBuildStats>,
}

impl FailureSweepReport {
    /// Mean coverage across all records (1.0 if there are none).
    pub fn mean_coverage(&self) -> f64 {
        if self.trials.is_empty() {
            return 1.0;
        }
        self.trials.iter().map(|t| t.coverage).sum::<f64>() / self.trials.len() as f64
    }

    /// Worst (largest) post-failure competitive ratio; `None` if no
    /// record has one.
    pub fn worst_ratio(&self) -> Option<f64> {
        self.trials
            .iter()
            .filter_map(|t| t.ratio)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Total stranded demand mass across all records (0.0 when every
    /// trial kept full coverage).
    pub fn total_stranded(&self) -> f64 {
        self.trials.iter().map(|t| t.stranded).sum()
    }
}

/// The report of a dynamic scenario run (see
/// [`crate::ScenarioSpec::run_dynamic`]).
#[derive(Debug, Clone)]
pub enum DynamicReport {
    /// A [`crate::ScenarioSpec::DemandStream`] run.
    Stream(StreamReport),
    /// A [`crate::ScenarioSpec::FailureSweep`] run.
    Failures(FailureSweepReport),
}
