//! Deterministic JSON views of the engine's reports.
//!
//! These `serde::Serialize` impls define the *golden schema* of the
//! engine's outputs: every field they emit is a pure function of the
//! run's spec (bit-identical at any thread count, pinned by the
//! fixtures in `tests/fixtures/`), and every nondeterministic field —
//! wall-clock durations, cache-shared flags, oracle timing splits — is
//! deliberately excluded. Experiments that want timings report them
//! separately (see the `bench_trajectory` perf harness); reports that
//! flow through the sweep journal must serialize to the same bytes on
//! every run, or crash-resume and steal-order invariance would be
//! unverifiable.
//!
//! The impls build `serde::Value` trees by hand rather than deriving:
//! the vendored derive macro only handles plain named-field structs,
//! and nested foreign types (`ssor_flow::SolverStats`) cannot receive
//! impls from this crate anyway.

use crate::pipeline::{EvalRecord, RunReport};
use crate::stream::{FailureSweepReport, FailureTrial, StreamReport, StreamStep};
use serde::{Serialize, Value};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn solver_stats_value(stats: &ssor_flow::SolverStats) -> Value {
    // Wall-clock fields (`oracle_wall`, `total_wall`) are intentionally
    // dropped: iteration structure is deterministic, timings are not.
    obj(vec![
        ("iterations", stats.iterations.to_value()),
        ("oracle_calls", stats.oracle_calls.to_value()),
        (
            "stages",
            Value::Array(
                stats
                    .stages
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("eps", s.eps.to_value()),
                            ("iterations", s.iterations.to_value()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl Serialize for EvalRecord {
    fn to_value(&self) -> Value {
        obj(vec![
            ("name", self.name.to_value()),
            ("alpha", self.alpha.to_value()),
            ("congestion", self.congestion.to_value()),
            ("dilation", self.dilation.to_value()),
            ("opt_lower_bound", self.opt_lower_bound.to_value()),
            ("opt_upper_bound", self.opt_upper_bound.to_value()),
            ("ratio", self.ratio.to_value()),
            ("makespan", self.makespan.to_value()),
            ("converged", self.converged.to_value()),
            (
                "stats",
                match &self.stats {
                    Some(s) => solver_stats_value(s),
                    None => Value::Null,
                },
            ),
        ])
    }
}

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        // `wall` and `template` (a Duration and a cache-dependent flag)
        // are excluded: the JSON view carries only spec-determined data.
        obj(vec![
            ("records", self.records.to_value()),
            ("mean_ratio", self.mean_ratio().to_value()),
            ("worst_ratio", self.worst_ratio().to_value()),
        ])
    }
}

impl Serialize for FailureTrial {
    fn to_value(&self) -> Value {
        obj(vec![
            ("trial", self.trial.to_value()),
            ("demand", self.demand.to_value()),
            ("failed_edges", self.failed_edges.to_value()),
            ("attempts", self.attempts.to_value()),
            ("coverage", self.coverage.to_value()),
            ("stranded", self.stranded.to_value()),
            ("congestion", self.congestion.to_value()),
            ("iterations", self.iterations.to_value()),
            ("cold_congestion", self.cold_congestion.to_value()),
            ("opt_lower_bound", self.opt_lower_bound.to_value()),
            ("ratio", self.ratio.to_value()),
        ])
    }
}

impl Serialize for FailureSweepReport {
    fn to_value(&self) -> Value {
        obj(vec![
            ("trials", self.trials.to_value()),
            ("mean_coverage", self.mean_coverage().to_value()),
            ("worst_ratio", self.worst_ratio().to_value()),
            ("total_stranded", self.total_stranded().to_value()),
        ])
    }
}

impl Serialize for StreamStep {
    fn to_value(&self) -> Value {
        obj(vec![
            ("step", self.step.to_value()),
            ("size", self.size.to_value()),
            ("congestion", self.congestion.to_value()),
            ("lower_bound", self.lower_bound.to_value()),
            ("iterations", self.iterations.to_value()),
            ("converged", self.converged.to_value()),
            ("cold_congestion", self.cold_congestion.to_value()),
            ("cold_iterations", self.cold_iterations.to_value()),
            ("vs_cold", self.vs_cold.to_value()),
            ("makespan", self.makespan.to_value()),
        ])
    }
}

impl Serialize for StreamReport {
    fn to_value(&self) -> Value {
        obj(vec![
            ("steps", self.steps.to_value()),
            ("total_iterations", self.total_iterations().to_value()),
            ("all_converged", self.all_converged().to_value()),
            ("mean_vs_cold", self.mean_vs_cold().to_value()),
            ("worst_vs_cold", self.worst_vs_cold().to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_record_schema_is_stable() {
        let rec = EvalRecord {
            name: "d".into(),
            alpha: 2,
            congestion: 1.5,
            dilation: 3,
            opt_lower_bound: Some(1.0),
            opt_upper_bound: Some(1.05),
            ratio: Some(1.5),
            makespan: None,
            converged: Some(true),
            stats: None,
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert_eq!(
            json,
            "{\"name\":\"d\",\"alpha\":2,\"congestion\":1.5,\"dilation\":3,\
             \"opt_lower_bound\":1,\"opt_upper_bound\":1.05,\"ratio\":1.5,\
             \"makespan\":null,\"converged\":true,\"stats\":null}"
        );
    }

    #[test]
    fn failure_trial_schema_is_stable() {
        let t = FailureTrial {
            trial: 1,
            demand: "d".into(),
            failed_edges: vec![2, 5],
            attempts: 0,
            coverage: 1.0,
            stranded: 0.0,
            congestion: Some(2.0),
            iterations: 7,
            cold_congestion: None,
            opt_lower_bound: None,
            ratio: None,
        };
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.starts_with("{\"trial\":1,\"demand\":\"d\",\"failed_edges\":[2,5]"));
        assert!(json.ends_with("\"ratio\":null}"));
    }

    #[test]
    fn run_report_excludes_wall_clock_fields() {
        let report = RunReport {
            records: Vec::new(),
            wall: std::time::Duration::from_secs(1),
            template: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("wall"));
        assert!(!json.contains("template"));
    }
}
