//! Stage 3, parallel: `α`-sampling across pairs with rayon.
//!
//! The paper's construction samples the `α` paths of every pair
//! **independently** (Definition 5.2), which makes the sampling stage
//! embarrassingly parallel. [`par_alpha_sample`] exploits that: each pair
//! draws from its own counter-derived RNG stream, so the result is a
//! deterministic function of `(template, pairs, alpha, seed)` — identical
//! on 1 thread or 64 — and pairs are distributed over worker threads in
//! blocks.
//!
//! The streams intentionally differ from the sequential
//! [`ssor_core::sample::alpha_sample`] (which threads one RNG through all
//! pairs and therefore cannot parallelize); both are valid Definition 5.2
//! samplers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use ssor_core::PathSystem;
use ssor_graph::VertexId;
use ssor_oblivious::ObliviousRouting;

// The workspace's shared SplitMix64 finalizer (also used by the
// failure-sweep runner to derive per-trial seeds).
pub(crate) use ssor_graph::generators::mix_seed as mix;

/// The RNG seed pair `(s, t)` uses under run seed `seed` at sparsity
/// `alpha` — public so callers can reproduce a single pair's draw in
/// isolation.
///
/// `alpha` enters the seed so that sweep points are *independent*
/// samples: without it, the `α` draws of one run would be a prefix of
/// the `α + 1` draws of the next, and any monotonicity-in-`α`
/// measurement would hold by construction instead of by experiment.
///
/// # Examples
///
/// ```
/// use ssor_engine::sampling::pair_seed;
/// assert_eq!(pair_seed(7, 4, 0, 1), pair_seed(7, 4, 0, 1));
/// assert_ne!(pair_seed(7, 4, 0, 1), pair_seed(7, 4, 1, 0));
/// assert_ne!(pair_seed(7, 4, 0, 1), pair_seed(8, 4, 0, 1));
/// assert_ne!(pair_seed(7, 4, 0, 1), pair_seed(7, 5, 0, 1));
/// ```
pub fn pair_seed(seed: u64, alpha: usize, s: VertexId, t: VertexId) -> u64 {
    mix(seed ^ mix(alpha as u64) ^ mix(((s as u64) << 32) | t as u64))
}

/// An `α`-sample of `template` on `pairs` (Definition 5.2), drawn in
/// parallel across pairs.
///
/// Every pair draws `alpha` paths with replacement from `R(s, t)` using
/// its own [`pair_seed`]-derived RNG; duplicates collapse, so
/// `|P(s, t)| <= α`. The output is independent of the thread count.
///
/// # Panics
///
/// Panics if `alpha == 0` or some pair has `s == t`.
///
/// # Examples
///
/// ```
/// use ssor_core::sample::all_pairs;
/// use ssor_engine::sampling::par_alpha_sample;
/// use ssor_oblivious::ValiantRouting;
///
/// let r = ValiantRouting::new(3);
/// let ps = par_alpha_sample(&r, &all_pairs(8), 4, 42);
/// assert_eq!(ps.len(), 56);
/// assert!(ps.sparsity() <= 4);
/// // Deterministic per seed:
/// assert_eq!(ps, par_alpha_sample(&r, &all_pairs(8), 4, 42));
/// ```
pub fn par_alpha_sample<O: ObliviousRouting + Sync + ?Sized>(
    template: &O,
    pairs: &[(VertexId, VertexId)],
    alpha: usize,
    seed: u64,
) -> PathSystem {
    assert!(alpha >= 1, "alpha must be positive");
    let workers = rayon::current_num_threads();
    // A few blocks per worker: big enough to amortize merge cost, small
    // enough that uneven per-pair costs still balance.
    let blocks = (workers * 4).clamp(1, pairs.len().max(1));
    let block_len = pairs.len().div_ceil(blocks);
    let chunks: Vec<&[(VertexId, VertexId)]> = pairs.chunks(block_len.max(1)).collect();
    let partials: Vec<PathSystem> = chunks
        // Reviewed fan-out (the "chunked partial merge" special case the
        // par.rs docs name): chunk sizes adapt to the worker count, but
        // every pair's α draws run on its own per-pair seeded stream
        // inside exactly one chunk, and the arena absorb below walks the
        // partials in chunk order — logically identical at any thread
        // count. lint: allow(par_collect)
        .par_iter()
        .map(|chunk| {
            let mut ps = PathSystem::new();
            for &(s, t) in *chunk {
                assert_ne!(s, t, "pairs must have distinct endpoints");
                let mut rng = StdRng::seed_from_u64(pair_seed(seed, alpha, s, t));
                for _ in 0..alpha {
                    ps.insert(template.sample_path(s, t, &mut rng));
                }
            }
            ps
        })
        .collect();
    // Merge in chunk order by absorbing into one arena (raw slice copies,
    // no Path materialization, no quadratic re-cloning). The result is
    // logically identical at any thread count: each pair's draws happen
    // inside exactly one chunk, and per-pair candidate order is draw
    // order.
    let mut out = PathSystem::new();
    for p in &partials {
        out.absorb(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_core::sample::all_pairs;
    use ssor_oblivious::{ObliviousRouting, ValiantRouting};

    #[test]
    fn covers_every_pair_with_valid_paths() {
        let r = ValiantRouting::new(4);
        let pairs = all_pairs(16);
        let ps = par_alpha_sample(&r, &pairs, 3, 1);
        assert_eq!(ps.len(), pairs.len());
        assert!(ps.sparsity() <= 3);
        assert!(ps.is_valid(r.graph()));
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_it() {
        let r = ValiantRouting::new(3);
        let pairs = all_pairs(8);
        let a = par_alpha_sample(&r, &pairs, 2, 5);
        let b = par_alpha_sample(&r, &pairs, 2, 5);
        let c = par_alpha_sample(&r, &pairs, 2, 6);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn independent_of_pair_order() {
        // Per-pair streams mean reordering the pair list cannot change
        // any pair's draw.
        let r = ValiantRouting::new(3);
        let mut pairs = all_pairs(8);
        let a = par_alpha_sample(&r, &pairs, 2, 9);
        pairs.reverse();
        let b = par_alpha_sample(&r, &pairs, 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn paths_come_from_template_support() {
        let r = ValiantRouting::new(3);
        let ps = par_alpha_sample(&r, &[(0, 7)], 5, 3);
        let support: Vec<Vec<u32>> = r
            .path_distribution(0, 7)
            .into_iter()
            .map(|(p, _)| p.edges().to_vec())
            .collect();
        for p in ps.paths(0, 7).unwrap() {
            assert!(support.contains(&p.edges().to_vec()));
        }
    }

    #[test]
    fn alpha_sweep_points_are_independent_samples() {
        // The alpha=2 sample must NOT be a prefix/subset of the alpha=3
        // sample at the same seed; otherwise sweep monotonicity would be
        // tautological.
        let r = ValiantRouting::new(4);
        let pairs = all_pairs(16);
        let a2 = par_alpha_sample(&r, &pairs, 2, 11);
        let a3 = par_alpha_sample(&r, &pairs, 3, 11);
        let nested = pairs.iter().all(|&(s, t)| {
            let small = a2.paths(s, t).unwrap();
            let big: Vec<_> = a3
                .paths(s, t)
                .unwrap()
                .iter()
                .map(|p| p.edges().to_vec())
                .collect();
            small.iter().all(|p| big.contains(&p.edges().to_vec()))
        });
        assert!(!nested, "samples across alpha should not be nested");
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_zero_alpha() {
        let r = ValiantRouting::new(3);
        par_alpha_sample(&r, &[(0, 1)], 0, 0);
    }
}
