//! Declarative specifications for every pipeline stage.
//!
//! The engine's caching story depends on stages being described by small,
//! hashable *specs* rather than by live objects: a [`TopologySpec`] names a
//! graph, a [`TemplateSpec`] names an oblivious routing over it, and a
//! [`DemandSpec`] names a workload — so `(topology, template, α, seed)` is
//! a complete, comparable key for a sampled path system.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssor_flow::Demand;
use ssor_graph::{generators, Graph, Preconditioner, VertexId};
use ssor_lowerbound::adversary::find_adversarial_demand;
use ssor_lowerbound::graphs::{c_graph, CGraphMeta};
use ssor_oblivious::{
    BitFixingRouting, EcmpRouting, ElectricalOptions, ElectricalRouting, KspRouting,
    ObliviousRouting, RaeckeOptions, RaeckeRouting, RandomWalkRouting, ShortestPathRouting,
    ValiantRouting, VlbRouting,
};
use ssor_te::GravityModel;
use std::sync::Arc;

/// A hashable `f64` parameter (bit-exact equality), so specs containing
/// real-valued knobs can key caches.
///
/// # Examples
///
/// ```
/// use ssor_engine::Param;
/// assert_eq!(Param::from(0.3), Param::from(0.3));
/// assert_ne!(Param::from(0.3), Param::from(0.4));
/// assert_eq!(Param::from(2.5).value(), 2.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Param(f64);

impl Param {
    /// The wrapped value.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(ssor_engine::Param::from(1.5).value(), 1.5);
    /// ```
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl From<f64> for Param {
    fn from(x: f64) -> Self {
        Param(x)
    }
}

impl PartialEq for Param {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for Param {}

impl std::hash::Hash for Param {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

/// Stage 1: which graph the pipeline routes on.
///
/// Random families carry their seed, so a spec names one concrete graph
/// and can key the engine's caches.
///
/// # Examples
///
/// ```
/// use ssor_engine::TopologySpec;
///
/// let g = TopologySpec::Hypercube { dim: 3 }.build_graph();
/// assert_eq!(g.n(), 8);
/// assert_eq!(TopologySpec::Hypercube { dim: 3 }.hypercube_dim(), Some(3));
/// assert_eq!(TopologySpec::Ring { n: 5 }.hypercube_dim(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TopologySpec {
    /// The `dim`-dimensional hypercube (`n = 2^dim`).
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// A `rows × cols` grid.
    Grid {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// A `rows × cols` torus.
    Torus {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// An `n`-cycle.
    Ring {
        /// Vertex count.
        n: usize,
    },
    /// The complete graph on `n` vertices.
    Complete {
        /// Vertex count.
        n: usize,
    },
    /// Two `size`-cliques joined by a path of `path_len` edges.
    Barbell {
        /// Clique size.
        size: usize,
        /// Connecting path length.
        path_len: usize,
    },
    /// Two `size`-cliques joined by `bridges` parallel bridge edges — the
    /// Section 2.1 example showing `cut` many paths are necessary.
    TwoCliquesBridge {
        /// Clique size.
        size: usize,
        /// Bridge count.
        bridges: usize,
    },
    /// A random `degree`-regular graph (configuration model).
    RandomRegular {
        /// Vertex count.
        n: usize,
        /// Degree.
        degree: usize,
        /// Generator seed.
        seed: u64,
    },
    /// An Erdős–Rényi `G(n, p)` draw stitched to connectivity.
    ErdosRenyi {
        /// Vertex count.
        n: usize,
        /// Edge probability.
        p: Param,
        /// Generator seed.
        seed: u64,
    },
    /// A Waxman random WAN (the SMORE-style topology).
    Waxman {
        /// Vertex count.
        n: usize,
        /// Waxman `a` parameter.
        a: Param,
        /// Waxman `b` parameter.
        b: Param,
        /// Generator seed.
        seed: u64,
    },
    /// The Section 8 lower-bound gadget `C(n, k)` with
    /// `k = floor(n^{1/(2α)})` chosen for the given sparsity budget.
    LowerBoundC {
        /// Leaves per star.
        n: usize,
        /// Sparsity budget the gadget is sized against.
        alpha: usize,
    },
    /// A binary fat-tree of the given depth (edge multiplicity doubles
    /// toward the root, modelling the fattened core).
    FatTree {
        /// Tree depth; leaves = `2^depth`.
        depth: u32,
    },
    /// A two-tier leaf–spine Clos fabric: every leaf uplinks to every
    /// spine (`uplink_mult` parallel edges each), hosts hang off leaves.
    /// The datacenter topology the failure sweeps exercise — any single
    /// spine or uplink can die without disconnecting it when
    /// `spines >= 2`.
    LeafSpine {
        /// Spine switches.
        spines: usize,
        /// Leaf switches.
        leaves: usize,
        /// Hosts per leaf switch.
        hosts_per_leaf: usize,
        /// Parallel edges per leaf–spine uplink (capacity).
        uplink_mult: u32,
    },
}

/// Bounded derived-seed retries before a Waxman draw falls back to
/// stitching (see `ssor_graph::generators::waxman_connected`).
const WAXMAN_MAX_ATTEMPTS: usize = 16;

impl TopologySpec {
    /// Builds the graph (deterministic: random families use their stored
    /// seed).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::TopologySpec;
    /// assert_eq!(TopologySpec::Grid { rows: 2, cols: 3 }.build_graph().n(), 6);
    /// ```
    pub fn build_graph(&self) -> Graph {
        self.build().0
    }

    /// Builds the graph plus the lower-bound gadget metadata when the
    /// topology is [`TopologySpec::LowerBoundC`].
    pub(crate) fn build(&self) -> (Graph, Option<CGraphMeta>) {
        match *self {
            TopologySpec::Hypercube { dim } => (generators::hypercube(dim), None),
            TopologySpec::Grid { rows, cols } => (generators::grid(rows, cols), None),
            TopologySpec::Torus { rows, cols } => (generators::torus(rows, cols), None),
            TopologySpec::Ring { n } => (generators::ring(n), None),
            TopologySpec::Complete { n } => (generators::complete(n), None),
            TopologySpec::Barbell { size, path_len } => (generators::barbell(size, path_len), None),
            TopologySpec::TwoCliquesBridge { size, bridges } => {
                (generators::two_cliques_bridge(size, bridges), None)
            }
            TopologySpec::RandomRegular { n, degree, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (generators::random_regular(n, degree, &mut rng), None)
            }
            TopologySpec::ErdosRenyi { n, p, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (generators::erdos_renyi(n, p.value(), &mut rng), None)
            }
            TopologySpec::Waxman { n, a, b, seed } => {
                // A raw Waxman draw can be disconnected (unlucky seeds
                // strand routers), which used to surface only as a panic
                // deep inside path sampling. Detect it here and retry
                // with derived seeds, deterministically and bounded.
                let (g, _, _) = generators::waxman_connected(
                    n,
                    a.value(),
                    b.value(),
                    seed,
                    WAXMAN_MAX_ATTEMPTS,
                );
                (g, None)
            }
            TopologySpec::LowerBoundC { n, alpha } => {
                let k = ssor_lowerbound::graphs::k_for_alpha(n, alpha);
                let (g, meta) = c_graph(n, k);
                (g, Some(meta))
            }
            TopologySpec::FatTree { depth } => (generators::fat_tree(depth), None),
            TopologySpec::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
                uplink_mult,
            } => (
                generators::leaf_spine(spines, leaves, hosts_per_leaf, uplink_mult),
                None,
            ),
        }
    }

    /// The hypercube dimension, if this is a hypercube (needed by the
    /// hypercube-only templates and demands).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::TopologySpec;
    /// assert_eq!(TopologySpec::Hypercube { dim: 5 }.hypercube_dim(), Some(5));
    /// assert_eq!(TopologySpec::Ring { n: 5 }.hypercube_dim(), None);
    /// ```
    pub fn hypercube_dim(&self) -> Option<u32> {
        match *self {
            TopologySpec::Hypercube { dim } => Some(dim),
            _ => None,
        }
    }
}

/// Stage 2: which oblivious routing supplies the sampling distribution
/// `R(s, t)` (Definition 5.2 samples from any competitive template).
///
/// # Examples
///
/// ```
/// use ssor_engine::{TemplateSpec, TopologySpec};
///
/// let topo = TopologySpec::Hypercube { dim: 3 };
/// let g = topo.build_graph();
/// let template = TemplateSpec::Valiant.build(&topo, &g, 7);
/// assert_eq!(template.graph().n(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TemplateSpec {
    /// Valiant–Brebner randomized hypercube routing (hypercubes only).
    Valiant,
    /// Deterministic greedy bit-fixing (hypercubes only; the `[KKT91]`
    /// strawman).
    BitFixing,
    /// Räcke's `O(log n)`-competitive tree-mixture routing (any graph).
    Raecke {
        /// Multiplicative-weights iterations (tree count).
        iterations: usize,
        /// Learning rate.
        epsilon: Param,
    },
    /// A uniform mixture of hop-metric FRT trees with *no*
    /// multiplicative-weights adaptation (Räcke's ensemble minus the
    /// reweighting) — built fully in parallel from derived per-tree seed
    /// streams, so it is the cheapest tree-based template at scale.
    FrtEnsemble {
        /// Number of trees in the mixture.
        trees: usize,
    },
    /// Uniform over the `k` shortest simple paths (the SMORE baseline).
    Ksp {
        /// Number of candidate paths.
        k: usize,
    },
    /// A single shortest path per pair.
    ShortestPath,
    /// Equal-cost multi-path over shortest-path DAGs.
    Ecmp,
    /// Electrical-flow (effective-resistance) routing: all per-source
    /// potentials precomputed at build time via preconditioned CG
    /// (`O(n)` Laplacian solves, rayon-batched, bit-stable).
    Electrical {
        /// CG convergence threshold (relative residual).
        tolerance: Param,
        /// Preconditioner the solves run under.
        preconditioner: Preconditioner,
    },
    /// Oblivious routing via truncated uniform random walks
    /// (Schapira–Shahaf), the cheap sampling baseline.
    RandomWalk {
        /// Walks per pair.
        walks: usize,
        /// Walk length cap before the BFS fallback takes the mass.
        max_len: usize,
    },
    /// Generic-graph Valiant load balancing: shortest paths through a
    /// uniformly random intermediate vertex.
    Vlb,
}

impl TemplateSpec {
    /// Räcke with its default options.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::TemplateSpec;
    /// assert!(matches!(TemplateSpec::raecke(), TemplateSpec::Raecke { .. }));
    /// ```
    pub fn raecke() -> TemplateSpec {
        let d = RaeckeOptions::default();
        TemplateSpec::Raecke {
            iterations: d.iterations,
            epsilon: d.epsilon.into(),
        }
    }

    /// Electrical routing with its default solver options.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::TemplateSpec;
    /// assert!(matches!(
    ///     TemplateSpec::electrical(),
    ///     TemplateSpec::Electrical { .. }
    /// ));
    /// ```
    pub fn electrical() -> TemplateSpec {
        let d = ElectricalOptions::default();
        TemplateSpec::Electrical {
            tolerance: d.tolerance.into(),
            preconditioner: d.preconditioner,
        }
    }

    /// Builds the oblivious routing for `topology`'s graph `g`, seeding
    /// any randomized construction from `seed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{TemplateSpec, TopologySpec};
    /// let topo = TopologySpec::Ring { n: 5 };
    /// let g = topo.build_graph();
    /// let t = TemplateSpec::ShortestPath.build(&topo, &g, 0);
    /// assert_eq!(t.graph().n(), 5);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a hypercube-only template is paired with a non-hypercube
    /// topology.
    pub fn build(
        &self,
        topology: &TopologySpec,
        g: &Graph,
        seed: u64,
    ) -> Arc<dyn ObliviousRouting + Send + Sync> {
        let need_dim = || {
            topology.hypercube_dim().unwrap_or_else(|| {
                panic!("{self:?} requires a hypercube topology, got {topology:?}")
            })
        };
        match *self {
            TemplateSpec::Valiant => Arc::new(ValiantRouting::new(need_dim())),
            TemplateSpec::BitFixing => Arc::new(BitFixingRouting::new(need_dim())),
            TemplateSpec::Raecke {
                iterations,
                epsilon,
            } => {
                let opts = RaeckeOptions {
                    iterations,
                    epsilon: epsilon.value(),
                };
                let mut rng = StdRng::seed_from_u64(seed);
                Arc::new(RaeckeRouting::build(g, &opts, &mut rng))
            }
            TemplateSpec::FrtEnsemble { trees } => {
                Arc::new(RaeckeRouting::frt_ensemble(g, trees, seed))
            }
            TemplateSpec::Ksp { k } => Arc::new(KspRouting::new(g, k)),
            TemplateSpec::ShortestPath => Arc::new(ShortestPathRouting::new(g)),
            TemplateSpec::Ecmp => Arc::new(EcmpRouting::new(g)),
            TemplateSpec::Electrical {
                tolerance,
                preconditioner,
            } => {
                let opts = ElectricalOptions {
                    tolerance: tolerance.value(),
                    preconditioner,
                };
                // Eager all-source precompute: the engine treats
                // templates as all-pairs objects, and the batched build
                // surfaces TemplateStageStats like the tree templates.
                Arc::new(ElectricalRouting::with_options(g, opts).precomputed())
            }
            TemplateSpec::RandomWalk { walks, max_len } => {
                // `RandomWalkRouting` derives its per-pair streams from
                // `seed` through `derive_seed` under a scheme tag.
                Arc::new(RandomWalkRouting::new(g, walks, max_len, seed))
            }
            TemplateSpec::Vlb => Arc::new(VlbRouting::new(g)),
        }
    }
}

/// Stage 3: which demand arrives once the path system is installed.
///
/// Resolved against a [`ResolveCtx`] because some workloads depend on
/// earlier stages: the adversarial demand inspects the sampled path
/// system, and the hypercube permutations need the dimension.
///
/// # Examples
///
/// ```
/// use ssor_engine::{DemandSpec, TopologySpec};
/// use ssor_engine::ResolveCtx;
///
/// let topo = TopologySpec::Hypercube { dim: 3 };
/// let g = topo.build_graph();
/// let ctx = ResolveCtx::new(&topo, &g);
/// let d = DemandSpec::BitReversal.resolve(&ctx);
/// assert!(d.is_permutation());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DemandSpec {
    /// The hypercube bit-reversal permutation (hypercubes only) — the
    /// classic hard case for deterministic routing.
    BitReversal,
    /// The hypercube complement permutation (hypercubes only).
    Complement,
    /// The hypercube transpose permutation (hypercubes only).
    Transpose,
    /// A uniformly random permutation demand.
    RandomPermutation {
        /// Demand seed.
        seed: u64,
    },
    /// `pairs` random unit-demand pairs.
    RandomPairs {
        /// Number of pairs.
        pairs: usize,
        /// Demand seed.
        seed: u64,
    },
    /// A gravity-model traffic snapshot (the SMORE WAN workload).
    Gravity {
        /// Total traffic volume of the model.
        total: Param,
        /// Demand seed.
        seed: u64,
    },
    /// Unit demand on an explicit pair list.
    Pairs(
        /// The `(source, target)` pairs.
        Vec<(VertexId, VertexId)>,
    ),
    /// The Lemma 8.1 adversary's worst demand against the pipeline's own
    /// sampled path system (requires [`TopologySpec::LowerBoundC`]).
    AdversarialLowerBound,
}

/// Everything a [`DemandSpec`] may need to resolve: the topology, the
/// graph, and (for the adversary) the sampled path system plus gadget
/// metadata.
///
/// # Examples
///
/// ```
/// use ssor_engine::{DemandSpec, ResolveCtx, TopologySpec};
///
/// let topo = TopologySpec::Ring { n: 6 };
/// let g = topo.build_graph();
/// let d = DemandSpec::Pairs(vec![(0, 3)]).resolve(&ResolveCtx::new(&topo, &g));
/// assert_eq!(d.size(), 1.0);
/// ```
pub struct ResolveCtx<'a> {
    pub(crate) topology: &'a TopologySpec,
    pub(crate) graph: &'a Graph,
    pub(crate) meta: Option<&'a CGraphMeta>,
    pub(crate) paths: Option<&'a ssor_core::PathSystem>,
    pub(crate) alpha: usize,
}

impl<'a> ResolveCtx<'a> {
    /// A context with no sampled paths (enough for every spec except
    /// [`DemandSpec::AdversarialLowerBound`]).
    pub fn new(topology: &'a TopologySpec, graph: &'a Graph) -> Self {
        ResolveCtx {
            topology,
            graph,
            meta: None,
            paths: None,
            alpha: 0,
        }
    }

    pub(crate) fn with_paths(
        mut self,
        meta: Option<&'a CGraphMeta>,
        paths: &'a ssor_core::PathSystem,
        alpha: usize,
    ) -> Self {
        self.meta = meta;
        self.paths = Some(paths);
        self.alpha = alpha;
        self
    }
}

/// Tag XOR-ed into demand seeds before seeding their RNG, so a demand
/// stream can never collide with a template-construction stream started
/// from the same numeric seed (e.g. a "random" permutation that would
/// otherwise be bit-identical to the first FRT tree's center
/// permutation, both being a Fisher-Yates shuffle of `0..n`).
const DEMAND_STREAM_TAG: u64 = 0xDE3A_4D5E_ED00_7A61;

impl DemandSpec {
    /// The RNG for a demand with the given numeric seed.
    fn demand_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed ^ DEMAND_STREAM_TAG)
    }

    /// Materializes the demand.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, ResolveCtx, TopologySpec};
    /// let topo = TopologySpec::Ring { n: 6 };
    /// let g = topo.build_graph();
    /// let d = DemandSpec::RandomPairs { pairs: 3, seed: 1 }
    ///     .resolve(&ResolveCtx::new(&topo, &g));
    /// assert!(d.size() > 0.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a hypercube-only demand is used off-hypercube, or
    /// [`DemandSpec::AdversarialLowerBound`] is resolved without gadget
    /// metadata and sampled paths in the context.
    pub fn resolve(&self, ctx: &ResolveCtx<'_>) -> Demand {
        let need_dim = || {
            ctx.topology.hypercube_dim().unwrap_or_else(|| {
                panic!(
                    "{self:?} requires a hypercube topology, got {:?}",
                    ctx.topology
                )
            })
        };
        match self {
            DemandSpec::BitReversal => Demand::hypercube_bit_reversal(need_dim()),
            DemandSpec::Complement => Demand::hypercube_complement(need_dim()),
            DemandSpec::Transpose => Demand::hypercube_transpose(need_dim()),
            DemandSpec::RandomPermutation { seed } => {
                let mut rng = Self::demand_rng(*seed);
                Demand::random_permutation(ctx.graph.n(), &mut rng)
            }
            DemandSpec::RandomPairs { pairs, seed } => {
                let mut rng = Self::demand_rng(*seed);
                Demand::random_pairs(ctx.graph.n(), *pairs, &mut rng)
            }
            DemandSpec::Gravity { total, seed } => {
                let mut rng = Self::demand_rng(*seed);
                let model = GravityModel::sample(ctx.graph.n(), total.value(), &mut rng);
                model.snapshot(0, 8, &mut rng)
            }
            DemandSpec::Pairs(pairs) => Demand::from_pairs(pairs),
            DemandSpec::AdversarialLowerBound => {
                let meta = ctx
                    .meta
                    .expect("AdversarialLowerBound needs a LowerBoundC topology");
                let paths = ctx
                    .paths
                    .expect("AdversarialLowerBound resolves after sampling");
                find_adversarial_demand(meta, paths, ctx.alpha.max(1)).demand
            }
        }
    }
}

/// Tag XOR-ed into stream-model seeds, decorrelating the demand-stream
/// RNG from template construction, sampling, and one-shot demand streams
/// started from the same numeric seed.
const STREAM_MODEL_TAG: u64 = 0x57E4_3A11_D00D_FEED;

/// How a [`ScenarioSpec::DemandStream`] evolves its demand over time.
///
/// A model is a pure function of `(n, steps)` plus its stored seed, so
/// the whole sequence is reproducible and hashable — a stream is a spec,
/// not a side effect.
///
/// # Examples
///
/// ```
/// use ssor_engine::StreamModel;
///
/// let model = StreamModel::DiurnalGravity {
///     total: 20.0.into(),
///     period: 8,
///     seed: 1,
/// };
/// let demands = model.sequence(10, 5);
/// assert_eq!(demands.len(), 5);
/// assert!(demands.iter().all(|d| d.size() > 0.0));
/// // Deterministic per seed.
/// assert_eq!(demands, model.sequence(10, 5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StreamModel {
    /// Gravity traffic with sinusoidal diurnal drift: one
    /// [`GravityModel`] sampled per stream, one snapshot per step (hour
    /// `t` of `period`). The SMORE-style slowly-drifting WAN workload —
    /// the regime where warm starts shine.
    DiurnalGravity {
        /// Total traffic volume of the model (before modulation).
        total: Param,
        /// Steps per diurnal cycle.
        period: usize,
        /// Model seed.
        seed: u64,
    },
    /// `pairs` bursty flows, each flipping between OFF and ON (at
    /// `rate`) through a two-state Markov chain: OFF→ON with probability
    /// `p_on` per step, ON→OFF with `p_off`. Initial states draw from
    /// the stationary distribution. Support churn stresses the warm
    /// solver's pair bookkeeping (leaving pairs keep their carried
    /// distribution for when they return).
    BurstyOnOff {
        /// Number of (distinct, directed) flows.
        pairs: usize,
        /// Demand of a flow while ON.
        rate: Param,
        /// OFF → ON transition probability per step.
        p_on: Param,
        /// ON → OFF transition probability per step.
        p_off: Param,
        /// Model seed.
        seed: u64,
    },
}

impl StreamModel {
    /// Materializes the demand sequence for an `n`-vertex graph.
    ///
    /// # Panics
    ///
    /// Panics if the model's parameters are out of range (non-positive
    /// total/rate, probabilities outside `[0, 1]`, `period == 0`, or
    /// more pairs than an `n`-vertex graph has).
    pub fn sequence(&self, n: usize, steps: usize) -> Vec<Demand> {
        match *self {
            StreamModel::DiurnalGravity {
                total,
                period,
                seed,
            } => {
                assert!(total.value() > 0.0 && total.value().is_finite());
                assert!(period >= 1, "diurnal period must be positive");
                let mut rng = StdRng::seed_from_u64(seed ^ STREAM_MODEL_TAG);
                let model = GravityModel::sample(n, total.value(), &mut rng);
                (0..steps)
                    .map(|t| model.snapshot(t % period, period, &mut rng))
                    .collect()
            }
            StreamModel::BurstyOnOff {
                pairs,
                rate,
                p_on,
                p_off,
                seed,
            } => {
                assert!(rate.value() > 0.0 && rate.value().is_finite());
                let (p_on, p_off) = (p_on.value(), p_off.value());
                assert!((0.0..=1.0).contains(&p_on) && (0.0..=1.0).contains(&p_off));
                assert!(
                    pairs <= n.saturating_mul(n.saturating_sub(1)),
                    "more flows than ordered pairs"
                );
                let mut rng = StdRng::seed_from_u64(seed ^ STREAM_MODEL_TAG);
                let mut flows: Vec<(VertexId, VertexId)> = Vec::with_capacity(pairs);
                let mut guard = 0usize;
                while flows.len() < pairs && guard < 100 * pairs + 100 {
                    let s = rng.gen_range(0..n) as VertexId;
                    let t = rng.gen_range(0..n) as VertexId;
                    if s != t && !flows.contains(&(s, t)) {
                        flows.push((s, t));
                    }
                    guard += 1;
                }
                // Stationary initial states keep short streams unbiased.
                let p_stat = if p_on + p_off > 0.0 {
                    p_on / (p_on + p_off)
                } else {
                    0.0
                };
                let mut on: Vec<bool> = (0..flows.len()).map(|_| rng.gen_bool(p_stat)).collect();
                (0..steps)
                    .map(|step| {
                        if step > 0 {
                            for state in on.iter_mut() {
                                *state = if *state {
                                    !rng.gen_bool(p_off)
                                } else {
                                    rng.gen_bool(p_on)
                                };
                            }
                        }
                        let mut d = Demand::new();
                        for (&(s, t), &is_on) in flows.iter().zip(on.iter()) {
                            if is_on {
                                d.set(s, t, rate.value());
                            }
                        }
                        d
                    })
                    .collect()
            }
        }
    }
}

/// A named end-to-end workload: topology + recommended template + demand
/// batch, so a new experiment is a config value rather than a new binary.
///
/// # Examples
///
/// ```
/// use ssor_engine::ScenarioSpec;
///
/// let s = ScenarioSpec::HypercubeAdversarial { dim: 4 };
/// assert_eq!(s.demands().len(), 3);
/// let report = s.pipeline().alpha(2).run(&Default::default());
/// assert_eq!(report.records.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ScenarioSpec {
    /// Hypercube with the three classic adversarial permutations
    /// (bit-reversal, complement, transpose) under Valiant sampling.
    HypercubeAdversarial {
        /// Hypercube dimension.
        dim: u32,
    },
    /// Hypercube with `count` random permutations under Valiant sampling.
    HypercubePermutations {
        /// Hypercube dimension.
        dim: u32,
        /// Number of permutations.
        count: usize,
        /// Base demand seed.
        seed: u64,
    },
    /// A random permutation on any topology under Räcke sampling.
    Permutation {
        /// The graph family.
        topology: TopologySpec,
        /// Demand seed.
        seed: u64,
    },
    /// Gravity-model traffic on a Waxman WAN under Räcke sampling (the
    /// SMORE setting).
    GravityWan {
        /// WAN size.
        n: usize,
        /// Total traffic volume.
        total: Param,
        /// Seed for the WAN, the model, and the snapshot.
        seed: u64,
    },
    /// The Section 8 lower-bound instance: the gadget `C(n, k)` with the
    /// Lemma 8.1 adversary responding to the sampled system.
    LowerBound {
        /// Leaves per star.
        n: usize,
        /// Sparsity budget.
        alpha: usize,
    },
    /// A random-link-failure sweep over a (static) base scenario: per
    /// trial, `k_failures` edges are knocked out through a
    /// `ssor_graph::SubTopology` mask (derived-seed retries keep the
    /// damaged topology connected when possible), candidate paths
    /// crossing dead edges are dropped, and the base demands re-route on
    /// the survivors with a warm-started solve. Run with
    /// [`ScenarioSpec::run_dynamic`] or
    /// [`crate::Pipeline::failure_sweep`].
    FailureSweep {
        /// The scenario whose topology, template, and demands are swept.
        base: Box<ScenarioSpec>,
        /// Edges knocked out per trial.
        k_failures: usize,
        /// Number of independent trials.
        trials: usize,
    },
    /// A time-evolving demand stream over a (static) base scenario's
    /// topology and sampled path system: `steps` demands from `model`
    /// are routed in sequence with warm-started incremental solves,
    /// reported against a per-step cold-solve oracle. Run with
    /// [`ScenarioSpec::run_dynamic`] or [`crate::Pipeline::stream`].
    DemandStream {
        /// The scenario whose topology and template serve the stream.
        base: Box<ScenarioSpec>,
        /// Number of stream steps.
        steps: usize,
        /// The demand evolution model.
        model: StreamModel,
    },
}

impl ScenarioSpec {
    /// The topology this scenario routes on.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{ScenarioSpec, TopologySpec};
    /// let s = ScenarioSpec::HypercubeAdversarial { dim: 4 };
    /// assert_eq!(s.topology(), TopologySpec::Hypercube { dim: 4 });
    /// ```
    pub fn topology(&self) -> TopologySpec {
        match self {
            ScenarioSpec::HypercubeAdversarial { dim }
            | ScenarioSpec::HypercubePermutations { dim, .. } => {
                TopologySpec::Hypercube { dim: *dim }
            }
            ScenarioSpec::Permutation { topology, .. } => topology.clone(),
            ScenarioSpec::GravityWan { n, seed, .. } => TopologySpec::Waxman {
                n: *n,
                a: 0.4.into(),
                b: 0.25.into(),
                seed: *seed,
            },
            ScenarioSpec::LowerBound { n, alpha } => TopologySpec::LowerBoundC {
                n: *n,
                alpha: *alpha,
            },
            ScenarioSpec::FailureSweep { base, .. } | ScenarioSpec::DemandStream { base, .. } => {
                base.topology()
            }
        }
    }

    /// The template the seed experiments pair with this workload.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{ScenarioSpec, TemplateSpec};
    /// let s = ScenarioSpec::HypercubeAdversarial { dim: 4 };
    /// assert_eq!(s.template(), TemplateSpec::Valiant);
    /// ```
    pub fn template(&self) -> TemplateSpec {
        match self {
            ScenarioSpec::HypercubeAdversarial { .. }
            | ScenarioSpec::HypercubePermutations { .. } => TemplateSpec::Valiant,
            ScenarioSpec::Permutation { .. } | ScenarioSpec::GravityWan { .. } => {
                TemplateSpec::raecke()
            }
            // The lower bound is stated against any sparse system; KSP
            // gives the adversary a deterministic, inspectable support.
            ScenarioSpec::LowerBound { alpha, .. } => TemplateSpec::Ksp { k: (alpha + 1) * 2 },
            ScenarioSpec::FailureSweep { base, .. } | ScenarioSpec::DemandStream { base, .. } => {
                base.template()
            }
        }
    }

    /// The named demand batch.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::ScenarioSpec;
    /// let s = ScenarioSpec::HypercubePermutations { dim: 3, count: 2, seed: 1 };
    /// assert_eq!(s.demands().len(), 2);
    /// ```
    pub fn demands(&self) -> Vec<(String, DemandSpec)> {
        match self {
            ScenarioSpec::HypercubeAdversarial { dim } => {
                let mut v = vec![
                    ("bit-reversal".into(), DemandSpec::BitReversal),
                    ("complement".into(), DemandSpec::Complement),
                ];
                // The transpose permutation only exists in even dimension.
                if dim % 2 == 0 {
                    v.push(("transpose".into(), DemandSpec::Transpose));
                }
                v
            }
            ScenarioSpec::HypercubePermutations { count, seed, .. } => (0..*count)
                .map(|i| {
                    (
                        format!("random-{i}"),
                        DemandSpec::RandomPermutation {
                            seed: seed.wrapping_add(i as u64),
                        },
                    )
                })
                .collect(),
            ScenarioSpec::Permutation { seed, .. } => vec![(
                "random-perm".into(),
                DemandSpec::RandomPermutation { seed: *seed },
            )],
            ScenarioSpec::GravityWan { total, seed, .. } => vec![(
                "gravity".into(),
                DemandSpec::Gravity {
                    total: *total,
                    seed: *seed,
                },
            )],
            ScenarioSpec::LowerBound { .. } => {
                vec![("adversarial".into(), DemandSpec::AdversarialLowerBound)]
            }
            // The sweep re-routes the base demands per trial; the stream
            // generates its own sequence and ignores the batch.
            ScenarioSpec::FailureSweep { base, .. } | ScenarioSpec::DemandStream { base, .. } => {
                base.demands()
            }
        }
    }

    /// Assembles the full pipeline (topology + template + demands) with
    /// engine defaults; tune `alpha`, `seed`, and solve options on the
    /// returned builder.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::ScenarioSpec;
    /// let p = ScenarioSpec::HypercubeAdversarial { dim: 3 }.pipeline();
    /// assert_eq!(p.demand_count(), 2);
    /// ```
    pub fn pipeline(&self) -> crate::Pipeline {
        let p = crate::Pipeline::on(self.topology())
            .template(self.template())
            .demands(self.demands());
        // The lower-bound gadget is sized against a specific sparsity
        // budget; sampling at any other alpha would make the certified
        // k/alpha bound vacuous.
        match self {
            ScenarioSpec::LowerBound { alpha, .. } => p.alpha(*alpha),
            _ => p,
        }
    }

    /// Runs a dynamic scenario ([`ScenarioSpec::FailureSweep`] or
    /// [`ScenarioSpec::DemandStream`]) end to end through `cache`;
    /// returns `None` for static scenarios (use
    /// [`ScenarioSpec::pipeline`] + `run` for those).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{ScenarioSpec, StreamModel};
    ///
    /// let stream = ScenarioSpec::DemandStream {
    ///     base: Box::new(ScenarioSpec::HypercubeAdversarial { dim: 3 }),
    ///     steps: 3,
    ///     model: StreamModel::BurstyOnOff {
    ///         pairs: 4,
    ///         rate: 1.0.into(),
    ///         p_on: 0.6.into(),
    ///         p_off: 0.3.into(),
    ///         seed: 1,
    ///     },
    /// };
    /// let report = stream.run_dynamic(&Default::default()).unwrap();
    /// match report {
    ///     ssor_engine::DynamicReport::Stream(s) => assert_eq!(s.steps.len(), 3),
    ///     _ => unreachable!(),
    /// }
    /// ```
    pub fn run_dynamic(&self, cache: &crate::PathSystemCache) -> Option<crate::DynamicReport> {
        match self {
            ScenarioSpec::FailureSweep {
                base,
                k_failures,
                trials,
            } => Some(crate::DynamicReport::Failures(
                base.pipeline().failure_sweep(cache, *k_failures, *trials),
            )),
            ScenarioSpec::DemandStream { base, steps, model } => Some(
                crate::DynamicReport::Stream(base.pipeline().stream(cache, *steps, model)),
            ),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_build_expected_sizes() {
        assert_eq!(TopologySpec::Hypercube { dim: 4 }.build_graph().n(), 16);
        assert_eq!(
            TopologySpec::Grid { rows: 3, cols: 5 }.build_graph().n(),
            15
        );
        assert_eq!(TopologySpec::Ring { n: 9 }.build_graph().n(), 9);
        let (g, meta) = TopologySpec::LowerBoundC { n: 9, alpha: 1 }.build();
        let meta = meta.expect("gadget meta");
        assert_eq!(g.n(), 2 * meta.n + 2 + meta.k);
    }

    #[test]
    fn random_topologies_are_deterministic_per_seed() {
        let spec = TopologySpec::RandomRegular {
            n: 16,
            degree: 4,
            seed: 5,
        };
        let a = spec.build_graph();
        let b = spec.build_graph();
        assert_eq!(a.m(), b.m());
        for v in 0..16u32 {
            assert_eq!(a.degree(v), b.degree(v));
        }
    }

    #[test]
    #[should_panic(expected = "requires a hypercube")]
    fn valiant_rejects_non_hypercube() {
        let topo = TopologySpec::Ring { n: 8 };
        let g = topo.build_graph();
        TemplateSpec::Valiant.build(&topo, &g, 0);
    }

    #[test]
    fn templates_build_on_their_graphs() {
        let topo = TopologySpec::Grid { rows: 3, cols: 3 };
        let g = topo.build_graph();
        for spec in [
            TemplateSpec::raecke(),
            TemplateSpec::FrtEnsemble { trees: 4 },
            TemplateSpec::Ksp { k: 3 },
            TemplateSpec::ShortestPath,
            TemplateSpec::Ecmp,
            TemplateSpec::electrical(),
            TemplateSpec::RandomWalk {
                walks: 8,
                max_len: 64,
            },
            TemplateSpec::Vlb,
        ] {
            let t = spec.build(&topo, &g, 3);
            assert_eq!(t.graph().n(), 9, "{spec:?}");
        }
    }

    #[test]
    fn frt_ensemble_spec_is_deterministic_per_seed() {
        let topo = TopologySpec::Grid { rows: 3, cols: 3 };
        let g = topo.build_graph();
        let spec = TemplateSpec::FrtEnsemble { trees: 5 };
        let a = spec.build(&topo, &g, 9);
        let b = spec.build(&topo, &g, 9);
        let c = spec.build(&topo, &g, 10);
        assert_eq!(a.path_distribution(0, 8), b.path_distribution(0, 8));
        assert!(
            [(0u32, 8u32), (2, 6), (1, 7)]
                .iter()
                .any(|&(s, t)| a.path_distribution(s, t) != c.path_distribution(s, t)),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn demand_specs_resolve() {
        let topo = TopologySpec::Hypercube { dim: 3 };
        let g = topo.build_graph();
        let ctx = ResolveCtx::new(&topo, &g);
        assert!(DemandSpec::BitReversal.resolve(&ctx).is_permutation());
        assert!(DemandSpec::Complement.resolve(&ctx).is_permutation());
        let d = DemandSpec::RandomPermutation { seed: 3 }.resolve(&ctx);
        assert_eq!(d, DemandSpec::RandomPermutation { seed: 3 }.resolve(&ctx));
        let gvy = DemandSpec::Gravity {
            total: 10.0.into(),
            seed: 1,
        }
        .resolve(&ctx);
        assert!(gvy.size() > 0.0);
    }

    #[test]
    fn scenarios_expand_to_pipelines() {
        let s = ScenarioSpec::HypercubePermutations {
            dim: 3,
            count: 2,
            seed: 9,
        };
        assert_eq!(s.demands().len(), 2);
        assert_eq!(s.topology(), TopologySpec::Hypercube { dim: 3 });
        assert_eq!(s.template(), TemplateSpec::Valiant);
        let lb = ScenarioSpec::LowerBound { n: 9, alpha: 1 };
        assert!(matches!(lb.template(), TemplateSpec::Ksp { .. }));
    }

    #[test]
    fn param_hash_and_eq_are_bitwise() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Param::from(0.5));
        assert!(set.contains(&Param::from(0.5)));
        assert!(!set.contains(&Param::from(0.25)));
    }

    fn spec_hash(spec: &TemplateSpec) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut h = DefaultHasher::new();
        spec.hash(&mut h);
        h.finish()
    }

    #[test]
    fn electrical_and_random_walk_spec_hashes_are_stable() {
        // Specs key the engine's caches: equal specs must hash equal,
        // and every knob must reach the hash (a knob outside the hash
        // silently aliases cache entries).
        assert_eq!(
            spec_hash(&TemplateSpec::electrical()),
            spec_hash(&TemplateSpec::electrical())
        );
        assert_eq!(TemplateSpec::electrical(), TemplateSpec::electrical());
        let jacobi = TemplateSpec::Electrical {
            tolerance: 1e-10.into(),
            preconditioner: Preconditioner::Jacobi,
        };
        let none = TemplateSpec::Electrical {
            tolerance: 1e-10.into(),
            preconditioner: Preconditioner::None,
        };
        let loose = TemplateSpec::Electrical {
            tolerance: 1e-6.into(),
            preconditioner: Preconditioner::Jacobi,
        };
        assert_ne!(jacobi, none);
        assert_ne!(spec_hash(&jacobi), spec_hash(&none));
        assert_ne!(jacobi, loose);
        assert_ne!(spec_hash(&jacobi), spec_hash(&loose));

        let rw = TemplateSpec::RandomWalk {
            walks: 16,
            max_len: 64,
        };
        assert_eq!(spec_hash(&rw), spec_hash(&rw.clone()));
        let more_walks = TemplateSpec::RandomWalk {
            walks: 32,
            max_len: 64,
        };
        let longer = TemplateSpec::RandomWalk {
            walks: 16,
            max_len: 128,
        };
        assert_ne!(spec_hash(&rw), spec_hash(&more_walks));
        assert_ne!(spec_hash(&rw), spec_hash(&longer));
    }

    #[test]
    fn random_walk_spec_is_deterministic_per_seed() {
        let topo = TopologySpec::Grid { rows: 3, cols: 3 };
        let g = topo.build_graph();
        let spec = TemplateSpec::RandomWalk {
            walks: 16,
            max_len: 64,
        };
        let a = spec.build(&topo, &g, 9);
        let b = spec.build(&topo, &g, 9);
        let c = spec.build(&topo, &g, 10);
        assert_eq!(a.path_distribution(0, 8), b.path_distribution(0, 8));
        assert!(
            [(0u32, 8u32), (2, 6), (1, 7)]
                .iter()
                .any(|&(s, t)| a.path_distribution(s, t) != c.path_distribution(s, t)),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn electrical_spec_build_precomputes_and_reports_stats() {
        let topo = TopologySpec::Grid { rows: 3, cols: 3 };
        let g = topo.build_graph();
        let t = TemplateSpec::electrical().build(&topo, &g, 0);
        let stats = t.build_stats().expect("electrical build records stats");
        assert_eq!(stats.tree_wall.as_nanos(), 0);
        assert_eq!(stats.metric_wall, stats.total_wall);
    }
}
