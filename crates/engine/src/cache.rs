//! Memoization across pipeline runs.
//!
//! Sweeps (over `α`, over demands, over schedulers) repeat expensive
//! sub-computations: building a Räcke template is a multiplicative-weights
//! loop, sampling a path system touches every pair, and the unrestricted
//! OPT solve — the denominator of every competitive report — depends only
//! on `(topology, demand)`, not on `α` at all. [`PathSystemCache`] memoizes
//! all four stages behind hashable spec keys, so an 8-point `α`-sweep pays
//! for its graphs, templates, and OPT baselines exactly once.

use crate::spec::{DemandSpec, TemplateSpec, TopologySpec};
use ssor_core::PathSystem;
use ssor_lowerbound::graphs::CGraphMeta;
use ssor_oblivious::{ObliviousRouting, TemplateStageStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shared oblivious-routing template.
pub type SharedTemplate = Arc<dyn ObliviousRouting + Send + Sync>;

/// A built graph together with its lower-bound gadget metadata (when the
/// topology has any).
pub type SharedGraph = Arc<(ssor_graph::Graph, Option<CGraphMeta>)>;

/// The issue's cache key for a sampled path system:
/// `(topology, template, α, seed)`.
type PathKey = (TopologySpec, TemplateSpec, usize, u64);

/// Cache key for OPT bounds: `(topology, demand, eps bits, max_iters)` —
/// the full provenance of a certified bound.
type OptKey = (TopologySpec, DemandSpec, u64, usize);

/// Certified bounds from an unrestricted min-congestion solve (the parts
/// of a `MinCongSolution` worth memoizing).
#[derive(Debug, Clone, Copy)]
pub struct OptBounds {
    /// Primal value: an upper bound on the offline optimum.
    pub congestion: f64,
    /// Certified dual lower bound on the offline optimum.
    pub lower_bound: f64,
}

/// Cache hit/miss/eviction counters, aggregated over all stores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to compute.
    pub misses: usize,
    /// Entries dropped by the capacity bound (0 for unbounded caches).
    pub evictions: usize,
}

/// Memoizes built graphs, templates, sampled path systems, and OPT
/// bounds behind the crate's hashable spec keys.
///
/// Path systems are keyed by `(topology, template, α, seed)` — the
/// complete provenance of a Definition 5.2 sample — so sweeps over `α` or
/// demands never re-sample, and repeated runs of the same configuration
/// are free.
///
/// The cache is internally synchronized: share one instance (by reference
/// or `Arc`) across every pipeline of a sweep.
///
/// # Examples
///
/// ```
/// use ssor_engine::{PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
///
/// let cache = PathSystemCache::new();
/// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
///     .template(TemplateSpec::Valiant)
///     .alpha(2);
/// let first = p.prepare(&cache);
/// let again = p.prepare(&cache);
/// // Same key -> the identical cached path system, not a re-sample.
/// assert_eq!(first.paths().total_paths(), again.paths().total_paths());
/// assert!(cache.stats().hits > 0);
/// ```
pub struct PathSystemCache {
    graphs: Mutex<HashMap<TopologySpec, Entry<SharedGraph>>>,
    templates: Mutex<HashMap<(TopologySpec, TemplateSpec, u64), Entry<SharedTemplate>>>,
    paths: Mutex<HashMap<PathKey, Entry<Arc<PathSystem>>>>,
    opt: Mutex<HashMap<OptKey, Entry<OptBounds>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    /// Monotone access clock stamping entries for LRU-within-generation.
    clock: AtomicU64,
    /// The cache generation (bumped by [`PathSystemCache::advance_generation`]);
    /// entries remember the generation of their last access, and eviction
    /// drops the oldest generation first.
    generation: AtomicU64,
    /// Per-store capacity for the churn-sensitive stores (templates and
    /// path systems); `usize::MAX` means unbounded.
    capacity: usize,
}

/// A cached value stamped with its last-access provenance: the cache
/// generation and the access-clock tick. Eviction drops the minimum
/// `(gen, tick)` — oldest generation first, least-recently-used within it.
struct Entry<V> {
    value: V,
    gen: u64,
    tick: u64,
}

impl Default for PathSystemCache {
    fn default() -> Self {
        PathSystemCache {
            graphs: Mutex::new(HashMap::new()),
            templates: Mutex::new(HashMap::new()),
            paths: Mutex::new(HashMap::new()),
            opt: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            capacity: usize::MAX,
        }
    }
}

impl std::fmt::Debug for PathSystemCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathSystemCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Double-checked get-or-compute: the lock is released during `compute`,
/// so concurrent pipeline stages never serialize on each other's solves.
/// Two threads may race to compute the same key; the first insert wins
/// (all computations here are deterministic, so both results agree).
///
/// A fresh insert into a store at `capacity` first evicts the entry with
/// the minimum `(generation, tick)` stamp — the least-recently-touched
/// entry of the oldest cache generation — and counts it in `evictions`.
///
/// Returns `(value, hit)`; `hit` reflects the atomic first check, so a
/// caller timing the call sees `hit == false` exactly when `compute` ran
/// on its own thread (a racing loser still did the work it reports).
#[allow(clippy::too_many_arguments)]
fn get_or_compute<K: std::hash::Hash + Eq + Clone, V: Clone>(
    map: &Mutex<HashMap<K, Entry<V>>>,
    hits: &AtomicUsize,
    misses: &AtomicUsize,
    evictions: &AtomicUsize,
    clock: &AtomicU64,
    generation: &AtomicU64,
    capacity: usize,
    key: K,
    compute: impl FnOnce() -> V,
) -> (V, bool) {
    let gen = generation.load(Ordering::Relaxed);
    let touch = |e: &mut Entry<V>| {
        e.gen = gen;
        e.tick = clock.fetch_add(1, Ordering::Relaxed);
    };
    if let Some(e) = map.lock().expect("cache lock").get_mut(&key) {
        touch(e);
        hits.fetch_add(1, Ordering::Relaxed);
        return (e.value.clone(), true);
    }
    misses.fetch_add(1, Ordering::Relaxed);
    let v = compute();
    let mut m = map.lock().expect("cache lock");
    if let Some(e) = m.get_mut(&key) {
        // A racer inserted the same key while we computed; share its
        // value (both computations agree) — no insert, no eviction.
        touch(e);
        return (e.value.clone(), false);
    }
    while m.len() >= capacity.max(1) {
        let victim = m
            .iter()
            .min_by_key(|(_, e)| (e.gen, e.tick))
            .map(|(k, _)| k.clone());
        match victim {
            Some(k) => {
                m.remove(&k);
                evictions.fetch_add(1, Ordering::Relaxed);
            }
            None => break,
        }
    }
    let tick = clock.fetch_add(1, Ordering::Relaxed);
    m.insert(
        key,
        Entry {
            value: v.clone(),
            gen,
            tick,
        },
    );
    (v, false)
}

impl PathSystemCache {
    /// An empty cache.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::PathSystemCache;
    /// let cache = PathSystemCache::new();
    /// assert_eq!(cache.stats().hits, 0);
    /// ```
    pub fn new() -> Self {
        PathSystemCache::default()
    }

    /// A cache whose churn-sensitive stores (templates and sampled path
    /// systems) hold at most `capacity` entries each; inserting past the
    /// bound evicts the least-recently-touched entry of the **oldest
    /// cache generation** first (see
    /// [`advance_generation`](PathSystemCache::advance_generation)).
    /// The graph and OPT-bound stores stay unbounded — their entries are
    /// small and topology-keyed, not churn-keyed.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{PathSystemCache, TemplateSpec, TopologySpec};
    ///
    /// let cache = PathSystemCache::bounded(2);
    /// let topo = TopologySpec::Ring { n: 6 };
    /// for seed in 0..4 {
    ///     cache.template(&topo, &TemplateSpec::ShortestPath, seed);
    /// }
    /// assert_eq!(cache.stats().evictions, 2, "capacity 2, four inserts");
    /// ```
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        PathSystemCache {
            capacity,
            ..PathSystemCache::default()
        }
    }

    /// Bumps the cache generation. Entries remember the generation of
    /// their last access; under a capacity bound, eviction drops oldest
    /// generations first, so a serving rebuild loop that advances the
    /// generation once per template swap keeps the current generation's
    /// working set resident while prior generations age out.
    ///
    /// Returns the new generation.
    pub fn advance_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current cache generation (0 until the first
    /// [`advance_generation`](PathSystemCache::advance_generation)).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The built graph (plus lower-bound gadget metadata, when the
    /// topology has any) for `topo`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{PathSystemCache, TopologySpec};
    /// let cache = PathSystemCache::new();
    /// let g = cache.graph(&TopologySpec::Ring { n: 7 });
    /// assert_eq!(g.0.n(), 7);
    /// ```
    pub fn graph(&self, topo: &TopologySpec) -> SharedGraph {
        get_or_compute(
            &self.graphs,
            &self.hits,
            &self.misses,
            &self.evictions,
            &self.clock,
            &self.generation,
            usize::MAX,
            topo.clone(),
            || Arc::new(topo.build()),
        )
        .0
    }

    /// The built oblivious template for `(topo, template, seed)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{PathSystemCache, TemplateSpec, TopologySpec};
    /// let cache = PathSystemCache::new();
    /// let topo = TopologySpec::Hypercube { dim: 3 };
    /// let t = cache.template(&topo, &TemplateSpec::Valiant, 1);
    /// assert_eq!(t.graph().n(), 8);
    /// ```
    pub fn template(
        &self,
        topo: &TopologySpec,
        template: &TemplateSpec,
        seed: u64,
    ) -> SharedTemplate {
        self.template_with_hit(topo, template, seed).0
    }

    /// [`PathSystemCache::template`] plus whether the atomic cache
    /// lookup answered it (`true` = shared, no construction ran on this
    /// thread) — the flag [`TemplateBuilder`] reports as `cached`.
    fn template_with_hit(
        &self,
        topo: &TopologySpec,
        template: &TemplateSpec,
        seed: u64,
    ) -> (SharedTemplate, bool) {
        let key = (topo.clone(), template.clone(), seed);
        get_or_compute(
            &self.templates,
            &self.hits,
            &self.misses,
            &self.evictions,
            &self.clock,
            &self.generation,
            self.capacity,
            key,
            || {
                let g = self.graph(topo);
                template.build(topo, &g.0, seed)
            },
        )
    }

    /// The sampled path system for `(topo, template, alpha, seed)`,
    /// computing it with `sample` on a miss.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_core::PathSystem;
    /// use ssor_engine::{PathSystemCache, TemplateSpec, TopologySpec};
    /// use std::sync::Arc;
    ///
    /// let cache = PathSystemCache::new();
    /// let topo = TopologySpec::Ring { n: 4 };
    /// let key_template = TemplateSpec::ShortestPath;
    /// let a = cache.paths(&topo, &key_template, 2, 0, || Arc::new(PathSystem::new()));
    /// let b = cache.paths(&topo, &key_template, 2, 0, || panic!("cached"));
    /// assert_eq!(a.total_paths(), b.total_paths());
    /// ```
    pub fn paths(
        &self,
        topo: &TopologySpec,
        template: &TemplateSpec,
        alpha: usize,
        seed: u64,
        sample: impl FnOnce() -> Arc<PathSystem>,
    ) -> Arc<PathSystem> {
        let key = (topo.clone(), template.clone(), alpha, seed);
        get_or_compute(
            &self.paths,
            &self.hits,
            &self.misses,
            &self.evictions,
            &self.clock,
            &self.generation,
            self.capacity,
            key,
            sample,
        )
        .0
    }

    /// Certified OPT bounds for `(topo, demand, solver options)`,
    /// computing with `solve` on a miss. Both `eps` (bit-exact) and
    /// `max_iters` enter the key, because a looser or shorter solve
    /// certifies looser bounds.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, OptBounds, PathSystemCache, TopologySpec};
    /// use ssor_flow::SolveOptions;
    ///
    /// let cache = PathSystemCache::new();
    /// let topo = TopologySpec::Ring { n: 6 };
    /// let spec = DemandSpec::Pairs(vec![(0, 3)]);
    /// let opts = SolveOptions::with_eps(0.1);
    /// let solve = || OptBounds { congestion: 0.5, lower_bound: 0.5 };
    /// let first = cache.opt_bounds(&topo, &spec, &opts, solve);
    /// let cached = cache.opt_bounds(&topo, &spec, &opts, || unreachable!());
    /// assert_eq!(first.congestion, cached.congestion);
    /// ```
    pub fn opt_bounds(
        &self,
        topo: &TopologySpec,
        demand: &DemandSpec,
        opts: &ssor_flow::SolveOptions,
        solve: impl FnOnce() -> OptBounds,
    ) -> OptBounds {
        let key = (
            topo.clone(),
            demand.clone(),
            opts.eps.to_bits(),
            opts.max_iters,
        );
        get_or_compute(
            &self.opt,
            &self.hits,
            &self.misses,
            &self.evictions,
            &self.clock,
            &self.generation,
            usize::MAX,
            key,
            solve,
        )
        .0
    }

    /// Aggregate hit/miss/eviction counters over all four stores.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{CacheStats, PathSystemCache, TopologySpec};
    /// let cache = PathSystemCache::new();
    /// let topo = TopologySpec::Ring { n: 5 };
    /// cache.graph(&topo);
    /// cache.graph(&topo);
    /// let expect = CacheStats { hits: 1, misses: 1, evictions: 0 };
    /// assert_eq!(cache.stats(), expect);
    /// ```
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// What one template construction cost, as observed by a
/// [`TemplateBuilder`]: total wall-clock, whether the cache answered it
/// (a *shared* template — e.g. the intact-topology template every
/// failure-sweep trial re-routes against), and, for templates that track
/// them, the per-stage split ([`TemplateStageStats`]) showing how much of
/// the build ran on the rayon-parallel stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct TemplateBuildStats {
    /// Wall-clock of the (possibly cache-answered) build.
    pub wall: Duration,
    /// `true` when the cache already held the template — no construction
    /// ran.
    pub cached: bool,
    /// Per-stage construction split, when the template records one (the
    /// Räcke/FRT builders do).
    pub stages: Option<TemplateStageStats>,
    /// Snapshot of the cache's aggregate hit/miss/eviction counters as of
    /// this build — the serving rebuild loop reads `cache.evictions` here
    /// to watch a bounded cache shed stale generations under churn.
    pub cache: CacheStats,
}

impl TemplateBuildStats {
    /// Fraction of the construction spent in rayon-parallel stages —
    /// the single-core headroom. 1.0 for a cache hit (nothing was
    /// rebuilt), the template's own
    /// [`parallel_share`](TemplateStageStats::parallel_share) when
    /// per-stage stats exist, 0.0 otherwise.
    pub fn parallel_share(&self) -> f64 {
        if self.cached {
            1.0
        } else {
            self.stages.map_or(0.0, |s| s.parallel_share())
        }
    }
}

/// Constructs oblivious templates through a [`PathSystemCache`], timing
/// every build and fanning template *ensembles* out over rayon workers.
///
/// A single template build is already internally parallel (metric
/// Dijkstras, canonical-load blocks); the builder adds the outer level —
/// distinct `(template, seed)` entries of an ensemble are independent, so
/// they build concurrently, each memoized under its own cache key. The
/// double-checked cache never serializes concurrent *different* keys.
///
/// # Examples
///
/// ```
/// use ssor_engine::{PathSystemCache, TemplateBuilder, TemplateSpec, TopologySpec};
///
/// let cache = PathSystemCache::new();
/// let builder = TemplateBuilder::new(&cache);
/// let topo = TopologySpec::Grid { rows: 3, cols: 3 };
/// let (template, stats) = builder.build(&topo, &TemplateSpec::raecke(), 1);
/// assert_eq!(template.graph().n(), 9);
/// assert!(!stats.cached, "first build constructs");
/// let (_, again) = builder.build(&topo, &TemplateSpec::raecke(), 1);
/// assert!(again.cached, "second build is shared from the cache");
/// ```
#[derive(Debug)]
pub struct TemplateBuilder<'a> {
    cache: &'a PathSystemCache,
}

/// Below this many ensemble entries the fan-out stays serial (the
/// vendored rayon shim spawns threads per call); results are identical
/// either way — each entry is an independent cache-keyed build.
const ENSEMBLE_PAR_MIN_ENTRIES: usize = 2;

impl<'a> TemplateBuilder<'a> {
    /// A builder constructing through (and memoizing into) `cache`.
    pub fn new(cache: &'a PathSystemCache) -> Self {
        TemplateBuilder { cache }
    }

    /// Builds (or fetches) one template, reporting what it cost and
    /// whether it was shared from the cache. The `cached` flag comes out
    /// of the cache's own atomic lookup, so even when another thread
    /// races the same key the flag matches what *this* call actually did
    /// (fetched vs constructed).
    pub fn build(
        &self,
        topo: &TopologySpec,
        template: &TemplateSpec,
        seed: u64,
    ) -> (SharedTemplate, TemplateBuildStats) {
        // Diagnostics-only wall clock: TemplateBuildStats.wall never
        // enters the serialized report body. lint: allow(wall_clock)
        let start = Instant::now();
        let (t, cached) = self.cache.template_with_hit(topo, template, seed);
        let stats = TemplateBuildStats {
            wall: start.elapsed(),
            cached,
            stages: t.build_stats(),
            cache: self.cache.stats(),
        };
        (t, stats)
    }

    /// Builds a template *ensemble* — one entry per `(template, seed)`
    /// pair — in parallel over rayon workers, returned in entry order.
    ///
    /// Entries are independent cache-keyed constructions, so the result
    /// set is identical at any thread count (two racing duplicates of
    /// the *same* key both compute; the first insert wins, and both
    /// computations agree — see [`PathSystemCache`]).
    ///
    /// Note on nesting: each entry's construction is itself parallel
    /// (metric fan-out, tree sampling), and the vendored rayon shim
    /// spawns workers per call rather than sharing a pool, so an
    /// ensemble of heavy templates can transiently hold
    /// `entries × workers` OS threads. That oversubscription trades a
    /// little scheduling overhead for keeping every stage busy; with
    /// real rayon the nested calls would share one pool. Results are
    /// unaffected either way.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{PathSystemCache, TemplateBuilder, TemplateSpec, TopologySpec};
    ///
    /// let cache = PathSystemCache::new();
    /// let builder = TemplateBuilder::new(&cache);
    /// let topo = TopologySpec::Ring { n: 8 };
    /// let entries: Vec<(TemplateSpec, u64)> =
    ///     (0..4).map(|s| (TemplateSpec::FrtEnsemble { trees: 4 }, s)).collect();
    /// let built = builder.build_ensemble(&topo, &entries);
    /// assert_eq!(built.len(), 4);
    /// assert!(built.iter().all(|(t, _)| t.graph().n() == 8));
    /// ```
    pub fn build_ensemble(
        &self,
        topo: &TopologySpec,
        entries: &[(TemplateSpec, u64)],
    ) -> Vec<(SharedTemplate, TemplateBuildStats)> {
        ssor_graph::par_ordered_map(entries, ENSEMBLE_PAR_MIN_ENTRIES, |(spec, seed)| {
            self.build(topo, spec, *seed)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TemplateSpec, TopologySpec};

    #[test]
    fn graphs_are_cached_per_spec() {
        let cache = PathSystemCache::new();
        let a = cache.graph(&TopologySpec::Hypercube { dim: 3 });
        let b = cache.graph(&TopologySpec::Hypercube { dim: 3 });
        assert!(Arc::ptr_eq(&a, &b), "same Arc returned");
        let c = cache.graph(&TopologySpec::Hypercube { dim: 4 });
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn template_seed_is_part_of_the_key() {
        let cache = PathSystemCache::new();
        let topo = TopologySpec::Grid { rows: 2, cols: 3 };
        let a = cache.template(&topo, &TemplateSpec::raecke(), 1);
        let b = cache.template(&topo, &TemplateSpec::raecke(), 2);
        let a2 = cache.template(&topo, &TemplateSpec::raecke(), 1);
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn alpha_distinguishes_path_keys() {
        let cache = PathSystemCache::new();
        let topo = TopologySpec::Ring { n: 4 };
        let t = TemplateSpec::ShortestPath;
        let mk = |n: usize| {
            move || {
                let mut ps = PathSystem::new();
                let g = ssor_graph::generators::ring(4);
                for i in 0..n as u32 {
                    ps.insert(ssor_graph::Path::from_vertices(&g, &[i, i + 1]).unwrap());
                }
                Arc::new(ps)
            }
        };
        let one = cache.paths(&topo, &t, 1, 0, mk(1));
        let two = cache.paths(&topo, &t, 2, 0, mk(2));
        assert_eq!(one.total_paths(), 1);
        assert_eq!(two.total_paths(), 2);
    }

    #[test]
    fn opt_bounds_key_on_eps_bits() {
        let cache = PathSystemCache::new();
        let topo = TopologySpec::Ring { n: 6 };
        let d = DemandSpec::Pairs(vec![(0, 2)]);
        let loose = ssor_flow::SolveOptions::with_eps(0.1);
        let tight = ssor_flow::SolveOptions::with_eps(0.05);
        let a = cache.opt_bounds(&topo, &d, &loose, || OptBounds {
            congestion: 1.0,
            lower_bound: 0.9,
        });
        let b = cache.opt_bounds(&topo, &d, &tight, || OptBounds {
            congestion: 1.0,
            lower_bound: 0.97,
        });
        assert!(a.lower_bound < b.lower_bound);
        let a2 = cache.opt_bounds(&topo, &d, &loose, || unreachable!("cached"));
        assert_eq!(a2.lower_bound, a.lower_bound);
        // Same eps but a longer solve is a different certificate.
        let longer = ssor_flow::SolveOptions {
            max_iters: loose.max_iters * 10,
            ..loose.clone()
        };
        let c = cache.opt_bounds(&topo, &d, &longer, || OptBounds {
            congestion: 1.0,
            lower_bound: 0.95,
        });
        assert!(c.lower_bound > a.lower_bound);
    }

    #[test]
    fn template_builder_reports_shared_builds() {
        let cache = PathSystemCache::new();
        let builder = TemplateBuilder::new(&cache);
        let topo = TopologySpec::Grid { rows: 3, cols: 3 };
        let (a, first) = builder.build(&topo, &TemplateSpec::raecke(), 5);
        assert!(!first.cached);
        assert!(first.stages.is_some(), "raecke reports per-stage stats");
        assert!(first.parallel_share() >= 0.0);
        let (b, second) = builder.build(&topo, &TemplateSpec::raecke(), 5);
        assert!(second.cached, "second build shares the cached template");
        assert_eq!(second.parallel_share(), 1.0);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn template_ensembles_build_in_entry_order() {
        let cache = PathSystemCache::new();
        let builder = TemplateBuilder::new(&cache);
        let topo = TopologySpec::Grid { rows: 2, cols: 4 };
        let entries: Vec<(TemplateSpec, u64)> = vec![
            (TemplateSpec::FrtEnsemble { trees: 3 }, 0),
            (TemplateSpec::ShortestPath, 0),
            (TemplateSpec::FrtEnsemble { trees: 3 }, 1),
        ];
        let built = builder.build_ensemble(&topo, &entries);
        assert_eq!(built.len(), 3);
        // Each entry memoized under its own key: rebuilding is shared.
        let again = builder.build_ensemble(&topo, &entries);
        for ((t, _), (t2, s2)) in built.iter().zip(again.iter()) {
            assert!(Arc::ptr_eq(t, t2));
            assert!(s2.cached);
        }
    }

    #[test]
    fn bounded_cache_evicts_oldest_generation_first() {
        let cache = PathSystemCache::bounded(2);
        let topo = TopologySpec::Ring { n: 6 };
        // Generation 0: two templates fill the store.
        let a = cache.template(&topo, &TemplateSpec::ShortestPath, 0);
        cache.template(&topo, &TemplateSpec::ShortestPath, 1);
        // Touch seed 0 so it is the *most* recently used of generation 0.
        cache.template(&topo, &TemplateSpec::ShortestPath, 0);
        assert_eq!(cache.stats().evictions, 0);

        // Generation 1: a third insert must evict — and the victim is the
        // least-recently-touched entry of the oldest generation (seed 1),
        // not the recently-touched seed 0.
        assert_eq!(cache.advance_generation(), 1);
        cache.template(&topo, &TemplateSpec::ShortestPath, 2);
        assert_eq!(cache.stats().evictions, 1);
        let a2 = cache.template(&topo, &TemplateSpec::ShortestPath, 0);
        assert!(Arc::ptr_eq(&a, &a2), "seed 0 survived the eviction");
        // Seed 1 was evicted: fetching it again is a miss (recomputes).
        let before = cache.stats().misses;
        cache.template(&topo, &TemplateSpec::ShortestPath, 1);
        assert_eq!(cache.stats().misses, before + 1);
    }

    #[test]
    fn current_generation_entries_survive_churn() {
        let cache = PathSystemCache::bounded(1);
        let topo = TopologySpec::Ring { n: 5 };
        for g in 0..4u64 {
            cache.advance_generation();
            assert_eq!(cache.generation(), g + 1);
            let t = cache.template(&topo, &TemplateSpec::ShortestPath, g);
            // The entry just built this generation is resident.
            let t2 = cache.template(&topo, &TemplateSpec::ShortestPath, g);
            assert!(Arc::ptr_eq(&t, &t2));
        }
        // Capacity 1, four generations of inserts: three evictions.
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn unbounded_stores_never_evict() {
        let cache = PathSystemCache::bounded(1);
        let a = cache.graph(&TopologySpec::Ring { n: 4 });
        cache.graph(&TopologySpec::Ring { n: 5 });
        cache.graph(&TopologySpec::Ring { n: 6 });
        // Graph store ignores the bound (only templates/paths churn).
        let a2 = cache.graph(&TopologySpec::Ring { n: 4 });
        assert!(Arc::ptr_eq(&a, &a2));
    }

    #[test]
    fn build_stats_surface_cache_counters() {
        let cache = PathSystemCache::bounded(1);
        let builder = TemplateBuilder::new(&cache);
        let topo = TopologySpec::Ring { n: 6 };
        let (_, s0) = builder.build(&topo, &TemplateSpec::ShortestPath, 0);
        assert_eq!(s0.cache.evictions, 0);
        cache.advance_generation();
        let (_, s1) = builder.build(&topo, &TemplateSpec::ShortestPath, 1);
        assert_eq!(s1.cache.evictions, 1, "capacity 1: second build evicts");
        assert!(s1.cache.misses >= 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = PathSystemCache::bounded(0);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cache = PathSystemCache::new();
        let topo = TopologySpec::Ring { n: 3 };
        cache.graph(&topo);
        cache.graph(&topo);
        cache.graph(&topo);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }
}
