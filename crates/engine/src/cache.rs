//! Memoization across pipeline runs.
//!
//! Sweeps (over `α`, over demands, over schedulers) repeat expensive
//! sub-computations: building a Räcke template is a multiplicative-weights
//! loop, sampling a path system touches every pair, and the unrestricted
//! OPT solve — the denominator of every competitive report — depends only
//! on `(topology, demand)`, not on `α` at all. [`PathSystemCache`] memoizes
//! all four stages behind hashable spec keys, so an 8-point `α`-sweep pays
//! for its graphs, templates, and OPT baselines exactly once.

use crate::spec::{DemandSpec, TemplateSpec, TopologySpec};
use ssor_core::PathSystem;
use ssor_lowerbound::graphs::CGraphMeta;
use ssor_oblivious::ObliviousRouting;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A shared oblivious-routing template.
pub type SharedTemplate = Arc<dyn ObliviousRouting + Send + Sync>;

/// A built graph together with its lower-bound gadget metadata (when the
/// topology has any).
pub type SharedGraph = Arc<(ssor_graph::Graph, Option<CGraphMeta>)>;

/// The issue's cache key for a sampled path system:
/// `(topology, template, α, seed)`.
type PathKey = (TopologySpec, TemplateSpec, usize, u64);

/// Cache key for OPT bounds: `(topology, demand, eps bits, max_iters)` —
/// the full provenance of a certified bound.
type OptKey = (TopologySpec, DemandSpec, u64, usize);

/// Certified bounds from an unrestricted min-congestion solve (the parts
/// of a `MinCongSolution` worth memoizing).
#[derive(Debug, Clone, Copy)]
pub struct OptBounds {
    /// Primal value: an upper bound on the offline optimum.
    pub congestion: f64,
    /// Certified dual lower bound on the offline optimum.
    pub lower_bound: f64,
}

/// Cache hit/miss counters (one pair per store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to compute.
    pub misses: usize,
}

/// Memoizes built graphs, templates, sampled path systems, and OPT
/// bounds behind the crate's hashable spec keys.
///
/// Path systems are keyed by `(topology, template, α, seed)` — the
/// complete provenance of a Definition 5.2 sample — so sweeps over `α` or
/// demands never re-sample, and repeated runs of the same configuration
/// are free.
///
/// The cache is internally synchronized: share one instance (by reference
/// or `Arc`) across every pipeline of a sweep.
///
/// # Examples
///
/// ```
/// use ssor_engine::{PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
///
/// let cache = PathSystemCache::new();
/// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
///     .template(TemplateSpec::Valiant)
///     .alpha(2);
/// let first = p.prepare(&cache);
/// let again = p.prepare(&cache);
/// // Same key -> the identical cached path system, not a re-sample.
/// assert_eq!(first.paths().total_paths(), again.paths().total_paths());
/// assert!(cache.stats().hits > 0);
/// ```
#[derive(Default)]
pub struct PathSystemCache {
    graphs: Mutex<HashMap<TopologySpec, SharedGraph>>,
    templates: Mutex<HashMap<(TopologySpec, TemplateSpec, u64), SharedTemplate>>,
    paths: Mutex<HashMap<PathKey, Arc<PathSystem>>>,
    opt: Mutex<HashMap<OptKey, OptBounds>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl std::fmt::Debug for PathSystemCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathSystemCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Double-checked get-or-compute: the lock is released during `compute`,
/// so concurrent pipeline stages never serialize on each other's solves.
/// Two threads may race to compute the same key; the first insert wins
/// (all computations here are deterministic, so both results agree).
fn get_or_compute<K: std::hash::Hash + Eq + Clone, V: Clone>(
    map: &Mutex<HashMap<K, V>>,
    hits: &AtomicUsize,
    misses: &AtomicUsize,
    key: K,
    compute: impl FnOnce() -> V,
) -> V {
    if let Some(v) = map.lock().expect("cache lock").get(&key) {
        hits.fetch_add(1, Ordering::Relaxed);
        return v.clone();
    }
    misses.fetch_add(1, Ordering::Relaxed);
    let v = compute();
    map.lock()
        .expect("cache lock")
        .entry(key)
        .or_insert(v)
        .clone()
}

impl PathSystemCache {
    /// An empty cache.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::PathSystemCache;
    /// let cache = PathSystemCache::new();
    /// assert_eq!(cache.stats().hits, 0);
    /// ```
    pub fn new() -> Self {
        PathSystemCache::default()
    }

    /// The built graph (plus lower-bound gadget metadata, when the
    /// topology has any) for `topo`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{PathSystemCache, TopologySpec};
    /// let cache = PathSystemCache::new();
    /// let g = cache.graph(&TopologySpec::Ring { n: 7 });
    /// assert_eq!(g.0.n(), 7);
    /// ```
    pub fn graph(&self, topo: &TopologySpec) -> SharedGraph {
        get_or_compute(&self.graphs, &self.hits, &self.misses, topo.clone(), || {
            Arc::new(topo.build())
        })
    }

    /// The built oblivious template for `(topo, template, seed)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{PathSystemCache, TemplateSpec, TopologySpec};
    /// let cache = PathSystemCache::new();
    /// let topo = TopologySpec::Hypercube { dim: 3 };
    /// let t = cache.template(&topo, &TemplateSpec::Valiant, 1);
    /// assert_eq!(t.graph().n(), 8);
    /// ```
    pub fn template(
        &self,
        topo: &TopologySpec,
        template: &TemplateSpec,
        seed: u64,
    ) -> SharedTemplate {
        let key = (topo.clone(), template.clone(), seed);
        get_or_compute(&self.templates, &self.hits, &self.misses, key, || {
            let g = self.graph(topo);
            template.build(topo, &g.0, seed)
        })
    }

    /// The sampled path system for `(topo, template, alpha, seed)`,
    /// computing it with `sample` on a miss.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_core::PathSystem;
    /// use ssor_engine::{PathSystemCache, TemplateSpec, TopologySpec};
    /// use std::sync::Arc;
    ///
    /// let cache = PathSystemCache::new();
    /// let topo = TopologySpec::Ring { n: 4 };
    /// let key_template = TemplateSpec::ShortestPath;
    /// let a = cache.paths(&topo, &key_template, 2, 0, || Arc::new(PathSystem::new()));
    /// let b = cache.paths(&topo, &key_template, 2, 0, || panic!("cached"));
    /// assert_eq!(a.total_paths(), b.total_paths());
    /// ```
    pub fn paths(
        &self,
        topo: &TopologySpec,
        template: &TemplateSpec,
        alpha: usize,
        seed: u64,
        sample: impl FnOnce() -> Arc<PathSystem>,
    ) -> Arc<PathSystem> {
        let key = (topo.clone(), template.clone(), alpha, seed);
        get_or_compute(&self.paths, &self.hits, &self.misses, key, sample)
    }

    /// Certified OPT bounds for `(topo, demand, solver options)`,
    /// computing with `solve` on a miss. Both `eps` (bit-exact) and
    /// `max_iters` enter the key, because a looser or shorter solve
    /// certifies looser bounds.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, OptBounds, PathSystemCache, TopologySpec};
    /// use ssor_flow::SolveOptions;
    ///
    /// let cache = PathSystemCache::new();
    /// let topo = TopologySpec::Ring { n: 6 };
    /// let spec = DemandSpec::Pairs(vec![(0, 3)]);
    /// let opts = SolveOptions::with_eps(0.1);
    /// let solve = || OptBounds { congestion: 0.5, lower_bound: 0.5 };
    /// let first = cache.opt_bounds(&topo, &spec, &opts, solve);
    /// let cached = cache.opt_bounds(&topo, &spec, &opts, || unreachable!());
    /// assert_eq!(first.congestion, cached.congestion);
    /// ```
    pub fn opt_bounds(
        &self,
        topo: &TopologySpec,
        demand: &DemandSpec,
        opts: &ssor_flow::SolveOptions,
        solve: impl FnOnce() -> OptBounds,
    ) -> OptBounds {
        let key = (
            topo.clone(),
            demand.clone(),
            opts.eps.to_bits(),
            opts.max_iters,
        );
        get_or_compute(&self.opt, &self.hits, &self.misses, key, solve)
    }

    /// Aggregate hit/miss counters over all four stores.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{PathSystemCache, TopologySpec};
    /// let cache = PathSystemCache::new();
    /// let topo = TopologySpec::Ring { n: 5 };
    /// cache.graph(&topo);
    /// cache.graph(&topo);
    /// assert_eq!(cache.stats(), ssor_engine::CacheStats { hits: 1, misses: 1 });
    /// ```
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TemplateSpec, TopologySpec};

    #[test]
    fn graphs_are_cached_per_spec() {
        let cache = PathSystemCache::new();
        let a = cache.graph(&TopologySpec::Hypercube { dim: 3 });
        let b = cache.graph(&TopologySpec::Hypercube { dim: 3 });
        assert!(Arc::ptr_eq(&a, &b), "same Arc returned");
        let c = cache.graph(&TopologySpec::Hypercube { dim: 4 });
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn template_seed_is_part_of_the_key() {
        let cache = PathSystemCache::new();
        let topo = TopologySpec::Grid { rows: 2, cols: 3 };
        let a = cache.template(&topo, &TemplateSpec::raecke(), 1);
        let b = cache.template(&topo, &TemplateSpec::raecke(), 2);
        let a2 = cache.template(&topo, &TemplateSpec::raecke(), 1);
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn alpha_distinguishes_path_keys() {
        let cache = PathSystemCache::new();
        let topo = TopologySpec::Ring { n: 4 };
        let t = TemplateSpec::ShortestPath;
        let mk = |n: usize| {
            move || {
                let mut ps = PathSystem::new();
                let g = ssor_graph::generators::ring(4);
                for i in 0..n as u32 {
                    ps.insert(ssor_graph::Path::from_vertices(&g, &[i, i + 1]).unwrap());
                }
                Arc::new(ps)
            }
        };
        let one = cache.paths(&topo, &t, 1, 0, mk(1));
        let two = cache.paths(&topo, &t, 2, 0, mk(2));
        assert_eq!(one.total_paths(), 1);
        assert_eq!(two.total_paths(), 2);
    }

    #[test]
    fn opt_bounds_key_on_eps_bits() {
        let cache = PathSystemCache::new();
        let topo = TopologySpec::Ring { n: 6 };
        let d = DemandSpec::Pairs(vec![(0, 2)]);
        let loose = ssor_flow::SolveOptions::with_eps(0.1);
        let tight = ssor_flow::SolveOptions::with_eps(0.05);
        let a = cache.opt_bounds(&topo, &d, &loose, || OptBounds {
            congestion: 1.0,
            lower_bound: 0.9,
        });
        let b = cache.opt_bounds(&topo, &d, &tight, || OptBounds {
            congestion: 1.0,
            lower_bound: 0.97,
        });
        assert!(a.lower_bound < b.lower_bound);
        let a2 = cache.opt_bounds(&topo, &d, &loose, || unreachable!("cached"));
        assert_eq!(a2.lower_bound, a.lower_bound);
        // Same eps but a longer solve is a different certificate.
        let longer = ssor_flow::SolveOptions {
            max_iters: loose.max_iters * 10,
            ..loose.clone()
        };
        let c = cache.opt_bounds(&topo, &d, &longer, || OptBounds {
            congestion: 1.0,
            lower_bound: 0.95,
        });
        assert!(c.lower_bound > a.lower_bound);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cache = PathSystemCache::new();
        let topo = TopologySpec::Ring { n: 3 };
        cache.graph(&topo);
        cache.graph(&topo);
        cache.graph(&topo);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }
}
