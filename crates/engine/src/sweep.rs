//! The work-stealing sweep scheduler: shards an arbitrary grid of
//! independent cells across workers with per-cell derived seeds, streams
//! finished cells through a bounded channel to an incremental journal,
//! and assembles a final JSON report that is **bit-identical** at every
//! thread count, under every steal order, and across crash/resume.
//!
//! The paper's experiments (and the dynamic scenarios layered on them)
//! are embarrassingly wide: thousands of independent
//! `(scenario × trial × α)` cells. Three properties make a sweep over
//! them trustworthy:
//!
//! 1. **Seed-by-identity, not by schedule.** Every cell's RNG stream is
//!    `ssor_graph::derive_seed(master_seed, cell.id)` — a pure function
//!    of the cell's identity. Which worker runs the cell, and when, can
//!    never change its result.
//! 2. **Order-free assembly.** Workers claim cells from an atomic
//!    counter (uneven cell costs still balance) and stream results to a
//!    single writer through a bounded channel; the final report sorts by
//!    cell id, so the steal order leaves no trace in the output bytes.
//! 3. **Crash-resumable journal.** Each finished cell is appended to the
//!    journal as one `<id>\t<compact-json>\n` line and flushed. A rerun
//!    reads the journal, skips every completed cell (keeping its
//!    journaled bytes verbatim), and computes only the remainder — the
//!    final JSON is byte-identical to an uninterrupted run. A line
//!    without a trailing newline (a mid-write kill) is ignored and its
//!    cell simply re-runs.
//!
//! The journal's *line order* reflects completion order and is therefore
//! not stable across runs; only the assembled report is. Since the
//! vendored `serde_json` shim is encode-only, resumed cells are carried
//! as raw journaled JSON strings — they are spliced into the report
//! byte-for-byte, never re-parsed.
//!
//! # Examples
//!
//! ```
//! use ssor_engine::sweep::{cells, run_sweep, SweepOptions};
//!
//! // 10 cells; each result is a pure function of (payload, cell seed).
//! let grid = cells((0..10u64).collect::<Vec<_>>());
//! let opts = SweepOptions::default().seed(42);
//! let one = run_sweep(&grid, &opts.clone().threads(1), |c, s| (c.payload, s % 97));
//! let four = run_sweep(&grid, &opts.threads(4), |c, s| (c.payload, s % 97));
//! assert_eq!(one.to_json_string(), four.to_json_string());
//! assert_eq!(one.executed, 10);
//! ```

use serde::Serialize;
use ssor_graph::derive_seed;
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;

/// One unit of sweep work: a stable identity plus an arbitrary payload
/// (a scenario, a trial index, an `α` value, a whole spec — whatever the
/// evaluator consumes).
///
/// The `id` is the cell's *identity*: it keys the derived seed, the
/// journal line, and the position in the final report. Ids must be
/// unique within a sweep but need not be dense or sorted — a resumed or
/// subsetted sweep passes whatever cells remain.
#[derive(Debug, Clone)]
pub struct SweepCell<C> {
    /// Stable identity of this cell (seed key + journal key + report
    /// sort key).
    pub id: u64,
    /// The work description the evaluator consumes.
    pub payload: C,
}

/// Wraps payloads into [`SweepCell`]s with dense ids `0..n` in input
/// order — the common case where the grid is materialized once.
///
/// # Examples
///
/// ```
/// use ssor_engine::sweep::cells;
/// let g = cells(vec!["a", "b"]);
/// assert_eq!((g[0].id, g[1].id), (0, 1));
/// ```
pub fn cells<C>(payloads: impl IntoIterator<Item = C>) -> Vec<SweepCell<C>> {
    payloads
        .into_iter()
        .enumerate()
        .map(|(i, payload)| SweepCell {
            id: i as u64,
            payload,
        })
        .collect()
}

/// One point of the canonical `(scenario × α × trial)` experiment grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The scenario this cell evaluates.
    pub scenario: crate::ScenarioSpec,
    /// The sparsity budget for this cell.
    pub alpha: usize,
    /// Trial index within `(scenario, alpha)`.
    pub trial: usize,
}

/// Materializes the full `(scenario × α × trial)` grid with dense ids,
/// scenarios outermost and trials innermost (the order every serial
/// experiment loop in `crates/bench` historically used).
///
/// # Examples
///
/// ```
/// use ssor_engine::sweep::grid;
/// use ssor_engine::ScenarioSpec;
///
/// let cells = grid(&[ScenarioSpec::HypercubeAdversarial { dim: 3 }], &[1, 2], 3);
/// assert_eq!(cells.len(), 6);
/// assert_eq!((cells[5].payload.alpha, cells[5].payload.trial), (2, 2));
/// ```
pub fn grid(
    scenarios: &[crate::ScenarioSpec],
    alphas: &[usize],
    trials: usize,
) -> Vec<SweepCell<GridCell>> {
    let mut out = Vec::with_capacity(scenarios.len() * alphas.len() * trials);
    for scenario in scenarios {
        for &alpha in alphas {
            for trial in 0..trials {
                out.push(SweepCell {
                    id: out.len() as u64,
                    payload: GridCell {
                        scenario: scenario.clone(),
                        alpha,
                        trial,
                    },
                });
            }
        }
    }
    out
}

/// Scheduler configuration for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Master seed: cell `i` evaluates under
    /// `ssor_graph::derive_seed(master_seed, i)`.
    pub master_seed: u64,
    /// Journal path for crash-resume. `None` disables journaling (the
    /// sweep still streams through the channel, results are only kept in
    /// memory).
    pub journal: Option<PathBuf>,
    /// Bound of the worker→writer channel: how many finished cells may
    /// be in flight before workers block on the journal writer.
    pub channel_capacity: usize,
    /// Worker count. `None` follows the ambient rayon setting
    /// (`RAYON_NUM_THREADS` / available parallelism); `Some(n)` pins it
    /// for this sweep regardless of the environment.
    pub threads: Option<usize>,
    /// Emit a progress line to stderr as each cell completes.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            master_seed: 0,
            journal: None,
            channel_capacity: 64,
            threads: None,
            progress: false,
        }
    }
}

impl SweepOptions {
    /// Sets the master seed.
    pub fn seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Enables journaling to `path`.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Pins the worker count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables per-cell progress lines on stderr.
    pub fn progress(mut self) -> Self {
        self.progress = true;
        self
    }
}

/// One cell's slot in a [`SweepOutcome`].
#[derive(Debug, Clone)]
pub struct CellRecord<R> {
    /// The cell's id.
    pub id: u64,
    /// The result as compact JSON — serialized now for fresh cells,
    /// journal bytes verbatim for resumed ones.
    pub json: String,
    /// The in-memory result; `None` iff the cell was resumed from the
    /// journal (the encode-only JSON shim cannot reconstruct it).
    pub result: Option<R>,
}

/// The result of [`run_sweep`]: every cell's record in **ascending id
/// order** (independent of input order and steal order), plus how the
/// work split between fresh execution and journal resume.
#[derive(Debug, Clone)]
pub struct SweepOutcome<R> {
    /// Per-cell records, ascending by id.
    pub records: Vec<CellRecord<R>>,
    /// Cells evaluated by this run.
    pub executed: usize,
    /// Cells answered verbatim from the journal.
    pub resumed: usize,
}

impl<R> SweepOutcome<R> {
    /// The assembled report: a JSON array of the per-cell results in
    /// ascending id order, one element per line. Byte-identical across
    /// thread counts, steal orders, input orders, and resume splits.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("[");
        for (i, rec) in self.records.iter().enumerate() {
            out.push_str(if i == 0 { "\n  " } else { ",\n  " });
            out.push_str(&rec.json);
        }
        if !self.records.is_empty() {
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Writes [`SweepOutcome::to_json_string`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

/// Reads a journal back as `id → compact JSON`. Missing file means an
/// empty journal; a final line without its trailing newline (a mid-write
/// kill) is dropped, so its cell re-runs on resume.
fn read_journal(path: &Path) -> HashMap<u64, String> {
    let mut done = HashMap::new();
    let Ok(bytes) = std::fs::read(path) else {
        return done;
    };
    let content = String::from_utf8_lossy(&bytes);
    for line in content.split_inclusive('\n') {
        let Some(line) = line.strip_suffix('\n') else {
            break; // torn tail line: incomplete, ignore
        };
        let Some((id, json)) = line.split_once('\t') else {
            continue;
        };
        let (Ok(id), false) = (id.parse::<u64>(), json.is_empty()) else {
            continue;
        };
        done.insert(id, json.to_string());
    }
    done
}

/// Appends one completed cell to the journal and flushes, so a kill
/// after this call never loses the cell.
fn append_journal(file: &mut File, id: u64, json: &str) {
    file.write_all(format!("{id}\t{json}\n").as_bytes())
        .expect("sweep journal write failed");
    file.flush().expect("sweep journal flush failed");
}

fn encode_cell<R: Serialize>(id: u64, result: &R) -> String {
    // An unserializable result (NaN/infinite float) is a bug in the
    // eval function, not a per-cell condition — the sweep must abort
    // loudly rather than journal garbage.
    serde_json::to_string(result)
        // lint: allow(hot_panic) unserializable results must abort the sweep
        .unwrap_or_else(|e| panic!("sweep cell {id} produced an unserializable result: {e}"))
}

/// Claims the next pending cell off the shared counter and evaluates
/// it — the sweep inner loop, shared verbatim by the serial and
/// threaded drivers so there is exactly one body to audit (and one
/// entry point for the hot-path contract in `lint_contracts.json`).
/// Returns `None` once the pending list is exhausted.
fn claim_and_eval<C, R, F>(
    counter: &AtomicUsize,
    pending: &[usize],
    cells: &[SweepCell<C>],
    master_seed: u64,
    eval: &F,
) -> Option<(u64, String, R)>
where
    R: Serialize,
    F: Fn(&SweepCell<C>, u64) -> R,
{
    let i = counter.fetch_add(1, Ordering::Relaxed);
    let cell = cells.get(*pending.get(i)?)?;
    let result = eval(cell, derive_seed(master_seed, cell.id));
    let json = encode_cell(cell.id, &result);
    Some((cell.id, json, result))
}

/// Runs `eval` over every cell not already journaled, work-stealing
/// across up to [`SweepOptions::threads`] workers, and returns the
/// merged outcome (fresh results + resumed journal entries) in ascending
/// id order.
///
/// `eval` receives the cell and its derived seed
/// `derive_seed(opts.master_seed, cell.id)`; as long as it is a pure
/// function of those two, the outcome is bit-identical at every worker
/// count and across any kill/resume split.
///
/// # Panics
///
/// Panics if cell ids collide, if a worker panics, or if a result fails
/// to serialize (the vendored shim rejects NaN/infinite floats).
pub fn run_sweep<C, R, F>(cells: &[SweepCell<C>], opts: &SweepOptions, eval: F) -> SweepOutcome<R>
where
    C: Sync,
    R: Send + Serialize,
    F: Fn(&SweepCell<C>, u64) -> R + Sync,
{
    let mut seen = HashSet::with_capacity(cells.len());
    for cell in cells {
        assert!(seen.insert(cell.id), "duplicate sweep cell id {}", cell.id);
    }
    let done = opts
        .journal
        .as_deref()
        .map(read_journal)
        .unwrap_or_default();
    let mut journal_file = opts.journal.as_deref().map(|p| {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
            .unwrap_or_else(|e| panic!("cannot open sweep journal {}: {e}", p.display()))
    });

    let pending: Vec<usize> = (0..cells.len())
        .filter(|&i| !done.contains_key(&cells[i].id))
        .collect();
    let total = pending.len();
    let threads = opts
        .threads
        .unwrap_or_else(rayon::current_num_threads)
        .clamp(1, total.max(1));

    let mut fresh: Vec<(u64, String, R)> = Vec::with_capacity(total);
    if threads <= 1 {
        let counter = AtomicUsize::new(0);
        while let Some((id, json, result)) =
            claim_and_eval(&counter, &pending, cells, opts.master_seed, &eval)
        {
            if let Some(f) = journal_file.as_mut() {
                append_journal(f, id, &json);
            }
            fresh.push((id, json, result));
            if opts.progress {
                eprintln!("[sweep] {}/{total} cells (id {id})", fresh.len());
            }
        }
    } else {
        let counter = AtomicUsize::new(0);
        let (tx, rx) = sync_channel::<(u64, String, R)>(opts.channel_capacity.max(1));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let tx = tx.clone();
                    let (counter, pending, eval) = (&counter, &pending, &eval);
                    let master = opts.master_seed;
                    scope.spawn(move || {
                        while let Some(out) = claim_and_eval(counter, pending, cells, master, eval)
                        {
                            // A closed channel means the writer stopped
                            // (another worker panicked); just wind down.
                            if tx.send(out).is_err() {
                                break;
                            }
                        }
                    })
                })
                .collect();
            drop(tx);
            // The scope's own thread is the single writer: it drains the
            // bounded channel, journaling each cell the moment it
            // finishes (completion order — only the final assembly is
            // order-canonical).
            while let Ok((id, json, result)) = rx.recv() {
                if let Some(f) = journal_file.as_mut() {
                    append_journal(f, id, &json);
                }
                fresh.push((id, json, result));
                if opts.progress {
                    eprintln!("[sweep] {}/{total} cells (id {id})", fresh.len());
                }
            }
            for h in handles {
                h.join().expect("sweep worker panicked");
            }
        });
    }

    let executed = fresh.len();
    let mut records: Vec<CellRecord<R>> = fresh
        .into_iter()
        .map(|(id, json, result)| CellRecord {
            id,
            json,
            result: Some(result),
        })
        .collect();
    let mut resumed = 0;
    for cell in cells {
        if let Some(json) = done.get(&cell.id) {
            resumed += 1;
            records.push(CellRecord {
                id: cell.id,
                json: json.clone(),
                result: None,
            });
        }
    }
    records.sort_by_key(|r| r.id);
    SweepOutcome {
        records,
        executed,
        resumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Serialize)]
    struct Out {
        id: u64,
        seed: u64,
    }

    fn eval_cell(c: &SweepCell<u64>, s: u64) -> Out {
        Out {
            id: c.id ^ c.payload,
            seed: s,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ssor_sweep_{}_{}_{name}.journal",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn thread_count_leaves_no_trace_in_the_report() {
        let grid = cells((0..64u64).map(|x| x * 3).collect::<Vec<_>>());
        let base = run_sweep(
            &grid,
            &SweepOptions::default().seed(7).threads(1),
            eval_cell,
        );
        for threads in [2, 4, 8] {
            let got = run_sweep(
                &grid,
                &SweepOptions::default().seed(7).threads(threads),
                eval_cell,
            );
            assert_eq!(base.to_json_string(), got.to_json_string());
            assert_eq!(got.executed, 64);
            assert_eq!(got.resumed, 0);
        }
    }

    #[test]
    fn input_order_leaves_no_trace_in_the_report() {
        let grid = cells((0..16u64).collect::<Vec<_>>());
        let mut reversed = grid.clone();
        reversed.reverse();
        let a = run_sweep(&grid, &SweepOptions::default().threads(2), eval_cell);
        let b = run_sweep(&reversed, &SweepOptions::default().threads(2), eval_cell);
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn resume_skips_journaled_cells_and_matches_uninterrupted_bytes() {
        let grid = cells((0..20u64).collect::<Vec<_>>());
        let uninterrupted = run_sweep(&grid, &SweepOptions::default().threads(1), eval_cell);

        let path = tmp("resume");
        // "Crash" after the first 8 cells: run only a prefix.
        let first = run_sweep(
            &grid[..8],
            &SweepOptions::default().journal(&path),
            eval_cell,
        );
        assert_eq!((first.executed, first.resumed), (8, 0));
        let second = run_sweep(&grid, &SweepOptions::default().journal(&path), eval_cell);
        assert_eq!((second.executed, second.resumed), (12, 8));
        assert_eq!(second.to_json_string(), uninterrupted.to_json_string());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_line_is_ignored_and_reruns() {
        let grid = cells((0..6u64).collect::<Vec<_>>());
        let path = tmp("torn");
        run_sweep(&grid, &SweepOptions::default().journal(&path), eval_cell);
        // Tear the last line's newline off: that cell must re-run.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 1);
        std::fs::write(&path, &bytes).unwrap();
        let resumed = run_sweep(&grid, &SweepOptions::default().journal(&path), eval_cell);
        assert_eq!((resumed.executed, resumed.resumed), (1, 5));
        let clean = run_sweep(&grid, &SweepOptions::default(), eval_cell);
        assert_eq!(resumed.to_json_string(), clean.to_json_string());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_grid_produces_the_empty_report() {
        let grid: Vec<SweepCell<u64>> = Vec::new();
        let out = run_sweep(&grid, &SweepOptions::default(), eval_cell);
        assert_eq!(out.to_json_string(), "[]\n");
        assert_eq!((out.executed, out.resumed), (0, 0));
    }

    #[test]
    #[should_panic(expected = "duplicate sweep cell id")]
    fn duplicate_ids_are_rejected() {
        let grid = vec![
            SweepCell {
                id: 3,
                payload: 0u64,
            },
            SweepCell {
                id: 3,
                payload: 1u64,
            },
        ];
        run_sweep(&grid, &SweepOptions::default(), eval_cell);
    }
}
