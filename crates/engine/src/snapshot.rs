//! Serving snapshots: flattening a template into an immutable
//! [`RouteTable`].
//!
//! The query plane (`ssor-serve`) never touches a template object — it
//! reads a [`RouteTable`]: every pair's path distribution flattened into
//! contiguous buffers (one shared [`PathStore`](ssor_graph::PathStore)
//! arena, per-pair `PathId` ranges, precomputed sampling CDFs). This
//! module is the bridge from the engine's stage-2 output to that
//! snapshot: [`route_table_from_template`] evaluates
//! [`ObliviousRouting::path_distribution`] for every requested pair —
//! rayon-parallel across pairs, bit-identical at any thread count — and
//! interns the results through a [`RouteTableBuilder`].

use ssor_core::sample::all_pairs;
use ssor_graph::{par_ordered_map, RouteTable, RouteTableBuilder, VertexId};
use ssor_oblivious::ObliviousRouting;

/// Below this many pairs the distribution fan-out stays serial (the
/// vendored rayon shim spawns threads per call); wall-clock only — the
/// flattening is order-preserving either way.
const SNAPSHOT_PAR_MIN_PAIRS: usize = 32;

/// Flattens `template`'s per-pair path distributions into a
/// [`RouteTable`] snapshot stamped with `generation`.
///
/// `pairs` must be sorted lexicographically with distinct endpoints (the
/// order [`all_pairs`] produces); the builder rejects anything else. The
/// per-pair distributions are evaluated in parallel across rayon workers
/// and pushed in pair order, so the table — arena layout, CDFs, all of
/// it — is a deterministic function of `(template, pairs, generation)`,
/// independent of thread count.
///
/// # Panics
///
/// Panics if `pairs` is not strictly increasing, has an `s == t` entry,
/// or if some distribution is empty/non-finite (the builder validates
/// every weight).
///
/// # Examples
///
/// ```
/// use ssor_engine::route_table_from_template;
/// use ssor_core::sample::all_pairs;
/// use ssor_oblivious::ValiantRouting;
///
/// let r = ValiantRouting::new(3);
/// let table = route_table_from_template(&r, &all_pairs(8), 7);
/// assert_eq!(table.generation(), 7);
/// assert_eq!(table.pair_count(), 56);
/// ```
pub fn route_table_from_template<O: ObliviousRouting + Sync + ?Sized>(
    template: &O,
    pairs: &[(VertexId, VertexId)],
    generation: u64,
) -> RouteTable {
    let n = template.graph().n();
    let dists = par_ordered_map(pairs, SNAPSHOT_PAR_MIN_PAIRS, |&(s, t)| {
        template.path_distribution(s, t)
    });
    let mut builder = RouteTableBuilder::new(n, generation);
    for (&(s, t), dist) in pairs.iter().zip(dists.iter()) {
        builder.push_pair(s, t, dist);
    }
    builder.finish()
}

/// [`route_table_from_template`] over every ordered pair `s != t` — the
/// all-pairs snapshot a serving front-end answers arbitrary queries from.
pub fn route_table_all_pairs<O: ObliviousRouting + Sync + ?Sized>(
    template: &O,
    generation: u64,
) -> RouteTable {
    route_table_from_template(template, &all_pairs(template.graph().n()), generation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TemplateSpec, TopologySpec};
    use crate::{PathSystemCache, Pipeline};
    use ssor_oblivious::ValiantRouting;

    #[test]
    fn flattening_preserves_every_distribution() {
        let r = ValiantRouting::new(3);
        let table = route_table_all_pairs(&r, 1);
        assert_eq!(table.n(), 8);
        assert_eq!(table.pair_count(), 56);
        for &(s, t) in &all_pairs(8) {
            let dist = r.path_distribution(s, t);
            let ids = table.path_ids(s, t).expect("pair present");
            assert_eq!(ids.len(), dist.len());
            let cdf = table.cdf(s, t).unwrap();
            // path_distribution sums to 1; the CDF ends within float dust
            // of it and is non-decreasing.
            let last = *cdf.last().unwrap();
            assert!((last - 1.0).abs() < 1e-9, "cdf ends at {last}");
            assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
            // Each flattened entry is the same path, via the arena.
            for (id, (p, _)) in ids.iter().zip(dist.iter()) {
                assert_eq!(&table.store().materialize(*id), p);
            }
        }
    }

    #[test]
    fn snapshot_is_deterministic() {
        let cache = PathSystemCache::new();
        let t = cache.template(
            &TopologySpec::Grid { rows: 3, cols: 3 },
            &TemplateSpec::FrtEnsemble { trees: 4 },
            3,
        );
        let a = route_table_all_pairs(t.as_ref(), 5);
        let b = route_table_all_pairs(t.as_ref(), 5);
        assert_eq!(a.generation(), b.generation());
        assert_eq!(a.total_path_refs(), b.total_path_refs());
        for &(s, t) in &all_pairs(9) {
            assert_eq!(a.path_ids(s, t), b.path_ids(s, t));
            assert_eq!(a.cdf(s, t), b.cdf(s, t));
        }
    }

    #[test]
    fn prepared_pipeline_exports_a_route_table() {
        let cache = PathSystemCache::new();
        let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
            .template(TemplateSpec::Valiant)
            .alpha(2)
            .prepare(&cache);
        let table = p.route_table(9).expect("congestion objective");
        assert_eq!(table.generation(), 9);
        assert_eq!(table.pair_count(), 56);
        assert!(table.flat_bytes() > 0);
    }
}
