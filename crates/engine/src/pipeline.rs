//! The five-stage pipeline, as one builder.
//!
//! Stage 1 builds the topology, stage 2 builds the oblivious template,
//! stage 3 `α`-samples a path system (parallel across pairs, memoized in a
//! [`PathSystemCache`]), stage 4 adapts rates per demand (parallel across
//! the demand batch), and stage 5 optionally rounds and packet-simulates
//! the result. Every experiment in `crates/bench` is a configuration of
//! this type; none of them hand-roll the stage plumbing anymore.

use crate::cache::{
    OptBounds, PathSystemCache, SharedTemplate, TemplateBuildStats, TemplateBuilder,
};
use crate::sampling::{mix, par_alpha_sample};
use crate::spec::{DemandSpec, ResolveCtx, StreamModel, TemplateSpec, TopologySpec};
use crate::stream::{FailureSweepReport, FailureTrial, StreamReport, StreamStep};
use crate::sweep::{self, SweepOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssor_core::completion::{CompletionOptions, CompletionTimeRouter, ScaleGrowth};
use ssor_core::sample::all_pairs;
use ssor_core::{PathSystem, SemiObliviousRouter};
use ssor_flow::oracle::CandidateOracle;
use ssor_flow::rounding::round_routing;
use ssor_flow::solver::{
    min_congestion_masked, min_congestion_restricted, min_congestion_unrestricted, DemandDelta,
    Solver,
};
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::{derive_seed, par_ordered_map, EdgeId, Graph, SubTopology};
use ssor_lowerbound::graphs::CGraphMeta;
use ssor_sim::{simulate_routing, SimConfig};
use std::sync::Arc;
use std::time::Instant;

/// What stage 4 optimizes.
///
/// # Examples
///
/// ```
/// use ssor_core::completion::ScaleGrowth;
/// use ssor_engine::Objective;
///
/// let a = Objective::Congestion;
/// let b = Objective::CompletionTime { growth: ScaleGrowth::Log };
/// assert_ne!(format!("{a:?}"), format!("{b:?}"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize congestion only (the paper's main setting, Sections 5–6).
    Congestion,
    /// Minimize `congestion + dilation` via the Section 7 hop-scale
    /// ladder. The ladder samples its own hop-constrained routings, so
    /// the pipeline's [`crate::TemplateSpec`] is not consulted under
    /// this objective.
    CompletionTime {
        /// How the hop-scale ladder grows.
        growth: ScaleGrowth,
    },
}

/// One demand's evaluation (one row of a [`RunReport`]).
///
/// # Examples
///
/// ```
/// use ssor_engine::{Pipeline, ScenarioSpec};
///
/// let report = ScenarioSpec::HypercubeAdversarial { dim: 3 }
///     .pipeline()
///     .alpha(2)
///     .run(&Default::default());
/// let rec = &report.records[0];
/// assert_eq!(rec.name, "bit-reversal");
/// assert!(rec.congestion > 0.0);
/// assert!(rec.ratio.unwrap() >= 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// The demand's name in the batch.
    pub name: String,
    /// The sparsity budget the path system was sampled at.
    pub alpha: usize,
    /// Congestion achieved by the pipeline's routing.
    pub congestion: f64,
    /// Dilation (max hops) of the routing on this demand.
    pub dilation: usize,
    /// Certified lower bound on the offline optimum (congestion
    /// objective only).
    pub opt_lower_bound: Option<f64>,
    /// Primal offline-optimum value (upper bound on OPT).
    pub opt_upper_bound: Option<f64>,
    /// `congestion / opt_lower_bound`: an upper bound on the true
    /// competitive ratio.
    pub ratio: Option<f64>,
    /// Makespan of the packet simulation, when stage 5 ran.
    pub makespan: Option<usize>,
    /// Whether the stage-4 solve certified its target gap (`None` under
    /// [`Objective::CompletionTime`], which aggregates many solves).
    pub converged: Option<bool>,
    /// Where the stage-4 solve spent its work (`None` under
    /// [`Objective::CompletionTime`]).
    pub stats: Option<ssor_flow::SolverStats>,
}

impl EvalRecord {
    /// The `congestion + dilation` objective value.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::EvalRecord;
    /// let rec = EvalRecord {
    ///     name: "x".into(), alpha: 2, congestion: 1.5, dilation: 3,
    ///     opt_lower_bound: None, opt_upper_bound: None, ratio: None,
    ///     makespan: None, converged: None, stats: None,
    /// };
    /// assert_eq!(rec.objective(), 4.5);
    /// ```
    pub fn objective(&self) -> f64 {
        self.congestion + self.dilation as f64
    }
}

/// The result of [`Pipeline::run`]: one [`EvalRecord`] per demand, in
/// batch order, plus the wall-clock the run took.
///
/// # Examples
///
/// ```
/// use ssor_engine::{Pipeline, ScenarioSpec};
///
/// let report = ScenarioSpec::HypercubeAdversarial { dim: 3 }
///     .pipeline()
///     .alpha(2)
///     .run(&Default::default());
/// assert_eq!(report.records.len(), 2);
/// assert!(report.wall.as_nanos() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-demand evaluations, in the order the demands were added.
    pub records: Vec<EvalRecord>,
    /// Wall-clock duration of the whole run.
    pub wall: std::time::Duration,
    /// What the stage-2 template build cost (and whether the cache
    /// shared it); `None` under [`Objective::CompletionTime`], which
    /// builds no template.
    pub template: Option<TemplateBuildStats>,
}

impl RunReport {
    /// Geometric mean of the competitive ratios (demands without a ratio
    /// are skipped); `None` if no record has one.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, ScenarioSpec};
    ///
    /// let report = ScenarioSpec::HypercubeAdversarial { dim: 3 }
    ///     .pipeline()
    ///     .alpha(3)
    ///     .run(&Default::default());
    /// assert!(report.mean_ratio().unwrap() >= 0.9);
    /// ```
    pub fn mean_ratio(&self) -> Option<f64> {
        let ratios: Vec<f64> = self.records.iter().filter_map(|r| r.ratio).collect();
        if ratios.is_empty() {
            None
        } else {
            Some((ratios.iter().map(|x| x.ln()).sum::<f64>() / ratios.len() as f64).exp())
        }
    }

    /// Worst (largest) competitive ratio; `None` if no record has one.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, ScenarioSpec};
    ///
    /// let report = ScenarioSpec::HypercubeAdversarial { dim: 3 }
    ///     .pipeline()
    ///     .alpha(3)
    ///     .run(&Default::default());
    /// assert!(report.worst_ratio() >= report.mean_ratio());
    /// ```
    pub fn worst_ratio(&self) -> Option<f64> {
        self.records
            .iter()
            .filter_map(|r| r.ratio)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

/// The five-stage pipeline builder.
///
/// A `Pipeline` is a pure description — building one does no work.
/// [`Pipeline::prepare`] executes stages 1–3 (graph, template, sampling)
/// through the cache; [`Pipeline::run`] additionally evaluates the demand
/// batch (stages 4–5) with rayon parallelism across demands.
///
/// # Examples
///
/// ```
/// use ssor_engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
///
/// let cache = PathSystemCache::new();
/// let report = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
///     .template(TemplateSpec::Valiant)
///     .alpha(3)
///     .seed(2023)
///     .demand("bit-reversal", DemandSpec::BitReversal)
///     .run(&cache);
/// let rec = &report.records[0];
/// assert!(rec.ratio.unwrap() < 8.0, "a few random paths already do well");
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    topology: TopologySpec,
    template: TemplateSpec,
    alpha: usize,
    seed: u64,
    solve: SolveOptions,
    demands: Vec<(String, DemandSpec)>,
    objective: Objective,
    simulate: Option<SimConfig>,
    compute_opt: bool,
}

impl Pipeline {
    /// Starts a pipeline on the given topology, with engine defaults:
    /// Räcke template, `α = 4`, seed 0, solver `eps = 0.05`, congestion
    /// objective, OPT baselines on, no simulation, empty demand batch.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Grid { rows: 3, cols: 3 });
    /// assert_eq!(p.alpha_value(), 4);
    /// ```
    pub fn on(topology: TopologySpec) -> Pipeline {
        Pipeline {
            topology,
            template: TemplateSpec::raecke(),
            alpha: 4,
            seed: 0,
            solve: SolveOptions::with_eps(0.05),
            demands: Vec::new(),
            objective: Objective::Congestion,
            simulate: None,
            compute_opt: true,
        }
    }

    /// Sets the oblivious template (stage 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TemplateSpec, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Hypercube { dim: 4 })
    ///     .template(TemplateSpec::Valiant);
    /// assert!(format!("{p:?}").contains("Valiant"));
    /// ```
    pub fn template(mut self, template: TemplateSpec) -> Pipeline {
        self.template = template;
        self
    }

    /// Replaces the topology (stage 1) on an existing description — the
    /// churn hook: a serving rebuild loop holds one base pipeline and
    /// rotates topologies (or seeds) across generations without
    /// re-stating the rest of the configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TopologySpec};
    /// let base = Pipeline::on(TopologySpec::Ring { n: 8 }).alpha(3);
    /// let p = base.clone().with_topology(TopologySpec::Ring { n: 10 });
    /// assert_eq!(p.prepare(&Default::default()).graph().n(), 10);
    /// ```
    pub fn with_topology(mut self, topology: TopologySpec) -> Pipeline {
        self.topology = topology;
        self
    }

    /// Sets the sparsity budget `α` (stage 3).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Ring { n: 8 }).alpha(7);
    /// assert_eq!(p.alpha_value(), 7);
    /// ```
    pub fn alpha(mut self, alpha: usize) -> Pipeline {
        self.alpha = alpha;
        self
    }

    /// Sets the run seed (drives template construction and sampling).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TopologySpec};
    /// let _p = Pipeline::on(TopologySpec::Ring { n: 8 }).seed(99);
    /// ```
    pub fn seed(mut self, seed: u64) -> Pipeline {
        self.seed = seed;
        self
    }

    /// Sets the stage-4 solver options.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TopologySpec};
    /// use ssor_flow::SolveOptions;
    /// let _p = Pipeline::on(TopologySpec::Ring { n: 8 })
    ///     .solve_options(SolveOptions::with_eps(0.1));
    /// ```
    pub fn solve_options(mut self, solve: SolveOptions) -> Pipeline {
        self.solve = solve;
        self
    }

    /// Appends one named demand to the batch.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, Pipeline, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Ring { n: 8 })
    ///     .demand("a", DemandSpec::Pairs(vec![(0, 4)]))
    ///     .demand("b", DemandSpec::Pairs(vec![(1, 5)]));
    /// assert_eq!(p.demand_count(), 2);
    /// ```
    pub fn demand(mut self, name: impl Into<String>, spec: DemandSpec) -> Pipeline {
        self.demands.push((name.into(), spec));
        self
    }

    /// Replaces the demand batch.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, Pipeline, TopologySpec};
    /// let batch = vec![("x".to_string(), DemandSpec::Pairs(vec![(0, 3)]))];
    /// let p = Pipeline::on(TopologySpec::Ring { n: 8 }).demands(batch);
    /// assert_eq!(p.demand_count(), 1);
    /// ```
    pub fn demands(mut self, demands: Vec<(String, DemandSpec)>) -> Pipeline {
        self.demands = demands;
        self
    }

    /// Switches the stage-4 objective.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_core::completion::ScaleGrowth;
    /// use ssor_engine::{Objective, Pipeline, TopologySpec};
    /// let _p = Pipeline::on(TopologySpec::Ring { n: 8 })
    ///     .objective(Objective::CompletionTime { growth: ScaleGrowth::Log });
    /// ```
    pub fn objective(mut self, objective: Objective) -> Pipeline {
        self.objective = objective;
        self
    }

    /// Enables stage 5: round each demand's routing and packet-simulate
    /// it (integral demands only; non-integral demands skip simulation).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, Pipeline, TopologySpec};
    /// use ssor_sim::SimConfig;
    ///
    /// let report = Pipeline::on(TopologySpec::Ring { n: 6 })
    ///     .alpha(2)
    ///     .demand("one-pair", DemandSpec::Pairs(vec![(0, 3)]))
    ///     .simulate(SimConfig::default())
    ///     .run(&Default::default());
    /// assert!(report.records[0].makespan.unwrap() >= 3);
    /// ```
    pub fn simulate(mut self, config: SimConfig) -> Pipeline {
        self.simulate = Some(config);
        self
    }

    /// Disables the unrestricted-OPT baseline (records get no `ratio`);
    /// useful when only absolute congestion matters.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, Pipeline, TemplateSpec, TopologySpec};
    ///
    /// let report = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(2)
    ///     .demand("d", DemandSpec::BitReversal)
    ///     .without_opt()
    ///     .run(&Default::default());
    /// assert!(report.records[0].ratio.is_none());
    /// ```
    pub fn without_opt(mut self) -> Pipeline {
        self.compute_opt = false;
        self
    }

    /// The configured sparsity budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TopologySpec};
    /// assert_eq!(Pipeline::on(TopologySpec::Ring { n: 4 }).alpha_value(), 4);
    /// ```
    pub fn alpha_value(&self) -> usize {
        self.alpha
    }

    /// The number of demands currently in the batch.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TopologySpec};
    /// assert_eq!(Pipeline::on(TopologySpec::Ring { n: 4 }).demand_count(), 0);
    /// ```
    pub fn demand_count(&self) -> usize {
        self.demands.len()
    }

    /// Executes stages 1–3 through `cache`: builds (or fetches) the
    /// graph and template, samples (or fetches) the path system, and
    /// wraps them in a ready-to-route [`PreparedPipeline`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
    ///
    /// let cache = PathSystemCache::new();
    /// let prepared = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(2)
    ///     .prepare(&cache);
    /// assert_eq!(prepared.paths().len(), 56, "all ordered pairs covered");
    /// ```
    pub fn prepare(&self, cache: &PathSystemCache) -> PreparedPipeline {
        let graph_and_meta = cache.graph(&self.topology);
        match self.objective {
            Objective::Congestion => {
                let (template, template_stats) =
                    TemplateBuilder::new(cache).build(&self.topology, &self.template, self.seed);
                let paths = cache.paths(
                    &self.topology,
                    &self.template,
                    self.alpha,
                    self.seed,
                    || {
                        let n = graph_and_meta.0.n();
                        Arc::new(par_alpha_sample(
                            template.as_ref(),
                            &all_pairs(n),
                            self.alpha,
                            self.seed,
                        ))
                    },
                );
                let router = PreparedRouter::Semi(SemiObliviousRouter::new(
                    graph_and_meta.0.clone(),
                    (*paths).clone(),
                ));
                PreparedPipeline {
                    pipeline: self.clone(),
                    graph_and_meta,
                    template: Some(template),
                    template_stats: Some(template_stats),
                    paths,
                    router,
                }
            }
            // The Section 7 ladder builds its own per-hop-scale routings
            // and samples internally, so the configured template and the
            // congestion-objective path sample are not consulted at all —
            // skip both rather than compute and discard them.
            Objective::CompletionTime { growth } => {
                let opts = CompletionOptions {
                    alpha: self.alpha,
                    growth,
                    ..Default::default()
                };
                let mut rng = StdRng::seed_from_u64(self.seed);
                let n = graph_and_meta.0.n();
                let comp =
                    CompletionTimeRouter::build(&graph_and_meta.0, &all_pairs(n), &opts, &mut rng);
                let paths = Arc::new(comp.path_system().clone());
                PreparedPipeline {
                    pipeline: self.clone(),
                    graph_and_meta,
                    template: None,
                    template_stats: None,
                    paths,
                    router: PreparedRouter::Completion(comp),
                }
            }
        }
    }

    /// Runs the whole pipeline: stages 1–3 via [`Pipeline::prepare`],
    /// then stages 4–5 for every demand in the batch, in parallel across
    /// demands.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
    ///
    /// let cache = PathSystemCache::new();
    /// let base = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .demand("bit-reversal", DemandSpec::BitReversal);
    /// // Sweeping alpha reuses the cached graph, template, and OPT.
    /// let r1 = base.clone().alpha(1).run(&cache);
    /// let r4 = base.clone().alpha(4).run(&cache);
    /// assert!(r4.records[0].congestion <= r1.records[0].congestion * 1.1 + 1e-6);
    /// ```
    pub fn run(&self, cache: &PathSystemCache) -> RunReport {
        // Diagnostics-only wall clock: RunReport.wall stays out of the
        // canonical report body (see report_json). lint: allow(wall_clock)
        let start = Instant::now();
        let prepared = self.prepare(cache);
        let records = prepared.evaluate_batch(cache, &self.demands);
        RunReport {
            records,
            wall: start.elapsed(),
            template: prepared.template_stats(),
        }
    }

    /// The stream stage: routes a `steps`-long demand sequence from
    /// `model` through the pipeline's (cached) path system with
    /// **warm-started** incremental solves — each step re-solves from the
    /// previous step's flow instead of from scratch. Unless
    /// [`Pipeline::without_opt`] was set, every step also runs the
    /// cold-solve oracle on the same restricted problem and reports the
    /// warm/cold congestion ratio (≈1 certifies that warm starts lose no
    /// quality).
    ///
    /// When [`Pipeline::simulate`] is enabled, integral steps are
    /// additionally rounded and packet-simulated.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, StreamModel, TemplateSpec, TopologySpec};
    ///
    /// let model = StreamModel::BurstyOnOff {
    ///     pairs: 5,
    ///     rate: 1.0.into(),
    ///     p_on: 0.5.into(),
    ///     p_off: 0.3.into(),
    ///     seed: 2,
    /// };
    /// let report = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(2)
    ///     .stream(&Default::default(), 4, &model);
    /// assert_eq!(report.steps.len(), 4);
    /// assert!(report.worst_vs_cold().unwrap() < 1.2);
    /// ```
    pub fn stream(
        &self,
        cache: &PathSystemCache,
        steps: usize,
        model: &StreamModel,
    ) -> StreamReport {
        self.stream_impl(cache, steps, model, true)
    }

    /// The all-cold baseline of [`Pipeline::stream`]: the identical
    /// demand sequence, every step solved from scratch, no ratio columns.
    /// Benchmarks time this against the warm variant.
    pub fn stream_cold(
        &self,
        cache: &PathSystemCache,
        steps: usize,
        model: &StreamModel,
    ) -> StreamReport {
        self.stream_impl(cache, steps, model, false)
    }

    fn stream_impl(
        &self,
        cache: &PathSystemCache,
        steps: usize,
        model: &StreamModel,
        warm: bool,
    ) -> StreamReport {
        let prepared = self.prepare(cache);
        let g = prepared.graph();
        let demands = model.sequence(g.n(), steps);
        // Diagnostics-only wall clock for StreamReport. lint: allow(wall_clock)
        let start = Instant::now();
        let mut warm_sol = Solver::new(g);
        let mut records = Vec::with_capacity(steps);
        for (step, d) in demands.into_iter().enumerate() {
            let sol = if warm {
                let mut oracle = CandidateOracle::new(prepared.paths().candidates());
                warm_sol.resolve(g, DemandDelta::Replace(d.clone()), &mut oracle, &self.solve)
            } else {
                min_congestion_restricted(g, &d, prepared.paths().candidates(), &self.solve)
            };
            let cold = (warm && self.compute_opt).then(|| {
                min_congestion_restricted(g, &d, prepared.paths().candidates(), &self.solve)
            });
            let vs_cold = cold.as_ref().map(|c| {
                if c.congestion > 0.0 {
                    sol.congestion / c.congestion
                } else {
                    1.0
                }
            });
            let makespan = self.simulate.as_ref().and_then(|cfg| {
                if d.is_empty() || !d.is_integral() {
                    return None;
                }
                // Per-step streams via the shared `derive_seed` helper —
                // the same derivation the failure sweep and the sweep
                // scheduler use. Stream-compat note: this replaced an
                // ad-hoc `seed ^ TAG ^ mix(step)` XOR composition, so
                // makespans differ from pre-sweep-layer runs; nothing
                // golden pins the old stream (makespans are seed-local
                // quantities), and congestion records are unaffected.
                let mut rng =
                    StdRng::seed_from_u64(derive_seed(self.seed ^ SIM_STREAM_TAG, step as u64));
                let rounded = round_routing(g, &sol.routing, &d, 16, &mut rng);
                let cfg = cfg.with_seed(derive_seed(cfg.seed, step as u64));
                Some(simulate_routing(g, &rounded.routing, &cfg).makespan)
            });
            records.push(StreamStep {
                step,
                size: d.size(),
                congestion: sol.congestion,
                lower_bound: sol.lower_bound,
                iterations: sol.iterations,
                converged: sol.converged,
                cold_congestion: cold.as_ref().map(|c| c.congestion),
                cold_iterations: cold.as_ref().map(|c| c.iterations),
                vs_cold,
                makespan,
            });
        }
        StreamReport {
            steps: records,
            wall: start.elapsed(),
            template: prepared.template_stats(),
        }
    }

    /// The failure-sweep stage: `trials` independent trials, each
    /// knocking `k_failures` random edges out of the topology through a
    /// [`SubTopology`] mask (derived-seed retries keep the damaged
    /// topology connected when possible), dropping candidate paths that
    /// cross dead edges, and re-routing every base demand on the
    /// survivors with a **warm-started** solve seeded from the intact
    /// topology's solution. Unless [`Pipeline::without_opt`] was set,
    /// each record also carries a cold restricted solve on the same
    /// survivors plus the certified optimum of the *damaged* topology
    /// (masked all-paths solve) and the resulting ratio.
    ///
    /// The intact-topology template (and its sampled path system) is
    /// built **once** through the cache and shared by every trial —
    /// failures mask edges and drop candidate paths, they never rebuild
    /// templates. The report's
    /// [`template`](crate::FailureSweepReport::template) stats record
    /// that single build (or cache share).
    ///
    /// # Panics
    ///
    /// Panics if the demand batch is empty or `k_failures >= m`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, Pipeline, TemplateSpec, TopologySpec};
    ///
    /// let report = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(3)
    ///     .demand("complement", DemandSpec::Complement)
    ///     .failure_sweep(&Default::default(), 2, 3);
    /// assert_eq!(report.trials.len(), 3);
    /// assert!(report.mean_coverage() > 0.5);
    /// ```
    pub fn failure_sweep(
        &self,
        cache: &PathSystemCache,
        k_failures: usize,
        trials: usize,
    ) -> FailureSweepReport {
        self.failure_sweep_sharded(cache, k_failures, trials, None)
    }

    /// [`Pipeline::failure_sweep`] with an explicit worker count: the
    /// trials are sharded across the [`crate::sweep`] scheduler (each
    /// trial is one cell), `threads = None` follows the ambient rayon
    /// setting and `Some(n)` pins it for this sweep. Because every
    /// trial's RNG stream is derived from `(seed, trial, attempt)` alone
    /// and records are assembled in trial order, the report is
    /// bit-identical at every worker count — and to the serial
    /// implementation this rewires.
    pub fn failure_sweep_sharded(
        &self,
        cache: &PathSystemCache,
        k_failures: usize,
        trials: usize,
        threads: Option<usize>,
    ) -> FailureSweepReport {
        // Diagnostics-only wall clock for FailureSweepReport. lint: allow(wall_clock)
        let start = Instant::now();
        let prepared = self.prepare(cache);
        let g = prepared.graph();
        assert!(
            k_failures < g.m(),
            "cannot fail {k_failures} of {} edges",
            g.m()
        );
        assert!(
            !self.demands.is_empty(),
            "failure sweep needs at least one demand in the batch"
        );
        let demands: Vec<(String, Demand)> = self
            .demands
            .iter()
            .map(|(name, spec)| (name.clone(), prepared.resolve(spec)))
            .collect();
        // One warm base solver per demand on the intact topology; every
        // trial clones it, invalidates the dead edges, and re-solves.
        let base_warm: Vec<Solver> = demands
            .iter()
            .map(|(_, d)| {
                let mut oracle = CandidateOracle::new(prepared.paths().candidates());
                Solver::solve(g, d, &mut oracle, &self.solve)
            })
            .collect();
        // Each trial is one sweep cell over the shared read-only context
        // (path system, resolved demands, warm base solvers). The cell
        // seed the scheduler derives is unused: the trial streams keep
        // their own `derive_seed`-based derivation (see
        // `draw_failures`), unchanged from the serial implementation.
        let cells = sweep::cells(0..trials);
        let opts = SweepOptions {
            master_seed: self.seed,
            threads,
            ..SweepOptions::default()
        };
        let outcome = sweep::run_sweep(&cells, &opts, |cell, _cell_seed| {
            let trial = cell.payload;
            let mut sub = g.sub_topology();
            let (dead, attempts) = self.draw_failures(&mut sub, k_failures, trial);
            let mut survivors = prepared.paths().clone();
            for &e in &dead {
                survivors.remove_paths_through(e);
            }
            let usable = sub.usable_edges();
            let mut records = Vec::with_capacity(demands.len());
            for ((name, d), warm0) in demands.iter().zip(base_warm.iter()) {
                let covered = d.filtered(|s, t, _| survivors.covers_pair(s, t));
                let coverage = if d.support_len() == 0 {
                    1.0
                } else {
                    covered.support_len() as f64 / d.support_len() as f64
                };
                // Demand mass with no surviving candidate path; solves
                // below may add to it (a pair the mask itself
                // disconnects is dropped by the solver and reported
                // rather than panicking mid-trial).
                let mut stranded = d.size() - covered.size();
                let (congestion, iterations, cold_congestion) = if covered.is_empty() {
                    (None, 0, None)
                } else {
                    let mut warm = warm0.clone();
                    warm.invalidate_edges(&dead);
                    let mut oracle = CandidateOracle::new(survivors.candidates());
                    let sol = warm.resolve(
                        g,
                        DemandDelta::Replace(covered.clone()),
                        &mut oracle,
                        &self.solve,
                    );
                    stranded += sol.stranded;
                    // The cold restricted baseline is a quality oracle
                    // like the stream's — skipped under `without_opt`.
                    let cold = self.compute_opt.then(|| {
                        min_congestion_restricted(g, &covered, survivors.candidates(), &self.solve)
                            .congestion
                    });
                    (Some(sol.congestion), sol.iterations, cold)
                };
                // Covered pairs stay reachable through the mask (their
                // surviving candidate path lies inside it), so the
                // masked OPT normally strands nothing; if a draw that
                // exhausted its connectivity retries ever does, the
                // mass lands in `stranded` instead of aborting.
                let opt_lower_bound = (self.compute_opt && !covered.is_empty()).then(|| {
                    let opt = min_congestion_masked(g, &covered, &usable, &self.solve);
                    stranded += opt.stranded;
                    opt.lower_bound
                });
                let ratio = match (congestion, opt_lower_bound) {
                    (Some(c), Some(lb)) => Some(c / lb.max(f64::MIN_POSITIVE)),
                    _ => None,
                };
                records.push(FailureTrial {
                    trial,
                    demand: name.clone(),
                    failed_edges: dead.clone(),
                    attempts,
                    coverage,
                    stranded,
                    congestion,
                    iterations,
                    cold_congestion,
                    opt_lower_bound,
                    ratio,
                });
            }
            records
        });
        // Records come back in ascending cell id = trial order, demands
        // inner — the exact order the serial loop produced.
        let trials_flat: Vec<FailureTrial> = outcome
            .records
            .into_iter()
            .flat_map(|r| {
                r.result
                    .expect("no journal configured: every cell is fresh")
            })
            .collect();
        FailureSweepReport {
            trials: trials_flat,
            wall: start.elapsed(),
            template: prepared.template_stats(),
        }
    }

    /// Draws `k` distinct dead edges for `trial` into `sub` (left failed
    /// on return), retrying with derived seeds — bounded and
    /// deterministic — when the knockout disconnects the topology.
    /// Returns the sorted dead edges and the number of rejected draws.
    fn draw_failures(&self, sub: &mut SubTopology, k: usize, trial: usize) -> (Vec<EdgeId>, usize) {
        const MAX_ATTEMPTS: usize = 8;
        let m = sub.m();
        let mut dead: Vec<EdgeId> = Vec::new();
        for attempt in 0..MAX_ATTEMPTS {
            sub.restore_all();
            // One source of truth for per-item streams: the retry layer
            // is `derive_seed(trial_master, attempt)`, whose nested
            // mixing keeps distinct (trial, attempt) pairs on distinct
            // streams (an XOR of finalized values would be symmetric
            // and collide them). `derive_seed(m, i)` expands to
            // `mix(mix(m) ^ i)` — byte-identical to the derivation this
            // replaced, so historical failure draws are preserved.
            let trial_master = self.seed ^ FAILURE_STREAM_TAG ^ mix(trial as u64);
            let mut rng = StdRng::seed_from_u64(derive_seed(trial_master, attempt as u64));
            // Partial Fisher–Yates: k distinct edge ids.
            let mut ids: Vec<EdgeId> = (0..m as EdgeId).collect();
            for i in 0..k {
                let j = rng.gen_range(i..m);
                ids.swap(i, j);
            }
            dead = ids[..k].to_vec();
            dead.sort_unstable();
            for &e in &dead {
                sub.fail_edge(e);
            }
            if sub.is_connected() {
                return (dead, attempt);
            }
        }
        // Retries exhausted: keep the last draw. Re-routes and the masked
        // OPT act on covered pairs only, which remain reachable, so a
        // disconnected trial degrades coverage instead of panicking.
        (dead, MAX_ATTEMPTS)
    }
}

/// Which router stage 4 uses.
enum PreparedRouter {
    Semi(SemiObliviousRouter),
    Completion(CompletionTimeRouter),
}

/// Stages 1–3, executed: graph + template + sampled path system, ready
/// to route demands (see [`Pipeline::prepare`]).
///
/// # Examples
///
/// ```
/// use ssor_engine::{PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
///
/// let cache = PathSystemCache::new();
/// let prepared = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
///     .template(TemplateSpec::Valiant)
///     .alpha(2)
///     .prepare(&cache);
/// assert_eq!(prepared.graph().n(), 8);
/// assert!(prepared.paths().sparsity() <= 2);
/// ```
pub struct PreparedPipeline {
    pipeline: Pipeline,
    graph_and_meta: Arc<(Graph, Option<CGraphMeta>)>,
    /// `None` under [`Objective::CompletionTime`], which builds its own
    /// hop-ladder routings instead of sampling a template.
    template: Option<SharedTemplate>,
    /// What the stage-2 build cost (`None` when no template was built).
    template_stats: Option<TemplateBuildStats>,
    paths: Arc<PathSystem>,
    router: PreparedRouter,
}

impl PreparedPipeline {
    /// The routed graph.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Ring { n: 6 }).alpha(1)
    ///     .prepare(&Default::default());
    /// assert_eq!(p.graph().n(), 6);
    /// ```
    pub fn graph(&self) -> &Graph {
        &self.graph_and_meta.0
    }

    /// The oblivious template the paths were sampled from (stage 2) —
    /// useful for comparing against the un-adapted oblivious routing.
    /// `None` under [`Objective::CompletionTime`], whose hop-ladder
    /// builds its own routings and consults no template.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TemplateSpec, TopologySpec};
    /// use ssor_flow::Demand;
    ///
    /// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(2)
    ///     .prepare(&Default::default());
    /// let template = p.template().expect("congestion objective has one");
    /// let oblivious_cong = template.congestion(&Demand::hypercube_bit_reversal(3));
    /// assert!(oblivious_cong > 0.0);
    /// ```
    pub fn template(&self) -> Option<&dyn ssor_oblivious::ObliviousRouting> {
        self.template
            .as_deref()
            .map(|t| t as &dyn ssor_oblivious::ObliviousRouting)
    }

    /// Flattens the stage-2 template into an immutable all-pairs
    /// [`RouteTable`](ssor_graph::RouteTable) serving snapshot stamped
    /// with `generation` — what a `ssor-serve` rebuilder publishes after
    /// each churn step. `None` under [`Objective::CompletionTime`]
    /// (no template to flatten).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TemplateSpec, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(2)
    ///     .prepare(&Default::default());
    /// let table = p.route_table(1).expect("congestion objective");
    /// assert_eq!(table.pair_count(), 56);
    /// ```
    pub fn route_table(&self, generation: u64) -> Option<ssor_graph::RouteTable> {
        let template = self.template.as_deref()?;
        let pairs = all_pairs(self.graph().n());
        Some(crate::snapshot::route_table_from_template(
            template, &pairs, generation,
        ))
    }

    /// What the stage-2 template build cost — wall-clock, whether the
    /// cache shared it, and the per-stage parallelizable split when the
    /// template records one. `None` under
    /// [`Objective::CompletionTime`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TemplateSpec, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Grid { rows: 3, cols: 3 })
    ///     .alpha(2)
    ///     .prepare(&Default::default());
    /// let stats = p.template_stats().expect("congestion objective builds one");
    /// assert!(!stats.cached, "fresh cache cannot share");
    /// ```
    pub fn template_stats(&self) -> Option<TemplateBuildStats> {
        self.template_stats
    }

    /// The sampled path system (stage 3).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TemplateSpec, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(3)
    ///     .prepare(&Default::default());
    /// assert_eq!(p.paths().len(), 56);
    /// ```
    pub fn paths(&self) -> &PathSystem {
        &self.paths
    }

    /// The stage-4 semi-oblivious router (congestion objective only).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{Pipeline, TemplateSpec, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(2)
    ///     .prepare(&Default::default());
    /// assert!(p.router().is_some());
    /// ```
    pub fn router(&self) -> Option<&SemiObliviousRouter> {
        match &self.router {
            PreparedRouter::Semi(r) => Some(r),
            PreparedRouter::Completion(_) => None,
        }
    }

    /// Resolves one demand spec against this pipeline's graph and paths
    /// (so [`DemandSpec::AdversarialLowerBound`] sees the sampled
    /// system).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, Pipeline, TemplateSpec, TopologySpec};
    /// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(2)
    ///     .prepare(&Default::default());
    /// let d = p.resolve(&DemandSpec::BitReversal);
    /// assert!(d.is_permutation());
    /// ```
    pub fn resolve(&self, spec: &DemandSpec) -> Demand {
        let ctx = ResolveCtx::new(&self.pipeline.topology, &self.graph_and_meta.0).with_paths(
            self.graph_and_meta.1.as_ref(),
            &self.paths,
            self.pipeline.alpha,
        );
        spec.resolve(&ctx)
    }

    /// Stages 4–5 for one named demand.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
    ///
    /// let cache = PathSystemCache::new();
    /// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(3)
    ///     .prepare(&cache);
    /// let rec = p.evaluate(&cache, "bit-reversal", &DemandSpec::BitReversal);
    /// assert!(rec.ratio.unwrap() >= 0.9);
    /// ```
    pub fn evaluate(&self, cache: &PathSystemCache, name: &str, spec: &DemandSpec) -> EvalRecord {
        let d = self.resolve(spec);
        let opts = &self.pipeline.solve;
        let (routing, congestion, dilation, converged, stats) = match &self.router {
            PreparedRouter::Semi(router) => {
                let sol = router.route_fractional(&d, opts);
                let dil = sol.routing.dilation(&d);
                (
                    sol.routing,
                    sol.congestion,
                    dil,
                    Some(sol.converged),
                    Some(sol.stats),
                )
            }
            // The completion objective aggregates one solve per hop
            // scale; a single converged/stats pair would misattribute.
            PreparedRouter::Completion(comp) => {
                let route = comp.route(&d, opts);
                (route.routing, route.congestion, route.dilation, None, None)
            }
        };

        let opt = if self.pipeline.compute_opt && !d.is_empty() {
            let solve = || {
                let sol = min_congestion_unrestricted(&self.graph_and_meta.0, &d, opts);
                OptBounds {
                    congestion: sol.congestion,
                    lower_bound: sol.lower_bound,
                }
            };
            // The adversarial demand depends on the sampled paths, so its
            // identity is not captured by (topology, spec, eps) — solve it
            // uncached rather than risk a stale hit across alphas.
            Some(if matches!(spec, DemandSpec::AdversarialLowerBound) {
                solve()
            } else {
                cache.opt_bounds(&self.pipeline.topology, spec, opts, solve)
            })
        } else {
            None
        };
        let ratio = opt.map(|o| congestion / o.lower_bound.max(f64::MIN_POSITIVE));

        let makespan = self.pipeline.simulate.as_ref().and_then(|cfg| {
            if d.is_empty() || !d.is_integral() {
                return None;
            }
            let mut rng = StdRng::seed_from_u64(self.pipeline.seed ^ SIM_STREAM_TAG);
            let rounded = round_routing(&self.graph_and_meta.0, &routing, &d, 16, &mut rng);
            Some(simulate_routing(&self.graph_and_meta.0, &rounded.routing, cfg).makespan)
        });

        EvalRecord {
            name: name.to_string(),
            alpha: self.pipeline.alpha,
            congestion,
            dilation,
            opt_lower_bound: opt.map(|o| o.lower_bound),
            opt_upper_bound: opt.map(|o| o.congestion),
            ratio,
            makespan,
            converged,
            stats,
        }
    }

    /// Stages 4–5 for a whole batch, parallel across demands; records
    /// come back in batch order.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssor_engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
    ///
    /// let cache = PathSystemCache::new();
    /// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
    ///     .template(TemplateSpec::Valiant)
    ///     .alpha(2)
    ///     .prepare(&cache);
    /// let batch = vec![
    ///     ("a".to_string(), DemandSpec::BitReversal),
    ///     ("b".to_string(), DemandSpec::Complement),
    /// ];
    /// let recs = p.evaluate_batch(&cache, &batch);
    /// assert_eq!(recs[0].name, "a");
    /// assert_eq!(recs[1].name, "b");
    /// ```
    pub fn evaluate_batch(
        &self,
        cache: &PathSystemCache,
        demands: &[(String, DemandSpec)],
    ) -> Vec<EvalRecord> {
        // Ordered fan-out over the shared primitive: records come back
        // in input order at any thread count (evaluations are
        // independent; the cache handles concurrent fills).
        par_ordered_map(demands, 2, |(name, spec)| self.evaluate(cache, name, spec))
    }
}

/// Tag XOR-ed into the run seed for the rounding/simulation RNG stream,
/// keeping it decorrelated from the sampling stream.
const SIM_STREAM_TAG: u64 = 0x51D3_4D31_7261_C0DE;

/// Tag XOR-ed into the run seed for the failure-sweep trial stream.
const FAILURE_STREAM_TAG: u64 = 0xFA11_0E4E_D15A_57E4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn quick_opts() -> SolveOptions {
        SolveOptions::with_eps(0.1)
    }

    #[test]
    fn run_report_matches_seed_router_semantics() {
        // The pipeline's numbers must agree with driving the stages by
        // hand through the same path system.
        let cache = PathSystemCache::new();
        let p = Pipeline::on(TopologySpec::Hypercube { dim: 4 })
            .template(TemplateSpec::Valiant)
            .alpha(4)
            .seed(7)
            .solve_options(quick_opts())
            .demand("bit-reversal", DemandSpec::BitReversal);
        let report = p.run(&cache);
        let rec = &report.records[0];

        let prepared = p.prepare(&cache);
        let router = prepared.router().unwrap();
        let manual = router.competitive_report(&Demand::hypercube_bit_reversal(4), &quick_opts());
        assert!((rec.congestion - manual.semi_oblivious).abs() < 1e-9);
        assert!(rec.ratio.unwrap() >= 0.9);
    }

    #[test]
    fn alpha_sweep_hits_opt_cache() {
        let cache = PathSystemCache::new();
        let base = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
            .template(TemplateSpec::Valiant)
            .solve_options(quick_opts())
            .demand("d", DemandSpec::BitReversal);
        base.clone().alpha(1).run(&cache);
        let before = cache.stats();
        base.clone().alpha(2).run(&cache);
        let after = cache.stats();
        // Second alpha reuses graph, template, and the OPT bound; only
        // the alpha=2 path system is a new miss.
        assert_eq!(after.misses, before.misses + 1);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn larger_alpha_does_not_hurt() {
        let cache = PathSystemCache::new();
        let base = Pipeline::on(TopologySpec::Hypercube { dim: 4 })
            .template(TemplateSpec::Valiant)
            .seed(3)
            .solve_options(quick_opts())
            .demand("d", DemandSpec::BitReversal);
        let r1 = base.clone().alpha(1).run(&cache);
        let r6 = base.clone().alpha(6).run(&cache);
        assert!(
            r6.records[0].congestion <= r1.records[0].congestion * 1.15 + 1e-6,
            "alpha=6 {} vs alpha=1 {}",
            r6.records[0].congestion,
            r1.records[0].congestion
        );
    }

    #[test]
    fn completion_objective_reports_dilation() {
        let cache = PathSystemCache::new();
        let report = Pipeline::on(TopologySpec::Ring { n: 8 })
            .objective(Objective::CompletionTime {
                growth: ScaleGrowth::Log,
            })
            .alpha(2)
            .solve_options(quick_opts())
            .without_opt()
            .demand("pairs", DemandSpec::Pairs(vec![(0, 4), (1, 5)]))
            .run(&cache);
        let rec = &report.records[0];
        assert!(rec.dilation >= 1);
        assert!(rec.objective() > rec.congestion);
    }

    #[test]
    fn simulation_stage_produces_makespans() {
        let cache = PathSystemCache::new();
        let report = Pipeline::on(TopologySpec::Ring { n: 6 })
            .alpha(2)
            .solve_options(quick_opts())
            .demand("p", DemandSpec::Pairs(vec![(0, 3), (1, 4)]))
            .simulate(SimConfig::default())
            .run(&cache);
        let rec = &report.records[0];
        // A 6-ring pair is >= 2 hops away; makespan at least that.
        assert!(rec.makespan.unwrap() >= 2);
    }

    #[test]
    fn gravity_demand_skips_simulation_but_routes() {
        let cache = PathSystemCache::new();
        let report = ScenarioSpec::GravityWan {
            n: 12,
            total: 20.0.into(),
            seed: 4,
        }
        .pipeline()
        .alpha(2)
        .solve_options(quick_opts())
        .simulate(SimConfig::default())
        .run(&cache);
        let rec = &report.records[0];
        assert!(rec.congestion > 0.0);
        assert!(rec.makespan.is_none(), "fractional demand cannot simulate");
    }

    #[test]
    fn lower_bound_scenario_finds_hard_demand() {
        let cache = PathSystemCache::new();
        let report = ScenarioSpec::LowerBound { n: 16, alpha: 1 }
            .pipeline()
            .alpha(1)
            .solve_options(quick_opts())
            .run(&cache);
        let rec = &report.records[0];
        // Lemma 8.1: the adversary forces a ratio strictly above 1
        // against a 1-sparse system (OPT routes it with congestion ~1).
        assert!(
            rec.ratio.unwrap() > 1.2,
            "adversary too weak: ratio {}",
            rec.ratio.unwrap()
        );
    }

    #[test]
    fn reports_surface_template_build_stats() {
        let cache = PathSystemCache::new();
        let p = Pipeline::on(TopologySpec::Grid { rows: 3, cols: 3 })
            .alpha(2)
            .solve_options(quick_opts())
            .without_opt()
            .demand("d", DemandSpec::Pairs(vec![(0, 8)]));
        let first = p.run(&cache);
        let t1 = first
            .template
            .expect("congestion objective builds a template");
        assert!(!t1.cached);
        assert!(
            t1.stages.is_some(),
            "default Raecke template reports stages"
        );
        let second = p.run(&cache);
        assert!(
            second.template.unwrap().cached,
            "re-run shares the template"
        );
    }

    #[test]
    fn failure_sweep_shares_intact_template_across_trials() {
        let cache = PathSystemCache::new();
        let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
            .template(TemplateSpec::Valiant)
            .alpha(2)
            .solve_options(quick_opts())
            .without_opt()
            .demand("complement", DemandSpec::Complement);
        let report = p.failure_sweep(&cache, 1, 3);
        let stats = report.template.expect("sweep records its one build");
        assert!(!stats.cached, "one construction serves all trials");
        // A second sweep over the same cache shares the template outright.
        let again = p.failure_sweep(&cache, 1, 2);
        assert!(again.template.unwrap().cached);
    }

    #[test]
    fn batch_order_is_preserved_under_parallel_eval() {
        let cache = PathSystemCache::new();
        let names: Vec<String> = (0..8).map(|i| format!("perm-{i}")).collect();
        let batch: Vec<(String, DemandSpec)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), DemandSpec::RandomPermutation { seed: i as u64 }))
            .collect();
        let report = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
            .template(TemplateSpec::Valiant)
            .alpha(2)
            .solve_options(quick_opts())
            .demands(batch)
            .run(&cache);
        let got: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(got, names.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    }
}
