//! # ssor-te
//!
//! The traffic-engineering scenario that motivated semi-oblivious routing
//! in practice (SMORE, `[KYY+18a/b]`; Section 1.1 of the paper).
//!
//! SMORE installs a *small fixed set of candidate paths* per router pair
//! (sampled from Räcke's oblivious routing, `α = 4` in production) because
//! updating forwarding tables is slow, then re-optimizes *sending rates*
//! every few seconds as traffic shifts — exactly the semi-oblivious model.
//! This crate builds the synthetic WAN environment to rerun that story:
//!
//! * [`Wan`] — Waxman random WAN topologies with integer link capacities
//!   (expressed as parallel edges, the paper's convention);
//! * [`GravityModel`] — gravity demand matrices with diurnal drift and
//!   noise, producing a sequence of demand snapshots;
//! * [`evaluate_snapshots`] — the TE loop: per snapshot, re-optimize rates
//!   on the fixed candidate paths and compare max-link-utilization against
//!   the per-snapshot offline optimum;
//! * [`fail_link`] — link-failure robustness: drop a link, discard the
//!   candidate paths crossing it, measure surviving coverage and
//!   congestion.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::Rng;
use ssor_core::PathSystem;
use ssor_flow::solver::{
    min_congestion_masked, min_congestion_restricted, min_congestion_unrestricted, SolveOptions,
};
use ssor_flow::Demand;
use ssor_graph::{generators, EdgeId, Graph, VertexId};

/// A synthetic wide-area network: logical links with integer capacities,
/// expanded into a unit-capacity multigraph for the routing machinery.
#[derive(Debug, Clone)]
pub struct Wan {
    /// The expanded multigraph (one parallel edge per unit of capacity).
    pub graph: Graph,
    /// Logical link endpoints, indexed by logical link id.
    pub links: Vec<(VertexId, VertexId)>,
    /// Capacity per logical link.
    pub capacity: Vec<u32>,
    /// Physical (expanded) edge ids per logical link.
    pub replicas: Vec<Vec<EdgeId>>,
    /// Vertex positions in the unit square (for latency weighting).
    pub positions: Vec<(f64, f64)>,
}

impl Wan {
    /// Samples a connected Waxman WAN with `n` routers. Link capacities
    /// are assigned by endpoint degree (core links get capacity 4, medium
    /// 2, edge links 1) — a crude but standard tiering.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Wan {
        let (base, positions) = generators::waxman(n, 0.6, 0.25, rng);
        let links: Vec<(VertexId, VertexId)> = base.edges().map(|(_, uv)| uv).collect();
        let capacity: Vec<u32> = links
            .iter()
            .map(|&(u, v)| {
                let d = base.degree(u).min(base.degree(v));
                if d >= 6 {
                    4
                } else if d >= 3 {
                    2
                } else {
                    1
                }
            })
            .collect();
        let (graph, replicas) = base.with_capacities(&capacity);
        Wan {
            graph,
            links,
            capacity,
            replicas,
            positions,
        }
    }

    /// Number of routers.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of logical links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

/// Gravity-model demand generator with diurnal drift.
///
/// Router weights are heavy-tailed (Pareto-like, via `u^{-1/a}`);
/// `d(s, t) ∝ w_s * w_t`, modulated per snapshot by a sinusoidal diurnal
/// factor with per-source phase plus multiplicative noise.
#[derive(Debug, Clone)]
pub struct GravityModel {
    weights: Vec<f64>,
    phases: Vec<f64>,
    /// Total demand volume per snapshot (before modulation).
    pub total: f64,
    /// Relative amplitude of the diurnal swing (0..1).
    pub amplitude: f64,
    /// Log-normal noise sigma.
    pub noise: f64,
}

impl GravityModel {
    /// Samples router weights and phases for an `n`-router network.
    pub fn sample<R: Rng + ?Sized>(n: usize, total: f64, rng: &mut R) -> Self {
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(0.01..1.0);
                u.powf(-1.0 / 1.5) // Pareto(1.5) tail
            })
            .collect();
        let phases: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(0.0..(2.0 * std::f64::consts::PI)))
            .collect();
        GravityModel {
            weights,
            phases,
            total,
            amplitude: 0.4,
            noise: 0.2,
        }
    }

    /// The demand snapshot at time `t` of `period` (e.g. hour `t` of 24).
    pub fn snapshot<R: Rng + ?Sized>(&self, t: usize, period: usize, rng: &mut R) -> Demand {
        let n = self.weights.len();
        let wsum: f64 = self.weights.iter().sum();
        let mut d = Demand::new();
        let angle = 2.0 * std::f64::consts::PI * (t as f64) / (period as f64);
        for s in 0..n {
            let diurnal = 1.0 + self.amplitude * (angle + self.phases[s]).sin();
            for tt in 0..n {
                if s == tt {
                    continue;
                }
                let base = self.total * self.weights[s] * self.weights[tt] / (wsum * wsum);
                // Log-normal noise.
                let z: f64 = {
                    // Box-Muller from two uniforms.
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen::<f64>();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                let noise = (self.noise * z).exp();
                let v = base * diurnal * noise;
                if v > 1e-9 {
                    d.set(s as VertexId, tt as VertexId, v);
                }
            }
        }
        d
    }
}

/// One snapshot's evaluation of a fixed candidate-path strategy.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Snapshot index.
    pub snapshot: usize,
    /// Max link utilization achieved on the fixed candidate paths.
    pub congestion: f64,
    /// Certified lower bound on the per-snapshot optimum.
    pub opt_lower_bound: f64,
    /// `congestion / opt_lower_bound` (upper bound on the true gap).
    pub ratio: f64,
}

/// Runs the TE loop: for each snapshot re-optimize rates on the *fixed*
/// path system (the semi-oblivious model) and compare to the offline
/// optimum of that snapshot.
///
/// # Panics
///
/// Panics if `paths` misses coverage for some snapshot pair.
pub fn evaluate_snapshots(
    wan: &Wan,
    paths: &PathSystem,
    snapshots: &[Demand],
    opts: &SolveOptions,
) -> Vec<SnapshotReport> {
    snapshots
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let semi = min_congestion_restricted(&wan.graph, d, paths.candidates(), opts);
            let opt = min_congestion_unrestricted(&wan.graph, d, opts);
            let lb = opt.lower_bound.max(f64::MIN_POSITIVE);
            SnapshotReport {
                snapshot: i,
                congestion: semi.congestion,
                opt_lower_bound: opt.lower_bound,
                ratio: semi.congestion / lb,
            }
        })
        .collect()
}

/// One snapshot's evaluation under *stale* rates: the rates were
/// optimized for the previous snapshot (SMORE re-optimizes every few
/// seconds from a slightly old traffic snapshot, [KYY+18b]).
#[derive(Debug, Clone)]
pub struct StaleReport {
    /// Snapshot index the stale rates were applied to.
    pub snapshot: usize,
    /// Congestion of the stale rates on the current demand.
    pub stale_congestion: f64,
    /// Congestion of freshly re-optimized rates on the same demand.
    pub fresh_congestion: f64,
    /// `stale / fresh` — the staleness penalty.
    pub staleness_penalty: f64,
}

/// Runs the TE loop with one-snapshot-old rates: solve on snapshot
/// `t - 1`, apply the resulting per-pair splits to snapshot `t`'s demand.
/// The first snapshot is skipped (no previous rates exist).
///
/// Pairs present at `t` but absent at `t - 1` fall back to the first
/// candidate path (rates must exist for every pair in practice; gravity
/// demands have stable support so this is rare).
///
/// # Panics
///
/// Panics if `paths` misses coverage for some snapshot pair.
pub fn evaluate_with_stale_rates(
    wan: &Wan,
    paths: &PathSystem,
    snapshots: &[Demand],
    opts: &SolveOptions,
) -> Vec<StaleReport> {
    let mut out = Vec::new();
    for t in 1..snapshots.len() {
        let prev = &snapshots[t - 1];
        let cur = &snapshots[t];
        let stale = min_congestion_restricted(&wan.graph, prev, paths.candidates(), opts);
        // Apply the stale per-pair distributions to the current demand.
        let mut applied = stale.routing.clone();
        for (s, tt) in cur.support() {
            if applied.distribution(s, tt).is_none() {
                let cand = paths
                    .first_path(s, tt)
                    .unwrap_or_else(|| panic!("no candidates for ({s}, {tt})"));
                applied.set_distribution(s, tt, vec![(cand, 1.0)]);
            }
        }
        let stale_congestion = applied.congestion(&wan.graph, cur);
        let fresh = min_congestion_restricted(&wan.graph, cur, paths.candidates(), opts);
        out.push(StaleReport {
            snapshot: t,
            stale_congestion,
            fresh_congestion: fresh.congestion,
            staleness_penalty: stale_congestion / fresh.congestion.max(f64::MIN_POSITIVE),
        });
    }
    out
}

/// Outcome of a link-failure drill.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The failed logical link.
    pub link: usize,
    /// Fraction of demand pairs that still have at least one surviving
    /// candidate path.
    pub coverage: f64,
    /// Demand mass the damaged network physically cannot carry (pairs
    /// the failure disconnected, dropped by the masked optimum solve;
    /// 0.0 while the WAN stays connected).
    pub stranded: f64,
    /// Congestion of re-optimized rates on the surviving paths (only the
    /// covered sub-demand), or `None` if nothing survived.
    pub congestion: Option<f64>,
    /// Certified lower bound on the optimum on the damaged network.
    pub opt_lower_bound: f64,
}

/// Fails logical link `link`: removes its physical edges from the routing
/// universe, drops candidate paths crossing them, and re-optimizes the
/// covered part of `d` on the survivors. The optimum is recomputed on the
/// damaged network for comparison — through the solver's edge mask, so
/// no graph is rebuilt and edge ids stay stable; pairs the failure
/// disconnects are reported as `stranded` instead of panicking.
///
/// # Panics
///
/// Panics if `link` is out of range.
pub fn fail_link(
    wan: &Wan,
    paths: &PathSystem,
    d: &Demand,
    link: usize,
    opts: &SolveOptions,
) -> FailureReport {
    let dead = &wan.replicas[link];
    // Surviving candidate paths.
    let mut survivors = paths.clone();
    for &e in dead {
        survivors.remove_paths_through(e);
    }
    let covered = d.filtered(|s, t, _| survivors.covers_pair(s, t));
    let coverage = if d.support_len() == 0 {
        1.0
    } else {
        covered.support_len() as f64 / d.support_len() as f64
    };

    // Damaged-network optimum through the solver's edge mask (same
    // graph, same edge ids, dead replicas unusable).
    let mut usable = vec![true; wan.graph.m()];
    for &e in dead {
        usable[e as usize] = false;
    }
    let opt = min_congestion_masked(&wan.graph, d, &usable, opts);

    // Congestion on survivors (original edge ids still valid: we only
    // removed *paths*, and the survivors never cross dead edges).
    let congestion = if covered.is_empty() {
        None
    } else {
        Some(
            min_congestion_restricted(&wan.graph, &covered, survivors.candidates(), opts)
                .congestion,
        )
    };

    FailureReport {
        link,
        coverage,
        stranded: opt.stranded,
        congestion,
        opt_lower_bound: opt.lower_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_core::sample::alpha_sample;
    use ssor_oblivious::{KspRouting, RaeckeRouting};

    fn small_wan(seed: u64) -> Wan {
        let mut rng = StdRng::seed_from_u64(seed);
        Wan::random(12, &mut rng)
    }

    #[test]
    fn wan_is_connected_with_capacities() {
        let wan = small_wan(1);
        assert!(wan.graph.is_connected());
        assert_eq!(wan.links.len(), wan.capacity.len());
        assert_eq!(
            wan.graph.m(),
            wan.capacity.iter().map(|&c| c as usize).sum::<usize>()
        );
        assert!(wan.capacity.iter().all(|&c| [1, 2, 4].contains(&c)));
    }

    #[test]
    fn gravity_snapshots_vary_but_keep_support() {
        let wan = small_wan(2);
        let mut rng = StdRng::seed_from_u64(3);
        let model = GravityModel::sample(wan.n(), 50.0, &mut rng);
        let a = model.snapshot(0, 24, &mut rng);
        let b = model.snapshot(12, 24, &mut rng);
        assert_eq!(
            a.support_len(),
            b.support_len(),
            "gravity support is dense and stable"
        );
        // Diurnal + noise means the values differ.
        let (pair, _) = a.iter().next().unwrap();
        assert_ne!(a.get(pair.0, pair.1), b.get(pair.0, pair.1));
    }

    #[test]
    fn te_loop_reports_reasonable_ratios() {
        let wan = small_wan(4);
        let mut rng = StdRng::seed_from_u64(5);
        let model = GravityModel::sample(wan.n(), 30.0, &mut rng);
        let snaps: Vec<Demand> = (0..3).map(|t| model.snapshot(t, 24, &mut rng)).collect();
        let raecke = RaeckeRouting::build(&wan.graph, &Default::default(), &mut rng);
        let pairs = snaps[0].support();
        let ps = alpha_sample(&raecke, &pairs, 4, &mut rng);
        let reports = evaluate_snapshots(&wan, &ps, &snaps, &SolveOptions::with_eps(0.1));
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.ratio >= 0.99, "ratio below 1 impossible, got {}", r.ratio);
            assert!(
                r.ratio < 30.0,
                "alpha=4 SMORE sampling should be competitive, got {}",
                r.ratio
            );
        }
    }

    #[test]
    fn stale_rates_cost_little_on_smooth_traffic() {
        let wan = small_wan(8);
        let mut rng = StdRng::seed_from_u64(9);
        let model = GravityModel::sample(wan.n(), 25.0, &mut rng);
        let snaps: Vec<Demand> = (0..4).map(|t| model.snapshot(t, 24, &mut rng)).collect();
        let raecke = RaeckeRouting::build(&wan.graph, &Default::default(), &mut rng);
        let ps = alpha_sample(&raecke, &snaps[0].support(), 4, &mut rng);
        let reports = evaluate_with_stale_rates(&wan, &ps, &snaps, &SolveOptions::with_eps(0.1));
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(
                r.staleness_penalty >= 0.95,
                "stale cannot beat fresh by much: {}",
                r.staleness_penalty
            );
            assert!(
                r.staleness_penalty < 2.5,
                "hour-adjacent gravity snapshots should be cheap to serve with stale rates, got {}",
                r.staleness_penalty
            );
        }
    }

    #[test]
    fn link_failure_keeps_most_coverage_with_alpha_4() {
        let wan = small_wan(6);
        let mut rng = StdRng::seed_from_u64(7);
        let ksp = KspRouting::new(&wan.graph, 6);
        let model = GravityModel::sample(wan.n(), 20.0, &mut rng);
        let d = model.snapshot(0, 24, &mut rng);
        let ps = alpha_sample(&ksp, &d.support(), 4, &mut rng);
        // Every link can be drilled: the reported stranded mass must be
        // exactly the demand on pairs the damaged graph disconnects
        // (0.0 while the WAN stays whole) — no panics either way.
        let mut tested = 0;
        for link in 0..wan.link_count() {
            let kept: Vec<(u32, u32)> = wan
                .graph
                .edges()
                .filter(|(e, _)| !wan.replicas[link].contains(e))
                .map(|(_, uv)| uv)
                .collect();
            let damaged = Graph::from_edges(wan.graph.n(), &kept);
            let cut_mass: f64 = d
                .iter()
                .filter(|&((s, t), _)| {
                    ssor_graph::shortest_path::bfs_path(&damaged, s, t).is_none()
                })
                .map(|(_, w)| w)
                .sum();
            let rep = fail_link(&wan, &ps, &d, link, &SolveOptions::with_eps(0.15));
            assert!(rep.coverage >= 0.0 && rep.coverage <= 1.0);
            assert!(
                (rep.stranded - cut_mass).abs() < 1e-9 * (1.0 + cut_mass),
                "link {link}: stranded {} vs disconnected mass {}",
                rep.stranded,
                cut_mass
            );
            tested += 1;
            if tested >= 3 {
                break;
            }
        }
        assert!(tested > 0);
    }
}
