//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use ssor_graph::maxflow::min_cut_value;
use ssor_graph::shortest_path::{
    bfs_path, bfs_tree, bfs_trees_csr_batch, dijkstra_path, dijkstra_tree_csr,
    dijkstra_trees_csr_batch, hop_distance,
};
use ssor_graph::{generators, CsrLaplacian, EdgeLoads, Graph, Path, PathStore, VertexId};

/// Strategy: a connected random graph with `n` in 2..=12 via an
/// Erdős–Rényi draw stitched to connectivity (deterministic from the seed).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..=12, 0.05f64..0.9, any::<u64>()).prop_map(|(n, p, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(n, p, &mut rng)
    })
}

/// Strategy: a connected random *multigraph* — an Erdős–Rényi base with a
/// random sprinkle of parallel copies of existing edges.
fn connected_multigraph() -> impl Strategy<Value = Graph> {
    (connected_graph(), 0usize..10, any::<u64>()).prop_map(|(base, extra, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = base.clone();
        let m = base.m();
        for _ in 0..extra {
            let (u, v) = base.endpoints(rng.gen_range(0..m) as u32);
            g.add_edge(u, v);
        }
        g
    })
}

/// A random simple path in `g` (random walk, shortcut).
fn random_simple_path(g: &Graph, rng: &mut rand::rngs::StdRng) -> Path {
    use rand::Rng;
    let start = rng.gen_range(0..g.n()) as VertexId;
    let mut cur = start;
    let mut verts = vec![start];
    let mut edges = Vec::new();
    for _ in 0..rng.gen_range(1..10) {
        let nbrs = g.neighbors(cur);
        let a = nbrs[rng.gen_range(0..nbrs.len())];
        verts.push(a.to);
        edges.push(a.edge);
        cur = a.to;
    }
    Path::from_edges(g, start, &edges).unwrap().shortcut()
}

proptest! {
    #[test]
    fn bfs_distances_satisfy_triangle_inequality(g in connected_graph()) {
        let n = g.n();
        for a in 0..n as VertexId {
            let ta = bfs_tree(&g, a);
            for b in 0..n as VertexId {
                for c in 0..n as VertexId {
                    let ab = ta.dist[b as usize];
                    let ac = ta.dist[c as usize];
                    let bc = bfs_tree(&g, b).dist[c as usize];
                    prop_assert!(ac <= ab + bc + 1e-9);
                }
            }
        }
    }

    #[test]
    fn batch_tree_sweep_matches_serial_reference(
        g in connected_multigraph(),
        wseed in any::<u64>(),
    ) {
        // The parallel all-sources fan-out (what the template metric and
        // the batch oracle build on) must be bitwise equal to building
        // each tree serially, on random weighted multigraphs.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(wseed);
        let lens: Vec<f64> = (0..g.m()).map(|_| 0.25 + rng.gen::<f64>() * 4.0).collect();
        let csr = g.csr();
        let sources: Vec<VertexId> = g.vertices().collect();
        let batch = dijkstra_trees_csr_batch(&csr, &sources, &|e| lens[e as usize]);
        let bfs_batch = bfs_trees_csr_batch(&csr, &sources);
        for (i, &s) in sources.iter().enumerate() {
            let serial = dijkstra_tree_csr(&csr, s, &|e| lens[e as usize]);
            prop_assert_eq!(&batch[i].dist, &serial.dist);
            prop_assert_eq!(&batch[i].parent, &serial.parent);
            let serial_bfs = ssor_graph::shortest_path::bfs_tree_csr(&csr, s);
            prop_assert_eq!(&bfs_batch[i].dist, &serial_bfs.dist);
            prop_assert_eq!(&bfs_batch[i].parent, &serial_bfs.parent);
        }
    }

    #[test]
    fn bfs_and_dijkstra_agree_on_unit_lengths(g in connected_graph()) {
        for s in 0..g.n() as VertexId {
            for t in 0..g.n() as VertexId {
                let b = bfs_path(&g, s, t).map(|p| p.hop());
                let d = dijkstra_path(&g, s, t, &|_| 1.0).map(|p| p.hop());
                prop_assert_eq!(b, d);
            }
        }
    }

    #[test]
    fn min_cut_is_symmetric_and_bounded_by_degree(g in connected_graph()) {
        let n = g.n() as VertexId;
        for s in 0..n {
            for t in (s + 1)..n {
                let st = min_cut_value(&g, s, t);
                let ts = min_cut_value(&g, t, s);
                prop_assert_eq!(st, ts, "cut symmetry");
                prop_assert!(st <= g.degree(s).min(g.degree(t)) as u64);
                prop_assert!(st >= 1, "connected graphs have positive cuts");
            }
        }
    }

    #[test]
    fn shortcut_is_idempotent_and_endpoint_preserving(
        g in connected_graph(),
        walk_len in 1usize..12,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // Random walk of the requested length.
        let start = rng.gen_range(0..g.n()) as VertexId;
        let mut verts = vec![start];
        let mut cur = start;
        for _ in 0..walk_len {
            let nbrs = g.neighbors(cur);
            if nbrs.is_empty() { break; }
            let a = nbrs[rng.gen_range(0..nbrs.len())];
            verts.push(a.to);
            cur = a.to;
        }
        let walk = Path::from_vertices(&g, &verts).unwrap();
        let p = walk.shortcut();
        prop_assert!(p.is_simple());
        prop_assert!(p.is_valid(&g));
        prop_assert_eq!(p.source(), walk.source());
        prop_assert_eq!(p.target(), walk.target());
        prop_assert_eq!(p.shortcut(), p.clone(), "idempotent");
        prop_assert!(p.hop() <= walk.hop());
    }

    #[test]
    fn ksp_paths_are_distinct_simple_and_sorted(
        g in connected_graph(),
        k in 1usize..6,
    ) {
        let s = 0 as VertexId;
        let t = (g.n() - 1) as VertexId;
        if s == t { return Ok(()); }
        let paths = ssor_graph::ksp::k_shortest_paths(&g, s, t, k, &|_| 1.0);
        prop_assert!(!paths.is_empty());
        for w in paths.windows(2) {
            prop_assert!(w[0].hop() <= w[1].hop(), "sorted by length");
        }
        let mut keys: Vec<Vec<u32>> = paths.iter().map(|p| p.edges().to_vec()).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), paths.len(), "distinct");
        for p in &paths {
            prop_assert!(p.is_simple());
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
        }
        // First path is a shortest path.
        prop_assert_eq!(paths[0].hop(), hop_distance(&g, s, t));
    }

    #[test]
    fn edge_loads_match_hashmap_accumulation_bitwise(
        g in connected_multigraph(),
        routes in 1usize..16,
        seed in any::<u64>(),
    ) {
        // The dense EdgeLoads accumulator must agree *bit for bit* with
        // the HashMap<EdgeId, f64> accumulators it replaced, for random
        // fractional routings over a multigraph with parallel edges —
        // same paths, same weights, same addition order per edge.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense = EdgeLoads::for_graph(&g);
        let mut sparse: HashMap<u32, f64> = HashMap::new();
        for _ in 0..routes {
            let p = random_simple_path(&g, &mut rng);
            let w: f64 = rng.gen_range(0.001..2.0);
            dense.add_edges(p.edges(), w);
            for &e in p.edges() {
                *sparse.entry(e).or_insert(0.0) += w;
            }
        }
        for e in 0..g.m() as u32 {
            let expected = sparse.get(&e).copied().unwrap_or(0.0);
            prop_assert!(
                dense.get(e) == expected,
                "edge {}: dense {} != sparse {}", e, dense.get(e), expected
            );
        }
        // And the congestion functional agrees with the fold over the map.
        let max_sparse = sparse.values().fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(dense.max() == max_sparse);
    }

    #[test]
    fn path_store_interning_roundtrips_and_dedups(
        g in connected_multigraph(),
        count in 1usize..24,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = PathStore::new();
        let mut originals = Vec::new();
        for _ in 0..count {
            let p = random_simple_path(&g, &mut rng);
            let id = store.intern(&p);
            originals.push((p, id));
        }
        let mut distinct: Vec<Vec<u32>> = Vec::new();
        for (p, id) in &originals {
            // Round-trip: slices and the materialized boundary Path match.
            prop_assert_eq!(store.vertices(*id), p.vertices());
            prop_assert_eq!(store.edges(*id), p.edges());
            prop_assert_eq!(&store.materialize(*id), p);
            prop_assert_eq!(store.source(*id), p.source());
            prop_assert_eq!(store.target(*id), p.target());
            prop_assert_eq!(store.hop(*id), p.hop());
            // Re-interning is stable and never grows the arena.
            prop_assert_eq!(store.intern(p), *id);
            let key: Vec<u32> = std::iter::once(p.source())
                .chain(p.edges().iter().copied())
                .collect();
            if !distinct.contains(&key) {
                distinct.push(key);
            }
        }
        prop_assert_eq!(store.len(), distinct.len(), "one arena entry per distinct path");
        // Identical (source, edges) pairs got identical ids.
        for (pa, ia) in &originals {
            for (pb, ib) in &originals {
                let same = pa.source() == pb.source() && pa.edges() == pb.edges();
                prop_assert_eq!(same, ia == ib);
            }
        }
    }

    #[test]
    fn csr_laplacian_apply_matches_edge_walk_bitwise(
        g in connected_multigraph(),
        seed in any::<u64>(),
    ) {
        // The CSR-flattened apply replaced the per-iteration
        // `Graph::edges` walk inside CG; the swap is legal only because
        // the two accumulate identical addends in identical per-vertex
        // order. Pin that *bitwise* on random weighted multigraphs
        // (parallel edges included) — any reassociation would silently
        // change solver trajectories and break template fingerprints.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..g.m()).map(|_| 0.1 + rng.gen::<f64>() * 9.9).collect();
        let x: Vec<f64> = (0..g.n()).map(|_| rng.gen::<f64>() * 20.0 - 10.0).collect();
        let lap = CsrLaplacian::new(&g, &w);
        let mut y_csr = vec![0.0; g.n()];
        lap.apply(&x, &mut y_csr);
        // The reference: the textbook edge walk in edge-id order.
        let mut y_ref = vec![0.0; g.n()];
        for (e, (u, v)) in g.edges() {
            let c = w[e as usize];
            let d = x[u as usize] - x[v as usize];
            y_ref[u as usize] += c * d;
            y_ref[v as usize] -= c * d;
        }
        for v in 0..g.n() {
            prop_assert_eq!(
                y_csr[v].to_bits(), y_ref[v].to_bits(),
                "vertex {}: csr {} != reference {}", v, y_csr[v], y_ref[v]
            );
        }
    }

    #[test]
    fn hypercube_edge_ids_are_a_bijection(d in 1u32..7) {
        let g = generators::hypercube(d);
        let mut seen = vec![false; g.m()];
        for v in 0..(1u32 << d) {
            for b in 0..d {
                if v < v ^ (1 << b) {
                    let e = generators::hypercube_edge(d, v, b);
                    prop_assert!(!seen[e as usize], "duplicate edge id");
                    seen[e as usize] = true;
                }
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
    }
}
