//! Yen's k-shortest simple paths.
//!
//! Used as the SMORE-era baseline path selector (`KspRouting` in
//! `ssor-oblivious`) and for enumerating candidate paths on small graphs.

use crate::graph::{EdgeId, Graph, VertexId};
use crate::path::Path;
use crate::shortest_path::dijkstra_tree;
use std::collections::HashSet;

/// Dijkstra restricted to non-banned edges/vertices, used for spur paths.
fn restricted_shortest(
    g: &Graph,
    s: VertexId,
    t: VertexId,
    len: &dyn Fn(EdgeId) -> f64,
    banned_edges: &HashSet<EdgeId>,
    banned_vertices: &HashSet<VertexId>,
) -> Option<Path> {
    if banned_vertices.contains(&s) || banned_vertices.contains(&t) {
        return None;
    }
    let big = 1e18;
    let wrapped = |e: EdgeId| -> f64 {
        if banned_edges.contains(&e) {
            big
        } else {
            let (u, v) = g.endpoints(e);
            if banned_vertices.contains(&u) || banned_vertices.contains(&v) {
                big
            } else {
                len(e)
            }
        }
    };
    let tree = dijkstra_tree(g, s, &wrapped);
    if tree.dist[t as usize] >= big {
        return None;
    }
    tree.path_to(g, t)
}

/// Total length of a path under `len`.
fn path_len(p: &Path, len: &dyn Fn(EdgeId) -> f64) -> f64 {
    p.edges().iter().map(|&e| len(e)).sum()
}

/// The `k` shortest *simple* paths from `s` to `t` under per-edge lengths,
/// in nondecreasing length order (Yen's algorithm). Returns fewer than `k`
/// paths when fewer simple paths exist.
///
/// # Examples
///
/// ```
/// use ssor_graph::{generators, ksp::k_shortest_paths};
///
/// let g = generators::ring(6);
/// let paths = k_shortest_paths(&g, 0, 3, 2, &|_| 1.0);
/// assert_eq!(paths.len(), 2); // clockwise and counter-clockwise
/// assert_eq!(paths[0].hop(), 3);
/// assert_eq!(paths[1].hop(), 3);
/// ```
pub fn k_shortest_paths(
    g: &Graph,
    s: VertexId,
    t: VertexId,
    k: usize,
    len: &dyn Fn(EdgeId) -> f64,
) -> Vec<Path> {
    if k == 0 || s == t {
        return Vec::new();
    }
    let mut result: Vec<Path> = Vec::new();
    let first = match restricted_shortest(g, s, t, len, &HashSet::new(), &HashSet::new()) {
        Some(p) => p,
        None => return Vec::new(),
    };
    result.push(first);

    // Candidate pool: (length, path). Deduplicate by vertex sequence.
    let mut candidates: Vec<(f64, Path)> = Vec::new();
    let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
    seen.insert(result[0].vertices().to_vec());

    while result.len() < k {
        let prev = result
            .last()
            .expect("result starts with the shortest path")
            .clone();
        // Spur from each vertex of the previous path.
        for i in 0..prev.hop() {
            let spur_node = prev.vertices()[i];
            let root_vertices = &prev.vertices()[..=i];
            let root_edges = &prev.edges()[..i];

            let mut banned_edges: HashSet<EdgeId> = HashSet::new();
            for r in &result {
                if r.vertices().len() > i && r.vertices()[..=i] == *root_vertices {
                    banned_edges.insert(r.edges()[i]);
                }
            }
            let banned_vertices: HashSet<VertexId> = root_vertices[..i].iter().copied().collect();

            if let Some(spur) =
                restricted_shortest(g, spur_node, t, len, &banned_edges, &banned_vertices)
            {
                let root = Path::from_edges(g, s, root_edges).expect("root is a valid prefix");
                let total = root.concat(&spur);
                if total.is_simple() && seen.insert(total.vertices().to_vec()) {
                    let l = path_len(&total, len);
                    candidates.push((l, total));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the shortest candidate (deterministic tie-break by vertex seq).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, (la, pa)), (_, (lb, pb))| {
                la.total_cmp(lb)
                    .then_with(|| pa.vertices().cmp(pb.vertices()))
            })
            .map(|(i, _)| i)
            .expect("candidate pool checked non-empty above");
        let (_, path) = candidates.swap_remove(best);
        result.push(path);
    }
    result
}

/// All simple `(s, t)`-paths with at most `max_hop` hops, by DFS. Exponential
/// in general; intended only for tiny test graphs (exact integral optimum).
pub fn all_simple_paths(g: &Graph, s: VertexId, t: VertexId, max_hop: usize) -> Vec<Path> {
    let mut out = Vec::new();
    let mut verts = vec![s];
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut on_path = vec![false; g.n()];
    on_path[s as usize] = true;

    fn dfs(
        g: &Graph,
        t: VertexId,
        max_hop: usize,
        verts: &mut Vec<VertexId>,
        edges: &mut Vec<EdgeId>,
        on_path: &mut Vec<bool>,
        out: &mut Vec<Path>,
    ) {
        let cur = *verts.last().expect("DFS stack seeded with s");
        if cur == t {
            out.push(Path::from_edges_unchecked(verts.clone(), edges.clone()));
            return;
        }
        if edges.len() == max_hop {
            return;
        }
        for a in g.neighbors(cur) {
            if !on_path[a.to as usize] {
                on_path[a.to as usize] = true;
                verts.push(a.to);
                edges.push(a.edge);
                dfs(g, t, max_hop, verts, edges, on_path, out);
                edges.pop();
                verts.pop();
                on_path[a.to as usize] = false;
            }
        }
    }

    dfs(
        g,
        t,
        max_hop,
        &mut verts,
        &mut edges,
        &mut on_path,
        &mut out,
    );
    out
}

impl Path {
    /// Internal constructor used by exhaustive enumeration, where validity
    /// is guaranteed by construction.
    pub(crate) fn from_edges_unchecked(vertices: Vec<VertexId>, edges: Vec<EdgeId>) -> Path {
        debug_assert_eq!(vertices.len(), edges.len() + 1);
        Path::raw(vertices, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ksp_on_ring_finds_both_directions() {
        let g = generators::ring(8);
        let ps = k_shortest_paths(&g, 0, 2, 3, &|_| 1.0);
        assert_eq!(ps.len(), 2, "a cycle has exactly two simple s-t paths");
        assert_eq!(ps[0].hop(), 2);
        assert_eq!(ps[1].hop(), 6);
        for p in &ps {
            assert!(p.is_simple());
            assert!(p.is_valid(&g));
        }
    }

    #[test]
    fn ksp_lengths_nondecreasing() {
        let g = generators::grid(3, 4);
        let ps = k_shortest_paths(&g, 0, 11, 6, &|_| 1.0);
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[0].hop() <= w[1].hop());
        }
        // All distinct.
        let mut keys: Vec<_> = ps.iter().map(|p| p.vertices().to_vec()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), ps.len());
    }

    #[test]
    fn ksp_k_zero_or_same_endpoints() {
        let g = generators::ring(5);
        assert!(k_shortest_paths(&g, 0, 1, 0, &|_| 1.0).is_empty());
        assert!(k_shortest_paths(&g, 2, 2, 3, &|_| 1.0).is_empty());
    }

    #[test]
    fn ksp_respects_lengths() {
        // Square with one heavy edge: 0-1 heavy, 0-3-2-1 light.
        let g = Graph::from_edges(4, &[(0, 1), (0, 3), (3, 2), (2, 1)]);
        let lens = [10.0, 1.0, 1.0, 1.0];
        let ps = k_shortest_paths(&g, 0, 1, 2, &|e| lens[e as usize]);
        assert_eq!(ps[0].vertices(), &[0, 3, 2, 1]);
        assert_eq!(ps[1].vertices(), &[0, 1]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "negative or NaN length")]
    fn nan_poisoned_length_fails_at_the_source() {
        // A NaN edge length (a poisoned weight reaching the baseline KSP
        // selector) used to surface as a `partial_cmp().unwrap()` panic
        // deep in the candidate-pool `min_by`; now Dijkstra's sentinel
        // names the poisoned edge the moment the length is read.
        let g = generators::grid(3, 3);
        let poisoned = g.edges_between(4, 5)[0];
        let len = |e: EdgeId| -> f64 {
            if e == poisoned {
                f64::NAN
            } else {
                1.0
            }
        };
        let _ = k_shortest_paths(&g, 0, 8, 4, &len);
    }

    #[test]
    fn infinite_lengths_keep_candidate_order_deterministic() {
        // Overflowed (infinite) path lengths must not destabilize the
        // candidate pool: `total_cmp` orders +inf after every finite
        // length and the vertex-sequence tie-break keeps equal-length
        // candidates in one canonical order, so the selection is a pure
        // function of the input.
        let g = generators::grid(3, 3);
        let heavy = g.edges_between(0, 1)[0];
        // Any path using the heavy edge sums to +inf.
        let len = |e: EdgeId| -> f64 {
            if e == heavy {
                f64::INFINITY
            } else {
                1.0
            }
        };
        let ps = k_shortest_paths(&g, 0, 8, 6, &len);
        assert!(!ps.is_empty());
        for p in &ps {
            assert!(p.is_simple());
            assert!(p.is_valid(&g));
        }
        assert!(ps[0].edges().iter().all(|&e| e != heavy));
        let again = k_shortest_paths(&g, 0, 8, 6, &len);
        assert_eq!(ps, again);
    }

    #[test]
    fn all_simple_paths_on_cycle() {
        let g = generators::ring(5);
        let ps = all_simple_paths(&g, 0, 2, 5);
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert!(p.is_simple());
            assert!(p.is_valid(&g));
        }
    }

    #[test]
    fn all_simple_paths_hop_capped() {
        let g = generators::ring(7);
        let ps = all_simple_paths(&g, 0, 3, 3);
        assert_eq!(ps.len(), 1, "only the 3-hop side fits the cap");
    }

    #[test]
    fn ksp_agrees_with_exhaustive_on_small_graphs() {
        let g = generators::grid(2, 3);
        let all = all_simple_paths(&g, 0, 5, 10);
        let ks = k_shortest_paths(&g, 0, 5, all.len() + 3, &|_| 1.0);
        assert_eq!(ks.len(), all.len());
        let mut hops_a: Vec<usize> = all.iter().map(|p| p.hop()).collect();
        let hops_k: Vec<usize> = ks.iter().map(|p| p.hop()).collect();
        hops_a.sort_unstable();
        assert_eq!(hops_a, hops_k);
    }
}
