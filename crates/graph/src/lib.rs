//! # ssor-graph
//!
//! Graph substrate for the `ssor` workspace — the Rust reproduction of
//! *Sparse Semi-Oblivious Routing: Few Random Paths Suffice* (Zuzic ⓡ
//! Haeupler ⓡ Roeyskoe, PODC 2023).
//!
//! This crate provides everything the routing layers need from a graph
//! library, implemented from scratch:
//!
//! * [`Graph`] — an undirected multigraph with stable edge ids (parallel
//!   edges model integer capacities, following Section 4 of the paper);
//! * [`Path`] — walks/simple paths carrying explicit edge ids, with
//!   [`Path::shortcut`] to reduce walks to simple paths;
//! * [`PathStore`] / [`PathId`] — the interning arena the whole stack
//!   shares paths through (`Path` stays the owned boundary type);
//! * [`RouteTable`] / [`RouteTableBuilder`] — the immutable serving
//!   snapshot: per-pair distributions flattened into contiguous buffers
//!   with precomputed sampling CDFs, the read side of the query plane;
//! * [`EdgeLoads`] — dense per-edge load accumulation (the congestion
//!   representation), with deterministic [`EdgeLoads::par_merge`];
//! * [`Csr`] — flattened adjacency for repeated traversals, accepted by
//!   the [`shortest_path`] tree builders via the [`Adjacency`] trait;
//! * [`SubTopology`] — failure-masked view over a CSR: `O(1)` edge/vertex
//!   knockouts with stable edge ids and no graph rebuild;
//! * [`CsrLaplacian`] — the weighted graph Laplacian flattened for
//!   repeated applies, with a preconditioned, bit-stable CG solver and
//!   multi-RHS batching (the electrical-flow template's linear algebra);
//! * [`generators`] — hypercubes, grids, tori, expanders, Waxman WANs, the
//!   two-cliques bridge example, and friends;
//! * [`shortest_path`] — BFS and Dijkstra trees;
//! * [`maxflow`] — Dinic max-flow for `cut_G(s, t)` (Definition 2.1);
//! * [`matching`] — Hopcroft–Karp, used by the Lemma 8.1 adversary;
//! * [`ksp`] — Yen's k-shortest simple paths (SMORE baseline) and
//!   exhaustive path enumeration for exact small-instance optima;
//! * [`dsu`] — union–find.
//!
//! # Examples
//!
//! ```
//! use ssor_graph::{generators, maxflow, shortest_path};
//!
//! let g = generators::hypercube(4);
//! assert_eq!(shortest_path::hop_distance(&g, 0, 15), 4);
//! assert_eq!(maxflow::min_cut_value(&g, 0, 15), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod csr;
pub mod dsu;
pub mod generators;
mod graph;
pub mod ksp;
mod laplacian;
mod load;
pub mod matching;
pub mod maxflow;
mod par;
mod path;
mod route_table;
pub mod shortest_path;
mod store;
mod subtopology;

pub use csr::{Adjacency, Csr, EdgeView, FullTopology};
pub use graph::{Arc, EdgeId, Graph, VertexId};
pub use laplacian::{CsrLaplacian, LaplacianSolve, Preconditioner};
pub use load::EdgeLoads;
pub use par::{derive_seed, par_ordered_map};
pub use path::Path;
pub use route_table::{RouteTable, RouteTableBuilder};
pub use store::{PathId, PathStore};
pub use subtopology::SubTopology;
