//! Disjoint-set union (union-find) with path compression and union by rank.

/// Disjoint-set union over elements `0..n`.
///
/// # Examples
///
/// ```
/// use ssor_graph::dsu::Dsu;
///
/// let mut d = Dsu::new(4);
/// assert!(d.union(0, 1));
/// assert!(d.union(2, 3));
/// assert!(!d.union(1, 0)); // already joined
/// assert!(d.same(0, 1));
/// assert!(!d.same(0, 2));
/// assert_eq!(d.components(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl Dsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = Dsu::new(3);
        assert_eq!(d.components(), 3);
        assert!(!d.same(0, 2));
        assert_eq!(d.find(1), 1);
    }

    #[test]
    fn chain_unions() {
        let mut d = Dsu::new(5);
        for i in 0..4 {
            assert!(d.union(i, i + 1));
        }
        assert_eq!(d.components(), 1);
        assert!(d.same(0, 4));
    }

    #[test]
    fn union_is_idempotent() {
        let mut d = Dsu::new(2);
        assert!(d.union(0, 1));
        assert!(!d.union(0, 1));
        assert_eq!(d.components(), 1);
    }
}
