//! Graph families used throughout the paper and its experiments.
//!
//! Includes the classic parallel-computing topologies (hypercube, grid,
//! torus), random families (Erdős–Rényi, random-regular expanders, Waxman
//! WANs), and the paper's bespoke constructions (the two-cliques bridge
//! example of Section 2.1; `C(n,k)` and `G(n)` live in `ssor-lowerbound`).

use crate::graph::{Graph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// The `d`-dimensional hypercube: `2^d` vertices, vertex `v` adjacent to
/// `v ^ (1 << b)` for each bit `b < d`.
///
/// Edge ids are assigned in order of `(min endpoint, bit)`, so the edge
/// flipping bit `b` at vertex `v` (with `v`'s bit `b` clear) has a
/// deterministic id — the Valiant routing in `ssor-oblivious` relies on
/// [`hypercube_edge`] for O(1) lookup.
///
/// # Examples
///
/// ```
/// let g = ssor_graph::generators::hypercube(3);
/// assert_eq!(g.n(), 8);
/// assert_eq!(g.m(), 12);
/// assert!(g.vertices().all(|v| g.degree(v) == 3));
/// ```
pub fn hypercube(d: u32) -> Graph {
    assert!(
        (1..=25).contains(&d),
        "hypercube dimension must be in 1..=25"
    );
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for v in 0..n as VertexId {
        for b in 0..d {
            let w = v ^ (1 << b);
            if v < w {
                g.add_edge(v, w);
            }
        }
    }
    g
}

/// Id of the hypercube edge between `v` and `v ^ (1 << bit)` under the
/// numbering produced by [`hypercube`].
///
/// Works without touching the graph: vertex `u = min(v, v^bit)` has its
/// `bit`-th bit clear, and edges are emitted in `(u, bit)` lexicographic
/// order restricted to clear bits of `u`.
pub fn hypercube_edge(d: u32, v: VertexId, bit: u32) -> u32 {
    debug_assert!(bit < d);
    let u = v & !(1 << bit); // endpoint with the bit cleared
                             // Count edges emitted before (u, bit): all edges of vertices < u, plus
                             // clear bits of u below `bit`.
    let before_vertices: u64 = (0..u as u64)
        .map(|x| d as u64 - (x.count_ones() as u64))
        .sum();
    let clear_below = (!u & ((1u32 << bit) - 1)).count_ones();
    (before_vertices + clear_below as u64) as u32
}

/// `rows x cols` 2-D grid (mesh), vertex `(r, c)` at index `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// `rows x cols` 2-D torus (grid with wraparound). Requires `rows, cols >= 3`
/// so no parallel edges arise from the wraparound.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both sides >= 3");
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| ((r % rows) * cols + (c % cols)) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id(r, c + 1));
            g.add_edge(id(r, c), id(r + 1, c));
        }
    }
    g
}

/// Cycle on `n >= 3` vertices.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3);
    let mut g = Graph::new(n);
    for v in 0..n {
        g.add_edge(v as VertexId, ((v + 1) % n) as VertexId);
    }
    g
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u as VertexId, v as VertexId);
        }
    }
    g
}

/// Star with `leaves` leaves; vertex 0 is the center.
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for v in 1..=leaves {
        g.add_edge(0, v as VertexId);
    }
    g
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: edges are sampled
/// independently, then any disconnected components are stitched to the
/// largest one with single edges (so the result is always connected, as the
/// paper assumes throughout).
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    connect_components(&mut g, rng);
    g
}

/// Random `d`-regular-ish graph via the configuration model with rejection
/// of self-loops and parallel edges; leftover stubs are dropped, then the
/// graph is stitched to be connected. For `d >= 3` this family is an
/// expander with high probability.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    let mut g = Graph::new(n);
    let mut stubs: Vec<VertexId> = (0..n)
        .flat_map(|v| std::iter::repeat_n(v as VertexId, d))
        .collect();
    // A few restarts drive the leftover count down.
    for _ in 0..20 {
        stubs.shuffle(rng);
        let mut leftovers = Vec::new();
        let mut i = 0;
        while i + 1 < stubs.len() {
            let (u, v) = (stubs[i], stubs[i + 1]);
            if u != v && !g.has_edge_between(u, v) && g.degree(u) < d && g.degree(v) < d {
                g.add_edge(u, v);
            } else {
                leftovers.push(u);
                leftovers.push(v);
            }
            i += 2;
        }
        if leftovers.len() <= 2 {
            break;
        }
        stubs = leftovers;
    }
    connect_components(&mut g, rng);
    g
}

/// Waxman random WAN: `n` points uniform in the unit square; edge `(u, v)`
/// with probability `a * exp(-dist(u, v) / (b * L))` where `L = sqrt(2)`.
/// Returns the graph and the point positions (used by `ssor-te` for
/// plotting/latency). Stitched to be connected.
pub fn waxman<R: Rng + ?Sized>(n: usize, a: f64, b: f64, rng: &mut R) -> (Graph, Vec<(f64, f64)>) {
    let (mut g, pts) = waxman_raw(n, a, b, rng);
    connect_components(&mut g, rng);
    (g, pts)
}

/// The *raw* Waxman draw: like [`waxman`] but without the connectivity
/// stitch, so the result is a faithful sample from the Waxman model and
/// **may be disconnected** (isolated routers are likely for small `a`).
pub fn waxman_raw<R: Rng + ?Sized>(
    n: usize,
    a: f64,
    b: f64,
    rng: &mut R,
) -> (Graph, Vec<(f64, f64)>) {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let l = 2f64.sqrt();
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let d = ((pts[u].0 - pts[v].0).powi(2) + (pts[u].1 - pts[v].1).powi(2)).sqrt();
            if rng.gen_bool((a * (-d / (b * l)).exp()).clamp(0.0, 1.0)) {
                g.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    (g, pts)
}

/// SplitMix64 finalizer: the workspace's one seed-derivation primitive
/// (decorrelating per-pair sampling streams, retry seeds, failure-trial
/// seeds). When combining several indices into one seed, *nest* calls
/// (`mix_seed(mix_seed(a) ^ b)`) rather than XOR-ing two finalized
/// values — `mix_seed(a) ^ mix_seed(b)` is symmetric in `a` and `b` and
/// collides whenever the indices swap or coincide.
pub fn mix_seed(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A *connected* Waxman draw with deterministic, bounded retries: raw
/// draws are taken from seeds derived from `seed` (attempt `k` uses a
/// SplitMix64-mixed `seed ⊕ k` stream) until one is connected. If all
/// `max_attempts` draws are disconnected, the final fallback re-draws
/// from `seed` with the [`waxman`] connectivity stitch, so the function
/// always returns a connected graph.
///
/// Returns `(graph, positions, attempts)` where `attempts` is the number
/// of raw draws that were *rejected* (0 means the first draw was already
/// connected; `max_attempts` means the stitched fallback fired). The
/// whole procedure is a pure function of `(n, a, b, seed)`.
///
/// # Panics
///
/// Panics if `max_attempts == 0`.
pub fn waxman_connected(
    n: usize,
    a: f64,
    b: f64,
    seed: u64,
    max_attempts: usize,
) -> (Graph, Vec<(f64, f64)>, usize) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(max_attempts >= 1, "need at least one attempt");
    for attempt in 0..max_attempts {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed ^ mix_seed(attempt as u64)));
        let (g, pts) = waxman_raw(n, a, b, &mut rng);
        if g.is_connected() {
            return (g, pts, attempt);
        }
    }
    let mut rng = StdRng::seed_from_u64(mix_seed(seed ^ mix_seed(0)));
    let (g, pts) = waxman(n, a, b, &mut rng);
    (g, pts, max_attempts)
}

/// The two-cliques example of Section 2.1: two `size`-cliques joined by
/// `bridges` parallel-disjoint connecting edges (matching distinct clique
/// vertices). A single packet between the cliques *needs* `cut = bridges`
/// candidate paths to be competitive — this motivates `(α + cut)`-sparsity.
///
/// Vertices `0..size` form clique A, `size..2*size` clique B; bridge `i`
/// connects vertex `i` of A to vertex `i` of B (requires `bridges <= size`).
pub fn two_cliques_bridge(size: usize, bridges: usize) -> Graph {
    assert!(bridges <= size && size >= 2);
    let mut g = Graph::new(2 * size);
    for base in [0, size] {
        for u in 0..size {
            for v in (u + 1)..size {
                g.add_edge((base + u) as VertexId, (base + v) as VertexId);
            }
        }
    }
    for i in 0..bridges {
        g.add_edge(i as VertexId, (size + i) as VertexId);
    }
    g
}

/// Binary fat-tree of the given depth: leaves at the bottom, each internal
/// level doubling edge multiplicity toward the root (parallel edges model
/// the fattening). `depth = 3` gives 8 leaves.
pub fn fat_tree(depth: u32) -> Graph {
    assert!((1..=12).contains(&depth));
    let leaves = 1usize << depth;
    // Vertices: heap-indexed complete binary tree with 2 * leaves - 1 nodes.
    let total = 2 * leaves - 1;
    let mut g = Graph::new(total);
    for node in 1..total {
        let parent = (node - 1) / 2;
        // Depth of `node` in the tree (root = 0).
        let d_node = usize::BITS - (node + 1).leading_zeros() - 1;
        // Multiplicity doubles toward the root: leaves attach with 1 edge.
        let mult = 1u32 << (depth - d_node);
        for _ in 0..mult.max(1) {
            g.add_edge(parent as VertexId, node as VertexId);
        }
    }
    g
}

/// Two-tier leaf–spine Clos fabric: every leaf switch connects to every
/// spine switch with `uplink_mult` parallel edges (the fattened core),
/// and `hosts_per_leaf` hosts hang off each leaf with single edges.
///
/// Vertex layout: spines `0..spines`, leaves `spines..spines + leaves`,
/// then hosts in leaf order. Any single spine (or any single uplink) can
/// fail without disconnecting the fabric when `spines >= 2` — the
/// topology failure sweeps exercise.
///
/// # Examples
///
/// ```
/// let g = ssor_graph::generators::leaf_spine(4, 6, 2, 1);
/// assert_eq!(g.n(), 4 + 6 + 12);
/// assert_eq!(g.m(), 4 * 6 + 12);
/// assert!(g.is_connected());
/// ```
pub fn leaf_spine(spines: usize, leaves: usize, hosts_per_leaf: usize, uplink_mult: u32) -> Graph {
    assert!(spines >= 1 && leaves >= 1 && uplink_mult >= 1);
    let n = spines + leaves + leaves * hosts_per_leaf;
    let mut g = Graph::new(n);
    for leaf in 0..leaves {
        let leaf_v = (spines + leaf) as VertexId;
        for spine in 0..spines {
            for _ in 0..uplink_mult {
                g.add_edge(spine as VertexId, leaf_v);
            }
        }
        for h in 0..hosts_per_leaf {
            let host_v = (spines + leaves + leaf * hosts_per_leaf + h) as VertexId;
            g.add_edge(leaf_v, host_v);
        }
    }
    g
}

/// Barbell: two cliques of `size` joined by a path of `path_len` edges.
/// Useful for completion-time experiments (long detours vs congestion).
pub fn barbell(size: usize, path_len: usize) -> Graph {
    assert!(size >= 2 && path_len >= 1);
    let n = 2 * size + path_len - 1;
    let mut g = Graph::new(n);
    for base in [0, size] {
        for u in 0..size {
            for v in (u + 1)..size {
                g.add_edge((base + u) as VertexId, (base + v) as VertexId);
            }
        }
    }
    // Path from vertex 0 (clique A) through fresh vertices to vertex `size`
    // (clique B).
    let mut prev = 0 as VertexId;
    for i in 0..path_len {
        let next = if i + 1 == path_len {
            size as VertexId
        } else {
            (2 * size + i) as VertexId
        };
        g.add_edge(prev, next);
        prev = next;
    }
    g
}

/// Connects a possibly-disconnected graph by linking each non-primary
/// component to a random vertex of the first component.
fn connect_components<R: Rng + ?Sized>(g: &mut Graph, rng: &mut R) {
    let n = g.n();
    if n == 0 {
        return;
    }
    let mut comp = vec![usize::MAX; n];
    let mut reps: Vec<VertexId> = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let c = reps.len();
        reps.push(s as VertexId);
        let mut stack = vec![s as VertexId];
        comp[s] = c;
        while let Some(v) = stack.pop() {
            for a in g.neighbors(v).to_vec() {
                if comp[a.to as usize] == usize::MAX {
                    comp[a.to as usize] = c;
                    stack.push(a.to);
                }
            }
        }
    }
    for (c, &rep) in reps.iter().enumerate().skip(1) {
        // Attach to a random vertex of component 0.
        let candidates: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| comp[v as usize] == 0)
            .collect();
        let anchor = *candidates.choose(rng).unwrap();
        let _ = c;
        g.add_edge(anchor, rep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hypercube_sizes() {
        for d in 1..=6 {
            let g = hypercube(d);
            assert_eq!(g.n(), 1 << d);
            assert_eq!(g.m(), (d as usize) << (d - 1));
            assert!(g.is_connected());
            assert!(g.vertices().all(|v| g.degree(v) == d as usize));
        }
    }

    #[test]
    fn hypercube_edge_lookup_matches_graph() {
        for d in 1..=5u32 {
            let g = hypercube(d);
            for v in 0..(1u32 << d) {
                for b in 0..d {
                    let e = hypercube_edge(d, v, b);
                    let (x, y) = g.endpoints(e);
                    assert_eq!(
                        (x.min(y), x.max(y)),
                        (v.min(v ^ (1 << b)), v.max(v ^ (1 << b))),
                        "d={d} v={v} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());

        let t = torus(3, 4);
        assert_eq!(t.n(), 12);
        assert_eq!(t.m(), 2 * 12);
        assert!(t.vertices().all(|v| t.degree(v) == 4));
    }

    #[test]
    fn ring_complete_star() {
        assert_eq!(ring(5).m(), 5);
        assert_eq!(complete(6).m(), 15);
        let s = star(7);
        assert_eq!(s.n(), 8);
        assert_eq!(s.degree(0), 7);
        assert!(s.is_connected());
    }

    #[test]
    fn erdos_renyi_is_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        for p in [0.0, 0.05, 0.5] {
            let g = erdos_renyi(40, p, &mut rng);
            assert!(g.is_connected(), "p={p}");
            assert_eq!(g.n(), 40);
        }
    }

    #[test]
    fn random_regular_degrees_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular(50, 4, &mut rng);
        assert!(g.is_connected());
        // Stitching may add a few edges; degrees should be near 4.
        let total_deg: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert!(total_deg >= 50 * 3, "total degree {total_deg}");
    }

    #[test]
    fn waxman_stitched_is_connected() {
        let mut rng = StdRng::seed_from_u64(11);
        let (g, pts) = waxman(30, 0.4, 0.2, &mut rng);
        assert!(g.is_connected());
        assert_eq!(pts.len(), 30);
    }

    #[test]
    fn two_cliques_counts() {
        let g = two_cliques_bridge(5, 3);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 2 * 10 + 3);
        assert!(g.is_connected());
    }

    #[test]
    fn fat_tree_shape() {
        let g = fat_tree(3);
        assert_eq!(g.n(), 15);
        assert!(g.is_connected());
        // Root-child edges have multiplicity 2^(depth-1) = 4.
        assert_eq!(g.edges_between(0, 1).len(), 4);
        // Leaf edges have multiplicity 1.
        assert_eq!(g.edges_between(3, 7).len(), 1);
    }

    #[test]
    fn waxman_raw_matches_model_and_can_disconnect() {
        // With a = 0 the raw draw has no edges at all (disconnected for
        // n >= 2), while the stitched variant still connects.
        let mut rng = StdRng::seed_from_u64(1);
        let (raw, pts) = waxman_raw(8, 0.0, 0.2, &mut rng);
        assert_eq!(raw.m(), 0);
        assert!(!raw.is_connected());
        assert_eq!(pts.len(), 8);
        let mut rng = StdRng::seed_from_u64(1);
        let (stitched, _) = waxman(8, 0.0, 0.2, &mut rng);
        assert!(stitched.is_connected());
    }

    #[test]
    fn waxman_connected_is_deterministic_and_connected() {
        for seed in 0..8u64 {
            let (g1, _, att1) = waxman_connected(16, 0.4, 0.25, seed, 16);
            let (g2, _, att2) = waxman_connected(16, 0.4, 0.25, seed, 16);
            assert!(g1.is_connected(), "seed {seed}");
            assert_eq!(att1, att2);
            assert_eq!(
                g1.edges().collect::<Vec<_>>(),
                g2.edges().collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn waxman_connected_falls_back_to_stitching() {
        // a = 0 can never draw a connected raw graph; the bounded retry
        // must exhaust and fall back to the stitched draw.
        let (g, _, attempts) = waxman_connected(6, 0.0, 0.2, 3, 4);
        assert_eq!(attempts, 4);
        assert!(g.is_connected());
    }

    #[test]
    fn leaf_spine_shape_and_resilience() {
        let g = leaf_spine(3, 4, 2, 2);
        assert_eq!(g.n(), 3 + 4 + 8);
        assert_eq!(g.m(), 2 * 3 * 4 + 8);
        assert!(g.is_connected());
        // Leaf 0 reaches every spine with multiplicity 2.
        assert_eq!(g.edges_between(3, 0).len(), 2);
        // Any one spine can die: hosts still reach each other through the
        // other spines.
        let mut sub = g.sub_topology();
        sub.fail_vertex(0);
        assert!(
            sub.reaches((3 + 4) as VertexId, (3 + 4 + 7) as VertexId),
            "hosts survive a spine failure"
        );
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3);
        assert_eq!(g.n(), 4 + 4 + 2);
        assert!(g.is_connected());
    }
}
