//! Shortest paths: BFS (hop metric), Dijkstra (arbitrary edge lengths), and
//! single-source trees reusable across many queries.
//!
//! The tree builders share one implementation generic over [`Adjacency`]
//! and are exported both over [`Graph`] directly ([`bfs_tree`],
//! [`dijkstra_tree`]) and over a flattened [`Csr`] view ([`bfs_tree_csr`],
//! [`dijkstra_tree_csr`]) — callers that sweep many sources over one graph
//! (all-pairs metrics, per-source BFS baselines, the offline-OPT
//! column-generation oracle) build the CSR once and amortize it. Both
//! variants traverse in the identical deterministic order.
//!
//! The Dijkstra core is additionally generic over an [`EdgeView`]
//! restricting which edges may be traversed: [`dijkstra_tree_csr`] is the
//! [`FullTopology`] instantiation, [`dijkstra_tree_csr_view`] accepts any
//! view (e.g. the mask a `SubTopology` exports) — one implementation, so
//! damaged-topology solves cannot drift from intact ones.
//!
//! Multi-source sweeps (all-pairs metrics, per-source baselines, the
//! batch oracle) should use the *batch* helpers — [`bfs_trees_csr_batch`]
//! and [`dijkstra_trees_csr_batch`] / [`dijkstra_trees_csr_view_batch`] —
//! which fan the per-source trees out over rayon workers and return them
//! in source-index order, so results are bit-identical to a serial sweep
//! at any thread count. Small batches stay serial (the cutoff moves
//! wall-clock only, never bits).

use crate::csr::{Adjacency, Csr, EdgeView, FullTopology};
use crate::graph::{EdgeId, Graph, VertexId};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Single-source shortest-path tree: for each vertex, the distance from the
/// source and the (parent vertex, edge) used to reach it.
///
/// Distances are hop counts for [`bfs_tree`] or length sums for
/// [`dijkstra_tree`]; unreachable vertices have `dist == f64::INFINITY`.
#[derive(Debug, Clone)]
pub struct SpTree {
    /// Source vertex of the tree.
    pub source: VertexId,
    /// Distance from source per vertex.
    pub dist: Vec<f64>,
    /// `(parent vertex, connecting edge)` per vertex; `None` at the source
    /// and at unreachable vertices.
    pub parent: Vec<Option<(VertexId, EdgeId)>>,
}

impl SpTree {
    /// Extracts the tree path from the source to `t`, or `None` if `t` is
    /// unreachable.
    pub fn path_to(&self, g: &Graph, t: VertexId) -> Option<Path> {
        if self.dist[t as usize].is_infinite() {
            return None;
        }
        let mut edges_rev: Vec<EdgeId> = Vec::new();
        let mut cur = t;
        while cur != self.source {
            let (p, e) = self.parent[cur as usize]?;
            edges_rev.push(e);
            cur = p;
        }
        edges_rev.reverse();
        Path::from_edges(g, self.source, &edges_rev)
    }

    /// Distance to `t` (`f64::INFINITY` if unreachable).
    pub fn dist_to(&self, t: VertexId) -> f64 {
        self.dist[t as usize]
    }
}

/// Generic BFS core, instantiated for [`Graph`] and [`Csr`] below.
///
/// Kept private and wrapped in concrete functions on purpose: the
/// monomorphic wrappers are compiled (and fully optimized) inside this
/// crate, which measures ~20% faster on the Dijkstra-heavy oracles than
/// letting downstream crates instantiate the generic from exported MIR.
fn bfs_tree_in<A: Adjacency + ?Sized>(g: &A, s: VertexId) -> SpTree {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut q = VecDeque::new();
    dist[s as usize] = 0.0;
    q.push_back(s);
    while let Some(v) = q.pop_front() {
        for a in g.arcs(v) {
            if dist[a.to as usize].is_infinite() {
                dist[a.to as usize] = dist[v as usize] + 1.0;
                parent[a.to as usize] = Some((v, a.edge));
                q.push_back(a.to);
            }
        }
    }
    SpTree {
        source: s,
        dist,
        parent,
    }
}

/// Breadth-first shortest-path tree from `s` (each edge has length 1).
/// Ties are broken toward lower edge ids, deterministically.
pub fn bfs_tree(g: &Graph, s: VertexId) -> SpTree {
    bfs_tree_in(g, s)
}

/// [`bfs_tree`] over a pre-built [`Csr`] view (identical traversal order);
/// build the CSR once when sweeping many sources.
pub fn bfs_tree_csr(g: &Csr, s: VertexId) -> SpTree {
    bfs_tree_in(g, s)
}

/// Shortest hop-path between `s` and `t`, or `None` if disconnected.
pub fn bfs_path(g: &Graph, s: VertexId, t: VertexId) -> Option<Path> {
    if s == t {
        return Some(Path::trivial(s));
    }
    bfs_tree(g, s).path_to(g, t)
}

/// Hop distance between `s` and `t` (`usize::MAX` if disconnected).
pub fn hop_distance(g: &Graph, s: VertexId, t: VertexId) -> usize {
    let d = bfs_tree(g, s).dist[t as usize];
    if d.is_infinite() {
        usize::MAX
    } else {
        d as usize
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: VertexId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; tie-break on vertex id for determinism.
        // `total_cmp`, not `partial_cmp().unwrap_or(Equal)`: treating a
        // NaN distance as equal to everything makes the heap order (and
        // thus the tree) depend on push order instead of on values.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// The single Dijkstra-tree implementation of the workspace, generic over
/// the adjacency representation *and* an [`EdgeView`] restricting which
/// edges may be traversed (see [`bfs_tree_in`] for why it stays private
/// behind monomorphic wrappers).
///
/// Unusable edges are treated as infinitely long: a relaxation through
/// one can never improve a distance, so they are effectively absent while
/// edge ids, traversal order, and tie-breaking stay identical to the
/// unmasked sweep. Vertices cut off by the view end with
/// `dist == f64::INFINITY`, exactly like genuinely unreachable ones.
fn dijkstra_tree_in<A: Adjacency + ?Sized, V: EdgeView + ?Sized>(
    g: &A,
    s: VertexId,
    len: &dyn Fn(EdgeId) -> f64,
    view: &V,
) -> SpTree {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[s as usize] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: s,
    });
    while let Some(HeapEntry { dist: d, vertex: v }) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for a in g.arcs(v) {
            let w = if view.usable(a.edge) {
                len(a.edge)
            } else {
                f64::INFINITY
            };
            // Sentinel at the source: a negative length breaks Dijkstra's
            // invariant outright, and a NaN (`w >= 0.0` is false for NaN)
            // would otherwise make the edge silently unusable — fail here,
            // naming the edge, not three layers downstream.
            debug_assert!(w >= 0.0, "negative or NaN length {w} on edge {}", a.edge);
            let nd = d + w;
            if nd < dist[a.to as usize] {
                dist[a.to as usize] = nd;
                parent[a.to as usize] = Some((v, a.edge));
                heap.push(HeapEntry {
                    dist: nd,
                    vertex: a.to,
                });
            }
        }
    }
    SpTree {
        source: s,
        dist,
        parent,
    }
}

/// Dijkstra shortest-path tree from `s` under per-edge lengths `len`.
///
/// # Panics
///
/// Panics (in debug builds) if a negative length is encountered.
pub fn dijkstra_tree(g: &Graph, s: VertexId, len: &dyn Fn(EdgeId) -> f64) -> SpTree {
    dijkstra_tree_in(g, s, len, &FullTopology)
}

/// [`dijkstra_tree`] over a pre-built [`Csr`] view (identical traversal
/// order); build the CSR once when running many single-source solves —
/// the offline-OPT oracle runs one per source per Frank–Wolfe iteration.
pub fn dijkstra_tree_csr(g: &Csr, s: VertexId, len: &dyn Fn(EdgeId) -> f64) -> SpTree {
    dijkstra_tree_in(g, s, len, &FullTopology)
}

/// [`dijkstra_tree_csr`] restricted to the edges an [`EdgeView`] marks
/// usable — the traversal failure scenarios run against a
/// [`crate::SubTopology`] mask (`&sub.usable_edges()[..]`) without
/// rebuilding a graph. With [`FullTopology`] this is exactly
/// [`dijkstra_tree_csr`]; both wrap the one generic Dijkstra core, so
/// every view traverses in the identical deterministic order over
/// identical edge ids.
pub fn dijkstra_tree_csr_view(
    g: &Csr,
    s: VertexId,
    len: &dyn Fn(EdgeId) -> f64,
    view: &dyn EdgeView,
) -> SpTree {
    dijkstra_tree_in(g, s, len, view)
}

/// Below this many sources a batch tree sweep stays serial: a single
/// tree on the experiment-scale graphs costs a few microseconds, while
/// the vendored rayon shim spawns threads per call. The cutoff affects
/// wall-clock only — results are index-ordered either way.
const BATCH_PAR_MIN_SOURCES: usize = 4;

/// Maps `sources` through `tree` via [`crate::par_ordered_map`]: output
/// in source-index order, serial below the cutoff.
fn batch_trees(sources: &[VertexId], tree: impl Fn(VertexId) -> SpTree + Sync) -> Vec<SpTree> {
    crate::par_ordered_map(sources, BATCH_PAR_MIN_SOURCES, |&s| tree(s))
}

/// One [`bfs_tree_csr`] per source, fanned out over rayon workers and
/// returned in source-index order — bit-identical to a serial sweep at
/// any thread count. The per-source tree builders (`ShortestPathRouting`,
/// ECMP, hop-constrained landmarks) sweep through this.
pub fn bfs_trees_csr_batch(g: &Csr, sources: &[VertexId]) -> Vec<SpTree> {
    batch_trees(sources, |s| bfs_tree_in(g, s))
}

/// One [`dijkstra_tree_csr`] per source, fanned out over rayon workers
/// and returned in source-index order — bit-identical to a serial sweep
/// at any thread count. The all-pairs template metric and the solver's
/// batch oracle are built on this.
pub fn dijkstra_trees_csr_batch(
    g: &Csr,
    sources: &[VertexId],
    len: &(dyn Fn(EdgeId) -> f64 + Sync),
) -> Vec<SpTree> {
    batch_trees(sources, |s| dijkstra_tree_in(g, s, len, &FullTopology))
}

/// [`dijkstra_trees_csr_batch`] restricted to the edges an [`EdgeView`]
/// marks usable — the batch form of [`dijkstra_tree_csr_view`], sharing
/// the identical tree core so masked and intact sweeps cannot drift.
pub fn dijkstra_trees_csr_view_batch(
    g: &Csr,
    sources: &[VertexId],
    len: &(dyn Fn(EdgeId) -> f64 + Sync),
    view: &(dyn EdgeView + Sync),
) -> Vec<SpTree> {
    batch_trees(sources, |s| dijkstra_tree_in(g, s, len, view))
}

/// Shortest path between `s` and `t` under per-edge lengths.
pub fn dijkstra_path(
    g: &Graph,
    s: VertexId,
    t: VertexId,
    len: &dyn Fn(EdgeId) -> f64,
) -> Option<Path> {
    if s == t {
        return Some(Path::trivial(s));
    }
    dijkstra_tree(g, s, len).path_to(g, t)
}

/// Eccentricity-based diameter (exact, all-sources BFS). Intended for the
/// modest graph sizes of the experiments; `O(n * m)`.
pub fn diameter(g: &Graph) -> usize {
    let mut best = 0usize;
    for s in g.vertices() {
        let t = bfs_tree(g, s);
        for v in g.vertices() {
            let d = t.dist[v as usize];
            if d.is_finite() {
                best = best.max(d as usize);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_line() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = bfs_path(&g, 0, 3).unwrap();
        assert_eq!(p.hop(), 3);
        assert_eq!(hop_distance(&g, 0, 3), 3);
    }

    #[test]
    fn bfs_trivial_when_equal() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert_eq!(bfs_path(&g, 1, 1).unwrap().hop(), 0);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert!(bfs_path(&g, 0, 2).is_none());
        assert_eq!(hop_distance(&g, 0, 2), usize::MAX);
    }

    #[test]
    fn dijkstra_prefers_light_detour() {
        // 0-1 has length 10; 0-2-1 has total length 2.
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
        let lens = [10.0, 1.0, 1.0];
        let p = dijkstra_path(&g, 0, 1, &|e| lens[e as usize]).unwrap();
        assert_eq!(p.vertices(), &[0, 2, 1]);
    }

    #[test]
    fn dijkstra_matches_bfs_with_unit_lengths() {
        let g = generators::hypercube(4);
        for (s, t) in [(0u32, 15u32), (3, 12), (5, 10)] {
            let b = bfs_path(&g, s, t).unwrap();
            let d = dijkstra_path(&g, s, t, &|_| 1.0).unwrap();
            assert_eq!(b.hop(), d.hop());
        }
    }

    #[test]
    fn dijkstra_on_parallel_edges_picks_cheapest() {
        let mut g = Graph::new(2);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(0, 1);
        let len = move |e: EdgeId| if e == e0 { 5.0 } else { 1.0 };
        let p = dijkstra_path(&g, 0, 1, &len).unwrap();
        assert_eq!(p.edges(), &[e1]);
    }

    #[test]
    fn hypercube_distance_is_hamming() {
        let g = generators::hypercube(5);
        for (s, t) in [(0u32, 31u32), (1, 2), (7, 24)] {
            assert_eq!(hop_distance(&g, s, t), (s ^ t).count_ones() as usize);
        }
    }

    #[test]
    fn diameter_of_families() {
        assert_eq!(diameter(&generators::hypercube(4)), 4);
        assert_eq!(diameter(&generators::ring(8)), 4);
        assert_eq!(diameter(&generators::complete(5)), 1);
        assert_eq!(diameter(&generators::grid(3, 3)), 4);
    }

    #[test]
    fn csr_trees_match_graph_trees_exactly() {
        let g = generators::grid(4, 5);
        let csr = g.csr();
        let lens: Vec<f64> = (0..g.m()).map(|e| 1.0 + (e % 3) as f64).collect();
        for s in g.vertices() {
            let (a, b) = (bfs_tree(&g, s), bfs_tree_csr(&csr, s));
            assert_eq!(a.dist, b.dist);
            assert_eq!(a.parent, b.parent);
            let (a, b) = (
                dijkstra_tree(&g, s, &|e| lens[e as usize]),
                dijkstra_tree_csr(&csr, s, &|e| lens[e as usize]),
            );
            assert_eq!(a.dist, b.dist);
            assert_eq!(a.parent, b.parent);
        }
    }

    #[test]
    fn full_view_matches_unmasked_exactly() {
        let g = generators::grid(4, 5);
        let csr = g.csr();
        let lens: Vec<f64> = (0..g.m()).map(|e| 1.0 + (e % 5) as f64 * 0.5).collect();
        let all = vec![true; g.m()];
        for s in g.vertices() {
            let a = dijkstra_tree_csr(&csr, s, &|e| lens[e as usize]);
            let b = dijkstra_tree_csr_view(&csr, s, &|e| lens[e as usize], &FullTopology);
            let c = dijkstra_tree_csr_view(&csr, s, &|e| lens[e as usize], &all);
            assert_eq!(a.dist, b.dist);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.dist, c.dist);
            assert_eq!(a.parent, c.parent);
        }
    }

    #[test]
    fn masked_view_matches_rebuilt_graph() {
        // Masking edges must yield the same distances as physically
        // removing them (on the surviving edge set).
        let g = generators::grid(4, 4);
        let csr = g.csr();
        let mut usable = vec![true; g.m()];
        for e in [1usize, 5, 10] {
            usable[e] = false;
        }
        let kept: Vec<(VertexId, VertexId)> = g
            .edges()
            .filter(|(e, _)| usable[*e as usize])
            .map(|(_, uv)| uv)
            .collect();
        let rebuilt = Graph::from_edges(g.n(), &kept);
        for s in g.vertices() {
            let masked = dijkstra_tree_csr_view(&csr, s, &|_| 1.0, &usable);
            let reference = dijkstra_tree(&rebuilt, s, &|_| 1.0);
            assert_eq!(masked.dist, reference.dist, "source {s}");
        }
    }

    #[test]
    fn masked_view_cuts_off_unreachable_vertices() {
        // Ring of 4 with two opposite edges dead: 0 and 2 are separated.
        let g = generators::ring(4);
        let csr = g.csr();
        let usable = vec![false, true, false, true];
        let t = dijkstra_tree_csr_view(&csr, 0, &|_| 1.0, &usable);
        assert!(t.dist[2].is_infinite());
        assert!(t.path_to(&g, 2).is_none());
        assert_eq!(t.dist[3], 1.0);
    }

    #[test]
    fn batch_trees_match_per_source_calls() {
        let g = generators::grid(4, 5);
        let csr = g.csr();
        let lens: Vec<f64> = (0..g.m()).map(|e| 1.0 + (e % 4) as f64 * 0.25).collect();
        let sources: Vec<VertexId> = g.vertices().collect();
        let bfs_batch = bfs_trees_csr_batch(&csr, &sources);
        let dij_batch = dijkstra_trees_csr_batch(&csr, &sources, &|e| lens[e as usize]);
        for (i, &s) in sources.iter().enumerate() {
            let b = bfs_tree_csr(&csr, s);
            assert_eq!(bfs_batch[i].dist, b.dist);
            assert_eq!(bfs_batch[i].parent, b.parent);
            let d = dijkstra_tree_csr(&csr, s, &|e| lens[e as usize]);
            assert_eq!(dij_batch[i].dist, d.dist);
            assert_eq!(dij_batch[i].parent, d.parent);
        }
    }

    #[test]
    fn batch_view_trees_match_masked_calls() {
        let g = generators::grid(4, 4);
        let csr = g.csr();
        let mut usable = vec![true; g.m()];
        for e in [0usize, 7, 13] {
            usable[e] = false;
        }
        let sources: Vec<VertexId> = g.vertices().collect();
        let batch = dijkstra_trees_csr_view_batch(&csr, &sources, &|_| 1.0, &usable);
        for (i, &s) in sources.iter().enumerate() {
            let one = dijkstra_tree_csr_view(&csr, s, &|_| 1.0, &usable);
            assert_eq!(batch[i].dist, one.dist, "source {s}");
            assert_eq!(batch[i].parent, one.parent, "source {s}");
        }
    }

    #[test]
    fn sp_tree_paths_are_valid_and_simple() {
        let g = generators::grid(4, 5);
        let t = bfs_tree(&g, 0);
        for v in g.vertices() {
            let p = t.path_to(&g, v).unwrap();
            assert!(p.is_valid(&g));
            assert!(p.is_simple());
            assert_eq!(p.hop() as f64, t.dist[v as usize]);
        }
    }
}
