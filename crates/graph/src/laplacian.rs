//! Sparse graph-Laplacian linear algebra: a CSR-backed operator apply
//! and a preconditioned conjugate-gradient solver.
//!
//! The electrical-flow template ([`ssor-oblivious`]'s
//! `ElectricalRouting`) reduces to solving `L ψ = b` many times over the
//! same weighted Laplacian `L`. This module is that solver, restructured
//! for scale:
//!
//! * [`CsrLaplacian`] flattens the operator once into offset/neighbor/
//!   weight arrays, so every CG iteration sweeps two dense arrays
//!   instead of re-walking `Graph::edges` — the same CSR discipline the
//!   shortest-path layer adopted in PR 2;
//! * [`CsrLaplacian::solve`] runs conjugate gradients with an optional
//!   Jacobi (inverse-degree) [`Preconditioner`], keeping iterates
//!   orthogonal to the all-ones kernel; every reduction (dot products,
//!   kernel projections) is a serial left-to-right fold, so the returned
//!   potentials are a pure function of `(operator, rhs, options)` —
//!   bit-stable across runs and thread counts;
//! * [`CsrLaplacian::solve_batch`] fans independent right-hand sides out
//!   over rayon workers via [`crate::par_ordered_map`], collected in
//!   input order — the multi-RHS shape the per-source electrical
//!   template build consumes.
//!
//! The apply is **bitwise identical** to the textbook edge-walk
//! (`for (e, (u, v)): y[u] += c·(x[u]−x[v]); y[v] −= …`): per-vertex
//! adjacency lists hold arcs in increasing edge-id order, so vertex `v`
//! accumulates exactly the same addends in exactly the same order as the
//! edge walk delivers them — a property the graph crate's proptests pin
//! with `to_bits()`.
//!
//! [`ssor-oblivious`]: ../../ssor_oblivious/index.html

use crate::graph::{Graph, VertexId};
use crate::par::par_ordered_map;

/// Which preconditioner [`CsrLaplacian::solve`] applies.
///
/// Hashable and bit-stable, so engine specs can carry it as a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Preconditioner {
    /// No preconditioning: plain conjugate gradients.
    None,
    /// Jacobi (diagonal) scaling by inverse weighted degree — one
    /// multiply per entry per iteration, and on the irregular-degree
    /// topologies (Waxman WANs, Clos fabrics with parallel uplinks) it
    /// cuts iteration counts severalfold. The default.
    #[default]
    Jacobi,
}

/// One converged (or iteration-capped) Laplacian solve.
#[derive(Debug, Clone)]
pub struct LaplacianSolve {
    /// The mean-centered potentials `ψ` with `L ψ ≈ b`.
    pub potentials: Vec<f64>,
    /// CG iterations performed.
    pub iterations: usize,
    /// Final `‖r‖₂ / ‖b‖₂` (the convergence criterion's quantity).
    pub relative_residual: f64,
}

/// The weighted graph Laplacian `L = D − A` in compressed sparse row
/// form, ready for repeated applies and solves.
///
/// Built once per (graph, conductances) pair in `O(n + m)`; stores one
/// `(neighbor, weight)` pair per arc in the same per-vertex,
/// increasing-edge-id order as [`Graph::neighbors`], plus the weighted
/// degree diagonal.
///
/// # Examples
///
/// ```
/// use ssor_graph::{CsrLaplacian, Graph, Preconditioner};
///
/// // Path 0-1-2 with unit conductances: solving L ψ = e_0 − e_2 gives
/// // potential drop 2 (series resistances add).
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let lap = CsrLaplacian::new(&g, &[1.0, 1.0]);
/// let b = vec![1.0, 0.0, -1.0];
/// let s = lap.solve(&b, Preconditioner::Jacobi, 1e-10, 100);
/// assert!((s.potentials[0] - s.potentials[2] - 2.0).abs() < 1e-8);
/// ```
#[derive(Debug, Clone)]
pub struct CsrLaplacian {
    offsets: Vec<u32>,
    nbr: Vec<VertexId>,
    w: Vec<f64>,
    diag: Vec<f64>,
}

impl CsrLaplacian {
    /// Flattens the Laplacian of `g` under per-edge `conductance`.
    ///
    /// # Panics
    ///
    /// Panics if `conductance.len() != g.m()` or any conductance is not
    /// finite and positive (a zero or negative conductance is not a
    /// Laplacian; disconnection must be handled by the caller).
    pub fn new(g: &Graph, conductance: &[f64]) -> CsrLaplacian {
        assert_eq!(conductance.len(), g.m(), "one conductance per edge");
        assert!(
            conductance.iter().all(|&c| c > 0.0 && c.is_finite()),
            "conductances must be finite and positive"
        );
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut nbr = Vec::with_capacity(2 * g.m());
        let mut w = Vec::with_capacity(2 * g.m());
        let mut diag = Vec::with_capacity(n);
        offsets.push(0u32);
        for v in g.vertices() {
            let mut d = 0.0;
            for a in g.neighbors(v) {
                let c = conductance[a.edge as usize];
                nbr.push(a.to);
                w.push(c);
                d += c;
            }
            diag.push(d);
            offsets.push(nbr.len() as u32);
        }
        CsrLaplacian {
            offsets,
            nbr,
            w,
            diag,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Weighted degree (the Laplacian diagonal) of `v`.
    pub fn degree(&self, v: VertexId) -> f64 {
        self.diag[v as usize]
    }

    /// `y = L x`, overwriting `y`.
    ///
    /// Per vertex `v`: `y[v] = Σ_arcs c · (x[v] − x[nbr])`, accumulated
    /// in increasing-edge-id arc order — bitwise identical to the
    /// edge-walk formulation (each addend is the exact IEEE negation of
    /// the walk's, and the per-target addition order coincides).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` has the wrong length.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for v in 0..n {
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            let xv = x[v];
            let mut acc = 0.0;
            for (to, c) in self.nbr[lo..hi].iter().zip(&self.w[lo..hi]) {
                acc += c * (xv - x[*to as usize]);
            }
            y[v] = acc;
        }
    }

    /// Solves `L ψ = b` by (preconditioned) conjugate gradients on the
    /// pseudo-inverse, returning mean-centered potentials.
    ///
    /// Converged when `‖r‖₂ ≤ tol · ‖b‖₂`; capped at `max_iters`
    /// iterations. Every reduction is a serial left-to-right fold, so
    /// the result is bit-stable.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `b` is not orthogonal to the all-ones
    /// kernel *relative to its own scale* (`|Σb| > 1e-6 · ‖b‖₁` — an
    /// absolute threshold here would reject legitimately scaled demand
    /// vectors while passing tiny vectors with 100% drift).
    pub fn solve(
        &self,
        b: &[f64],
        precond: Preconditioner,
        tol: f64,
        max_iters: usize,
    ) -> LaplacianSolve {
        let n = self.n();
        assert_eq!(b.len(), n);
        let bsum: f64 = b.iter().sum();
        let bl1: f64 = b.iter().map(|v| v.abs()).sum();
        assert!(
            bsum.abs() <= 1e-6 * bl1.max(f64::MIN_POSITIVE),
            "b must be orthogonal to the kernel relative to its scale \
             (sum {bsum}, l1 {bl1})"
        );

        let center = |x: &mut [f64]| {
            let mean = x.iter().sum::<f64>() / n as f64;
            x.iter_mut().for_each(|v| *v -= mean);
        };
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        let apply_precond = |r: &[f64], z: &mut [f64]| match precond {
            Preconditioner::None => z.copy_from_slice(r),
            Preconditioner::Jacobi => {
                for ((zi, ri), d) in z.iter_mut().zip(r).zip(&self.diag) {
                    // Isolated vertices have zero degree; their
                    // component of any kernel-orthogonal rhs is 0 too,
                    // so passing it through unscaled is exact.
                    *zi = if *d > 0.0 { ri / d } else { *ri };
                }
            }
        };

        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        center(&mut r);
        let b_norm = dot(&r, &r).sqrt().max(f64::MIN_POSITIVE);
        let mut z = vec![0.0; n];
        apply_precond(&r, &mut z);
        center(&mut z);
        let mut p = z.clone();
        let mut ap = vec![0.0; n];
        let mut rz = dot(&r, &z);
        let mut iterations = 0;
        let mut r_norm = dot(&r, &r).sqrt();

        while iterations < max_iters {
            if r_norm <= tol * b_norm {
                break;
            }
            self.apply(&p, &mut ap);
            let pap = dot(&p, &ap);
            if pap.abs() < 1e-300 {
                break;
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            apply_precond(&r, &mut z);
            // Re-project the preconditioned residual off the kernel:
            // Jacobi scaling does not preserve orthogonality to 1, and
            // letting the drift compound stalls CG near convergence.
            center(&mut z);
            let rz_new = dot(&r, &z);
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
            iterations += 1;
            r_norm = dot(&r, &r).sqrt();
        }
        center(&mut x);
        LaplacianSolve {
            potentials: x,
            iterations,
            relative_residual: r_norm / b_norm,
        }
    }

    /// Solves one system per right-hand side, fanned out over rayon
    /// workers via [`par_ordered_map`] and returned in input order —
    /// bit-identical to a serial sweep at any thread count. The
    /// multi-RHS shape of the per-source electrical template build.
    pub fn solve_batch(
        &self,
        rhs: &[Vec<f64>],
        precond: Preconditioner,
        tol: f64,
        max_iters: usize,
    ) -> Vec<LaplacianSolve> {
        par_ordered_map(rhs, BATCH_PAR_MIN_RHS, |b| {
            self.solve(b, precond, tol, max_iters)
        })
    }
}

/// Below this many right-hand sides a batch solve stays serial (the
/// vendored rayon shim spawns threads per call, which only amortizes
/// over enough work); the cutoff moves wall-clock, never bits.
const BATCH_PAR_MIN_RHS: usize = 4;

impl Graph {
    /// Builds the CSR Laplacian of this graph under `conductance` (see
    /// [`CsrLaplacian`]).
    pub fn csr_laplacian(&self, conductance: &[f64]) -> CsrLaplacian {
        CsrLaplacian::new(self, conductance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// The pre-CSR reference: the textbook edge walk over
    /// `Graph::edges`, kept verbatim as the bitwise baseline.
    fn apply_reference(g: &Graph, w: &[f64], x: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        for (e, (u, v)) in g.edges() {
            let c = w[e as usize];
            let d = x[u as usize] - x[v as usize];
            y[u as usize] += c * d;
            y[v as usize] -= c * d;
        }
    }

    #[test]
    fn apply_matches_edge_walk_bitwise_on_a_multigraph() {
        let mut g = generators::grid(4, 5);
        // Parallel edges stress the per-arc ordering argument.
        g.add_edge(0, 1);
        g.add_edge(7, 12);
        let w: Vec<f64> = (0..g.m()).map(|e| 0.25 + (e % 7) as f64 * 0.5).collect();
        let x: Vec<f64> = (0..g.n()).map(|v| (v as f64).sin() * 3.0).collect();
        let lap = CsrLaplacian::new(&g, &w);
        let mut y_csr = vec![0.0; g.n()];
        let mut y_ref = vec![0.0; g.n()];
        lap.apply(&x, &mut y_csr);
        apply_reference(&g, &w, &x, &mut y_ref);
        for v in 0..g.n() {
            assert_eq!(y_csr[v].to_bits(), y_ref[v].to_bits(), "vertex {v}");
        }
    }

    #[test]
    fn solve_recovers_series_resistance() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let lap = CsrLaplacian::new(&g, &[1.0, 2.0, 4.0]);
        let b = vec![1.0, 0.0, 0.0, -1.0];
        for precond in [Preconditioner::None, Preconditioner::Jacobi] {
            let s = lap.solve(&b, precond, 1e-12, 200);
            // R = 1 + 1/2 + 1/4.
            let r = s.potentials[0] - s.potentials[3];
            assert!((r - 1.75).abs() < 1e-9, "{precond:?}: got {r}");
        }
    }

    #[test]
    fn jacobi_converges_in_fewer_iterations_on_irregular_graphs() {
        let (g, _, _) = generators::waxman_connected(120, 0.4, 0.25, 3, 16);
        let w: Vec<f64> = (0..g.m()).map(|e| 1.0 + (e % 9) as f64).collect();
        let lap = CsrLaplacian::new(&g, &w);
        let mut b = vec![0.0; g.n()];
        b[0] = 1.0;
        b[g.n() - 1] = -1.0;
        let plain = lap.solve(&b, Preconditioner::None, 1e-10, 10_000);
        let jacobi = lap.solve(&b, Preconditioner::Jacobi, 1e-10, 10_000);
        assert!(plain.relative_residual <= 1e-10);
        assert!(jacobi.relative_residual <= 1e-10);
        assert!(
            jacobi.iterations < plain.iterations,
            "jacobi {} vs plain {}",
            jacobi.iterations,
            plain.iterations
        );
        // Both converge to the same potentials (up to the tolerance).
        for v in 0..g.n() {
            assert!((plain.potentials[v] - jacobi.potentials[v]).abs() < 1e-6);
        }
    }

    #[test]
    fn kernel_check_is_relative_to_scale() {
        let g = generators::ring(6);
        let lap = CsrLaplacian::new(&g, &vec![1.0; g.m()]);
        // Legitimately scaled rhs: sums to 0 exactly, huge norm.
        let mut big = vec![0.0; 6];
        big[0] = 1e300;
        big[3] = -1e300;
        let s = lap.solve(&big, Preconditioner::Jacobi, 1e-10, 200);
        assert!(s.potentials.iter().all(|p| p.is_finite()));
        // Tiny rhs: denormal scale, still fine relative to itself.
        let mut tiny = vec![0.0; 6];
        tiny[0] = 1e-310;
        tiny[3] = -1e-310;
        let s = lap.solve(&tiny, Preconditioner::Jacobi, 1e-10, 200);
        assert_eq!(s.potentials.len(), 6);
    }

    #[test]
    #[should_panic(expected = "orthogonal to the kernel")]
    fn kernel_check_rejects_relative_drift() {
        // 100% relative drift at a tiny absolute scale: the old absolute
        // `|Σb| < 1e-6` check passed this silently.
        let g = generators::ring(4);
        let lap = CsrLaplacian::new(&g, &vec![1.0; g.m()]);
        lap.solve(&[1e-9, 1e-9, 0.0, 0.0], Preconditioner::None, 1e-10, 10);
    }

    #[test]
    fn solve_batch_matches_serial_solves_bitwise() {
        let g = generators::grid(5, 5);
        let w: Vec<f64> = (0..g.m()).map(|e| 1.0 + (e % 3) as f64 * 0.5).collect();
        let lap = CsrLaplacian::new(&g, &w);
        let n = g.n();
        let rhs: Vec<Vec<f64>> = (0..8)
            .map(|s| {
                let mut b = vec![-1.0 / n as f64; n];
                b[s] += 1.0;
                b
            })
            .collect();
        let batch = lap.solve_batch(&rhs, Preconditioner::Jacobi, 1e-10, 500);
        for (b, got) in rhs.iter().zip(&batch) {
            let serial = lap.solve(b, Preconditioner::Jacobi, 1e-10, 500);
            assert_eq!(serial.iterations, got.iterations);
            for v in 0..n {
                assert_eq!(serial.potentials[v].to_bits(), got.potentials[v].to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nonpositive_conductance() {
        let g = generators::ring(3);
        CsrLaplacian::new(&g, &[1.0, 0.0, 1.0]);
    }
}
