//! The immutable serving snapshot: per-pair path distributions flattened
//! into contiguous buffers with precomputed sampling CDFs.
//!
//! A routing template answers `sample_path(s, t)` by walking live objects
//! — tree mixtures, intermediate enumerations — which is fine for batch
//! sampling but far too much machinery for a query plane that must answer
//! millions of lookups per second. A [`RouteTable`] is the compiled form:
//! every path of every pair interned once into a [`PathStore`] arena, a
//! CSR index from `(s, t)` to its [`PathId`] range, and the cumulative
//! distribution of each pair precomputed so a draw is one uniform deviate,
//! one binary search over targets, and one `partition_point` over the CDF.
//! The table is immutable after [`RouteTableBuilder::finish`]; serving
//! layers share it behind an `Arc` and swap whole generations atomically.
//!
//! # Sampling contract
//!
//! [`RouteTable::sample_with`] pins the exact arithmetic so independent
//! implementations can be compared bit-for-bit: pair weights are
//! normalized by their left-to-right `f64` sum exactly as
//! `ssor_flow::Routing::set_distribution` normalizes (validate, total,
//! drop zeros, divide), the CDF is the left-to-right prefix sum of the
//! normalized weights, and a deviate `u ∈ [0, 1)` selects the first index
//! whose CDF entry reaches `u * total`. Replaying the same deviates
//! against the pair's `Routing` distribution therefore selects the same
//! paths, bit-identically — the property the serving determinism suite
//! pins.

use crate::graph::VertexId;
use crate::path::Path;
use crate::store::{PathId, PathStore};
use rand::Rng;

/// An immutable, flattened snapshot of per-pair path distributions (see
/// the module docs).
///
/// # Examples
///
/// ```
/// use ssor_graph::{Graph, Path, RouteTableBuilder};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// let direct = Path::from_vertices(&g, &[0, 2]).unwrap();
/// let detour = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
/// let mut b = RouteTableBuilder::new(3, 1);
/// b.push_pair(0, 2, &[(direct.clone(), 0.75), (detour, 0.25)]);
/// let table = b.finish();
/// assert_eq!(table.generation(), 1);
/// assert_eq!(table.pair_count(), 1);
/// // u = 0.5 lands in the first (mass-0.75) path's CDF interval.
/// let id = table.sample_with(0, 2, 0.5).unwrap();
/// assert_eq!(table.store().materialize(id), direct);
/// assert!(table.sample_with(1, 2, 0.5).is_none(), "pair not in table");
/// ```
#[derive(Debug, Clone)]
pub struct RouteTable {
    n: usize,
    generation: u64,
    store: PathStore,
    /// CSR over sources: pairs with source `s` occupy pair indices
    /// `src_offsets[s]..src_offsets[s + 1]` in `targets` / `ranges`.
    src_offsets: Vec<u32>,
    /// Target of each pair, ascending within one source's range.
    targets: Vec<VertexId>,
    /// Per pair: `(start, len)` into `path_ids` / `cdf`.
    ranges: Vec<(u32, u32)>,
    /// Flat per-pair path ids, concatenated in pair order.
    path_ids: Vec<PathId>,
    /// Flat per-pair cumulative normalized weights, aligned with
    /// `path_ids`; each pair's final entry is its total (≈ 1).
    cdf: Vec<f64>,
}

impl RouteTable {
    /// The vertex count the table was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The generation counter stamped at build time. Query seeds derive
    /// from `(generation, request_id)`, so replies are replayable against
    /// any table of the same generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shared path arena ids refer into.
    pub fn store(&self) -> &PathStore {
        &self.store
    }

    /// Number of pairs with a distribution.
    pub fn pair_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total path references across all pairs (one CDF entry each).
    pub fn total_path_refs(&self) -> usize {
        self.path_ids.len()
    }

    /// Approximate heap footprint of the flattened buffers in bytes
    /// (arena + index + CDFs), for capacity planning.
    pub fn flat_bytes(&self) -> usize {
        use std::mem::size_of;
        self.src_offsets.len() * size_of::<u32>()
            + self.targets.len() * size_of::<VertexId>()
            + self.ranges.len() * size_of::<(u32, u32)>()
            + self.path_ids.len() * size_of::<PathId>()
            + self.cdf.len() * size_of::<f64>()
    }

    /// The dense pair index of `(s, t)`, if the table has it: binary
    /// search over the source's target range. Infallible by
    /// construction — every access is a checked `.get` — because this
    /// sits under the serving plane's panic-freedom contract.
    fn pair_index(&self, s: VertexId, t: VertexId) -> Option<usize> {
        let s = s as usize;
        let lo = *self.src_offsets.get(s)? as usize;
        let hi = *self.src_offsets.get(s + 1)? as usize;
        let row = self.targets.get(lo..hi)?;
        row.binary_search(&t).ok().map(|i| lo + i)
    }

    /// The `(path_ids, cdf)` slices of `R(s, t)`; `None` when the pair
    /// is not in the table. The two slices are aligned and non-empty
    /// (the builder rejects empty distributions).
    fn pair_slices(&self, s: VertexId, t: VertexId) -> Option<(&[PathId], &[f64])> {
        let i = self.pair_index(s, t)?;
        let &(start, len) = self.ranges.get(i)?;
        let (start, end) = (start as usize, (start + len) as usize);
        Some((self.path_ids.get(start..end)?, self.cdf.get(start..end)?))
    }

    /// The path ids of `R(s, t)`, in distribution order; `None` when the
    /// pair is not in the table.
    pub fn path_ids(&self, s: VertexId, t: VertexId) -> Option<&[PathId]> {
        Some(self.pair_slices(s, t)?.0)
    }

    /// The cumulative normalized weights of `R(s, t)`, aligned with
    /// [`RouteTable::path_ids`].
    pub fn cdf(&self, s: VertexId, t: VertexId) -> Option<&[f64]> {
        Some(self.pair_slices(s, t)?.1)
    }

    /// Draws one path of `R(s, t)` from the uniform deviate `u ∈ [0, 1)`:
    /// the first index whose cumulative weight reaches `u * total` (see
    /// the module docs for the exact pinned arithmetic). `None` when the
    /// pair is not in the table.
    pub fn sample_with(&self, s: VertexId, t: VertexId, u: f64) -> Option<PathId> {
        let (ids, cdf) = self.pair_slices(s, t)?;
        sample_cdf(ids, cdf, u)
    }

    /// Draws `alpha` paths for `(s, t)` by consuming `alpha` deviates
    /// from `rng` in order (duplicates allowed — Definition 5.2 samples
    /// with replacement), appending them to `out`. Returns `false`
    /// without consuming the RNG or touching `out` when the pair is not
    /// in the table.
    ///
    /// This is the serving plane's entry: `out` is per-shard scratch
    /// with capacity reserved at batch setup, so the per-request path
    /// performs no allocation.
    pub fn sample_alpha_into<R: Rng + ?Sized>(
        &self,
        s: VertexId,
        t: VertexId,
        alpha: usize,
        rng: &mut R,
        out: &mut Vec<PathId>,
    ) -> bool {
        let Some((ids, cdf)) = self.pair_slices(s, t) else {
            return false;
        };
        for _ in 0..alpha {
            let u = rng.gen::<f64>();
            if let Some(id) = sample_cdf(ids, cdf, u) {
                // Appends into caller-reserved capacity; the reserve is
                // per-batch setup, not per-request work.
                out.push(id); // lint: allow(hot_alloc)
            }
        }
        true
    }

    /// Draws `alpha` paths for `(s, t)` into a fresh `Vec` (convenience
    /// over [`RouteTable::sample_alpha_into`]). `None` when the pair is
    /// not in the table; the RNG is not consumed in that case.
    pub fn sample_alpha<R: Rng + ?Sized>(
        &self,
        s: VertexId,
        t: VertexId,
        alpha: usize,
        rng: &mut R,
    ) -> Option<Vec<PathId>> {
        let mut out = Vec::with_capacity(alpha);
        if self.sample_alpha_into(s, t, alpha, rng, &mut out) {
            Some(out)
        } else {
            None
        }
    }
}

/// The pinned CDF draw over one pair's aligned slices: first index
/// whose cumulative weight reaches `u * total`, clamped to the last
/// path for deviates at/above the total (float rounding), mirroring
/// the subtractive scan's fallback arm. `None` only on empty slices,
/// which the builder never produces.
fn sample_cdf(ids: &[PathId], cdf: &[f64], u: f64) -> Option<PathId> {
    let total = *cdf.last()?;
    let x = u * total;
    let k = cdf.partition_point(|&c| c < x).min(cdf.len() - 1);
    ids.get(k).copied()
}

/// Builds a [`RouteTable`] from per-pair distributions pushed in strictly
/// increasing `(s, t)` order.
///
/// # Examples
///
/// ```
/// use ssor_graph::{Graph, Path, RouteTableBuilder};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let mut b = RouteTableBuilder::new(3, 7);
/// b.push_pair(0, 1, &[(Path::from_vertices(&g, &[0, 1]).unwrap(), 1.0)]);
/// b.push_pair(1, 2, &[(Path::from_vertices(&g, &[1, 2]).unwrap(), 1.0)]);
/// let table = b.finish();
/// assert_eq!(table.pair_count(), 2);
/// assert_eq!(table.generation(), 7);
/// ```
#[derive(Debug)]
pub struct RouteTableBuilder {
    n: usize,
    generation: u64,
    store: PathStore,
    targets: Vec<VertexId>,
    /// Source of each pushed pair (expanded into CSR offsets at finish).
    sources: Vec<VertexId>,
    ranges: Vec<(u32, u32)>,
    path_ids: Vec<PathId>,
    cdf: Vec<f64>,
}

impl RouteTableBuilder {
    /// An empty builder for an `n`-vertex graph, stamping `generation`
    /// into the finished table.
    pub fn new(n: usize, generation: u64) -> Self {
        RouteTableBuilder {
            n,
            generation,
            store: PathStore::new(),
            targets: Vec::new(),
            sources: Vec::new(),
            ranges: Vec::new(),
            path_ids: Vec::new(),
            cdf: Vec::new(),
        }
    }

    /// Pushes the distribution of pair `(s, t)`: paths interned into the
    /// arena, weights normalized by their left-to-right sum (zero-weight
    /// entries dropped *after* the total, exactly as
    /// `Routing::set_distribution` does), CDF precomputed.
    ///
    /// # Panics
    ///
    /// Panics if pairs arrive out of strictly increasing `(s, t)` order,
    /// if `s == t` or a vertex is out of range, if any path does not run
    /// `s → t`, if a weight is negative or non-finite, or if the weights
    /// sum to zero or a non-finite total.
    pub fn push_pair(&mut self, s: VertexId, t: VertexId, dist: &[(Path, f64)]) {
        assert_ne!(s, t, "pairs have distinct endpoints");
        assert!(
            (s as usize) < self.n && (t as usize) < self.n,
            "vertex out of range"
        );
        if let (Some(&ps), Some(&pt)) = (self.sources.last(), self.targets.last()) {
            assert!(
                (ps, pt) < (s, t),
                "pairs must be pushed in strictly increasing (s, t) order: ({ps}, {pt}) then ({s}, {t})"
            );
        }
        assert!(!dist.is_empty(), "distribution needs at least one path");
        for (_, w) in dist {
            assert!(
                w.is_finite() && *w >= 0.0,
                "path weight must be finite and nonnegative, got {w}"
            );
        }
        let total: f64 = dist.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "weights must not all be zero");
        assert!(
            total.is_finite(),
            "weights must sum to a finite total, got {total}"
        );

        let start = self.path_ids.len() as u32;
        let mut acc = 0.0f64;
        for (path, w) in dist {
            if *w <= 0.0 {
                continue;
            }
            assert_eq!(path.source(), s, "path source mismatch");
            assert_eq!(path.target(), t, "path target mismatch");
            acc += w / total;
            self.path_ids.push(self.store.intern(path));
            self.cdf.push(acc);
        }
        let len = self.path_ids.len() as u32 - start;
        self.sources.push(s);
        self.targets.push(t);
        self.ranges.push((start, len));
    }

    /// Flattens into the immutable [`RouteTable`].
    pub fn finish(self) -> RouteTable {
        // Expand the sorted pair sources into CSR offsets.
        let mut src_offsets = vec![0u32; self.n + 1];
        for &s in &self.sources {
            src_offsets[s as usize + 1] += 1;
        }
        for i in 0..self.n {
            src_offsets[i + 1] += src_offsets[i];
        }
        RouteTable {
            n: self.n,
            generation: self.generation,
            store: self.store,
            src_offsets,
            targets: self.targets,
            ranges: self.ranges,
            path_ids: self.path_ids,
            cdf: self.cdf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_path_table() -> (RouteTable, Path, Path) {
        let g = generators::ring(4);
        let cw = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        let ccw = Path::from_vertices(&g, &[0, 3, 2]).unwrap();
        let mut b = RouteTableBuilder::new(4, 1);
        b.push_pair(0, 2, &[(cw.clone(), 0.25), (ccw.clone(), 0.75)]);
        (b.finish(), cw, ccw)
    }

    #[test]
    fn cdf_intervals_match_normalized_weights() {
        let (table, cw, ccw) = two_path_table();
        let cdf = table.cdf(0, 2).unwrap();
        assert_eq!(cdf, &[0.25, 1.0]);
        let ids = table.path_ids(0, 2).unwrap();
        assert_eq!(table.store().materialize(ids[0]), cw);
        assert_eq!(table.store().materialize(ids[1]), ccw);
    }

    #[test]
    fn sample_with_selects_by_cdf_interval() {
        let (table, cw, ccw) = two_path_table();
        let at = |u: f64| {
            table
                .store()
                .materialize(table.sample_with(0, 2, u).unwrap())
        };
        assert_eq!(at(0.0), cw, "u = 0 takes the first path");
        assert_eq!(at(0.2), cw);
        // The boundary deviate selects the first entry whose cumulative
        // weight *reaches* it (>=), matching the subtractive scan's
        // `x - w <= 0` arm.
        assert_eq!(at(0.25), cw);
        assert_eq!(at(0.2500001), ccw);
        assert_eq!(at(0.9999), ccw);
        assert_eq!(at(1.0), ccw, "deviate at the total clamps to the last path");
    }

    #[test]
    fn zero_weight_entries_are_dropped_after_the_total() {
        let g = generators::ring(4);
        let cw = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        let ccw = Path::from_vertices(&g, &[0, 3, 2]).unwrap();
        let mut b = RouteTableBuilder::new(4, 1);
        b.push_pair(0, 2, &[(cw, 0.5), (ccw.clone(), 0.0)]);
        let table = b.finish();
        assert_eq!(table.path_ids(0, 2).unwrap().len(), 1);
        assert_eq!(table.cdf(0, 2).unwrap(), &[1.0]);
    }

    #[test]
    fn pairs_share_the_arena() {
        let g = generators::ring(4);
        let shared = Path::from_vertices(&g, &[1, 2]).unwrap();
        let longer = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        let mut b = RouteTableBuilder::new(4, 1);
        b.push_pair(0, 2, &[(longer, 1.0)]);
        b.push_pair(1, 2, &[(shared.clone(), 1.0)]);
        let table = b.finish();
        // Arena holds 2 distinct paths even though both pairs reference it.
        assert_eq!(table.store().len(), 2);
        assert_eq!(table.total_path_refs(), 2);
        assert!(table.flat_bytes() > 0);
    }

    #[test]
    fn missing_pairs_and_sources_return_none() {
        let (table, _, _) = two_path_table();
        assert!(table.path_ids(0, 1).is_none());
        assert!(table.cdf(2, 0).is_none());
        assert!(table.sample_with(3, 1, 0.5).is_none());
        assert!(table
            .sample_alpha(1, 0, 3, &mut StdRng::seed_from_u64(0))
            .is_none());
    }

    #[test]
    fn sample_alpha_consumes_one_deviate_per_draw() {
        let (table, _, _) = two_path_table();
        let mut rng = StdRng::seed_from_u64(9);
        let draws = table.sample_alpha(0, 2, 4, &mut rng).unwrap();
        // Replay the identical stream by hand.
        let mut replay = StdRng::seed_from_u64(9);
        let by_hand: Vec<PathId> = (0..4)
            .map(|_| table.sample_with(0, 2, replay.gen::<f64>()).unwrap())
            .collect();
        assert_eq!(draws, by_hand);
    }

    #[test]
    fn sample_alpha_into_matches_sample_alpha_and_preserves_the_rng() {
        let (table, _, _) = two_path_table();
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = Vec::with_capacity(8);
        // A missing pair neither consumes deviates nor touches `out`.
        assert!(!table.sample_alpha_into(1, 3, 4, &mut rng, &mut out));
        assert!(out.is_empty());
        assert!(table.sample_alpha_into(0, 2, 4, &mut rng, &mut out));
        assert_eq!(out.len(), 4);
        let expected = table
            .sample_alpha(0, 2, 4, &mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(out, expected, "the failed lookup left the stream intact");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_pairs_are_rejected() {
        let g = generators::ring(4);
        let p01 = Path::from_vertices(&g, &[0, 1]).unwrap();
        let p12 = Path::from_vertices(&g, &[1, 2]).unwrap();
        let mut b = RouteTableBuilder::new(4, 1);
        b.push_pair(1, 2, &[(p12, 1.0)]);
        b.push_pair(0, 1, &[(p01, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite and nonnegative")]
    fn negative_weights_are_rejected() {
        let g = generators::ring(4);
        let p = Path::from_vertices(&g, &[0, 1]).unwrap();
        let mut b = RouteTableBuilder::new(4, 1);
        b.push_pair(0, 1, &[(p, -0.5)]);
    }
}
