//! Edge/vertex-masked graph views for failure scenarios.
//!
//! Dynamic scenarios (link-failure sweeps, maintenance drills) need to
//! knock elements out of a topology *cheaply* — thousands of times per
//! experiment — without rebuilding the graph or invalidating edge ids.
//! [`SubTopology`] is that view: it flattens the base graph's adjacency
//! into a [`Csr`] once, then tracks aliveness as two bit masks. Failing a
//! link is an `O(1)` mask flip, restoring the whole topology is a fill,
//! and every edge keeps the id it has in the base graph — so candidate
//! path systems, [`crate::EdgeLoads`] accumulators, and solver output
//! remain directly comparable across scenarios.
//!
//! An edge is *usable* iff the edge itself and both endpoints are alive;
//! [`SubTopology::usable_edges`] exports that combined mask for the
//! masked solver oracles in `ssor-flow`.

use crate::csr::Csr;
use crate::graph::{Arc, EdgeId, Graph, VertexId};

/// A failure-masked view over a base graph: the base adjacency (flattened
/// to CSR once) plus per-edge and per-vertex aliveness masks.
///
/// Edge ids are the base graph's ids throughout — nothing is renumbered,
/// so loads, path systems, and solutions computed against the base graph
/// stay valid on the view.
///
/// # Examples
///
/// ```
/// use ssor_graph::{generators, SubTopology};
///
/// let g = generators::ring(5);
/// let mut sub = SubTopology::new(&g);
/// assert!(sub.is_connected());
/// sub.fail_edge(0);
/// assert!(sub.is_connected(), "a ring survives one failure");
/// sub.fail_edge(2);
/// assert!(!sub.is_connected(), "two failures cut the ring");
/// sub.restore_all();
/// assert!(sub.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct SubTopology {
    csr: Csr,
    alive_edges: Vec<bool>,
    alive_vertices: Vec<bool>,
    dead_edge_count: usize,
}

impl SubTopology {
    /// A fully-alive view of `g` (flattens the adjacency once, `O(n + m)`).
    pub fn new(g: &Graph) -> SubTopology {
        SubTopology::from_csr(g.csr())
    }

    /// A fully-alive view over a pre-built CSR adjacency.
    pub fn from_csr(csr: Csr) -> SubTopology {
        let (n, m) = (csr.n(), csr.m());
        SubTopology {
            csr,
            alive_edges: vec![true; m],
            alive_vertices: vec![true; n],
            dead_edge_count: 0,
        }
    }

    /// Number of vertices in the base graph.
    pub fn n(&self) -> usize {
        self.csr.n()
    }

    /// Number of edges in the base graph (alive or not).
    pub fn m(&self) -> usize {
        self.csr.m()
    }

    /// The underlying flattened adjacency (unmasked).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Fails edge `e`; returns whether it was alive before.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn fail_edge(&mut self, e: EdgeId) -> bool {
        let was = std::mem::replace(&mut self.alive_edges[e as usize], false);
        if was {
            self.dead_edge_count += 1;
        }
        was
    }

    /// Fails vertex `v`. Its incident edges keep their own mask bit but
    /// become unusable (an edge is usable only with both endpoints alive).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn fail_vertex(&mut self, v: VertexId) {
        self.alive_vertices[v as usize] = false;
    }

    /// Restores edge `e` (its endpoints keep their own state).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn restore_edge(&mut self, e: EdgeId) {
        let was = std::mem::replace(&mut self.alive_edges[e as usize], true);
        if !was {
            self.dead_edge_count -= 1;
        }
    }

    /// Restores vertex `v` (its incident edges keep their own state).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn restore_vertex(&mut self, v: VertexId) {
        self.alive_vertices[v as usize] = true;
    }

    /// Restores every edge and vertex.
    pub fn restore_all(&mut self) {
        self.alive_edges.fill(true);
        self.alive_vertices.fill(true);
        self.dead_edge_count = 0;
    }

    /// Whether edge `e`'s own mask bit is alive (endpoint state aside).
    pub fn edge_alive(&self, e: EdgeId) -> bool {
        self.alive_edges[e as usize]
    }

    /// Whether vertex `v` is alive.
    pub fn vertex_alive(&self, v: VertexId) -> bool {
        self.alive_vertices[v as usize]
    }

    /// Number of edges whose own mask bit is dead.
    pub fn failed_edge_count(&self) -> usize {
        self.dead_edge_count
    }

    /// The combined usability mask, indexed by edge id: `true` iff the
    /// edge and both its endpoints are alive. This is the mask the masked
    /// solver oracles consume.
    pub fn usable_edges(&self) -> Vec<bool> {
        let mut usable = self.alive_edges.clone();
        for v in 0..self.n() as VertexId {
            if !self.alive_vertices[v as usize] {
                for a in self.csr.arcs(v) {
                    usable[a.edge as usize] = false;
                }
            }
        }
        usable
    }

    /// The usable incident arcs of `v` (empty if `v` itself is dead).
    pub fn alive_arcs(&self, v: VertexId) -> impl Iterator<Item = Arc> + '_ {
        let live = self.alive_vertices[v as usize];
        self.csr.arcs(v).iter().copied().filter(move |a| {
            live && self.alive_edges[a.edge as usize] && self.alive_vertices[a.to as usize]
        })
    }

    /// Usable degree of `v` (0 if `v` is dead).
    pub fn live_degree(&self, v: VertexId) -> usize {
        self.alive_arcs(v).count()
    }

    /// Whether every *alive* vertex can reach every other alive vertex
    /// through usable edges (vacuously true with at most one alive
    /// vertex).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        let alive_total = self.alive_vertices.iter().filter(|&&a| a).count();
        if alive_total <= 1 {
            return true;
        }
        let start = (0..n as VertexId)
            .find(|&v| self.alive_vertices[v as usize])
            .expect("at least one alive vertex");
        self.reached_from(start).iter().filter(|&&r| r).count() == alive_total
    }

    /// Whether `t` is reachable from `s` through usable edges.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn reaches(&self, s: VertexId, t: VertexId) -> bool {
        if !self.alive_vertices[s as usize] || !self.alive_vertices[t as usize] {
            return false;
        }
        if s == t {
            return true;
        }
        self.reached_from(s)[t as usize]
    }

    /// DFS over usable edges from `s`, returning the visited mask.
    fn reached_from(&self, s: VertexId) -> Vec<bool> {
        let mut seen = vec![false; self.n()];
        if !self.alive_vertices[s as usize] {
            return seen;
        }
        let mut stack = vec![s];
        seen[s as usize] = true;
        while let Some(v) = stack.pop() {
            for a in self.alive_arcs(v) {
                if !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    stack.push(a.to);
                }
            }
        }
        seen
    }
}

impl Graph {
    /// Builds a fully-alive [`SubTopology`] view of this graph.
    pub fn sub_topology(&self) -> SubTopology {
        SubTopology::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn fresh_view_is_fully_alive() {
        let g = generators::grid(3, 3);
        let sub = g.sub_topology();
        assert_eq!(sub.n(), 9);
        assert_eq!(sub.m(), g.m());
        assert_eq!(sub.failed_edge_count(), 0);
        assert!(sub.is_connected());
        assert!(sub.usable_edges().iter().all(|&u| u));
        for v in g.vertices() {
            assert_eq!(sub.live_degree(v), g.degree(v));
        }
    }

    #[test]
    fn fail_and_restore_edges() {
        let g = generators::ring(6);
        let mut sub = g.sub_topology();
        assert!(sub.fail_edge(0));
        assert!(!sub.fail_edge(0), "already dead");
        assert_eq!(sub.failed_edge_count(), 1);
        assert!(!sub.edge_alive(0));
        assert!(sub.is_connected(), "ring minus one edge is a path");
        sub.fail_edge(3);
        assert!(!sub.is_connected());
        assert!(!sub.reaches(1, 4) || sub.reaches(1, 4) == sub.reaches(4, 1));
        sub.restore_edge(3);
        assert!(sub.is_connected());
        assert_eq!(sub.failed_edge_count(), 1);
        sub.restore_all();
        assert_eq!(sub.failed_edge_count(), 0);
    }

    #[test]
    fn vertex_failure_kills_incident_edges() {
        let g = generators::star(4);
        let mut sub = g.sub_topology();
        sub.fail_vertex(0); // the center
        assert!(!sub.is_connected(), "leaves disconnect without the hub");
        let usable = sub.usable_edges();
        assert!(usable.iter().all(|&u| !u), "every edge touches the center");
        assert_eq!(sub.live_degree(1), 0);
        // Edge mask bits themselves were never flipped.
        assert!(sub.edge_alive(0));
        sub.restore_vertex(0);
        assert!(sub.is_connected());
    }

    #[test]
    fn reaches_respects_masks() {
        let g = generators::grid(2, 3);
        let mut sub = g.sub_topology();
        assert!(sub.reaches(0, 5));
        assert!(sub.reaches(2, 2));
        // Cut the middle column pair of edges around vertex 1/4.
        for (e, _) in g.edges() {
            sub.fail_edge(e);
        }
        assert!(!sub.reaches(0, 5));
        assert!(sub.reaches(0, 0), "self-reachability survives");
    }

    #[test]
    fn single_alive_vertex_counts_as_connected() {
        let g = generators::ring(4);
        let mut sub = g.sub_topology();
        for v in 1..4 {
            sub.fail_vertex(v);
        }
        assert!(sub.is_connected());
    }

    #[test]
    fn parallel_edges_fail_independently() {
        let mut g = Graph::new(2);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(0, 1);
        let mut sub = g.sub_topology();
        sub.fail_edge(e0);
        assert!(sub.is_connected(), "the parallel replica survives");
        assert_eq!(sub.live_degree(0), 1);
        sub.fail_edge(e1);
        assert!(!sub.is_connected());
    }
}
