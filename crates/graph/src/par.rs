//! The workspace's shared deterministic parallel-map helper.
//!
//! Most parallel stages in the workspace have the same shape: map
//! independent items, collect **in input order** (so results are
//! bit-identical at any worker count), and skip the fan-out for small
//! batches (the vendored rayon shim spawns threads per call, which only
//! amortizes over enough work). [`par_ordered_map`] is that shape,
//! written once — the batch tree sweeps, the solver oracles, the FRT
//! ensemble samplers, the Räcke load blocks, and the engine's template
//! ensembles dispatch through it. (Stages with a different shape —
//! `par_alpha_sample`'s chunked partial merge, `EdgeLoads::par_merge`'s
//! fixed edge-range reduction — keep their own specialized dispatch.)

use rayon::prelude::*;

/// Maps `items` through `f` in parallel when the batch is at least
/// `min_par` items (and more than one worker is available), serially
/// otherwise. Results come back in input order either way — the cutoff
/// moves wall-clock, never bits.
///
/// # Examples
///
/// ```
/// use ssor_graph::par_ordered_map;
///
/// let squares = par_ordered_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_ordered_map<T: Sync, U: Send>(
    items: &[T],
    min_par: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    if items.len() >= min_par && rayon::current_num_threads() > 1 {
        items.par_iter().map(f).collect()
    } else {
        items.iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_and_matches_serial() {
        let items: Vec<usize> = (0..1000).collect();
        let par = par_ordered_map(&items, 1, |&i| i * 31 % 97);
        let seq: Vec<usize> = items.iter().map(|&i| i * 31 % 97).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn small_batches_stay_below_the_cutoff() {
        // Below min_par the serial path runs; results are identical by
        // construction, so only the shape is worth asserting.
        assert_eq!(par_ordered_map(&[7usize], 4, |&x| x + 1), vec![8]);
        assert!(par_ordered_map::<usize, usize>(&[], 4, |&x| x).is_empty());
    }
}
