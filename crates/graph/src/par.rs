//! The workspace's shared deterministic parallel-map helper.
//!
//! Most parallel stages in the workspace have the same shape: map
//! independent items, collect **in input order** (so results are
//! bit-identical at any worker count), and skip the fan-out for small
//! batches (the vendored rayon shim spawns threads per call, which only
//! amortizes over enough work). [`par_ordered_map`] is that shape,
//! written once — the batch tree sweeps, the solver oracles, the FRT
//! ensemble samplers, the Räcke load blocks, and the engine's template
//! ensembles dispatch through it. (Stages with a different shape —
//! `par_alpha_sample`'s chunked partial merge, `EdgeLoads::par_merge`'s
//! fixed edge-range reduction — keep their own specialized dispatch.)

use crate::generators::mix_seed;
use rayon::prelude::*;

/// Derives an independent RNG seed for item `index` of a family keyed by
/// `master`: `mix_seed(mix_seed(master) ^ index)`.
///
/// This is the workspace's one way of turning *(master seed, item
/// index)* into a per-item stream — sweep cells, failure-trial retries,
/// per-step simulation draws all route through it, so the derivation
/// cannot drift between call sites. The nesting matters:
/// `mix_seed(a) ^ mix_seed(b)` is symmetric in `a` and `b` and collides
/// whenever the two swap or coincide, while the nested form keeps
/// distinct `(master, index)` pairs on distinct streams. Deriving from
/// an already-derived seed (`derive_seed(derive_seed(m, i), j)`) is the
/// supported way to split a stream again.
///
/// Because the result depends only on `(master, index)` — never on which
/// worker ran the item or in what order — any scheduler that hands item
/// `i` the seed `derive_seed(master, i)` produces bit-identical results
/// at every thread count.
///
/// # Examples
///
/// ```
/// use ssor_graph::derive_seed;
///
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b, "distinct items get distinct streams");
/// assert_ne!(derive_seed(0, 1), derive_seed(1, 0), "asymmetric in (master, index)");
/// ```
pub fn derive_seed(master: u64, index: u64) -> u64 {
    mix_seed(mix_seed(master) ^ index)
}

/// Maps `items` through `f` in parallel when the batch is at least
/// `min_par` items (and more than one worker is available), serially
/// otherwise. Results come back in input order either way — the cutoff
/// moves wall-clock, never bits.
///
/// # Examples
///
/// ```
/// use ssor_graph::par_ordered_map;
///
/// let squares = par_ordered_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_ordered_map<T: Sync, U: Send>(
    items: &[T],
    min_par: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    if items.len() >= min_par && rayon::current_num_threads() > 1 {
        items.par_iter().map(f).collect()
    } else {
        items.iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_and_matches_serial() {
        let items: Vec<usize> = (0..1000).collect();
        let par = par_ordered_map(&items, 1, |&i| i * 31 % 97);
        let seq: Vec<usize> = items.iter().map(|&i| i * 31 % 97).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn derive_seed_matches_documented_formula() {
        for (m, i) in [(0u64, 0u64), (42, 7), (u64::MAX, 1), (1, u64::MAX)] {
            assert_eq!(derive_seed(m, i), mix_seed(mix_seed(m) ^ i));
        }
    }

    #[test]
    fn derive_seed_separates_a_small_grid() {
        // No collisions over a (master, index) grid — in particular not
        // on the swapped/diagonal pairs an XOR combination would merge.
        let mut seen = std::collections::HashSet::new();
        for m in 0..32u64 {
            for i in 0..32u64 {
                assert!(seen.insert(derive_seed(m, i)), "collision at ({m}, {i})");
            }
        }
    }

    #[test]
    fn small_batches_stay_below_the_cutoff() {
        // Below min_par the serial path runs; results are identical by
        // construction, so only the shape is worth asserting.
        assert_eq!(par_ordered_map(&[7usize], 4, |&x| x + 1), vec![8]);
        assert!(par_ordered_map::<usize, usize>(&[], 4, |&x| x).is_empty());
    }
}
