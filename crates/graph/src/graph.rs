//! Undirected multigraph with stable edge identifiers.
//!
//! The paper (Section 4) works with undirected, connected graphs where
//! capacities are expressed through *parallel edges*. Congestion is therefore
//! tracked per edge identifier, never per vertex pair, and two parallel edges
//! between the same endpoints are distinct objects that each carry their own
//! load.

use std::fmt;

/// Identifier of a vertex (dense, `0..n`).
pub type VertexId = u32;

/// Identifier of an edge (dense, `0..m`); parallel edges get distinct ids.
pub type EdgeId = u32;

/// A half-edge stored in an adjacency list: the far endpoint and the edge id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Vertex at the far end of the edge.
    pub to: VertexId,
    /// Identifier of the underlying undirected edge.
    pub edge: EdgeId,
}

/// An undirected multigraph with `n` vertices and `m` edges.
///
/// Vertices are `0..n`. Edges carry stable dense identifiers `0..m` in
/// insertion order; self-loops are rejected, parallel edges are allowed
/// (they model integer capacities, per Section 4 of the paper).
///
/// # Examples
///
/// ```
/// use ssor_graph::Graph;
///
/// let mut g = Graph::new(3);
/// let e0 = g.add_edge(0, 1);
/// let e1 = g.add_edge(1, 2);
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.endpoints(e0), (0, 1));
/// assert_eq!(g.other_endpoint(e1, 2), 1);
/// assert!(g.is_connected());
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Graph {
    endpoints: Vec<(VertexId, VertexId)>,
    adj: Vec<Vec<Arc>>,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            endpoints: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` vertices from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or if an edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn m(&self) -> usize {
        self.endpoints.len()
    }

    /// Adds an undirected edge between `u` and `v`, returning its id.
    ///
    /// Parallel edges are permitted and receive fresh ids.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop) or if either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        assert!(u != v, "self-loops are not allowed (got {u})");
        assert!(
            (u as usize) < self.n() && (v as usize) < self.n(),
            "edge ({u}, {v}) out of range for n = {}",
            self.n()
        );
        let id = self.endpoints.len() as EdgeId;
        self.endpoints.push((u, v));
        self.adj[u as usize].push(Arc { to: v, edge: id });
        self.adj[v as usize].push(Arc { to: u, edge: id });
        id
    }

    /// The two endpoints of edge `e`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e as usize]
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else if b == v {
            a
        } else {
            panic!("vertex {v} is not an endpoint of edge {e} = ({a}, {b})")
        }
    }

    /// Incident arcs of vertex `v` (one per incident edge).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[Arc] {
        &self.adj[v as usize]
    }

    /// Degree of `v`, counting parallel edges with multiplicity.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n() as VertexId
    }

    /// Iterator over `(edge id, (u, v))` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, (VertexId, VertexId))> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &uv)| (i as EdgeId, uv))
    }

    /// Whether some edge directly connects `u` and `v`.
    pub fn has_edge_between(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).iter().any(|a| a.to == v)
    }

    /// Ids of all edges between `u` and `v` (possibly several, if parallel).
    pub fn edges_between(&self, u: VertexId, v: VertexId) -> Vec<EdgeId> {
        self.neighbors(u)
            .iter()
            .filter(|a| a.to == v)
            .map(|a| a.edge)
            .collect()
    }

    /// Whether the graph is connected (the empty graph and `n = 1` count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.n() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for a in self.neighbors(v) {
                if !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    count += 1;
                    stack.push(a.to);
                }
            }
        }
        count == self.n()
    }

    /// Returns a copy of the graph with each edge replicated `cap(e)` times.
    ///
    /// This is the paper's convention for modelling integer capacities with
    /// parallel edges. The mapping from original edge id to replica ids is
    /// returned alongside the graph.
    ///
    /// # Panics
    ///
    /// Panics if `caps.len() != self.m()` or if any capacity is zero.
    pub fn with_capacities(&self, caps: &[u32]) -> (Graph, Vec<Vec<EdgeId>>) {
        assert_eq!(caps.len(), self.m(), "one capacity per edge required");
        let mut g = Graph::new(self.n());
        let mut map = Vec::with_capacity(self.m());
        for (e, (u, v)) in self.edges() {
            let c = caps[e as usize];
            assert!(c > 0, "capacity of edge {e} must be positive");
            let replicas = (0..c).map(|_| g.add_edge(u, v)).collect();
            map.push(replicas);
        }
        (g, map)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn single_vertex_is_connected() {
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn add_edge_assigns_sequential_ids() {
        let mut g = Graph::new(4);
        assert_eq!(g.add_edge(0, 1), 0);
        assert_eq!(g.add_edge(1, 2), 1);
        assert_eq!(g.add_edge(2, 3), 2);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Graph::new(2);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(0, 1);
        assert_ne!(e0, e1);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edges_between(0, 1), vec![e0, e1]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        Graph::new(2).add_edge(0, 2);
    }

    #[test]
    fn other_endpoint_works() {
        let mut g = Graph::new(3);
        let e = g.add_edge(0, 2);
        assert_eq!(g.other_endpoint(e, 0), 2);
        assert_eq!(g.other_endpoint(e, 2), 0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_panics_for_non_endpoint() {
        let mut g = Graph::new(3);
        let e = g.add_edge(0, 2);
        g.other_endpoint(e, 1);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn with_capacities_replicates_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let (cg, map) = g.with_capacities(&[3, 1]);
        assert_eq!(cg.m(), 4);
        assert_eq!(map[0].len(), 3);
        assert_eq!(map[1].len(), 1);
        assert_eq!(cg.edges_between(0, 1).len(), 3);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Graph::new(2);
        assert!(!format!("{g:?}").is_empty());
    }
}
