//! Hopcroft–Karp maximum bipartite matching.
//!
//! The lower-bound adversary (Lemma 8.1) finds a perfect matching between
//! `k` left-star leaves and `k` right-star leaves whose candidate paths all
//! cross the same `α` middle vertices — via Hall's theorem, which we realize
//! constructively with maximum matching.

use std::collections::VecDeque;

const NIL: u32 = u32::MAX;

/// Maximum bipartite matching via Hopcroft–Karp, `O(E * sqrt(V))`.
///
/// The bipartition has `left` vertices `0..left` and `right` vertices
/// `0..right`; `adj[l]` lists the right-neighbors of left vertex `l`.
///
/// # Examples
///
/// ```
/// use ssor_graph::matching::BipartiteMatching;
///
/// // Perfect matching exists: 0-0, 1-1.
/// let m = BipartiteMatching::solve(2, 2, &[vec![0, 1], vec![1]]);
/// assert_eq!(m.size(), 2);
/// assert_eq!(m.pair_of_left(1), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BipartiteMatching {
    match_left: Vec<u32>,
    match_right: Vec<u32>,
}

impl BipartiteMatching {
    /// Computes a maximum matching.
    ///
    /// # Panics
    ///
    /// Panics if `adj.len() != left` or any neighbor is `>= right`.
    pub fn solve(left: usize, right: usize, adj: &[Vec<u32>]) -> Self {
        assert_eq!(adj.len(), left);
        for nbrs in adj {
            for &r in nbrs {
                assert!((r as usize) < right, "right vertex {r} out of range");
            }
        }
        let mut match_left = vec![NIL; left];
        let mut match_right = vec![NIL; right];
        let mut dist = vec![0u32; left];

        loop {
            // BFS layering from free left vertices.
            let mut q = VecDeque::new();
            let mut found_augmenting = false;
            for l in 0..left {
                if match_left[l] == NIL {
                    dist[l] = 0;
                    q.push_back(l as u32);
                } else {
                    dist[l] = u32::MAX;
                }
            }
            while let Some(l) = q.pop_front() {
                for &r in &adj[l as usize] {
                    let ml = match_right[r as usize];
                    if ml == NIL {
                        found_augmenting = true;
                    } else if dist[ml as usize] == u32::MAX {
                        dist[ml as usize] = dist[l as usize] + 1;
                        q.push_back(ml);
                    }
                }
            }
            if !found_augmenting {
                break;
            }
            // DFS augmenting along the layering.
            fn try_augment(
                l: u32,
                adj: &[Vec<u32>],
                match_left: &mut [u32],
                match_right: &mut [u32],
                dist: &mut [u32],
            ) -> bool {
                for i in 0..adj[l as usize].len() {
                    let r = adj[l as usize][i];
                    let ml = match_right[r as usize];
                    if ml == NIL
                        || (dist[ml as usize] == dist[l as usize] + 1
                            && try_augment(ml, adj, match_left, match_right, dist))
                    {
                        match_left[l as usize] = r;
                        match_right[r as usize] = l;
                        return true;
                    }
                }
                dist[l as usize] = u32::MAX;
                false
            }
            for l in 0..left {
                if match_left[l] == NIL {
                    try_augment(l as u32, adj, &mut match_left, &mut match_right, &mut dist);
                }
            }
        }
        BipartiteMatching {
            match_left,
            match_right,
        }
    }

    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.match_left.iter().filter(|&&r| r != NIL).count()
    }

    /// The right partner of left vertex `l`, if matched.
    pub fn pair_of_left(&self, l: u32) -> Option<u32> {
        let r = self.match_left[l as usize];
        (r != NIL).then_some(r)
    }

    /// The left partner of right vertex `r`, if matched.
    pub fn pair_of_right(&self, r: u32) -> Option<u32> {
        let l = self.match_right[r as usize];
        (l != NIL).then_some(l)
    }

    /// All matched `(left, right)` pairs, in left order.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        self.match_left
            .iter()
            .enumerate()
            .filter_map(|(l, &r)| (r != NIL).then_some((l as u32, r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_matching() {
        let m = BipartiteMatching::solve(0, 0, &[]);
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn perfect_matching_identity() {
        let adj: Vec<Vec<u32>> = (0..5).map(|i| vec![i]).collect();
        let m = BipartiteMatching::solve(5, 5, &adj);
        assert_eq!(m.size(), 5);
        for i in 0..5 {
            assert_eq!(m.pair_of_left(i), Some(i));
            assert_eq!(m.pair_of_right(i), Some(i));
        }
    }

    #[test]
    fn hall_violation_limits_matching() {
        // Three left vertices all pointing to right vertex 0.
        let adj = vec![vec![0], vec![0], vec![0]];
        let m = BipartiteMatching::solve(3, 1, &adj);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn augmenting_path_is_found() {
        // l0 -> {r0}, l1 -> {r0, r1}: greedy l1->r0 blocks l0 unless
        // augmented.
        let adj = vec![vec![0], vec![0, 1]];
        let m = BipartiteMatching::solve(2, 2, &adj);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn matching_is_consistent() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let left = rng.gen_range(1..12);
            let right = rng.gen_range(1..12);
            let adj: Vec<Vec<u32>> = (0..left)
                .map(|_| (0..right as u32).filter(|_| rng.gen_bool(0.3)).collect())
                .collect();
            let m = BipartiteMatching::solve(left, right, &adj);
            for (l, r) in m.pairs() {
                assert!(adj[l as usize].contains(&r), "matched pair must be an edge");
                assert_eq!(m.pair_of_right(r), Some(l));
            }
            // No right vertex matched twice.
            let rights: Vec<u32> = m.pairs().iter().map(|&(_, r)| r).collect();
            let mut dedup = rights.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), rights.len());
        }
    }

    /// Brute-force maximum matching for cross-validation.
    fn brute_max_matching(_left: usize, right: usize, adj: &[Vec<u32>]) -> usize {
        fn rec(l: usize, used: &mut Vec<bool>, adj: &[Vec<u32>]) -> usize {
            if l == adj.len() {
                return 0;
            }
            let mut best = rec(l + 1, used, adj); // skip l
            for &r in &adj[l] {
                if !used[r as usize] {
                    used[r as usize] = true;
                    best = best.max(1 + rec(l + 1, used, adj));
                    used[r as usize] = false;
                }
            }
            best
        }
        let mut used = vec![false; right];
        rec(0, &mut used, adj)
    }

    #[test]
    fn matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..25 {
            let left = rng.gen_range(1..7);
            let right = rng.gen_range(1..7);
            let adj: Vec<Vec<u32>> = (0..left)
                .map(|_| (0..right as u32).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            let m = BipartiteMatching::solve(left, right, &adj);
            assert_eq!(m.size(), brute_max_matching(left, right, &adj));
        }
    }
}
