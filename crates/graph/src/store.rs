//! A path arena: interns paths into copyable [`PathId`]s with hash-based
//! deduplication.
//!
//! Every layer of the pipeline shares and compares paths constantly — the
//! α-sampler collapses duplicate draws (Definition 5.2 samples *with
//! replacement* into a *set*), the template distributions merge identical
//! tree paths, and the Frank–Wolfe solver re-discovers the same best
//! responses round after round. Storing each of those as an owned
//! `Vec<VertexId>` + `Vec<EdgeId>` pair and comparing edge vectors is the
//! dominant allocation pattern of the whole system. A [`PathStore`] holds
//! each distinct path once in two flat arrays; a path becomes a 4-byte
//! [`PathId`] that is `Copy`, `Eq`, and `O(1)` to compare. [`Path`] remains
//! the boundary/debug type — materialize with [`PathStore::materialize`]
//! when an owned path must leave the arena.
//!
//! The arena is append-only: ids stay valid for the lifetime of the store,
//! and interning the same vertex/edge sequence always returns the same id.
//! Two paths are considered identical when they have the same source vertex
//! and edge-id sequence (which, on a fixed graph, determines the vertex
//! sequence) — the same equivalence `PathSystem` has always deduplicated
//! by.

use crate::graph::{EdgeId, Graph, VertexId};
use crate::path::Path;
use std::collections::HashMap;

/// Identifier of an interned path within one [`PathStore`] (dense,
/// `0..store.len()`, in first-interning order).
///
/// Ids from different stores are unrelated; never mix them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

impl PathId {
    /// The dense index of this id (`0..store.len()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Span {
    vstart: u32,
    estart: u32,
    hops: u32,
}

/// An arena interning paths into [`PathId`]s (see the module docs).
///
/// # Examples
///
/// ```
/// use ssor_graph::{Graph, Path, PathStore};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let p = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
/// let mut store = PathStore::new();
/// let id = store.intern(&p);
/// assert_eq!(store.intern(&p), id, "re-interning dedups");
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.vertices(id), &[0, 1, 2]);
/// assert_eq!(store.edges(id), &[0, 1]);
/// assert_eq!(store.materialize(id), p);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PathStore {
    verts: Vec<VertexId>,
    edges: Vec<EdgeId>,
    spans: Vec<Span>,
    /// Deterministic FNV-1a hash of `(source, edge sequence)` → candidate
    /// ids (collisions resolved by slice comparison).
    dedup: HashMap<u64, Vec<PathId>>,
}

/// FNV-1a over the source vertex and edge-id sequence. Deterministic
/// across runs and platforms (unlike `RandomState`), so interning order —
/// and with it every downstream id — is reproducible.
fn fnv1a(source: VertexId, edges: &[EdgeId]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut step = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    step(source);
    for &e in edges {
        step(e);
    }
    h
}

impl PathStore {
    /// An empty arena.
    pub fn new() -> Self {
        PathStore::default()
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Interns `path`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, path: &Path) -> PathId {
        self.intern_parts(path.vertices(), path.edges())
    }

    /// Interns a path given as raw vertex/edge slices.
    ///
    /// This is the zero-copy entry point for moving paths *between*
    /// arenas (`store_a.intern_parts(store_b.vertices(id), store_b.edges(id))`)
    /// without materializing an owned [`Path`].
    ///
    /// # Panics
    ///
    /// Panics if `vertices.len() != edges.len() + 1`.
    pub fn intern_parts(&mut self, vertices: &[VertexId], edges: &[EdgeId]) -> PathId {
        assert_eq!(
            vertices.len(),
            edges.len() + 1,
            "a path has one more vertex than edges"
        );
        let h = fnv1a(vertices[0], edges);
        if let Some(cands) = self.dedup.get(&h) {
            for &id in cands {
                if self.edges(id) == edges && self.vertices(id)[0] == vertices[0] {
                    return id;
                }
            }
        }
        let id = PathId(self.spans.len() as u32);
        self.spans.push(Span {
            vstart: self.verts.len() as u32,
            estart: self.edges.len() as u32,
            hops: edges.len() as u32,
        });
        self.verts.extend_from_slice(vertices);
        self.edges.extend_from_slice(edges);
        self.dedup.entry(h).or_default().push(id);
        id
    }

    /// Looks up a path without interning it; `None` if it is not stored.
    pub fn find(&self, vertices: &[VertexId], edges: &[EdgeId]) -> Option<PathId> {
        let h = fnv1a(vertices[0], edges);
        self.dedup
            .get(&h)?
            .iter()
            .copied()
            .find(|&id| self.edges(id) == edges && self.vertices(id)[0] == vertices[0])
    }

    /// The vertex sequence of `id`.
    pub fn vertices(&self, id: PathId) -> &[VertexId] {
        let s = self.spans[id.index()];
        &self.verts[s.vstart as usize..s.vstart as usize + s.hops as usize + 1]
    }

    /// The edge-id sequence of `id`.
    pub fn edges(&self, id: PathId) -> &[EdgeId] {
        let s = self.spans[id.index()];
        &self.edges[s.estart as usize..s.estart as usize + s.hops as usize]
    }

    /// First vertex of `id`.
    pub fn source(&self, id: PathId) -> VertexId {
        self.verts[self.spans[id.index()].vstart as usize]
    }

    /// Last vertex of `id`.
    pub fn target(&self, id: PathId) -> VertexId {
        let s = self.spans[id.index()];
        self.verts[s.vstart as usize + s.hops as usize]
    }

    /// Hop length of `id` (number of edges).
    pub fn hop(&self, id: PathId) -> usize {
        self.spans[id.index()].hops as usize
    }

    /// Whether `id` uses edge `e`.
    pub fn contains_edge(&self, id: PathId, e: EdgeId) -> bool {
        self.edges(id).contains(&e)
    }

    /// Total weight of `id` under per-edge weights `w` (indexed by edge
    /// id) — the oracle-facing "path cost" primitive.
    pub fn weight(&self, id: PathId, w: &[f64]) -> f64 {
        self.edges(id).iter().map(|&e| w[e as usize]).sum()
    }

    /// Whether no vertex repeats along `id`.
    pub fn is_simple(&self, id: PathId) -> bool {
        let vs = self.vertices(id);
        let mut seen = std::collections::HashSet::with_capacity(vs.len());
        vs.iter().all(|v| seen.insert(*v))
    }

    /// Whether `id` is a valid walk in `g`: every edge exists and connects
    /// the consecutive vertex pair (same contract as [`Path::is_valid`],
    /// without materializing).
    pub fn is_valid(&self, id: PathId, g: &Graph) -> bool {
        let vs = self.vertices(id);
        if vs.iter().any(|&v| (v as usize) >= g.n()) {
            return false;
        }
        self.edges(id).iter().enumerate().all(|(i, &e)| {
            if (e as usize) >= g.m() {
                return false;
            }
            let (a, b) = g.endpoints(e);
            let (u, v) = (vs[i], vs[i + 1]);
            (a, b) == (u, v) || (a, b) == (v, u)
        })
    }

    /// Materializes `id` as an owned [`Path`] (the boundary type).
    pub fn materialize(&self, id: PathId) -> Path {
        Path::raw(self.vertices(id).to_vec(), self.edges(id).to_vec())
    }

    /// Iterator over all interned ids, in interning order.
    pub fn ids(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.spans.len() as u32).map(PathId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn interning_roundtrips_and_dedups() {
        let g = generators::ring(6);
        let a = Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap();
        let b = Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap();
        let mut store = PathStore::new();
        let ia = store.intern(&a);
        let ib = store.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(store.intern(&a), ia);
        assert_eq!(store.len(), 2);
        assert_eq!(store.materialize(ia), a);
        assert_eq!(store.materialize(ib), b);
        assert_eq!(store.source(ib), 0);
        assert_eq!(store.target(ib), 3);
        assert_eq!(store.hop(ia), 3);
    }

    #[test]
    fn parallel_edges_distinguish_paths() {
        let mut g = Graph::new(2);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(0, 1);
        let p0 = Path::from_edges(&g, 0, &[e0]).unwrap();
        let p1 = Path::from_edges(&g, 0, &[e1]).unwrap();
        let mut store = PathStore::new();
        assert_ne!(store.intern(&p0), store.intern(&p1));
    }

    #[test]
    fn trivial_paths_keyed_by_source() {
        let mut store = PathStore::new();
        let a = store.intern(&Path::trivial(3));
        let b = store.intern(&Path::trivial(4));
        assert_ne!(a, b);
        assert_eq!(store.hop(a), 0);
        assert_eq!(store.vertices(a), &[3]);
        assert!(store.edges(a).is_empty());
    }

    #[test]
    fn find_does_not_intern() {
        let g = generators::ring(4);
        let p = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        let mut store = PathStore::new();
        assert!(store.find(p.vertices(), p.edges()).is_none());
        let id = store.intern(&p);
        assert_eq!(store.find(p.vertices(), p.edges()), Some(id));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn validity_and_simplicity_match_path() {
        let g = generators::ring(5);
        let walk = Path::from_vertices(&g, &[0, 1, 2, 1]).unwrap();
        let simple = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        let mut store = PathStore::new();
        let iw = store.intern(&walk);
        let is = store.intern(&simple);
        assert!(!store.is_simple(iw));
        assert!(store.is_simple(is));
        assert!(store.is_valid(iw, &g));
        assert!(store.is_valid(is, &g));
        // An edge id out of range is invalid.
        let bogus = store.intern_parts(&[0, 1], &[99]);
        assert!(!store.is_valid(bogus, &g));
    }

    #[test]
    fn weight_sums_edge_weights() {
        let g = generators::ring(6);
        let p = Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap();
        let mut store = PathStore::new();
        let id = store.intern(&p);
        let w: Vec<f64> = (0..g.m()).map(|e| e as f64).collect();
        assert_eq!(store.weight(id, &w), 0.0 + 1.0 + 2.0);
    }
}
