//! Dinic maximum flow / minimum cut on the undirected multigraph.
//!
//! The paper's `(α + cut_G)`-sparse samples (Definition 5.2) need the value
//! of the minimum `(s, t)`-cut, where every edge has unit capacity (parallel
//! edges carry capacity through multiplicity, per Section 4). Dinic with
//! unit capacities runs in `O(m * sqrt(m))`, more than fast enough for the
//! experiment scales.

use crate::graph::{EdgeId, Graph, VertexId};
use std::collections::VecDeque;

/// Internal residual arc.
#[derive(Debug, Clone)]
struct ResArc {
    to: u32,
    cap: i64,
    /// Index of the reverse arc in `to`'s list.
    rev: u32,
}

/// Dinic max-flow solver over a directed residual network.
///
/// Build one with [`DinicBuilder`], or use the convenience functions
/// [`min_cut_value`] / [`min_cut_edges`] for undirected unit-capacity cuts.
#[derive(Debug)]
pub struct Dinic {
    adj: Vec<Vec<ResArc>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            adj: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn add_arc(&mut self, u: u32, v: u32, cap: i64, cap_rev: i64) {
        let ulen = self.adj[u as usize].len() as u32;
        let vlen = self.adj[v as usize].len() as u32;
        self.adj[u as usize].push(ResArc {
            to: v,
            cap,
            rev: vlen,
        });
        self.adj[v as usize].push(ResArc {
            to: u,
            cap: cap_rev,
            rev: ulen,
        });
    }

    fn bfs(&mut self, s: u32, t: u32) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = VecDeque::new();
        self.level[s as usize] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for a in &self.adj[v as usize] {
                if a.cap > 0 && self.level[a.to as usize] < 0 {
                    self.level[a.to as usize] = self.level[v as usize] + 1;
                    q.push_back(a.to);
                }
            }
        }
        self.level[t as usize] >= 0
    }

    fn dfs(&mut self, v: u32, t: u32, f: i64) -> i64 {
        if v == t {
            return f;
        }
        while self.iter[v as usize] < self.adj[v as usize].len() {
            let i = self.iter[v as usize];
            let (to, cap, rev) = {
                let a = &self.adj[v as usize][i];
                (a.to, a.cap, a.rev)
            };
            if cap > 0 && self.level[to as usize] == self.level[v as usize] + 1 {
                let d = self.dfs(to, t, f.min(cap));
                if d > 0 {
                    self.adj[v as usize][i].cap -= d;
                    self.adj[to as usize][rev as usize].cap += d;
                    return d;
                }
            }
            self.iter[v as usize] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: u32, t: u32) -> i64 {
        assert_ne!(s, t);
        let mut flow = 0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, i64::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// Vertices reachable from `s` in the residual graph (the source side of
    /// a minimum cut, once `max_flow` has run).
    fn residual_reachable(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s as usize] = true;
        while let Some(v) = stack.pop() {
            for a in &self.adj[v as usize] {
                if a.cap > 0 && !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    stack.push(a.to);
                }
            }
        }
        seen
    }
}

/// Builder assembling a Dinic instance from an undirected [`Graph`] with
/// per-edge integer capacities.
#[derive(Debug)]
pub struct DinicBuilder<'a> {
    graph: &'a Graph,
    caps: Vec<i64>,
}

impl<'a> DinicBuilder<'a> {
    /// Unit capacity on every edge (the paper's model).
    pub fn unit(graph: &'a Graph) -> Self {
        DinicBuilder {
            graph,
            caps: vec![1; graph.m()],
        }
    }

    /// Custom integer capacities, one per edge.
    ///
    /// # Panics
    ///
    /// Panics if `caps.len() != graph.m()`.
    pub fn with_capacities(graph: &'a Graph, caps: Vec<i64>) -> Self {
        assert_eq!(caps.len(), graph.m());
        DinicBuilder { graph, caps }
    }

    fn build(&self) -> Dinic {
        let mut d = Dinic::new(self.graph.n());
        for (e, (u, v)) in self.graph.edges() {
            let c = self.caps[e as usize];
            // Undirected edge of capacity c: symmetric residual arcs.
            d.add_arc(u, v, c, c);
        }
        d
    }

    /// Value of the minimum `(s, t)`-cut (equivalently, max flow).
    pub fn min_cut(&self, s: VertexId, t: VertexId) -> i64 {
        self.build().max_flow(s, t)
    }

    /// Value and the edge ids crossing a minimum `(s, t)`-cut.
    pub fn min_cut_with_edges(&self, s: VertexId, t: VertexId) -> (i64, Vec<EdgeId>) {
        let mut d = self.build();
        let val = d.max_flow(s, t);
        let side = d.residual_reachable(s);
        let cut = self
            .graph
            .edges()
            .filter(|&(_, (u, v))| side[u as usize] != side[v as usize])
            .map(|(e, _)| e)
            .collect();
        (val, cut)
    }
}

/// `cut_G(s, t)`: size of the minimum cut with unit edge capacities, as used
/// by Definition 2.1 of the paper. Returns 0 when `s == t` (paper
/// convention: `cut_G(v, v) = 0`).
pub fn min_cut_value(g: &Graph, s: VertexId, t: VertexId) -> u64 {
    if s == t {
        return 0;
    }
    DinicBuilder::unit(g).min_cut(s, t) as u64
}

/// Minimum cut value and one witnessing edge set.
pub fn min_cut_edges(g: &Graph, s: VertexId, t: VertexId) -> (u64, Vec<EdgeId>) {
    let (v, e) = DinicBuilder::unit(g).min_cut_with_edges(s, t);
    (v as u64, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force min cut by enumerating all vertex bipartitions.
    fn brute_cut(g: &Graph, s: VertexId, t: VertexId) -> u64 {
        let n = g.n();
        assert!(n <= 16);
        let mut best = u64::MAX;
        for mask in 0u32..(1 << n) {
            if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let cut = g
                .edges()
                .filter(|&(_, (u, v))| (mask >> u) & 1 != (mask >> v) & 1)
                .count() as u64;
            best = best.min(cut);
        }
        best
    }

    #[test]
    fn line_graph_cut_is_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(min_cut_value(&g, 0, 3), 1);
    }

    #[test]
    fn parallel_edges_add_capacity() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(min_cut_value(&g, 0, 1), 3);
    }

    #[test]
    fn cut_of_equal_vertices_is_zero() {
        let g = generators::ring(4);
        assert_eq!(min_cut_value(&g, 2, 2), 0);
    }

    #[test]
    fn hypercube_cut_equals_degree() {
        // Vertex connectivity of the hypercube is d; min cut between any two
        // vertices is exactly d.
        for d in 2..=4u32 {
            let g = generators::hypercube(d);
            assert_eq!(min_cut_value(&g, 0, (1 << d) - 1), d as u64);
            assert_eq!(min_cut_value(&g, 0, 1), d as u64);
        }
    }

    #[test]
    fn two_cliques_cut_is_bridge_count() {
        let g = generators::two_cliques_bridge(6, 4);
        // s in clique A (vertex 5 has no bridge), t in clique B.
        assert_eq!(min_cut_value(&g, 5, 11), 4);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let g = generators::erdos_renyi(8, 0.4, &mut rng);
            let s = rng.gen_range(0..8) as VertexId;
            let mut t = rng.gen_range(0..8) as VertexId;
            if s == t {
                t = (t + 1) % 8;
            }
            assert_eq!(min_cut_value(&g, s, t), brute_cut(&g, s, t));
        }
    }

    #[test]
    fn cut_edges_form_a_cut() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::erdos_renyi(12, 0.3, &mut rng);
        let (val, edges) = min_cut_edges(&g, 0, 11);
        assert_eq!(val as usize, edges.len());
        // Removing the cut edges must disconnect 0 from 11.
        let keep: Vec<_> = g
            .edges()
            .filter(|(e, _)| !edges.contains(e))
            .map(|(_, uv)| uv)
            .collect();
        let h = Graph::from_edges(g.n(), &keep);
        assert!(crate::shortest_path::bfs_path(&h, 0, 11).is_none());
    }

    #[test]
    fn custom_capacities() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let b = DinicBuilder::with_capacities(&g, vec![5, 2]);
        assert_eq!(b.min_cut(0, 2), 2);
    }
}
