//! Walks and simple paths over a [`Graph`].
//!
//! A [`Path`] stores both its vertex sequence and its edge-id sequence so
//! that parallel edges remain distinguishable — congestion in the paper is a
//! per-edge quantity, so "which of the parallel edges did the packet take"
//! matters.

use crate::graph::{EdgeId, Graph, VertexId};
use std::collections::HashSet;
use std::fmt;

/// A walk in a graph: alternating vertices and edge ids.
///
/// Invariants (enforced by constructors):
/// * `vertices.len() == edges.len() + 1`,
/// * edge `edges[i]` connects `vertices[i]` and `vertices[i + 1]`.
///
/// A path may be non-simple (repeat vertices) when first constructed — e.g.
/// the concatenation of two Valiant half-paths — and can be made simple with
/// [`Path::shortcut`]. The paper's path systems contain simple paths only
/// (Definition 2.1), so constructors in `ssor-core` shortcut on ingestion.
///
/// # Examples
///
/// ```
/// use ssor_graph::{Graph, Path};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let p = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
/// assert_eq!(p.source(), 0);
/// assert_eq!(p.target(), 2);
/// assert_eq!(p.hop(), 2);
/// assert!(p.is_simple());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Path {
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// Crate-internal constructor for callers that guarantee the invariants.
    pub(crate) fn raw(vertices: Vec<VertexId>, edges: Vec<EdgeId>) -> Self {
        debug_assert_eq!(vertices.len(), edges.len() + 1);
        Path { vertices, edges }
    }

    /// A zero-hop path sitting at `v`.
    pub fn trivial(v: VertexId) -> Self {
        Path {
            vertices: vec![v],
            edges: Vec::new(),
        }
    }

    /// Builds a path from a vertex sequence, choosing the lowest-id edge
    /// between each pair of consecutive vertices.
    ///
    /// Returns `None` if some consecutive pair is not adjacent in `g` or if
    /// the sequence is empty.
    pub fn from_vertices(g: &Graph, vertices: &[VertexId]) -> Option<Self> {
        if vertices.is_empty() {
            return None;
        }
        let mut edges = Vec::with_capacity(vertices.len() - 1);
        for w in vertices.windows(2) {
            let e = g
                .neighbors(w[0])
                .iter()
                .filter(|a| a.to == w[1])
                .map(|a| a.edge)
                .min()?;
            edges.push(e);
        }
        Some(Path {
            vertices: vertices.to_vec(),
            edges,
        })
    }

    /// Builds a path starting at `start` following the given edge ids.
    ///
    /// Returns `None` if some edge is not incident to the current vertex.
    pub fn from_edges(g: &Graph, start: VertexId, edges: &[EdgeId]) -> Option<Self> {
        let mut vertices = vec![start];
        let mut cur = start;
        for &e in edges {
            let (a, b) = g.endpoints(e);
            let next = if a == cur {
                b
            } else if b == cur {
                a
            } else {
                return None;
            };
            vertices.push(next);
            cur = next;
        }
        Some(Path {
            vertices,
            edges: edges.to_vec(),
        })
    }

    /// First vertex of the path.
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// Last vertex of the path.
    pub fn target(&self) -> VertexId {
        *self.vertices.last().expect("paths are never empty")
    }

    /// Hop length: number of edges (`hop(p)` in the paper).
    pub fn hop(&self) -> usize {
        self.edges.len()
    }

    /// The vertex sequence.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The edge-id sequence.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Whether no vertex repeats.
    pub fn is_simple(&self) -> bool {
        let mut seen = HashSet::with_capacity(self.vertices.len());
        self.vertices.iter().all(|v| seen.insert(*v))
    }

    /// Whether the path uses edge `e`.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Removes cycles, producing a vertex-simple path with the same
    /// endpoints. Each surviving edge was an edge of the original walk, so
    /// shortcutting can only decrease per-edge congestion.
    pub fn shortcut(&self) -> Path {
        // Walk the path; when a vertex repeats, excise everything between
        // its first occurrence and the repeat. A single left-to-right pass
        // with a "last position" map restarted after each excision is
        // O(len^2) worst case but our walks are short; use the simple
        // stack-based algorithm instead, which is linear.
        let mut stack_v: Vec<VertexId> = Vec::with_capacity(self.vertices.len());
        let mut stack_e: Vec<EdgeId> = Vec::with_capacity(self.edges.len());
        let mut pos: std::collections::HashMap<VertexId, usize> = std::collections::HashMap::new();
        stack_v.push(self.vertices[0]);
        pos.insert(self.vertices[0], 0);
        for i in 0..self.edges.len() {
            let v = self.vertices[i + 1];
            if let Some(&j) = pos.get(&v) {
                // Unwind back to the first occurrence of v.
                while stack_v.len() > j + 1 {
                    let dropped = stack_v.pop().expect("stack holds > j+1 entries");
                    pos.remove(&dropped);
                    stack_e.pop();
                }
            } else {
                pos.insert(v, stack_v.len());
                stack_v.push(v);
                stack_e.push(self.edges[i]);
            }
        }
        Path {
            vertices: stack_v,
            edges: stack_e,
        }
    }

    /// Concatenates `self` with `other`, which must start where `self` ends.
    ///
    /// The result may be non-simple; apply [`Path::shortcut`] if a simple
    /// path is required.
    ///
    /// # Panics
    ///
    /// Panics if `other.source() != self.target()`.
    pub fn concat(&self, other: &Path) -> Path {
        assert_eq!(
            self.target(),
            other.source(),
            "concat requires matching endpoints"
        );
        let mut vertices = self.vertices.clone();
        vertices.extend_from_slice(&other.vertices[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        Path { vertices, edges }
    }

    /// The reverse path (target to source).
    pub fn reversed(&self) -> Path {
        let mut vertices = self.vertices.clone();
        vertices.reverse();
        let mut edges = self.edges.clone();
        edges.reverse();
        Path { vertices, edges }
    }

    /// Validates the path against a graph: endpoints of each edge must match
    /// the vertex sequence.
    pub fn is_valid(&self, g: &Graph) -> bool {
        if self.vertices.len() != self.edges.len() + 1 {
            return false;
        }
        if self.vertices.iter().any(|&v| (v as usize) >= g.n()) {
            return false;
        }
        self.edges.iter().enumerate().all(|(i, &e)| {
            if (e as usize) >= g.m() {
                return false;
            }
            let (a, b) = g.endpoints(e);
            let (u, v) = (self.vertices[i], self.vertices[i + 1]);
            (a, b) == (u, v) || (a, b) == (v, u)
        })
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path(")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(5);
        assert_eq!(p.source(), 5);
        assert_eq!(p.target(), 5);
        assert_eq!(p.hop(), 0);
        assert!(p.is_simple());
    }

    #[test]
    fn from_vertices_roundtrip() {
        let g = line(5);
        let p = Path::from_vertices(&g, &[1, 2, 3, 4]).unwrap();
        assert_eq!(p.edges(), &[1, 2, 3]);
        assert!(p.is_valid(&g));
    }

    #[test]
    fn from_vertices_rejects_non_adjacent() {
        let g = line(5);
        assert!(Path::from_vertices(&g, &[0, 2]).is_none());
    }

    #[test]
    fn from_edges_roundtrip() {
        let g = line(4);
        let p = Path::from_edges(&g, 3, &[2, 1, 0]).unwrap();
        assert_eq!(p.vertices(), &[3, 2, 1, 0]);
        assert!(p.is_valid(&g));
    }

    #[test]
    fn from_edges_rejects_detached_edge() {
        let g = line(4);
        assert!(Path::from_edges(&g, 0, &[2]).is_none());
    }

    #[test]
    fn shortcut_removes_cycle() {
        // Walk 0-1-2-1-0-1-2-3 on a line graph; shortcut should give 0-1-2-3.
        let g = line(4);
        let walk = Path::from_vertices(&g, &[0, 1, 2, 1, 0, 1, 2, 3]).unwrap();
        assert!(!walk.is_simple());
        let p = walk.shortcut();
        assert!(p.is_simple());
        assert_eq!(p.vertices(), &[0, 1, 2, 3]);
        assert!(p.is_valid(&g));
    }

    #[test]
    fn shortcut_preserves_simple_paths() {
        let g = line(4);
        let p = Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(p.shortcut(), p);
    }

    #[test]
    fn shortcut_collapses_to_trivial_when_endpoints_equal() {
        let g = line(3);
        let walk = Path::from_vertices(&g, &[0, 1, 0]).unwrap();
        let p = walk.shortcut();
        assert_eq!(p.hop(), 0);
        assert_eq!(p.source(), 0);
        assert_eq!(p.target(), 0);
    }

    #[test]
    fn concat_and_reverse() {
        let g = line(5);
        let a = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        let b = Path::from_vertices(&g, &[2, 3, 4]).unwrap();
        let c = a.concat(&b);
        assert_eq!(c.vertices(), &[0, 1, 2, 3, 4]);
        let r = c.reversed();
        assert_eq!(r.source(), 4);
        assert_eq!(r.target(), 0);
        assert!(r.is_valid(&g));
    }

    #[test]
    fn parallel_edge_choice_is_lowest_id() {
        let mut g = Graph::new(2);
        let e0 = g.add_edge(0, 1);
        let _e1 = g.add_edge(0, 1);
        let p = Path::from_vertices(&g, &[0, 1]).unwrap();
        assert_eq!(p.edges(), &[e0]);
    }

    #[test]
    fn validity_detects_wrong_edges() {
        let g = line(4);
        // Edge 2 connects 2-3, not 0-1.
        let p = Path::from_edges(&g, 2, &[2]).unwrap();
        assert!(p.is_valid(&g));
        let bogus = Path::from_vertices(&g, &[0, 1]).unwrap();
        assert!(bogus.is_valid(&g));
    }
}
