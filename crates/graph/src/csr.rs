//! Compressed sparse row (CSR) adjacency: the cache-friendly read-only
//! view the hot paths iterate instead of `Vec<Vec<Arc>>`.
//!
//! [`Graph`] keeps a per-vertex `Vec<Arc>` so edges can be appended in
//! `O(1)`; algorithms that sweep adjacency many times (one Dijkstra per
//! vertex when building an all-pairs metric, one BFS per source in the
//! baseline
//! routings, one Dijkstra per Frank–Wolfe iteration in the offline-OPT
//! oracle) pay for the pointer chase on every sweep. [`Csr`] flattens the
//! arcs into two dense arrays — `offsets` and `arcs` — built once in
//! `O(n + m)` and shared by every subsequent traversal.

use crate::graph::{Arc, EdgeId, Graph, VertexId};

/// Read-only adjacency, abstracting over [`Graph`] (vec-of-vecs) and
/// [`Csr`] (offset/arc arrays) so traversals are written once.
pub trait Adjacency {
    /// Number of vertices.
    fn n(&self) -> usize;

    /// Incident arcs of `v` (one per incident edge, parallel edges
    /// included with multiplicity).
    fn arcs(&self, v: VertexId) -> &[Arc];
}

/// Which edges of a topology a traversal may use.
///
/// Complements [`Adjacency`]: the adjacency says which arcs *exist*, the
/// view says which of them are currently *usable*. Shortest-path sweeps
/// are written once, generic over both, so the intact topology
/// ([`FullTopology`]) and a failure-damaged one (a `&[bool]` mask or a
/// [`crate::SubTopology`]) share a single implementation — edge ids,
/// traversal order, and tie-breaking are identical in every view.
///
/// # Examples
///
/// ```
/// use ssor_graph::{EdgeView, FullTopology};
///
/// assert!(FullTopology.usable(7));
/// let mask = [true, false];
/// assert!(mask[..].usable(0));
/// assert!(!mask[..].usable(1));
/// ```
pub trait EdgeView {
    /// Whether edge `e` may be traversed.
    fn usable(&self, e: EdgeId) -> bool;
}

/// The trivial [`EdgeView`]: every edge is usable (the intact topology).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullTopology;

impl EdgeView for FullTopology {
    #[inline]
    fn usable(&self, _e: EdgeId) -> bool {
        true
    }
}

/// A usability bit per edge id — the mask form `SubTopology::usable_edges`
/// exports.
impl EdgeView for [bool] {
    #[inline]
    fn usable(&self, e: EdgeId) -> bool {
        self[e as usize]
    }
}

/// Owned mask variant of the `[bool]` view; unlike the slice it is
/// `Sized`, so `&Vec<bool>` coerces to `&dyn EdgeView` directly.
impl EdgeView for Vec<bool> {
    #[inline]
    fn usable(&self, e: EdgeId) -> bool {
        self[e as usize]
    }
}

impl Adjacency for Graph {
    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }

    #[inline]
    fn arcs(&self, v: VertexId) -> &[Arc] {
        self.neighbors(v)
    }
}

/// A compressed-sparse-row copy of a graph's adjacency.
///
/// `arcs[offsets[v] .. offsets[v + 1]]` are the incident arcs of `v`, in
/// the same (insertion) order `Graph::neighbors` reports them, so CSR and
/// vec-of-vecs traversals are step-for-step identical — including
/// deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use ssor_graph::{Adjacency, Graph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// let csr = g.csr();
/// assert_eq!(csr.n(), 3);
/// assert_eq!(csr.m(), 3);
/// assert_eq!(csr.arcs(1).len(), g.degree(1));
/// assert_eq!(csr.arcs(1), g.neighbors(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    arcs: Vec<Arc>,
}

impl Csr {
    /// Flattens `g`'s adjacency in `O(n + m)`.
    pub fn from_graph(g: &Graph) -> Csr {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut arcs = Vec::with_capacity(2 * g.m());
        offsets.push(0);
        for v in g.vertices() {
            arcs.extend_from_slice(g.neighbors(v));
            offsets.push(arcs.len() as u32);
        }
        Csr { offsets, arcs }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges; each contributes two arcs.
    pub fn m(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Incident arcs of `v`.
    #[inline]
    pub fn arcs(&self, v: VertexId) -> &[Arc] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// Degree of `v`, counting parallel edges with multiplicity.
    pub fn degree(&self, v: VertexId) -> usize {
        self.arcs(v).len()
    }
}

impl Adjacency for Csr {
    #[inline]
    fn n(&self) -> usize {
        Csr::n(self)
    }

    #[inline]
    fn arcs(&self, v: VertexId) -> &[Arc] {
        Csr::arcs(self, v)
    }
}

impl Graph {
    /// Builds the CSR view of this graph's adjacency (see [`Csr`]).
    pub fn csr(&self) -> Csr {
        Csr::from_graph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn csr_mirrors_adjacency_exactly() {
        let g = generators::hypercube(4);
        let csr = g.csr();
        assert_eq!(csr.n(), g.n());
        assert_eq!(csr.m(), g.m());
        for v in g.vertices() {
            assert_eq!(csr.arcs(v), g.neighbors(v), "vertex {v}");
            assert_eq!(csr.degree(v), g.degree(v));
        }
    }

    #[test]
    fn csr_handles_parallel_edges_and_isolated_vertices() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(2, 0);
        let csr = g.csr();
        assert_eq!(csr.degree(0), 3);
        assert_eq!(csr.degree(1), 2);
        assert_eq!(csr.degree(3), 0);
        assert_eq!(csr.m(), 3);
    }

    #[test]
    fn empty_graph_csr() {
        let g = Graph::new(0);
        let csr = g.csr();
        assert_eq!(csr.n(), 0);
        assert_eq!(csr.m(), 0);
    }
}
