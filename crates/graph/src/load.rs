//! Dense per-edge load accumulation — the one representation every layer
//! shares for "accumulate load on an edge".
//!
//! Congestion in the paper is always a per-[`EdgeId`] quantity over a fixed
//! graph, so the natural accumulator is a dense `Vec<f64>` indexed by edge
//! id, not a hash map keyed on edge ids: edge ids are dense `0..m` by
//! construction, a dense array accumulates with one add and no hashing,
//! and `max` (the congestion functional) is a linear scan. [`EdgeLoads`]
//! is that array with the accumulation vocabulary the pipeline needs —
//! [`add_path`](EdgeLoads::add_path) against a [`PathStore`],
//! [`merge`](EdgeLoads::merge) for combining partial accumulations, and
//! [`par_merge`](EdgeLoads::par_merge) for reducing many rayon-produced
//! partials deterministically.

use crate::graph::{EdgeId, Graph};
use crate::store::{PathId, PathStore};
use rayon::prelude::*;

/// Per-edge fractional load, dense over `0..m`.
///
/// # Examples
///
/// ```
/// use ssor_graph::{EdgeLoads, Graph, Path, PathStore};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// let mut store = PathStore::new();
/// let long = store.intern(&Path::from_vertices(&g, &[0, 1, 2]).unwrap());
/// let short = store.intern(&Path::from_vertices(&g, &[0, 2]).unwrap());
///
/// let mut loads = EdgeLoads::for_graph(&g);
/// loads.add_path(&store, long, 0.25);
/// loads.add_path(&store, short, 0.75);
/// assert_eq!(loads.get(2), 0.75);
/// assert_eq!(loads.max(), 0.75);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeLoads {
    load: Vec<f64>,
}

impl EdgeLoads {
    /// All-zero loads over `m` edges.
    pub fn zeros(m: usize) -> Self {
        EdgeLoads { load: vec![0.0; m] }
    }

    /// All-zero loads sized for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        EdgeLoads::zeros(g.m())
    }

    /// Wraps an existing dense load vector.
    pub fn from_vec(load: Vec<f64>) -> Self {
        EdgeLoads { load }
    }

    /// Number of edges tracked.
    pub fn len(&self) -> usize {
        self.load.len()
    }

    /// Whether no edges are tracked.
    pub fn is_empty(&self) -> bool {
        self.load.is_empty()
    }

    /// The load on edge `e`.
    pub fn get(&self, e: EdgeId) -> f64 {
        // A solver accumulator must not silently absorb an out-of-range
        // edge id — masking it with a default would corrupt congestion
        // totals; the contract taint from same-named serving-plane
        // lookups is a name collision, not a real call.
        self.load[e as usize] // lint: allow(hot_panic)
    }

    /// The dense load slice, indexed by edge id.
    pub fn as_slice(&self) -> &[f64] {
        &self.load
    }

    /// Mutable access to the dense load slice (for in-place updates like
    /// the solver's line-search interpolation).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.load
    }

    /// Consumes into the dense load vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.load
    }

    /// Iterator over loads in edge-id order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.load.iter().copied()
    }

    /// Adds `w` to edge `e`.
    pub fn add(&mut self, e: EdgeId, w: f64) {
        self.load[e as usize] += w;
    }

    /// Adds `w` to every edge in `edges` (with multiplicity).
    pub fn add_edges(&mut self, edges: &[EdgeId], w: f64) {
        for &e in edges {
            self.load[e as usize] += w;
        }
    }

    /// Adds `w` units of flow along the interned path `id`.
    ///
    /// Debug builds reject a non-finite `w` at the call site: a NaN or
    /// ∞ weight entering the accumulator would otherwise only surface
    /// when a report or congestion max looks wrong, three layers away
    /// from whichever solver or sampler produced it.
    pub fn add_path(&mut self, store: &PathStore, id: PathId, w: f64) {
        debug_assert!(
            w.is_finite(),
            "non-finite path weight {w} entering EdgeLoads (path {id:?})"
        );
        self.add_edges(store.edges(id), w);
    }

    /// Element-wise accumulation of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators track different edge counts.
    pub fn merge(&mut self, other: &EdgeLoads) {
        assert_eq!(self.load.len(), other.load.len(), "edge count mismatch");
        // Sentinel (debug builds): merging a poisoned partial poisons
        // every downstream congestion number — catch it at the merge.
        debug_assert!(
            other.load.iter().all(|x| x.is_finite()),
            "non-finite load entering EdgeLoads::merge"
        );
        for (a, b) in self.load.iter_mut().zip(other.load.iter()) {
            *a += b;
        }
    }

    /// Resets every load to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.load.fill(0.0);
    }

    /// Maximum load — the congestion functional `max_e load(e)` (0 for an
    /// edgeless accumulator).
    pub fn max(&self) -> f64 {
        let max = self.load.iter().copied().fold(0.0, f64::max);
        // Sentinel (debug builds): the congestion functional is the
        // quantity every report serializes — it must never be NaN/∞.
        // (`f64::max` would silently *hide* a NaN accumulator entry, so
        // check the fold result, where ∞ still shows.)
        debug_assert!(
            max.is_finite(),
            "non-finite congestion {max} out of EdgeLoads::max"
        );
        max
    }

    /// Sum of all loads (total flow × path length mass).
    pub fn total(&self) -> f64 {
        self.load.iter().sum()
    }

    /// Reduces many partial accumulators into one, fanning edge-index
    /// chunks out over rayon workers.
    ///
    /// The per-edge summation order is always `parts[0], parts[1], ...`
    /// regardless of chunking or thread count, so the result is
    /// bit-for-bit identical to folding [`EdgeLoads::merge`] sequentially
    /// — the determinism the engine's thread-count-invariance guarantee
    /// rests on.
    ///
    /// # Panics
    ///
    /// Panics if the parts track different edge counts.
    pub fn par_merge(parts: &[EdgeLoads]) -> EdgeLoads {
        let Some(first) = parts.first() else {
            return EdgeLoads::zeros(0);
        };
        let m = first.len();
        for p in parts {
            assert_eq!(p.len(), m, "edge count mismatch");
        }
        // Below this much work the thread handoff costs more than the adds.
        const PAR_THRESHOLD: usize = 1 << 15;
        let chunks = if m * parts.len() < PAR_THRESHOLD {
            1
        } else {
            rayon::current_num_threads().clamp(1, m.max(1))
        };
        let chunk_len = m.div_ceil(chunks.max(1)).max(1);
        let ranges: Vec<(usize, usize)> = (0..m)
            .step_by(chunk_len)
            .map(|lo| (lo, (lo + chunk_len).min(m)))
            .collect();
        let pieces: Vec<Vec<f64>> = ranges
            // Reviewed fan-out: this *is* one of the two ordered merge
            // primitives the par_collect rule points everyone at — the
            // chunks are disjoint edge ranges, reassembled in range order
            // below, so the reduction is thread-count-invariant by
            // construction. lint: allow(par_collect)
            .par_iter()
            .map(|&(lo, hi)| {
                let mut acc = vec![0.0f64; hi - lo];
                for p in parts {
                    for (a, b) in acc.iter_mut().zip(p.load[lo..hi].iter()) {
                        *a += b;
                    }
                }
                acc
            })
            .collect();
        let mut load = Vec::with_capacity(m);
        for piece in pieces {
            load.extend_from_slice(&piece);
        }
        EdgeLoads { load }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::path::Path;

    #[test]
    fn accumulate_and_max() {
        let g = generators::ring(4);
        let mut l = EdgeLoads::for_graph(&g);
        l.add(0, 0.5);
        l.add(0, 0.25);
        l.add(3, 1.0);
        assert_eq!(l.get(0), 0.75);
        assert_eq!(l.get(1), 0.0);
        assert_eq!(l.max(), 1.0);
        assert_eq!(l.total(), 1.75);
        l.clear();
        assert_eq!(l.max(), 0.0);
    }

    #[test]
    fn add_path_uses_every_edge() {
        let g = generators::ring(6);
        let mut store = PathStore::new();
        let id = store.intern(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        let mut l = EdgeLoads::for_graph(&g);
        l.add_path(&store, id, 2.0);
        assert_eq!(l.get(0), 2.0);
        assert_eq!(l.get(1), 2.0);
        assert_eq!(l.get(2), 2.0);
        assert_eq!(l.get(3), 0.0);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = EdgeLoads::from_vec(vec![1.0, 2.0]);
        let b = EdgeLoads::from_vec(vec![0.5, 0.5]);
        a.merge(&b);
        assert_eq!(a.as_slice(), &[1.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "edge count mismatch")]
    fn merge_rejects_size_mismatch() {
        let mut a = EdgeLoads::zeros(2);
        a.merge(&EdgeLoads::zeros(3));
    }

    #[test]
    fn par_merge_matches_sequential_fold() {
        // Large enough to cross the parallel threshold.
        let m = 20_000;
        let parts: Vec<EdgeLoads> = (0..5)
            .map(|k| {
                EdgeLoads::from_vec(
                    (0..m)
                        .map(|i| ((i * 7 + k * 13) % 97) as f64 * 0.125)
                        .collect(),
                )
            })
            .collect();
        let par = EdgeLoads::par_merge(&parts);
        let mut seq = EdgeLoads::zeros(m);
        for p in &parts {
            seq.merge(p);
        }
        assert_eq!(par, seq, "bit-for-bit identical reduction");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite path weight")]
    fn nan_weight_fails_at_add_path() {
        let g = generators::ring(4);
        let mut store = PathStore::new();
        let id = store.intern(&Path::from_vertices(&g, &[0, 1]).unwrap());
        let mut l = EdgeLoads::for_graph(&g);
        l.add_path(&store, id, f64::NAN);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite load entering EdgeLoads::merge")]
    fn poisoned_partial_fails_at_merge() {
        let mut a = EdgeLoads::zeros(2);
        a.merge(&EdgeLoads::from_vec(vec![1.0, f64::INFINITY]));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite congestion")]
    fn overflowed_accumulator_fails_at_max() {
        EdgeLoads::from_vec(vec![0.0, f64::INFINITY]).max();
    }

    #[test]
    fn par_merge_edge_cases() {
        assert_eq!(EdgeLoads::par_merge(&[]).len(), 0);
        let one = EdgeLoads::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(EdgeLoads::par_merge(std::slice::from_ref(&one)), one);
    }
}
