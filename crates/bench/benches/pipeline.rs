//! Criterion micro-benchmarks for every stage of the reproduction
//! pipeline. One group per subsystem; the experiment *tables* live in the
//! `e1_*`..`e9_*` binaries (see EXPERIMENTS.md), these benches track the
//! cost of the machinery that regenerates them.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssor_core::sample::{all_pairs, alpha_sample};
use ssor_core::weak::{sample_multiset, weak_route};
use ssor_flow::mincong::{min_congestion_restricted, min_congestion_unrestricted, SolveOptions};
use ssor_flow::rounding::round_routing;
use ssor_flow::Demand;
use ssor_graph::maxflow::min_cut_value;
use ssor_graph::{generators, Path};
use ssor_lowerbound::{c_graph, find_adversarial_demand};
use ssor_oblivious::frt::{FrtTree, Metric};
use ssor_oblivious::{ObliviousRouting, RaeckeOptions, RaeckeRouting, ValiantRouting};
use ssor_sim::{simulate, Scheduler, SimConfig};

fn bench_graph_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(20);
    let q6 = generators::hypercube(6);
    g.bench_function("dinic_min_cut_hypercube6", |b| {
        b.iter(|| min_cut_value(&q6, 0, 63))
    });
    g.bench_function("hypercube_generate_d8", |b| {
        b.iter(|| generators::hypercube(8))
    });
    let grid = generators::grid(8, 8);
    g.bench_function("ksp_yen_k4_grid8x8", |b| {
        b.iter(|| ssor_graph::ksp::k_shortest_paths(&grid, 0, 63, 4, &|_| 1.0))
    });
    g.finish();
}

fn bench_embeddings(c: &mut Criterion) {
    let mut g = c.benchmark_group("embeddings");
    g.sample_size(10);
    let grid = generators::grid(8, 8);
    let metric = Metric::hops(&grid);
    g.bench_function("frt_sample_grid8x8", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| FrtTree::sample(&metric, grid.n(), &mut rng))
    });
    let small = generators::grid(5, 5);
    g.bench_function("raecke_build_grid5x5_8trees", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            RaeckeRouting::build(&small, &RaeckeOptions { iterations: 8, epsilon: 0.5 }, &mut rng)
        })
    });
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.sample_size(20);
    let valiant = ValiantRouting::new(6);
    let pairs = all_pairs(64);
    g.bench_function("alpha4_sample_hypercube6_all_pairs", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| alpha_sample(&valiant, &pairs, 4, &mut rng))
    });
    g.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers");
    g.sample_size(10);
    let valiant = ValiantRouting::new(6);
    let d = Demand::hypercube_bit_reversal(6);
    let mut rng = StdRng::seed_from_u64(4);
    let ps = alpha_sample(&valiant, &d.support(), 4, &mut rng);
    let opts = SolveOptions::with_eps(0.1);
    g.bench_function("restricted_mwu_hypercube6_alpha4", |b| {
        b.iter(|| min_congestion_restricted(valiant.graph(), &d, ps.as_map(), &opts))
    });
    let grid = generators::grid(5, 5);
    let dperm = Demand::random_permutation(25, &mut rng);
    g.bench_function("offline_opt_grid5x5_perm", |b| {
        b.iter(|| min_congestion_unrestricted(&grid, &dperm, &opts))
    });
    g.finish();
}

fn bench_rounding_and_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("rounding_sim");
    g.sample_size(20);
    let q5 = generators::hypercube(5);
    let d = Demand::hypercube_complement(5);
    let valiant = ValiantRouting::new(5);
    let mut rng = StdRng::seed_from_u64(5);
    let ps = alpha_sample(&valiant, &d.support(), 4, &mut rng);
    let sol = min_congestion_restricted(&q5, &d, ps.as_map(), &SolveOptions::with_eps(0.1));
    g.bench_function("round_lemma63_hypercube5", |b| {
        b.iter(|| round_routing(&q5, &sol.routing, &d, 8, &mut rng))
    });
    let paths: Vec<Path> = d
        .support()
        .iter()
        .map(|&(s, t)| ssor_graph::shortest_path::bfs_path(&q5, s, t).unwrap())
        .collect();
    g.bench_function("simulate_random_rank_hypercube5", |b| {
        b.iter(|| simulate(&q5, &paths, &SimConfig { scheduler: Scheduler::RandomRank, seed: 7 }))
    });
    g.finish();
}

fn bench_paper_machinery(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_machinery");
    g.sample_size(10);
    // Weak-routing dynamic process (Section 5.3).
    let valiant = ValiantRouting::new(5);
    let d = Demand::hypercube_complement(5);
    let mut rng = StdRng::seed_from_u64(6);
    let ms = sample_multiset(&valiant, &d.support(), |_, _| 4, &mut rng);
    g.bench_function("weak_route_hypercube5_alpha4", |b| {
        b.iter(|| weak_route(valiant.graph(), &ms, &d, 8.0))
    });
    // Lemma 8.1 adversary on C(64, 8).
    let (cg, meta) = c_graph(64, 8);
    let mut ps = ssor_core::PathSystem::new();
    use rand::seq::SliceRandom;
    for &s in &meta.left_leaves {
        for &t in &meta.right_leaves {
            let mid = *meta.middle.choose(&mut rng).unwrap();
            ps.insert(
                Path::from_vertices(&cg, &[s, meta.left_center, mid, meta.right_center, t])
                    .unwrap(),
            );
        }
    }
    g.bench_function("lemma81_adversary_c64_8", |b| {
        b.iter(|| find_adversarial_demand(&meta, &ps, 1))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_graph_substrate,
    bench_embeddings,
    bench_sampling,
    bench_solvers,
    bench_rounding_and_sim,
    bench_paper_machinery
);
criterion_main!(benches);
