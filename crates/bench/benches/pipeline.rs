//! Micro-benchmarks for every stage of the reproduction pipeline, on a
//! tiny self-contained harness (the build container cannot fetch
//! criterion; `harness = false` keeps `cargo bench` working offline).
//! One group per subsystem; the experiment *tables* live in the
//! `e1_*`..`e9_*` binaries, these benches track the cost of the machinery
//! that regenerates them.
//!
//! Run with: `cargo bench -p ssor-bench`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssor_core::sample::{all_pairs, alpha_sample};
use ssor_core::weak::{sample_multiset, weak_route};
use ssor_engine::sampling::par_alpha_sample;
use ssor_engine::{DemandSpec, PathSystemCache, Pipeline, StreamModel, TemplateSpec, TopologySpec};
use ssor_flow::rounding::round_routing;
use ssor_flow::solver::{min_congestion_restricted, min_congestion_unrestricted, SolveOptions};
use ssor_flow::Demand;
use ssor_graph::maxflow::min_cut_value;
use ssor_graph::{generators, Path};
use ssor_lowerbound::{c_graph, find_adversarial_demand};
use ssor_oblivious::frt::{FrtTree, Metric};
use ssor_oblivious::{ObliviousRouting, RaeckeOptions, RaeckeRouting, ValiantRouting};
use ssor_sim::{simulate, Scheduler, SimConfig};
use std::time::Instant;

/// Times `f` over `iters` runs (after one warmup) and prints min/mean.
fn bench<T>(group: &str, name: &str, iters: usize, mut f: impl FnMut() -> T) {
    let _warmup = f();
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed());
        drop(out);
    }
    let min = times.iter().min().expect("nonempty");
    let mean = times.iter().sum::<std::time::Duration>() / iters as u32;
    println!(
        "{group:>16} / {name:<40} min {:>10.1?}  mean {:>10.1?}  ({iters} iters)",
        min, mean
    );
}

fn bench_graph_substrate() {
    let q6 = generators::hypercube(6);
    bench("graph", "dinic_min_cut_hypercube6", 20, || {
        min_cut_value(&q6, 0, 63)
    });
    bench("graph", "hypercube_generate_d8", 20, || {
        generators::hypercube(8)
    });
    let grid = generators::grid(8, 8);
    bench("graph", "ksp_yen_k4_grid8x8", 20, || {
        ssor_graph::ksp::k_shortest_paths(&grid, 0, 63, 4, &|_| 1.0)
    });
}

fn bench_embeddings() {
    let grid = generators::grid(8, 8);
    let metric = Metric::hops(&grid);
    let mut draw = 0u64;
    bench("embeddings", "frt_sample_grid8x8", 10, || {
        draw += 1;
        FrtTree::sample_seeded(&metric, grid.n(), draw)
    });
    let small = generators::grid(5, 5);
    let mut rng2 = StdRng::seed_from_u64(2);
    bench("embeddings", "raecke_build_grid5x5_8trees", 10, || {
        RaeckeRouting::build(
            &small,
            &RaeckeOptions {
                iterations: 8,
                epsilon: 0.5,
            },
            &mut rng2,
        )
    });
}

fn bench_edge_loads() {
    // The representation layer: dense per-edge accumulation and the
    // deterministic parallel reduction, at the n (edge count) scales the
    // issue tracks.
    use ssor_graph::EdgeLoads;
    for m in [256usize, 1024] {
        // Synthetic "paths": fixed pseudo-random edge lists of length 8.
        let paths: Vec<Vec<u32>> = (0..512)
            .map(|i| (0..8).map(|j| ((i * 31 + j * 17) % m) as u32).collect())
            .collect();
        bench(
            "edge_loads",
            &format!("accumulate_512paths_m{m}"),
            50,
            || {
                let mut l = EdgeLoads::zeros(m);
                for (i, p) in paths.iter().enumerate() {
                    l.add_edges(p, 0.5 + (i % 7) as f64 * 0.25);
                }
                l.max()
            },
        );
        let parts: Vec<EdgeLoads> = (0..32)
            .map(|k| {
                EdgeLoads::from_vec(
                    (0..m)
                        .map(|i| ((i * 13 + k * 7) % 51) as f64 * 0.125)
                        .collect(),
                )
            })
            .collect();
        bench("edge_loads", &format!("merge_32parts_m{m}"), 50, || {
            let mut acc = EdgeLoads::zeros(m);
            for p in &parts {
                acc.merge(p);
            }
            acc
        });
        bench("edge_loads", &format!("par_merge_32parts_m{m}"), 50, || {
            EdgeLoads::par_merge(&parts)
        });
    }
}

fn bench_sampling() {
    let valiant = ValiantRouting::new(6);
    let pairs = all_pairs(64);
    let mut rng = StdRng::seed_from_u64(3);
    bench("sampling", "alpha4_sequential_hypercube6", 20, || {
        alpha_sample(&valiant, &pairs, 4, &mut rng)
    });
    bench("sampling", "alpha4_parallel_hypercube6", 20, || {
        par_alpha_sample(&valiant, &pairs, 4, 3)
    });
}

fn bench_engine() {
    // Cold vs warm pipeline run: the warm run answers sampling, template,
    // and OPT from the cache and only repeats the restricted solve.
    let mk = || {
        Pipeline::on(TopologySpec::Hypercube { dim: 6 })
            .template(TemplateSpec::Valiant)
            .alpha(4)
            .seed(9)
            .solve_options(SolveOptions::with_eps(0.1))
            .demand("bit-reversal", DemandSpec::BitReversal)
    };
    bench("engine", "pipeline_run_cold_hypercube6", 5, || {
        mk().run(&PathSystemCache::new())
    });
    let warm_cache = PathSystemCache::new();
    mk().run(&warm_cache);
    bench("engine", "pipeline_run_warm_hypercube6", 5, || {
        mk().run(&warm_cache)
    });
}

fn bench_stream() {
    // A 20-step diurnal gravity stream over a Waxman WAN, solved twice:
    // warm-started incremental re-solves (each step restarts from the
    // previous flow) vs the cold-solve baseline (every step from
    // scratch). Both share one prepared path system via the cache, so
    // the timings isolate the solver work the warm start saves. The
    // per-step cold quality oracle is disabled (`without_opt`) to keep
    // the comparison apples-to-apples.
    let pipeline = Pipeline::on(TopologySpec::Waxman {
        n: 24,
        a: 0.4.into(),
        b: 0.25.into(),
        seed: 5,
    })
    .alpha(4)
    .seed(5)
    .solve_options(SolveOptions::with_eps(0.1))
    .without_opt();
    let model = StreamModel::DiurnalGravity {
        total: 30.0.into(),
        period: 8,
        seed: 9,
    };
    let cache = PathSystemCache::new();
    pipeline.prepare(&cache); // sampling outside the timed region
    bench("stream", "warm_20step_diurnal_wan24_alpha4", 5, || {
        pipeline.stream(&cache, 20, &model)
    });
    bench("stream", "cold_20step_diurnal_wan24_alpha4", 5, || {
        pipeline.stream_cold(&cache, 20, &model)
    });
    let warm = pipeline.stream(&cache, 20, &model);
    let cold = pipeline.stream_cold(&cache, 20, &model);
    println!(
        "{:>16} / iterations: warm {} vs cold {} ({:.2}x fewer), all converged: {}",
        "stream",
        warm.total_iterations(),
        cold.total_iterations(),
        cold.total_iterations() as f64 / warm.total_iterations().max(1) as f64,
        warm.all_converged() && cold.all_converged(),
    );
}

fn bench_solvers() {
    let valiant = ValiantRouting::new(6);
    let d = Demand::hypercube_bit_reversal(6);
    let mut rng = StdRng::seed_from_u64(4);
    let ps = alpha_sample(&valiant, &d.support(), 4, &mut rng);
    let opts = SolveOptions::with_eps(0.1);
    bench("solvers", "restricted_mwu_hypercube6_alpha4", 10, || {
        min_congestion_restricted(valiant.graph(), &d, ps.candidates(), &opts)
    });
    let grid = generators::grid(5, 5);
    let dperm = Demand::random_permutation(25, &mut rng);
    bench("solvers", "offline_opt_grid5x5_perm", 10, || {
        min_congestion_unrestricted(&grid, &dperm, &opts)
    });
    // The parallel-oracle showcase: a 64-source permutation on a Q6, so
    // every Frank–Wolfe iteration fans 64 Dijkstra trees out over the
    // rayon workers (the restricted/grid cases above are too small to
    // leave the serial cutoff). Multi-thread runs should beat 1-thread
    // here while producing bit-identical numbers.
    let q6 = generators::hypercube(6);
    let dbig = Demand::random_permutation(64, &mut rng);
    bench("solvers", "offline_opt_hypercube6_perm64", 5, || {
        min_congestion_unrestricted(&q6, &dbig, &opts)
    });
    let mut sub = q6.sub_topology();
    for e in [3u32, 31, 77, 120] {
        sub.fail_edge(e);
    }
    let usable = sub.usable_edges();
    bench("solvers", "masked_opt_hypercube6_perm64_k4", 5, || {
        ssor_flow::solver::min_congestion_masked(&q6, &dbig, &usable, &opts)
    });
    // Oracle share of the solver's wall-clock (bounds the parallel
    // speedup): report once so regressions are visible in bench logs.
    let sol = min_congestion_unrestricted(&q6, &dbig, &opts);
    println!(
        "{:>16} / oracle share: {:.0}% of {:?} ({} oracle calls, {} iters, converged: {})",
        "solvers",
        sol.stats.oracle_share() * 100.0,
        sol.stats.total_wall,
        sol.stats.oracle_calls,
        sol.iterations,
        sol.converged,
    );
}

fn bench_rounding_and_sim() {
    let q5 = generators::hypercube(5);
    let d = Demand::hypercube_complement(5);
    let valiant = ValiantRouting::new(5);
    let mut rng = StdRng::seed_from_u64(5);
    let ps = alpha_sample(&valiant, &d.support(), 4, &mut rng);
    let sol = min_congestion_restricted(&q5, &d, ps.candidates(), &SolveOptions::with_eps(0.1));
    bench("rounding_sim", "round_lemma63_hypercube5", 20, || {
        round_routing(&q5, &sol.routing, &d, 8, &mut rng)
    });
    let paths: Vec<Path> = d
        .support()
        .iter()
        .map(|&(s, t)| ssor_graph::shortest_path::bfs_path(&q5, s, t).unwrap())
        .collect();
    bench(
        "rounding_sim",
        "simulate_random_rank_hypercube5",
        20,
        || {
            simulate(
                &q5,
                &paths,
                &SimConfig {
                    scheduler: Scheduler::RandomRank,
                    seed: 7,
                },
            )
        },
    );
}

fn bench_paper_machinery() {
    // Weak-routing dynamic process (Section 5.3).
    let valiant = ValiantRouting::new(5);
    let d = Demand::hypercube_complement(5);
    let mut rng = StdRng::seed_from_u64(6);
    let ms = sample_multiset(&valiant, &d.support(), |_, _| 4, &mut rng);
    bench("paper", "weak_route_hypercube5_alpha4", 10, || {
        weak_route(valiant.graph(), &ms, &d, 8.0)
    });
    // Lemma 8.1 adversary on C(64, 8).
    let (cg, meta) = c_graph(64, 8);
    let mut ps = ssor_core::PathSystem::new();
    use rand::seq::SliceRandom;
    for &s in &meta.left_leaves {
        for &t in &meta.right_leaves {
            let mid = *meta.middle.choose(&mut rng).unwrap();
            ps.insert(
                Path::from_vertices(&cg, &[s, meta.left_center, mid, meta.right_center, t])
                    .unwrap(),
            );
        }
    }
    bench("paper", "lemma81_adversary_c64_8", 10, || {
        find_adversarial_demand(&meta, &ps, 1)
    });
}

fn main() {
    println!("ssor pipeline micro-benchmarks (offline harness)\n");
    bench_graph_substrate();
    bench_edge_loads();
    bench_embeddings();
    bench_sampling();
    bench_engine();
    bench_stream();
    bench_solvers();
    bench_rounding_and_sim();
    bench_paper_machinery();
}
