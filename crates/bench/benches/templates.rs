//! The `templates` bench group: what oblivious-template construction
//! costs, stage by stage, on the same offline mini-harness as
//! `benches/pipeline.rs`.
//!
//! Template construction is the dominant serial cost of the pipeline on
//! WAN-scale topologies; this group tracks the three rayon-parallel
//! pieces introduced to fix that — the all-pairs metric
//! ([`Metric::build`]), seeded FRT ensembles
//! ([`sample_tree_routings_seeded`]), and the Räcke build whose
//! per-iteration metric + canonical-load stages fan out over workers —
//! and prints the Räcke *wall-share* split: the fraction of the build
//! spent in parallelizable stages, i.e. the single-core headroom a
//! multi-core runner converts into wall-clock.
//!
//! Run with: `cargo bench -p ssor-bench --bench templates`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssor_engine::{PathSystemCache, TemplateBuilder, TemplateSpec, TopologySpec};
use ssor_graph::generators;
use ssor_oblivious::frt::sample_tree_routings_seeded;
use ssor_oblivious::{
    ElectricalRouting, Metric, ObliviousRouting, RaeckeOptions, RaeckeRouting, RandomWalkRouting,
};
use std::time::Instant;

/// Times `f` over `iters` runs (after one warmup) and prints min/mean.
fn bench<T>(group: &str, name: &str, iters: usize, mut f: impl FnMut() -> T) {
    let _warmup = f();
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed());
        drop(out);
    }
    let min = times.iter().min().expect("nonempty");
    let mean = times.iter().sum::<std::time::Duration>() / iters as u32;
    println!(
        "{group:>16} / {name:<40} min {:>10.1?}  mean {:>10.1?}  ({iters} iters)",
        min, mean
    );
}

fn main() {
    println!(
        "ssor template-construction micro-benchmarks (offline harness, {} rayon workers)\n",
        rayon::current_num_threads()
    );

    // The SMORE-style Waxman WAN — the topology family where template
    // construction dominates the pipeline's wall-clock.
    let (wan, _, _) = generators::waxman_connected(64, 0.4, 0.25, 7, 16);
    let grid = generators::grid(8, 8);

    bench("templates", "metric_hops_waxman64", 10, || {
        Metric::hops(&wan)
    });
    bench("templates", "metric_hops_grid8x8", 10, || {
        Metric::hops(&grid)
    });
    bench("templates", "frt_ensemble_12trees_waxman64", 10, || {
        sample_tree_routings_seeded(&wan, 12, 3)
    });
    let raecke_opts = RaeckeOptions {
        iterations: 12,
        epsilon: 0.5,
    };
    bench("templates", "raecke_build_12iter_waxman64", 5, || {
        RaeckeRouting::build(&wan, &raecke_opts, &mut StdRng::seed_from_u64(11))
    });
    bench("templates", "electrical_precompute_waxman64", 10, || {
        ElectricalRouting::new(&wan).precomputed()
    });
    bench(
        "templates",
        "random_walk_32walks_waxman64_16pairs",
        10,
        || {
            let rw = RandomWalkRouting::new(&wan, 32, 4 * wan.n(), 11);
            for s in 0..4u32 {
                for t in 4..8u32 {
                    rw.path_distribution(s, t);
                }
            }
            rw
        },
    );

    // Engine-level ensemble fan-out: distinct seeds of the FrtEnsemble
    // template built concurrently through the cache.
    bench("templates", "builder_ensemble_4x8trees_waxman64", 5, || {
        let cache = PathSystemCache::new();
        let entries: Vec<(TemplateSpec, u64)> = (0..4)
            .map(|s| (TemplateSpec::FrtEnsemble { trees: 8 }, s))
            .collect();
        TemplateBuilder::new(&cache).build_ensemble(
            &TopologySpec::Waxman {
                n: 64,
                a: 0.4.into(),
                b: 0.25.into(),
                seed: 7,
            },
            &entries,
        )
    });

    // Wall-share split: how much of the Räcke build is parallelizable
    // (metric + canonical loads) vs the serial MW tree stream — the
    // single-core headroom. Printed once so regressions show up in logs.
    let r = RaeckeRouting::build(&wan, &raecke_opts, &mut StdRng::seed_from_u64(11));
    let stats = r.build_stats().expect("raecke tracks build stats");
    let total = stats.total_wall.as_secs_f64().max(1e-12);
    println!(
        "{:>16} / raecke wall-share: metric {:.0}% + loads {:.0}% = {:.0}% parallelizable \
         (trees, serial MW stream: {:.0}%) of {:?}",
        "templates",
        stats.metric_wall.as_secs_f64() / total * 100.0,
        stats.load_wall.as_secs_f64() / total * 100.0,
        stats.parallel_share() * 100.0,
        stats.tree_wall.as_secs_f64() / total * 100.0,
        stats.total_wall,
    );
}
