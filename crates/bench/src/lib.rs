//! # ssor-bench
//!
//! Shared harness for the experiment regenerators (E1–E9, one binary per
//! paper result; see `DESIGN.md` §4 and `EXPERIMENTS.md`) and the
//! Criterion benches.
//!
//! Each experiment binary prints an aligned "paper vs measured" table and
//! writes a machine-readable JSON record under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::Serialize;
use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// A simple aligned text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(headers: &[S]) -> Self {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<S: Display>(&mut self, cells: &[S]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with right-aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes `value` as pretty JSON to `results/<name>.json` (relative to the
/// workspace root when run via `cargo run`, else the current directory).
/// Returns the path, or `None` if the filesystem refused (results are
/// best-effort records; the printed table is the primary output).
pub fn save_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from(env_root()).join("results");
    fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).ok()?;
    fs::write(&path, body).ok()?;
    Some(path)
}

/// Writes `value` as pretty JSON to `<workspace-root>/<name>.json` — the
/// home of the standing perf-trajectory records (`BENCH_pipeline.json`,
/// `BENCH_solver.json`, `BENCH_templates.json`), which live at the repo
/// root (committed each PR) rather than under the gitignored `results/`.
/// Returns the path, or `None` if the filesystem refused.
pub fn save_json_at_root<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let path = PathBuf::from(env_root()).join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).ok()?;
    fs::write(&path, body).ok()?;
    Some(path)
}

fn env_root() -> String {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| format!("{p}/../.."))
        .unwrap_or_else(|_| ".".into())
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, paper_ref: &str, claim: &str) {
    println!("================================================================");
    println!("{id} — {paper_ref}");
    println!("paper: {claim}");
    println!("================================================================\n");
}

/// Geometric mean of a nonempty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a float with 3 decimals (table convenience).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio like `4.20x`.
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header", "c"]);
        t.row(&["1", "2", "3"]);
        t.row(&["100", "2000", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len(), "rows align");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1"]);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(fx(2.5), "2.50x");
    }
}
