//! Runs every experiment regenerator (E1–E9, A1–A3) through the
//! work-stealing sweep scheduler.
//!
//! `cargo run --release -p ssor-bench --bin run_all`
//!
//! Each binary is one sweep cell: outputs are captured and printed in
//! the fixed E1..A3 order afterwards (so the transcript is deterministic
//! even when bins finish out of order), progress streams to stderr as
//! bins complete, and completions are journaled to
//! `results/run_all.journal` — a crashed or killed run picks up where it
//! left off, re-running only the bins that had not finished. The journal
//! is removed after a fully successful run, so the next invocation
//! starts fresh.
//!
//! When several workers are available the bins run concurrently, each
//! child pinned to an equal share of the workers via `RAYON_NUM_THREADS`
//! (every bin's numbers are thread-count invariant, so sharding changes
//! wall-clock only).

use serde::Serialize;
use ssor_engine::sweep::{cells, run_sweep, SweepOptions};
use std::path::PathBuf;
use std::process::Command;

#[derive(Serialize)]
struct BinRun {
    bin: String,
    code: i64,
    stdout: String,
    stderr: String,
}

fn results_dir() -> PathBuf {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| format!("{p}/../.."))
        .unwrap_or_else(|_| ".".into());
    PathBuf::from(root).join("results")
}

fn main() {
    let bins = [
        "e1_log_sparsity",
        "e2_alpha_sweep",
        "e3_lower_bound",
        "e4_deterministic",
        "e5_cut_sparsity",
        "e6_completion_time",
        "e7_traffic_engineering",
        "e8_rounding",
        "e9_tail_bounds",
        "a1_oblivious_ablation",
        "a2_solver_ablation",
        "a3_hop_ablation",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir").to_path_buf();

    let workers = rayon::current_num_threads().min(bins.len()).max(1);
    // Don't oversubscribe: the bins are internally parallel, so each
    // child gets an equal share of the ambient worker budget.
    let child_threads = (rayon::current_num_threads() / workers).max(1);

    std::fs::create_dir_all(results_dir()).ok();
    let journal = results_dir().join("run_all.journal");
    let opts = SweepOptions::default()
        .journal(&journal)
        .threads(workers)
        .progress();

    let grid = cells(bins.iter().map(|b| b.to_string()).collect::<Vec<_>>());
    let outcome = run_sweep(&grid, &opts, |cell, _seed| {
        let out = Command::new(dir.join(&cell.payload))
            .env("RAYON_NUM_THREADS", child_threads.to_string())
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", cell.payload));
        let code = out.status.code().unwrap_or(-1) as i64;
        let run = BinRun {
            bin: cell.payload.clone(),
            code,
            stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
            stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        };
        // A failed bin must not reach the journal (it would be skipped
        // as "completed" on resume): surface its output and panic. Bins
        // already finished stay journaled, so the rerun only repeats
        // this one.
        if code != 0 {
            eprintln!("\n##### {} FAILED (code {code}) #####\n", run.bin);
            eprint!("{}{}", run.stdout, run.stderr);
            panic!("{} exited with code {code}", run.bin);
        }
        run
    });

    for rec in &outcome.records {
        let bin = bins[rec.id as usize];
        println!("\n##### {bin} #####\n");
        match &rec.result {
            Some(run) => {
                print!("{}", run.stdout);
                if !run.stderr.is_empty() {
                    eprint!("{}", run.stderr);
                }
            }
            // Resumed from the journal of an interrupted earlier run:
            // the bin already completed and wrote its results/ record.
            None => println!("(completed in a previous interrupted run; see results/)"),
        }
    }
    std::fs::remove_file(&journal).ok();
    println!(
        "\nall experiments completed ({} run now, {} resumed); JSON records in results/",
        outcome.executed, outcome.resumed
    );
}
