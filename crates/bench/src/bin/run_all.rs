//! Runs every experiment regenerator (E1–E9) in sequence.
//!
//! `cargo run --release -p ssor-bench --bin run_all`

use std::process::Command;

fn main() {
    let bins = [
        "e1_log_sparsity",
        "e2_alpha_sweep",
        "e3_lower_bound",
        "e4_deterministic",
        "e5_cut_sparsity",
        "e6_completion_time",
        "e7_traffic_engineering",
        "e8_rounding",
        "e9_tail_bounds",
        "a1_oblivious_ablation",
        "a2_solver_ablation",
        "a3_hop_ablation",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        println!("\n##### {bin} #####\n");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall experiments completed; JSON records in results/");
}
