//! The standing perf harness: pinned benchmark groups whose wall-time
//! medians are written to `BENCH_pipeline.json`, `BENCH_solver.json`,
//! `BENCH_templates.json`, `BENCH_serve.json`, and `BENCH_lint.json`
//! **at the repo root** each PR, so the perf trajectory between PRs is
//! a recorded number instead of a guess.
//!
//! Contract (see README "Perf trajectory"):
//!
//! * specs and seeds are **pinned** — a changed median means the *code*
//!   changed speed, not the workload;
//! * rounds are **interleaved** (round-robin across the group per
//!   round), so ambient machine noise spreads evenly across benches
//!   instead of biasing whichever ran last;
//! * the recorded statistic is the **median** of an odd number of
//!   rounds, with min/max kept for spread.
//!
//! `--smoke` swaps in tiny specs (seconds, for CI liveness + JSON-shape
//! checking); the committed records always come from a full run:
//! `cargo run --release -p ssor-bench --bin bench_trajectory`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{save_json_at_root, Table};
use ssor_core::sample::alpha_sample;
use ssor_engine::{DemandSpec, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
use ssor_flow::solver::{
    min_congestion_masked, min_congestion_restricted, min_congestion_unrestricted,
};
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::generators;
use ssor_oblivious::frt::{FrtTree, Metric};
use ssor_oblivious::{
    ElectricalRouting, ObliviousRouting, RaeckeOptions, RaeckeRouting, RandomWalkRouting,
    ValiantRouting,
};
use ssor_serve::{
    answer_batch_on, churned_source, ChurnModel, EpochCell, QueryPlane, Rebuilder, Request,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BenchRow {
    name: String,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Serialize)]
struct BenchGroup {
    group: String,
    mode: String,
    rounds: usize,
    benches: Vec<BenchRow>,
}

type Bench<'a> = (String, Box<dyn FnMut() + 'a>);

/// Runs `benches` for `rounds` interleaved rounds (after one untimed
/// warmup round) and writes `BENCH_<group>.json` at the repo root.
fn run_group(group: &str, mode: &str, rounds: usize, mut benches: Vec<Bench<'_>>) {
    assert!(rounds % 2 == 1, "odd round count keeps the median a sample");
    for (_, f) in benches.iter_mut() {
        f();
    }
    let mut times: Vec<Vec<u64>> = vec![Vec::with_capacity(rounds); benches.len()];
    for _ in 0..rounds {
        for (i, (_, f)) in benches.iter_mut().enumerate() {
            let t0 = Instant::now();
            f();
            times[i].push(t0.elapsed().as_nanos() as u64);
        }
    }
    let rows: Vec<BenchRow> = benches
        .iter()
        .zip(times.iter_mut())
        .map(|((name, _), ts)| {
            ts.sort_unstable();
            BenchRow {
                name: name.clone(),
                median_ns: ts[ts.len() / 2],
                min_ns: ts[0],
                max_ns: ts[ts.len() - 1],
            }
        })
        .collect();

    let mut table = Table::new(&["bench", "median", "min", "max"]);
    for r in &rows {
        table.row(&[
            r.name.clone(),
            format!("{:.1?}", std::time::Duration::from_nanos(r.median_ns)),
            format!("{:.1?}", std::time::Duration::from_nanos(r.min_ns)),
            format!("{:.1?}", std::time::Duration::from_nanos(r.max_ns)),
        ]);
    }
    println!("\n== {group} ({mode}, {rounds} interleaved rounds) ==");
    table.print();
    let record = BenchGroup {
        group: group.to_string(),
        mode: mode.to_string(),
        rounds,
        benches: rows,
    };
    match save_json_at_root(&format!("BENCH_{group}"), &record) {
        Some(p) => println!("-> {}", p.display()),
        None => eprintln!("warning: could not write BENCH_{group}.json"),
    }
}

fn pipeline_group(smoke: bool) -> Vec<Bench<'static>> {
    let (dim, sweep_dim) = if smoke { (4, 3) } else { (6, 5) };
    let mk = move || {
        Pipeline::on(TopologySpec::Hypercube { dim })
            .template(TemplateSpec::Valiant)
            .alpha(4)
            .seed(9)
            .solve_options(SolveOptions::with_eps(0.1))
            .demand("bit-reversal", DemandSpec::BitReversal)
    };
    let warm_cache = PathSystemCache::new();
    mk().run(&warm_cache);
    let sweep = Pipeline::on(TopologySpec::Hypercube { dim: sweep_dim })
        .template(TemplateSpec::Valiant)
        .alpha(3)
        .seed(5)
        .solve_options(SolveOptions::with_eps(0.1))
        .without_opt()
        .demand("complement", DemandSpec::Complement);
    let sweep_cache = PathSystemCache::new();
    sweep.prepare(&sweep_cache);
    let trials = if smoke { 2 } else { 4 };
    vec![
        (
            format!("pipeline_cold_hypercube{dim}_alpha4"),
            Box::new(move || {
                mk().run(&PathSystemCache::new());
            }),
        ),
        (
            format!("pipeline_warm_hypercube{dim}_alpha4"),
            Box::new(move || {
                mk().run(&warm_cache);
            }),
        ),
        (
            format!("failure_sweep_hypercube{sweep_dim}_k2_t{trials}"),
            Box::new(move || {
                sweep.failure_sweep(&sweep_cache, 2, trials);
            }),
        ),
    ]
}

fn solver_group(smoke: bool) -> Vec<Bench<'static>> {
    let dim = if smoke { 4u32 } else { 6 };
    let perm = if smoke { 16usize } else { 64 };
    let valiant = ValiantRouting::new(dim);
    let d = Demand::hypercube_bit_reversal(dim);
    let mut rng = StdRng::seed_from_u64(4);
    let ps = alpha_sample(&valiant, &d.support(), 4, &mut rng);
    let opts = SolveOptions::with_eps(0.1);
    let q = generators::hypercube(dim);
    let dbig = Demand::random_permutation(perm, &mut rng);
    let mut sub = q.sub_topology();
    for e in [3u32, 31, 77, 120] {
        if (e as usize) < q.m() {
            sub.fail_edge(e);
        }
    }
    let usable = sub.usable_edges();
    vec![
        (
            format!("restricted_mwu_hypercube{dim}_alpha4"),
            Box::new({
                let (valiant, d, ps, opts) = (valiant, d, ps, opts.clone());
                move || {
                    min_congestion_restricted(valiant.graph(), &d, ps.candidates(), &opts);
                }
            }),
        ),
        (
            format!("offline_opt_hypercube{dim}_perm{perm}"),
            Box::new({
                let (q, dbig, opts) = (q.clone(), dbig.clone(), opts.clone());
                move || {
                    min_congestion_unrestricted(&q, &dbig, &opts);
                }
            }),
        ),
        (
            format!("masked_opt_hypercube{dim}_perm{perm}_k4"),
            Box::new(move || {
                min_congestion_masked(&q, &dbig, &usable, &opts);
            }),
        ),
    ]
}

fn templates_group(smoke: bool) -> Vec<Bench<'static>> {
    let (r_rows, f_rows, iters) = if smoke { (3, 4, 4) } else { (5, 8, 8) };
    // The scale row the electrical rewrite exists for: a >=10k-node
    // Waxman WAN, per-source PCG solves batched over a pinned source
    // subset (a full n-source precompute would also hold an n x n
    // potentials cache — the per-source cost is the tracked number).
    let (wax_n, wax_a, wax_b, wax_sources) = if smoke {
        (200usize, 0.3, 0.15, 4usize)
    } else {
        (10_000, 0.1, 0.04, 16)
    };
    let small = generators::grid(r_rows, r_rows);
    let big = generators::grid(f_rows, f_rows);
    let metric = Metric::hops(&big);
    let n = big.n();
    let grid_el = big.clone();
    let grid_rw = big.clone();
    let (wan, _, _) = generators::waxman_connected(wax_n, wax_a, wax_b, 1, 4);
    let sources: Vec<u32> = (0..wax_sources as u32).collect();
    vec![
        (
            format!("raecke_build_grid{r_rows}x{r_rows}_{iters}trees"),
            Box::new(move || {
                RaeckeRouting::build(
                    &small,
                    &RaeckeOptions {
                        iterations: iters,
                        epsilon: 0.5,
                    },
                    &mut StdRng::seed_from_u64(2),
                );
            }),
        ),
        (
            format!("frt_sample_grid{f_rows}x{f_rows}"),
            Box::new(move || {
                FrtTree::sample_seeded(&metric, n, 1);
            }),
        ),
        (
            format!("electrical_build_grid{f_rows}x{f_rows}_allsrc"),
            Box::new(move || {
                ElectricalRouting::new(&grid_el).precomputed();
            }),
        ),
        (
            format!("electrical_build_waxman{wax_n}_{wax_sources}src"),
            Box::new(move || {
                ElectricalRouting::new(&wan).precompute_sources(&sources);
            }),
        ),
        (
            format!("random_walk_build_grid{f_rows}x{f_rows}_32walks"),
            Box::new(move || {
                let rw = RandomWalkRouting::new(&grid_rw, 32, 4 * grid_rw.n(), 11);
                for s in 0..8u32 {
                    for t in 8..16u32 {
                        rw.path_distribution(s, t);
                    }
                }
            }),
        ),
    ]
}

#[derive(Serialize)]
struct ServeRow {
    name: String,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    lookups_per_sec: f64,
}

#[derive(Serialize)]
struct ServeGroup {
    group: String,
    mode: String,
    rounds: usize,
    cores: usize,
    queries_per_batch: usize,
    alpha: usize,
    benches: Vec<ServeRow>,
    isolated_shard_rate_sum_8: f64,
}

/// The serving-plane group gets its own runner: the `under_swaps`
/// configurations need a live background [`Rebuilder`] scoped to exactly
/// their own timed rounds, so configurations run sequentially (each with
/// a warmup batch) instead of interleaved.
///
/// All timings are honest wall numbers on whatever `cores` reports — on
/// a 1-core box the shards time-slice, so the per-shard-count rows mostly
/// measure sharding overhead. `isolated_shard_rate_sum_8` is the labeled
/// multi-core headroom estimate: each of the 8 round-robin shard slices
/// timed by itself on the same snapshot, and the implied rates summed
/// (what 8 genuinely parallel cores would sustain, shard independence
/// being exact — shards share nothing but the immutable snapshot).
fn run_serve_group(smoke: bool) {
    let (side, trees, path_alpha, q) = if smoke {
        (3usize, 2usize, 2usize, 256u64)
    } else {
        (6, 4, 3, 4096)
    };
    let (mode, rounds) = if smoke { ("smoke", 3) } else { ("full", 7) };
    const ALPHA: usize = 4;
    let churn = ChurnModel::TemplateSeedDrift { master_seed: 2023 };
    let base = move || {
        Pipeline::on(TopologySpec::Grid {
            rows: side,
            cols: side,
        })
        .template(TemplateSpec::FrtEnsemble { trees })
        .alpha(path_alpha)
    };
    let n = (side * side) as u64;
    let reqs: Vec<Request> = (0..q)
        .map(|i| {
            let s = (i % n) as u32;
            let mut t = ((i * 31 + 1) % n) as u32;
            if t == s {
                t = (t + 1) % n as u32;
            }
            Request { id: i, s, t }
        })
        .collect();

    let mut rows: Vec<ServeRow> = Vec::new();
    for swaps in [false, true] {
        for shards in [1usize, 2, 8] {
            let cache = Arc::new(PathSystemCache::bounded(8));
            let mut source = churned_source(cache, base(), churn.clone());
            let cell = Arc::new(EpochCell::new(Arc::new(source(0))));
            let plane = QueryPlane::new(Arc::clone(&cell), ALPHA, shards);
            let rebuilder = swaps.then(|| Rebuilder::spawn(Arc::clone(&cell), source, None));
            plane.answer_batch(&reqs); // warmup
            let mut ts: Vec<u64> = (0..rounds)
                .map(|_| {
                    let t0 = Instant::now();
                    plane.answer_batch(&reqs);
                    t0.elapsed().as_nanos() as u64
                })
                .collect();
            if let Some(rb) = rebuilder {
                rb.stop();
            }
            ts.sort_unstable();
            let median_ns = ts[ts.len() / 2];
            rows.push(ServeRow {
                name: format!(
                    "lookups_grid{side}x{side}_{shards}shards{}",
                    if swaps { "_under_swaps" } else { "" }
                ),
                median_ns,
                min_ns: ts[0],
                max_ns: ts[ts.len() - 1],
                lookups_per_sec: q as f64 * 1e9 / median_ns as f64,
            });
        }
    }

    // Headroom: each 8-way round-robin shard slice timed in isolation on
    // one static snapshot; the summed rates are what independent cores
    // would sustain concurrently.
    let table = churned_source(Arc::new(PathSystemCache::new()), base(), churn)(0);
    let isolated_shard_rate_sum_8: f64 = (0..8usize)
        .map(|k| {
            let slice: Vec<Request> = reqs.iter().copied().skip(k).step_by(8).collect();
            answer_batch_on(&table, ALPHA, 1, &slice); // warmup
            let mut ts: Vec<u64> = (0..rounds)
                .map(|_| {
                    let t0 = Instant::now();
                    answer_batch_on(&table, ALPHA, 1, &slice);
                    t0.elapsed().as_nanos() as u64
                })
                .collect();
            ts.sort_unstable();
            slice.len() as f64 * 1e9 / ts[ts.len() / 2] as f64
        })
        .sum();

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut table_out = Table::new(&["bench", "median", "lookups/s"]);
    for r in &rows {
        table_out.row(&[
            r.name.clone(),
            format!("{:.1?}", std::time::Duration::from_nanos(r.median_ns)),
            format!("{:.0}", r.lookups_per_sec),
        ]);
    }
    println!("\n== serve ({mode}, {rounds} rounds, {cores} core(s), {q} queries/batch) ==");
    table_out.print();
    println!("   isolated 8-shard rate sum (multi-core headroom): {isolated_shard_rate_sum_8:.0} lookups/s");
    let record = ServeGroup {
        group: "serve".to_string(),
        mode: mode.to_string(),
        rounds,
        cores,
        queries_per_batch: q as usize,
        alpha: ALPHA,
        benches: rows,
        isolated_shard_rate_sum_8,
    };
    match save_json_at_root("BENCH_serve", &record) {
        Some(p) => println!("-> {}", p.display()),
        None => eprintln!("warning: could not write BENCH_serve.json"),
    }
}

/// The static-analysis group: one full-workspace `ssor-lint --check`
/// (scan + parse + call graph + contracts + ratchet) run in-process.
/// The workload is the committed tree itself, so the row tracks how
/// much wall time the lint gate costs CI as both the checker and the
/// workspace grow. Smoke and full modes share the workload — the tree
/// is the spec.
fn lint_group() -> Vec<Bench<'static>> {
    let root = ssor_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("bench binaries run from inside the workspace");
    let budget = root.join("lint_budget.json");
    vec![(
        "workspace_check".to_string(),
        Box::new(move || {
            let outcome = ssor_lint::run(&root, &budget, ssor_lint::Mode::Check)
                .expect("the lint walk reads the committed tree");
            assert!(outcome.files_scanned > 0, "the walk visited sources");
        }),
    )]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (mode, rounds) = if smoke { ("smoke", 3) } else { ("full", 7) };
    println!("ssor perf trajectory ({mode} mode): pinned specs, interleaved medians");
    run_group("pipeline", mode, rounds, pipeline_group(smoke));
    run_group("solver", mode, rounds, solver_group(smoke));
    run_group("templates", mode, rounds, templates_group(smoke));
    run_serve_group(smoke);
    run_group("lint", mode, rounds, lint_group());
    println!("\ntrajectory records written; commit the BENCH_*.json from a full release run.");
}
