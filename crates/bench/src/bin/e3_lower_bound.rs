//! E3 — Lemmas 2.4/2.6/8.1 and Figure 1: the lower-bound construction.
//!
//! Builds `C(n, k)` for several `(n, α)`, runs the constructive Lemma 8.1
//! adversary against sampled path systems, and verifies that the realized
//! congestion matches the certified `k/α` bound while the offline optimum
//! stays at 1.
//!
//! On `C(n, k)` every simple cross path has the form
//! `s - v1 - mid - v2 - t`, so the (unique, optimal) oblivious routing is
//! "pick a uniformly random middle"; the α-sample therefore picks α random
//! middles per pair, which we construct directly for speed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, Table};
use ssor_core::PathSystem;
use ssor_flow::solver::{min_congestion_restricted, SolveOptions};
use ssor_graph::{Graph, Path};
use ssor_lowerbound::{
    c_graph, certify_hitting, find_adversarial_demand, g_graph, k_for_alpha, optimal_witness,
    CGraphMeta,
};

#[derive(Serialize)]
struct Row {
    n: usize,
    alpha: usize,
    k: usize,
    matched: usize,
    certified_bound: f64,
    measured_congestion: f64,
    integral_opt: u64,
}

/// The α-sample of the uniform-over-middles oblivious routing on C(n, k):
/// α random middles per cross pair (with replacement; duplicates collapse).
fn middle_sample(g: &Graph, meta: &CGraphMeta, alpha: usize, rng: &mut StdRng) -> PathSystem {
    let mut ps = PathSystem::new();
    for &s in &meta.left_leaves {
        for &t in &meta.right_leaves {
            for _ in 0..alpha {
                let mid = *meta.middle.choose(rng).unwrap();
                let p = Path::from_vertices(g, &[s, meta.left_center, mid, meta.right_center, t])
                    .expect("cross path");
                ps.insert(p);
            }
        }
    }
    ps
}

fn main() {
    banner(
        "E3",
        "Lemmas 2.4/2.6/8.1, Figure 1",
        "on C(n, k), k = n^{1/2α}: every α-sparse system admits a permutation demand with congestion ≥ k/α while OPT = 1",
    );
    let opts = SolveOptions::with_eps(0.03);
    let mut table = Table::new(&[
        "n",
        "α",
        "k",
        "matched",
        "certified ≥",
        "measured cong",
        "OPT_Z",
    ]);
    let mut rows = Vec::new();

    for (n, alpha) in [
        (36usize, 1usize),
        (64, 1),
        (144, 1),
        (256, 1),
        (64, 2),
        (256, 2),
        (576, 2),
        (1024, 2),
    ] {
        let k = k_for_alpha(n, alpha).max(1);
        if alpha > k {
            // The construction is vacuous once α reaches k (any system can
            // cover all middles); skip, as the paper's asymptotics require
            // α = o(log n / log log n) with k = n^{1/2α} >= 2.
            continue;
        }
        let (g, meta) = c_graph(n, k);
        let mut rng = StdRng::seed_from_u64(300 + (n * 10 + alpha) as u64);
        let ps = middle_sample(&g, &meta, alpha, &mut rng);

        let adv = find_adversarial_demand(&meta, &ps, alpha);
        certify_hitting(&ps, &adv).expect("hitting-set certificate");
        let measured = if adv.demand.is_empty() {
            0.0
        } else {
            let sol = min_congestion_restricted(&g, &adv.demand, ps.candidates(), &opts);
            // The certification below is only meaningful if the whole
            // adversarial demand was actually routed — stranded mass
            // would silently deflate the measured congestion.
            assert_eq!(
                sol.stranded, 0.0,
                "path system misses adversarial pairs {:?}",
                sol.dropped_pairs
            );
            sol.congestion
        };
        let witness = optimal_witness(&g, &meta, &adv.demand);
        let opt = witness.congestion(&g);

        table.row(&[
            n.to_string(),
            alpha.to_string(),
            k.to_string(),
            adv.matched.to_string(),
            f3(adv.congestion_lower_bound),
            f3(measured),
            opt.to_string(),
        ]);
        rows.push(Row {
            n,
            alpha,
            k,
            matched: adv.matched,
            certified_bound: adv.congestion_lower_bound,
            measured_congestion: measured,
            integral_opt: opt,
        });
    }
    table.print();

    // The composite G(n) of Lemma 8.2: the same failure at every scale.
    println!("\n-- G(n) composite (Lemma 8.2), n = 64 --");
    let (gg, metas) = g_graph(64);
    println!(
        "G(64): {} vertices, {} edges, {} C-copies (α = 1..{})",
        gg.n(),
        gg.m(),
        metas.len(),
        metas.len()
    );
    let mut inner = Table::new(&["copy α", "k", "matched", "certified ≥"]);
    for (i, meta) in metas.iter().enumerate() {
        let alpha = i + 1;
        if meta.k < alpha.max(2) {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(400 + i as u64);
        let ps = middle_sample(&gg, meta, alpha, &mut rng);
        let adv = find_adversarial_demand(meta, &ps, alpha);
        certify_hitting(&ps, &adv).expect("hitting-set certificate");
        inner.row(&[
            alpha.to_string(),
            meta.k.to_string(),
            adv.matched.to_string(),
            f3(adv.congestion_lower_bound),
        ]);
    }
    inner.print();

    println!("\nshape check: measured congestion ≥ certified k/α at every scale, OPT = 1;");
    println!("             the trade-off lower bound n^{{1/2α}}/α is realized constructively.");
    if let Some(p) = ssor_bench::save_json("e3_lower_bound", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
