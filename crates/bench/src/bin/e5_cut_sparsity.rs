//! E5 — Theorem 5.3 and the two-cliques example of Section 2.1:
//! `(α + cut)`-sparsity is necessary and sufficient for fractional
//! demands.
//!
//! A single unit of demand between the cliques can be spread over `cut`
//! bridges by the optimum (congestion `1/cut`), so any `β`-competitive
//! system needs `≥ cut/β` candidate paths: plain `α`-samples are doomed,
//! `(α + cut)`-samples are fine. Also exercises the special-demand
//! bucketing of Lemma 5.9 on the same instance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, fx, Table};
use ssor_core::sample::{alpha_cut_sample, alpha_sample};
use ssor_core::special::{bucket_decompose, is_special};
use ssor_core::SemiObliviousRouter;
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::generators;
use ssor_oblivious::KspRouting;

#[derive(Serialize)]
struct Row {
    clique: usize,
    bridges: usize,
    alpha: usize,
    ratio_alpha_sample: f64,
    ratio_alpha_cut_sample: f64,
}

fn main() {
    banner(
        "E5",
        "Theorem 5.3 + Section 2.1 two-cliques example",
        "alpha-sparse systems cannot be competitive for fractional demands (need cut/β paths); (alpha + cut)-samples are",
    );
    let opts = SolveOptions::with_eps(0.03);
    let alpha = 2usize;
    let mut table = Table::new(&[
        "clique",
        "bridges(=cut)",
        "α",
        "α-sample ratio",
        "(α+cut)-sample ratio",
    ]);
    let mut rows = Vec::new();

    for bridges in [2usize, 4, 6, 8] {
        let size = 10;
        let g = generators::two_cliques_bridge(size, bridges);
        // Demand: one unit from a bridgeless vertex of clique A to one of
        // clique B — OPT spreads it over all bridges.
        let s = (size - 1) as u32;
        let t = (2 * size - 1) as u32;
        let d = Demand::from_pairs(&[(s, t)]);
        let ksp = KspRouting::new(&g, bridges + alpha + 2);
        let mut rng = StdRng::seed_from_u64(600 + bridges as u64);

        let plain = alpha_sample(&ksp, &[(s, t)], alpha, &mut rng);
        let cutful = alpha_cut_sample(&ksp, &g, &[(s, t)], alpha, &mut rng);

        let r1 = SemiObliviousRouter::new(g.clone(), plain).competitive_report(&d, &opts);
        let r2 = SemiObliviousRouter::new(g.clone(), cutful).competitive_report(&d, &opts);
        table.row(&[
            size.to_string(),
            bridges.to_string(),
            alpha.to_string(),
            fx(r1.ratio),
            fx(r2.ratio),
        ]);
        rows.push(Row {
            clique: size,
            bridges,
            alpha,
            ratio_alpha_sample: r1.ratio,
            ratio_alpha_cut_sample: r2.ratio,
        });
    }
    table.print();
    println!("\nshape check: the α-sample ratio grows like cut/α; the (α+cut)-sample stays O(1).");

    // Lemma 5.9 bucketing demo on a mixed-magnitude demand.
    println!("\n-- Lemma 5.9 special-demand bucketing --");
    let g = generators::two_cliques_bridge(6, 3);
    let mut d = Demand::new();
    d.set(0, 7, 0.5);
    d.set(1, 8, 4.0);
    d.set(2, 9, 40.0);
    let buckets = bucket_decompose(&g, &d, alpha);
    let mut bt = Table::new(&["bucket", "pairs", "scale", "special?"]);
    for (i, b) in buckets.iter().enumerate() {
        bt.row(&[
            i.to_string(),
            b.part.support_len().to_string(),
            f3(b.scale),
            is_special(&g, &b.special, alpha).to_string(),
        ]);
    }
    bt.print();
    println!(
        "\n{} buckets cover the demand exactly (O(log m) predicted by Lemma 5.9).",
        buckets.len()
    );
    if let Some(p) = ssor_bench::save_json("e5_cut_sparsity", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
