//! A1 — template bake-off: which base oblivious routing should one
//! sample from, and what does building it cost?
//!
//! Theorem 5.3 is black-box in the oblivious routing `R`: the sample
//! inherits `R`'s competitiveness. This bake-off quantifies the choice
//! across the workspace's three serving topologies (Waxman WAN, Clos
//! leaf–spine, hypercube) for the five general-purpose templates:
//! Räcke-MWU trees, a plain FRT ensemble (no reweighting), electrical
//! flows (per-source preconditioned Laplacian solves), random walks
//! (Schapira–Shahaf), and generic Valiant load balancing — plus the
//! deterministic single-shortest-path strawman as the floor. Each cell
//! reports the sampled competitive ratio *and* the template build wall,
//! because the schemes trade exactly those two off.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, fx, geomean, Table};
use ssor_core::{sample, SemiObliviousRouter};
use ssor_flow::solver::min_congestion_unrestricted;
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::{generators, Graph};
use ssor_oblivious::{
    ElectricalRouting, ObliviousRouting, RaeckeOptions, RaeckeRouting, RandomWalkRouting,
    ShortestPathRouting, VlbRouting,
};
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    topology: String,
    base_routing: String,
    mean_ratio: f64,
    build_wall_ms: f64,
}

fn mean_ratio<O: ObliviousRouting + ?Sized>(
    base: &O,
    g: &Graph,
    demands: &[Demand],
    alpha: usize,
    opts: &SolveOptions,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let ratios: Vec<f64> = demands
        .iter()
        .map(|d| {
            let ps = sample::alpha_sample(base, &d.support(), alpha, &mut rng);
            let router = SemiObliviousRouter::new(g.clone(), ps);
            let semi = router.route_fractional(d, opts).congestion;
            let opt = min_congestion_unrestricted(g, d, opts);
            semi / opt.lower_bound.max(f64::MIN_POSITIVE)
        })
        .collect();
    geomean(&ratios)
}

/// Builds each of the six templates on `g`, timing construction.
fn build_schemes(g: &Graph) -> Vec<(&'static str, Box<dyn ObliviousRouting>, f64)> {
    let mut out: Vec<(&'static str, Box<dyn ObliviousRouting>, f64)> = Vec::new();
    let timed = |name: &'static str,
                 build: &mut dyn FnMut() -> Box<dyn ObliviousRouting>,
                 out: &mut Vec<(&'static str, Box<dyn ObliviousRouting>, f64)>| {
        let t0 = Instant::now();
        let routing = build();
        out.push((name, routing, t0.elapsed().as_secs_f64() * 1e3));
    };
    timed(
        "Räcke MWU (12 trees)",
        &mut || {
            Box::new(RaeckeRouting::build(
                g,
                &RaeckeOptions {
                    iterations: 12,
                    epsilon: 0.5,
                },
                &mut StdRng::seed_from_u64(5),
            ))
        },
        &mut out,
    );
    timed(
        "FRT ensemble (12 trees, no MWU)",
        &mut || Box::new(RaeckeRouting::frt_ensemble(g, 12, 7)),
        &mut out,
    );
    timed(
        "electrical (per-source PCG)",
        &mut || Box::new(ElectricalRouting::new(g).precomputed()),
        &mut out,
    );
    timed(
        "random walks (32 × len 4n)",
        &mut || Box::new(RandomWalkRouting::new(g, 32, 4 * g.n(), 13)),
        &mut out,
    );
    timed(
        "VLB (uniform intermediate)",
        &mut || Box::new(VlbRouting::new(g)),
        &mut out,
    );
    timed(
        "single shortest path",
        &mut || Box::new(ShortestPathRouting::new(g)),
        &mut out,
    );
    out
}

fn main() {
    banner(
        "A1",
        "template bake-off over the base oblivious routing (Theorem 5.3 is black-box in R)",
        "sampling inherits the base routing's competitiveness; build cost varies by orders of magnitude across schemes",
    );
    let alpha = 4usize;
    let opts = SolveOptions::with_eps(0.07);

    let topologies: Vec<(&str, Graph)> = vec![
        (
            "WAN (Waxman, n=48)",
            generators::waxman_connected(48, 0.4, 0.25, 3, 16).0,
        ),
        (
            "Clos (4 spines × 8 leaves × 2 hosts)",
            generators::leaf_spine(4, 8, 2, 1),
        ),
        ("hypercube (d=5)", generators::hypercube(5)),
    ];
    println!("α = {alpha}; 3 random permutation demands per topology\n");

    let mut table = Table::new(&[
        "topology",
        "base oblivious routing",
        "mean ratio(≤)",
        "build wall (ms)",
    ]);
    let mut rows: Vec<Row> = Vec::new();

    for (topo_name, g) in &topologies {
        let mut rng = StdRng::seed_from_u64(4);
        let demands: Vec<Demand> = (0..3)
            .map(|_| Demand::random_permutation(g.n(), &mut rng))
            .collect();
        for (i, (scheme, routing, build_ms)) in build_schemes(g).into_iter().enumerate() {
            let r = mean_ratio(routing.as_ref(), g, &demands, alpha, &opts, 20 + i as u64);
            table.row(&[
                topo_name.to_string(),
                scheme.to_string(),
                fx(r),
                format!("{build_ms:.2}"),
            ]);
            rows.push(Row {
                topology: topo_name.to_string(),
                base_routing: scheme.to_string(),
                mean_ratio: r,
                build_wall_ms: build_ms,
            });
        }
    }

    table.print();
    println!("\nshape check: every diverse randomized support beats the deterministic single");
    println!("             path; trees pay their build cost for worst-case guarantees, while");
    println!("             electrical flows are strong on expanders and random walks are the");
    println!("             cheap build that degrades on low-conductance topologies.");
    if let Some(p) = ssor_bench::save_json("a1_oblivious_ablation", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
