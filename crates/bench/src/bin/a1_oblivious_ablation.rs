//! A1 — ablation: which base oblivious routing should one sample from?
//!
//! Theorem 5.3 is black-box in the oblivious routing `R`: the sample
//! inherits `R`'s competitiveness. This ablation quantifies the choice on
//! a fixed graph/demand suite: Räcke-MWU trees vs a plain FRT ensemble
//! (no reweighting) vs electrical flows vs ECMP vs single shortest paths,
//! all sampled at the same sparsity. It also sweeps the Räcke iteration
//! count (the only knob of the `[Räc08]` construction we expose).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, fx, geomean, Table};
use ssor_core::{sample, SemiObliviousRouter};
use ssor_flow::solver::min_congestion_unrestricted;
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::{generators, Graph};
use ssor_oblivious::{
    EcmpRouting, ElectricalRouting, ObliviousRouting, RaeckeOptions, RaeckeRouting,
    ShortestPathRouting,
};

#[derive(Serialize)]
struct Row {
    base_routing: String,
    mean_ratio: f64,
}

fn mean_ratio<O: ObliviousRouting + ?Sized>(
    base: &O,
    g: &Graph,
    demands: &[Demand],
    alpha: usize,
    opts: &SolveOptions,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let ratios: Vec<f64> = demands
        .iter()
        .map(|d| {
            let ps = sample::alpha_sample(base, &d.support(), alpha, &mut rng);
            let router = SemiObliviousRouter::new(g.clone(), ps);
            let semi = router.route_fractional(d, opts).congestion;
            let opt = min_congestion_unrestricted(g, d, opts);
            semi / opt.lower_bound.max(f64::MIN_POSITIVE)
        })
        .collect();
    geomean(&ratios)
}

fn main() {
    banner(
        "A1",
        "ablation over the base oblivious routing (Theorem 5.3 is black-box in R)",
        "sampling inherits the base routing's competitiveness; diverse randomized supports beat deterministic single paths",
    );
    let g = generators::random_regular(48, 4, &mut StdRng::seed_from_u64(3));
    let alpha = 4usize;
    let mut rng = StdRng::seed_from_u64(4);
    let demands: Vec<Demand> = (0..4)
        .map(|_| Demand::random_permutation(48, &mut rng))
        .collect();
    let opts = SolveOptions::with_eps(0.07);
    println!("graph: random 4-regular, n = 48; α = {alpha}; 4 random permutation demands\n");

    let mut table = Table::new(&["base oblivious routing", "mean ratio(≤)"]);
    let mut rows: Vec<Row> = Vec::new();
    let push = |name: &str, r: f64, table: &mut Table, rows: &mut Vec<Row>| {
        table.row(&[name.to_string(), fx(r)]);
        rows.push(Row {
            base_routing: name.into(),
            mean_ratio: r,
        });
    };

    for iters in [4usize, 12, 24] {
        let raecke = RaeckeRouting::build(
            &g,
            &RaeckeOptions {
                iterations: iters,
                epsilon: 0.5,
            },
            &mut StdRng::seed_from_u64(5),
        );
        let r = mean_ratio(&raecke, &g, &demands, alpha, &opts, 6);
        push(
            &format!("Räcke MWU ({iters} trees)"),
            r,
            &mut table,
            &mut rows,
        );
    }
    {
        // Räcke minus the multiplicative-weights loop: a uniform mixture
        // of seed-derived FRT trees, built in parallel.
        let ens = RaeckeRouting::frt_ensemble(&g, 12, 7);
        let r = mean_ratio(&ens, &g, &demands, alpha, &opts, 8);
        push("FRT ensemble (12 trees, no MWU)", r, &mut table, &mut rows);
    }
    {
        let el = ElectricalRouting::new(&g);
        let r = mean_ratio(&el, &g, &demands, alpha, &opts, 9);
        push("electrical flow", r, &mut table, &mut rows);
    }
    {
        let ecmp = EcmpRouting::new(&g);
        let r = mean_ratio(&ecmp, &g, &demands, alpha, &opts, 10);
        push("ECMP (uniform shortest)", r, &mut table, &mut rows);
    }
    {
        let sp = ShortestPathRouting::new(&g);
        let r = mean_ratio(&sp, &g, &demands, alpha, &opts, 11);
        push("single shortest path", r, &mut table, &mut rows);
    }

    table.print();
    println!("\nshape check: MWU reweighting improves over plain FRT ensembles and more trees");
    println!("             help; every diverse randomized support beats the deterministic");
    println!("             single path. (On small expanders electrical flows are also strong;");
    println!("             the tree-based guarantee is about *worst-case* graphs.)");
    if let Some(p) = ssor_bench::save_json("a1_oblivious_ablation", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
