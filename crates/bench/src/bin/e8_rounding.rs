//! E8 — Lemma 6.3 (the Rounding Lemma): integral routings from fractional
//! ones at `cong_Z <= 2 * cong_R + 3 ln m`.
//!
//! Rounds optimal fractional routings of random demands across graph
//! families and checks the bound (which holds with positive probability
//! per sample; we take the best of a few attempts plus local search,
//! exactly as the probabilistic argument licenses).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, Table};
use ssor_flow::rounding::round_routing;
use ssor_flow::solver::{min_congestion_unrestricted, SolveOptions};
use ssor_flow::Demand;
use ssor_graph::generators;

#[derive(Serialize)]
struct Row {
    graph: String,
    m: usize,
    pairs: usize,
    fractional: f64,
    rounded: u64,
    lemma_bound: f64,
    within: bool,
}

fn main() {
    banner(
        "E8",
        "Lemma 6.3 (Rounding Lemma)",
        "any fractional routing rounds to an integral one on the same support with cong <= 2*cong_R + 3 ln m",
    );
    let opts = SolveOptions::with_eps(0.05);
    let mut table = Table::new(&[
        "graph",
        "m",
        "pairs",
        "cong_R",
        "cong_Z",
        "2cong_R+3ln(m)",
        "within",
    ]);
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(900);

    let cases = vec![
        ("hypercube(5)", generators::hypercube(5)),
        ("grid(6x6)", generators::grid(6, 6)),
        (
            "expander(48,4)",
            generators::random_regular(48, 4, &mut StdRng::seed_from_u64(1)),
        ),
        ("torus(6,6)", generators::torus(6, 6)),
        (
            "er(40,.15)",
            generators::erdos_renyi(40, 0.15, &mut StdRng::seed_from_u64(2)),
        ),
    ];

    for (name, g) in cases {
        let n = g.n();
        for pairs in [n / 2, n, 2 * n] {
            let d = Demand::random_pairs(n, pairs, &mut rng);
            let frac = min_congestion_unrestricted(&g, &d, &opts);
            let out = round_routing(&g, &frac.routing, &d, 32, &mut rng);
            let bound = 2.0 * out.fractional_congestion + 3.0 * (g.m() as f64).ln();
            let ok = out.within_lemma_bound(g.m());
            table.row(&[
                name.to_string(),
                g.m().to_string(),
                d.support_len().to_string(),
                f3(out.fractional_congestion),
                out.congestion.to_string(),
                f3(bound),
                ok.to_string(),
            ]);
            rows.push(Row {
                graph: name.to_string(),
                m: g.m(),
                pairs: d.support_len(),
                fractional: out.fractional_congestion,
                rounded: out.congestion,
                lemma_bound: bound,
                within: ok,
            });
        }
    }
    table.print();
    let all_ok = rows.iter().all(|r| r.within);
    println!("\nshape check: all instances within the Lemma 6.3 bound: {all_ok}");
    println!("             (in practice rounding + local search lands well below 2x + 3 ln m).");
    if let Some(p) = ssor_bench::save_json("e8_rounding", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
