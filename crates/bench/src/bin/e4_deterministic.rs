//! E4 — the deterministic-routing consequence (Section 1.1, `[KKT91]`).
//!
//! On hypercubes, *any* deterministic oblivious single-path routing has a
//! permutation demand with congestion `Ω̃(sqrt(n))`; greedy bit-fixing
//! realizes it on bit-reversal/transpose. The paper's fix: keep the
//! selection deterministic-and-oblivious but pick `O(log n)` paths (a
//! derandomizable sample), then adapt rates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, Table};
use ssor_core::chernoff::theorem_2_3_alpha;
use ssor_core::{sample, SemiObliviousRouter};
use ssor_flow::{Demand, SolveOptions};
use ssor_oblivious::{BitFixingRouting, ObliviousRouting, ValiantRouting};

#[derive(Serialize)]
struct Row {
    n: usize,
    demand: String,
    bitfix_congestion: f64,
    sqrt_n: f64,
    sampled_congestion: f64,
    derandomized_congestion: f64,
    alpha: usize,
    opt_lower_bound: f64,
}

fn main() {
    banner(
        "E4",
        "[KKT91] barrier vs Theorem 2.3 (Section 1.1 'Deterministic Routing')",
        "1 deterministic path forces Θ̃(sqrt(n)) congestion; O(log n) sampled paths route the same demands at polylog",
    );
    let opts = SolveOptions::with_eps(0.06);
    let mut table = Table::new(&[
        "n",
        "demand",
        "bit-fix cong",
        "sqrt(n)",
        "α-sample cong",
        "derand cong",
        "α",
        "opt(lb)",
    ]);
    let mut rows = Vec::new();

    for dim in [4u32, 6, 8] {
        let n = 1usize << dim;
        let bitfix = BitFixingRouting::new(dim);
        let valiant = ValiantRouting::new(dim);
        let alpha = theorem_2_3_alpha(n);
        let mut demands = vec![(
            "bit-reversal".to_string(),
            Demand::hypercube_bit_reversal(dim),
        )];
        if dim % 2 == 0 {
            demands.push(("transpose".to_string(), Demand::hypercube_transpose(dim)));
        }
        for (name, d) in demands {
            let det = bitfix.congestion(&d);
            let mut rng = StdRng::seed_from_u64(500 + dim as u64);
            let ps = sample::alpha_sample(&valiant, &d.support(), alpha, &mut rng);
            let router = SemiObliviousRouter::new(valiant.graph().clone(), ps);
            let sol = router.route_fractional(&d, &opts);
            let rep = router.competitive_report(&d, &opts);
            // The Section 1.1 deterministic selection (conditional
            // expectations over the Valiant support).
            let dps = ssor_core::derandomize::derandomized_sample(
                &valiant,
                &d.support(),
                alpha,
                &Default::default(),
            );
            let drouter = SemiObliviousRouter::new(valiant.graph().clone(), dps);
            let dsol = drouter.route_fractional(&d, &opts);
            table.row(&[
                n.to_string(),
                name.clone(),
                f3(det),
                f3((n as f64).sqrt()),
                f3(sol.congestion),
                f3(dsol.congestion),
                alpha.to_string(),
                f3(rep.opt_lower_bound),
            ]);
            rows.push(Row {
                n,
                demand: name,
                bitfix_congestion: det,
                sqrt_n: (n as f64).sqrt(),
                sampled_congestion: sol.congestion,
                derandomized_congestion: dsol.congestion,
                alpha,
                opt_lower_bound: rep.opt_lower_bound,
            });
        }
    }
    table.print();
    println!("\nshape check: bit-fixing congestion tracks sqrt(n) (up to the usual 1/2 power");
    println!("             split of transpose); both the random α-sample and the fully");
    println!("             deterministic conditional-expectations selection stay a small");
    println!("             constant times OPT — few paths beat the [KKT91] barrier.");
    if let Some(p) = ssor_bench::save_json("e4_deterministic", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
