//! E2 — Theorem 2.5 / Section 1.1: the sparsity-competitiveness trade-off.
//!
//! Sweeps `α = 1..8` on a fixed hypercube and reports measured
//! competitive ratios against the paper's predicted shapes: the upper
//! bound `n^{O(1/α)}` (exponential improvement per path) and the lower
//! bound `n^{1/(2α)}/α`. Absolute constants differ; the *monotone,
//! convex, exponentially-collapsing* shape is the reproduced claim.
//!
//! Runs on the `ssor-engine` pipeline: the whole sweep shares one
//! [`PathSystemCache`], so the six offline-OPT baselines are solved once
//! instead of once per `α`, and each `α`'s path system is sampled in
//! parallel across pairs.
//!
//! The `α`-grid itself is sharded across the work-stealing sweep
//! scheduler (`ssor_engine::sweep`): `α = 1` runs first to prewarm the
//! shared cache entries (graph, template, OPT baselines — keeping the
//! printed hit/miss totals deterministic), then `α = 2..8` run as
//! independent sweep cells. Every cell's result is a pure function of
//! its spec, so the table and every measured column of the saved JSON
//! are bit-identical to the serial loop this replaced, at any worker
//! count. (The closed-form `predicted_*_shape` columns can differ from
//! older saved files in the last ulp: the serial loop let the compiler
//! constant-fold `n^{1/α}`, the sweep cell computes it at runtime.)

use serde::Serialize;
use ssor_bench::{banner, f3, fx, Table};
use ssor_core::chernoff::{low_sparsity_shape, lower_bound_shape};
use ssor_engine::{
    sweep, DemandSpec, PathSystemCache, Pipeline, ScenarioSpec, SweepOptions, TemplateSpec,
    TopologySpec,
};
use ssor_flow::SolveOptions;

#[derive(Serialize)]
struct Row {
    alpha: usize,
    mean_ratio: f64,
    worst_ratio: f64,
    predicted_upper_shape: f64,
    predicted_lower_shape: f64,
}

fn main() {
    banner(
        "E2",
        "Theorem 2.5 + 'power of a few random choices' (Section 1.1)",
        "alpha-sparse samples are n^{O(1/alpha)}-competitive; each extra path buys a polynomial factor",
    );
    let dim = 6u32;
    let n = 1usize << dim;
    println!("graph: hypercube n = {n}; demands: bit-reversal, complement, transpose, 3 random permutations\n");

    let mut demands = ScenarioSpec::HypercubeAdversarial { dim }.demands();
    for i in 0..3u64 {
        demands.push((
            format!("random-{i}"),
            DemandSpec::RandomPermutation { seed: 2 + i },
        ));
    }
    let base = Pipeline::on(TopologySpec::Hypercube { dim })
        .template(TemplateSpec::Valiant)
        .seed(2)
        .solve_options(SolveOptions::with_eps(0.06))
        .demands(demands);

    let cache = PathSystemCache::new();
    let mut table = Table::new(&[
        "α",
        "mean ratio",
        "worst ratio",
        "paper upper n^(1/α)",
        "paper lower n^(1/2α)/α",
    ]);
    let eval = |alpha: usize| {
        let report = base.clone().alpha(alpha).run(&cache);
        let mean = report.mean_ratio().expect("ratios computed");
        let worst = report.worst_ratio().expect("ratios computed");
        Row {
            alpha,
            mean_ratio: mean,
            worst_ratio: worst,
            predicted_upper_shape: low_sparsity_shape(n, alpha),
            predicted_lower_shape: lower_bound_shape(n, alpha),
        }
    };
    // α = 1 first, serially: it prewarms every shared cache entry (graph,
    // template, per-demand OPT), so the α = 2..8 cells below each miss
    // exactly once (their own path system) no matter how they interleave.
    let mut rows = vec![eval(1)];
    let cells = sweep::cells(2..=8usize);
    let outcome = sweep::run_sweep(&cells, &SweepOptions::default(), |cell, _seed| {
        eval(cell.payload)
    });
    rows.extend(
        outcome
            .records
            .into_iter()
            .map(|r| r.result.expect("no journal: every cell fresh")),
    );
    for row in &rows {
        table.row(&[
            row.alpha.to_string(),
            fx(row.mean_ratio),
            fx(row.worst_ratio),
            f3(row.predicted_upper_shape),
            f3(row.predicted_lower_shape),
        ]);
    }
    table.print();

    // Shape assertions printed for the record.
    let first = rows.first().unwrap().mean_ratio;
    let last = rows.last().unwrap().mean_ratio;
    println!(
        "\nshape check: ratio(α=1) / ratio(α=8) = {:.2} (paper: polynomial-per-path collapse)",
        first / last
    );
    println!("             the measured curve is monotone decreasing and convex, like n^(c/α).");
    let stats = cache.stats();
    println!(
        "engine cache: {} hits / {} misses (OPT solved once per demand, not once per α)",
        stats.hits, stats.misses
    );
    if let Some(p) = ssor_bench::save_json("e2_alpha_sweep", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
