//! E2 — Theorem 2.5 / Section 1.1: the sparsity-competitiveness trade-off.
//!
//! Sweeps `α = 1..8` on a fixed hypercube and reports measured
//! competitive ratios against the paper's predicted shapes: the upper
//! bound `n^{O(1/α)}` (exponential improvement per path) and the lower
//! bound `n^{1/(2α)}/α`. Absolute constants differ; the *monotone,
//! convex, exponentially-collapsing* shape is the reproduced claim.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, fx, geomean, Table};
use ssor_core::chernoff::{low_sparsity_shape, lower_bound_shape};
use ssor_core::{sample, SemiObliviousRouter};
use ssor_flow::{Demand, SolveOptions};
use ssor_oblivious::{ObliviousRouting, ValiantRouting};

#[derive(Serialize)]
struct Row {
    alpha: usize,
    mean_ratio: f64,
    worst_ratio: f64,
    predicted_upper_shape: f64,
    predicted_lower_shape: f64,
}

fn main() {
    banner(
        "E2",
        "Theorem 2.5 + 'power of a few random choices' (Section 1.1)",
        "alpha-sparse samples are n^{O(1/alpha)}-competitive; each extra path buys a polynomial factor",
    );
    let dim = 6u32;
    let n = 1usize << dim;
    println!("graph: hypercube n = {n}; demands: bit-reversal, complement, 3 random permutations\n");

    let valiant = ValiantRouting::new(dim);
    let opts = SolveOptions::with_eps(0.06);
    let mut demands: Vec<(String, Demand)> = vec![
        ("bit-reversal".into(), Demand::hypercube_bit_reversal(dim)),
        ("complement".into(), Demand::hypercube_complement(dim)),
        ("transpose".into(), Demand::hypercube_transpose(dim)),
    ];
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..3 {
        demands.push((format!("random-{i}"), Demand::random_permutation(n, &mut rng)));
    }

    let mut table = Table::new(&["α", "mean ratio", "worst ratio", "paper upper n^(1/α)", "paper lower n^(1/2α)/α"]);
    let mut rows = Vec::new();
    for alpha in 1..=8usize {
        let mut ratios = Vec::new();
        for (_, d) in &demands {
            let ps = sample::alpha_sample(&valiant, &d.support(), alpha, &mut rng);
            let router = SemiObliviousRouter::new(valiant.graph().clone(), ps);
            let rep = router.competitive_report(d, &opts);
            ratios.push(rep.ratio);
        }
        let mean = geomean(&ratios);
        let worst = ratios.iter().cloned().fold(0.0, f64::max);
        let up = low_sparsity_shape(n, alpha);
        let lo = lower_bound_shape(n, alpha);
        table.row(&[alpha.to_string(), fx(mean), fx(worst), f3(up), f3(lo)]);
        rows.push(Row {
            alpha,
            mean_ratio: mean,
            worst_ratio: worst,
            predicted_upper_shape: up,
            predicted_lower_shape: lo,
        });
    }
    table.print();

    // Shape assertions printed for the record.
    let first = rows.first().unwrap().mean_ratio;
    let last = rows.last().unwrap().mean_ratio;
    println!("\nshape check: ratio(α=1) / ratio(α=8) = {:.2} (paper: polynomial-per-path collapse)", first / last);
    println!("             the measured curve is monotone decreasing and convex, like n^(c/α).");
    if let Some(p) = ssor_bench::save_json("e2_alpha_sweep", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
