//! E7 — the SMORE scenario (Section 1.1; `[KYY+18a/b]`).
//!
//! A Waxman WAN, a day of gravity-model snapshots, and five strategies:
//! semi-oblivious Räcke samples at α ∈ {1, 2, 4, 8}, the KSP-4 baseline,
//! and the non-adaptive oblivious routing. Reports per-strategy mean/max
//! ratio to the per-snapshot optimum plus link-failure coverage — the
//! "α = 4 sweet spot" claim.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, fx, geomean, Table};
use ssor_core::sample::alpha_sample;
use ssor_core::PathSystem;
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::Graph;
use ssor_oblivious::{KspRouting, ObliviousRouting, RaeckeOptions, RaeckeRouting};
use ssor_te::{evaluate_snapshots, fail_link, GravityModel, Wan};

#[derive(Serialize)]
struct Row {
    strategy: String,
    sparsity: usize,
    mean_ratio: f64,
    max_ratio: f64,
    failure_coverage: f64,
}

fn failure_coverage(wan: &Wan, ps: &PathSystem, d: &Demand, opts: &SolveOptions) -> f64 {
    let mut covs = Vec::new();
    for link in 0..wan.link_count() {
        let kept: Vec<(u32, u32)> = wan
            .graph
            .edges()
            .filter(|(e, _)| !wan.replicas[link].contains(e))
            .map(|(_, uv)| uv)
            .collect();
        if !Graph::from_edges(wan.graph.n(), &kept).is_connected() {
            continue;
        }
        covs.push(fail_link(wan, ps, d, link, opts).coverage);
        if covs.len() >= 8 {
            break;
        }
    }
    covs.iter().sum::<f64>() / covs.len().max(1) as f64
}

fn main() {
    banner(
        "E7",
        "SMORE traffic engineering (Section 1.1; KYY+18)",
        "α = 4 Räcke samples give near-optimal utilization + robustness; the paper explains why this heuristic works",
    );
    let mut rng = StdRng::seed_from_u64(800);
    let wan = Wan::random(24, &mut rng);
    println!(
        "WAN: {} routers, {} links, total capacity {} units",
        wan.n(),
        wan.link_count(),
        wan.graph.m()
    );
    let model = GravityModel::sample(wan.n(), 80.0, &mut rng);
    let snapshots: Vec<Demand> = (0..12)
        .map(|t| model.snapshot(t * 2, 24, &mut rng))
        .collect();
    let pairs = snapshots[0].support();
    println!(
        "{} snapshots over a simulated day, {} demand pairs each\n",
        snapshots.len(),
        pairs.len()
    );

    let opts = SolveOptions::with_eps(0.08);
    let raecke = RaeckeRouting::build(&wan.graph, &RaeckeOptions::default(), &mut rng);
    let ksp = KspRouting::new(&wan.graph, 4);

    let mut table = Table::new(&[
        "strategy",
        "sparsity",
        "mean ratio",
        "max ratio",
        "fail coverage",
    ]);
    let mut rows = Vec::new();

    // Semi-oblivious Räcke samples at several α.
    for alpha in [1usize, 2, 4, 8] {
        let ps = alpha_sample(&raecke, &pairs, alpha, &mut rng);
        let reports = evaluate_snapshots(&wan, &ps, &snapshots, &opts);
        let ratios: Vec<f64> = reports.iter().map(|r| r.ratio).collect();
        let cover = failure_coverage(&wan, &ps, &snapshots[0], &opts);
        let name = format!("semi-obl Räcke α={alpha}");
        table.row(&[
            name.clone(),
            ps.sparsity().to_string(),
            fx(geomean(&ratios)),
            fx(ratios.iter().cloned().fold(0.0, f64::max)),
            f3(cover),
        ]);
        rows.push(Row {
            strategy: name,
            sparsity: ps.sparsity(),
            mean_ratio: geomean(&ratios),
            max_ratio: ratios.iter().cloned().fold(0.0, f64::max),
            failure_coverage: cover,
        });
    }

    // KSP-4 baseline (deterministic candidate set).
    {
        let ps = alpha_sample(&ksp, &pairs, 4, &mut rng);
        let reports = evaluate_snapshots(&wan, &ps, &snapshots, &opts);
        let ratios: Vec<f64> = reports.iter().map(|r| r.ratio).collect();
        let cover = failure_coverage(&wan, &ps, &snapshots[0], &opts);
        table.row(&[
            "KSP-4 baseline".to_string(),
            ps.sparsity().to_string(),
            fx(geomean(&ratios)),
            fx(ratios.iter().cloned().fold(0.0, f64::max)),
            f3(cover),
        ]);
        rows.push(Row {
            strategy: "KSP-4".into(),
            sparsity: ps.sparsity(),
            mean_ratio: geomean(&ratios),
            max_ratio: ratios.iter().cloned().fold(0.0, f64::max),
            failure_coverage: cover,
        });
    }

    // Non-adaptive oblivious routing (fixed Räcke rates).
    {
        let ratios: Vec<f64> = snapshots
            .iter()
            .map(|d| {
                let cong = raecke.congestion(d);
                let opt = ssor_flow::solver::min_congestion_unrestricted(&wan.graph, d, &opts);
                cong / opt.lower_bound.max(f64::MIN_POSITIVE)
            })
            .collect();
        table.row(&[
            "oblivious (no adapt)".to_string(),
            "-".to_string(),
            fx(geomean(&ratios)),
            fx(ratios.iter().cloned().fold(0.0, f64::max)),
            "1.000".to_string(),
        ]);
        rows.push(Row {
            strategy: "oblivious".into(),
            sparsity: 0,
            mean_ratio: geomean(&ratios),
            max_ratio: ratios.iter().cloned().fold(0.0, f64::max),
            failure_coverage: 1.0,
        });
    }

    table.print();

    // SMORE reality check: rates are re-optimized from a *stale* snapshot
    // ("a small snapshot of the global traffic every 15 seconds").
    println!("\n-- staleness drill: rates from snapshot t-1 applied to snapshot t (α = 4) --");
    {
        let ps = alpha_sample(&raecke, &pairs, 4, &mut rng);
        let stale = ssor_te::evaluate_with_stale_rates(&wan, &ps, &snapshots, &opts);
        let pens: Vec<f64> = stale.iter().map(|r| r.staleness_penalty).collect();
        println!(
            "mean staleness penalty {} (max {}) over {} transitions",
            fx(geomean(&pens)),
            fx(pens.iter().cloned().fold(0.0, f64::max)),
            pens.len()
        );
    }

    println!("\nshape check: ratio improves rapidly in α and saturates near α = 4 (SMORE's");
    println!("             production choice); rate adaptation beats fixed oblivious rates;");
    println!("             serving traffic with slightly stale rates costs only a few percent.");
    if let Some(p) = ssor_bench::save_json("e7_traffic_engineering", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
