//! E1 — Theorem 2.3: `O(log n / log log n)`-sparse samples are
//! polylog-competitive on `{0,1}`-demands.
//!
//! Sweeps graph families and sizes at the Theorem 2.3 sparsity and
//! reports the measured competitive ratio next to `log2(n)` — the ratio
//! should stay bounded by a slowly-growing polylog while `n` grows by an
//! order of magnitude.
//!
//! Runs on the `ssor-engine` pipeline: each family is a [`TopologySpec`]
//! plus a demand batch, evaluated in parallel, with graphs, templates,
//! and OPT baselines memoized in a shared [`PathSystemCache`].

use serde::Serialize;
use ssor_bench::{banner, f3, fx, Table};
use ssor_core::chernoff::theorem_2_3_alpha;
use ssor_engine::{DemandSpec, EvalRecord, PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
use ssor_flow::SolveOptions;

#[derive(Serialize)]
struct Row {
    family: String,
    n: usize,
    alpha: usize,
    demand: String,
    semi_congestion: f64,
    opt_lower_bound: f64,
    ratio: f64,
    log2n: f64,
}

fn push(table: &mut Table, rows: &mut Vec<Row>, family: &str, n: usize, rec: &EvalRecord) {
    table.row(&[
        family.to_string(),
        n.to_string(),
        rec.alpha.to_string(),
        rec.name.clone(),
        f3(rec.congestion),
        f3(rec.opt_lower_bound.unwrap_or(0.0)),
        fx(rec.ratio.unwrap_or(0.0)),
        f3((n as f64).log2()),
    ]);
    rows.push(Row {
        family: family.into(),
        n,
        alpha: rec.alpha,
        demand: rec.name.clone(),
        semi_congestion: rec.congestion,
        opt_lower_bound: rec.opt_lower_bound.unwrap_or(0.0),
        ratio: rec.ratio.unwrap_or(0.0),
        log2n: (n as f64).log2(),
    });
}

fn main() {
    banner(
        "E1",
        "Theorem 2.3 (logarithmic sparsity)",
        "alpha = O(log n / log log n) sampled paths are O(log^3 n / log log n)-competitive on {0,1}-demands",
    );
    let opts = SolveOptions::with_eps(0.06);
    let cache = PathSystemCache::new();
    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&[
        "family",
        "n",
        "α",
        "demand",
        "semi-cong",
        "opt(lb)",
        "ratio(≤)",
        "log2(n)",
    ]);

    // Hypercubes with Valiant sampling.
    for dim in [5u32, 6, 7, 8] {
        let n = 1usize << dim;
        let report = Pipeline::on(TopologySpec::Hypercube { dim })
            .template(TemplateSpec::Valiant)
            .alpha(theorem_2_3_alpha(n))
            .seed(100 + dim as u64)
            .solve_options(opts.clone())
            .demand("bit-reversal", DemandSpec::BitReversal)
            .demand(
                "random-perm",
                DemandSpec::RandomPermutation {
                    seed: 100 + dim as u64,
                },
            )
            .run(&cache);
        for rec in &report.records {
            push(&mut table, &mut rows, "hypercube", n, rec);
        }
    }

    // General graphs with Raecke sampling.
    for (family, n, topo) in [
        ("grid", 64, TopologySpec::Grid { rows: 8, cols: 8 }),
        (
            "expander",
            64,
            TopologySpec::RandomRegular {
                n: 64,
                degree: 4,
                seed: 9,
            },
        ),
        (
            "expander",
            128,
            TopologySpec::RandomRegular {
                n: 128,
                degree: 4,
                seed: 10,
            },
        ),
    ] {
        let report = Pipeline::on(topo)
            .template(TemplateSpec::raecke())
            .alpha(theorem_2_3_alpha(n))
            .seed(200 + n as u64)
            .solve_options(opts.clone())
            .demand(
                "random-perm",
                DemandSpec::RandomPermutation {
                    seed: 200 + n as u64,
                },
            )
            .run(&cache);
        for rec in &report.records {
            push(&mut table, &mut rows, family, n, rec);
        }
    }

    table.print();
    println!("\nshape check: ratios stay O(polylog n) — they grow (much) slower than n");
    println!("             while n grows 8x; Theorem 2.3 predicts O(log^3 n / log log n).");
    if let Some(p) = ssor_bench::save_json("e1_log_sparsity", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
