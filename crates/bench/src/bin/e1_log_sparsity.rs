//! E1 — Theorem 2.3: `O(log n / log log n)`-sparse samples are
//! polylog-competitive on `{0,1}`-demands.
//!
//! Sweeps graph families and sizes at the Theorem 2.3 sparsity and
//! reports the measured competitive ratio next to `log2(n)` — the ratio
//! should stay bounded by a slowly-growing polylog while `n` grows by an
//! order of magnitude.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, fx, Table};
use ssor_core::chernoff::theorem_2_3_alpha;
use ssor_core::{sample, SemiObliviousRouter};
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::generators;
use ssor_oblivious::{ObliviousRouting, RaeckeOptions, RaeckeRouting, ValiantRouting};

#[derive(Serialize)]
struct Row {
    family: String,
    n: usize,
    alpha: usize,
    demand: String,
    semi_congestion: f64,
    opt_lower_bound: f64,
    ratio: f64,
    log2n: f64,
}

fn main() {
    banner(
        "E1",
        "Theorem 2.3 (logarithmic sparsity)",
        "alpha = O(log n / log log n) sampled paths are O(log^3 n / log log n)-competitive on {0,1}-demands",
    );
    let opts = SolveOptions::with_eps(0.06);
    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&["family", "n", "α", "demand", "semi-cong", "opt(lb)", "ratio(≤)", "log2(n)"]);

    // Hypercubes with Valiant sampling.
    for dim in [5u32, 6, 7, 8] {
        let n = 1usize << dim;
        let alpha = theorem_2_3_alpha(n);
        let valiant = ValiantRouting::new(dim);
        let mut rng = StdRng::seed_from_u64(100 + dim as u64);
        for (dname, d) in [
            ("bit-reversal", Demand::hypercube_bit_reversal(dim)),
            ("random-perm", Demand::random_permutation(n, &mut rng)),
        ] {
            let ps = sample::alpha_sample(&valiant, &d.support(), alpha, &mut rng);
            let router = SemiObliviousRouter::new(valiant.graph().clone(), ps);
            let rep = router.competitive_report(&d, &opts);
            table.row(&[
                "hypercube".to_string(),
                n.to_string(),
                alpha.to_string(),
                dname.to_string(),
                f3(rep.semi_oblivious),
                f3(rep.opt_lower_bound),
                fx(rep.ratio),
                f3((n as f64).log2()),
            ]);
            rows.push(Row {
                family: "hypercube".into(),
                n,
                alpha,
                demand: dname.into(),
                semi_congestion: rep.semi_oblivious,
                opt_lower_bound: rep.opt_lower_bound,
                ratio: rep.ratio,
                log2n: (n as f64).log2(),
            });
        }
    }

    // General graphs with Raecke sampling.
    for (family, n, g) in [
        ("grid", 64, generators::grid(8, 8)),
        ("expander", 64, generators::random_regular(64, 4, &mut StdRng::seed_from_u64(9))),
        ("expander", 128, generators::random_regular(128, 4, &mut StdRng::seed_from_u64(10))),
    ] {
        let alpha = theorem_2_3_alpha(n);
        let mut rng = StdRng::seed_from_u64(200 + n as u64);
        let raecke = RaeckeRouting::build(&g, &RaeckeOptions::default(), &mut rng);
        let d = Demand::random_permutation(n, &mut rng);
        let ps = sample::alpha_sample(&raecke, &d.support(), alpha, &mut rng);
        let router = SemiObliviousRouter::new(g.clone(), ps);
        let rep = router.competitive_report(&d, &opts);
        table.row(&[
            family.to_string(),
            n.to_string(),
            alpha.to_string(),
            "random-perm".to_string(),
            f3(rep.semi_oblivious),
            f3(rep.opt_lower_bound),
            fx(rep.ratio),
            f3((n as f64).log2()),
        ]);
        rows.push(Row {
            family: family.into(),
            n,
            alpha,
            demand: "random-perm".into(),
            semi_congestion: rep.semi_oblivious,
            opt_lower_bound: rep.opt_lower_bound,
            ratio: rep.ratio,
            log2n: (n as f64).log2(),
        });
    }

    table.print();
    println!("\nshape check: ratios stay O(polylog n) — they grow (much) slower than n");
    println!("             while n grows 8x; Theorem 2.3 predicts O(log^3 n / log log n).");
    if let Some(p) = ssor_bench::save_json("e1_log_sparsity", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
