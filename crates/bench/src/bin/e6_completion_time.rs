//! E6 — Lemmas 2.8/2.9 (Section 7): completion-time-competitive
//! semi-oblivious routing.
//!
//! On graphs where congestion-optimal routing takes needless detours,
//! compares a congestion-only sampled router against the Section 7
//! union-over-hop-scales router on the `congestion + dilation` objective,
//! then schedules the rounded paths with the packet simulator to confirm
//! the objective predicts real makespans.
//!
//! Runs on the `ssor-engine` pipeline: the two strategies are the same
//! pipeline with the [`Objective`] switched, and stage 5 (round +
//! simulate) is the engine's built-in simulation stage.

use serde::Serialize;
use ssor_bench::{banner, f3, Table};
use ssor_core::completion::ScaleGrowth;
use ssor_engine::{
    DemandSpec, EvalRecord, Objective, PathSystemCache, Pipeline, TemplateSpec, TopologySpec,
};
use ssor_flow::SolveOptions;
use ssor_sim::{Scheduler, SimConfig};

#[derive(Serialize)]
struct Row {
    graph: String,
    strategy: String,
    congestion: f64,
    dilation: usize,
    objective: f64,
    makespan: usize,
}

fn push(table: &mut Table, rows: &mut Vec<Row>, graph: &str, strategy: &str, rec: &EvalRecord) {
    table.row(&[
        graph.to_string(),
        strategy.to_string(),
        f3(rec.congestion),
        rec.dilation.to_string(),
        f3(rec.objective()),
        rec.makespan.expect("integral demands simulate").to_string(),
    ]);
    rows.push(Row {
        graph: graph.into(),
        strategy: strategy.into(),
        congestion: rec.congestion,
        dilation: rec.dilation,
        objective: rec.objective(),
        makespan: rec.makespan.unwrap_or(0),
    });
}

fn main() {
    banner(
        "E6",
        "Lemmas 2.8/2.9 (Section 7, completion time)",
        "sampling hop-constrained oblivious routings at O(log n / log log n) scales gives polylog cong+dil competitiveness",
    );
    let cache = PathSystemCache::new();
    let mut table = Table::new(&[
        "graph",
        "strategy",
        "congestion",
        "dilation",
        "cong+dil",
        "makespan",
    ]);
    let mut rows = Vec::new();

    let barbell_chain: Vec<(u32, u32)> = (0..7u32)
        .map(|i| (i, i + 1))
        .chain((0..7u32).map(|i| (8 + i, 8 + i + 1)))
        .chain(std::iter::once((0, 8)))
        .collect();
    let cases: Vec<(&str, TopologySpec, DemandSpec)> = vec![
        (
            "barbell(8,10)",
            TopologySpec::Barbell {
                size: 8,
                path_len: 10,
            },
            DemandSpec::Pairs(barbell_chain),
        ),
        (
            "ring(24)",
            TopologySpec::Ring { n: 24 },
            DemandSpec::Pairs((0..12u32).map(|i| (i, i + 12)).collect()),
        ),
        (
            "torus(5,5)",
            TopologySpec::Torus { rows: 5, cols: 5 },
            DemandSpec::RandomPermutation { seed: 77 },
        ),
    ];

    for (name, topo, demand) in cases {
        let base = Pipeline::on(topo)
            .template(TemplateSpec::raecke())
            .alpha(4)
            .seed(700)
            .solve_options(SolveOptions::with_eps(0.05))
            .demand(name, demand)
            .simulate(SimConfig {
                scheduler: Scheduler::RandomRank,
                seed: 11,
            })
            .without_opt();

        // Strategy A: congestion-only Räcke sample (ignores dilation).
        let a = base.clone().run(&cache);
        push(
            &mut table,
            &mut rows,
            name,
            "congestion-only",
            &a.records[0],
        );

        // Strategy B: Section 7 hop-ladder router.
        let b = base
            .clone()
            .objective(Objective::CompletionTime {
                growth: ScaleGrowth::Log,
            })
            .run(&cache);
        push(
            &mut table,
            &mut rows,
            name,
            "hop-ladder (§7)",
            &b.records[0],
        );
    }
    table.print();

    println!("\nshape check: the §7 router matches congestion-only routing where dilation is");
    println!("             forced, and wins decisively where congestion-only routing detours");
    println!("             (GHZ21's motivating gap, the torus row); simulated makespans track");
    println!("             cong+dil within a small constant (LMR94).");
    if let Some(p) = ssor_bench::save_json("e6_completion_time", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
