//! E6 — Lemmas 2.8/2.9 (Section 7): completion-time-competitive
//! semi-oblivious routing.
//!
//! On graphs where congestion-optimal routing takes needless detours,
//! compares a congestion-only sampled router against the Section 7
//! union-over-hop-scales router on the `congestion + dilation` objective,
//! then schedules the rounded paths with the packet simulator to confirm
//! the objective predicts real makespans.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, Table};
use ssor_core::completion::{CompletionOptions, CompletionTimeRouter, ScaleGrowth};
use ssor_core::sample::alpha_sample;
use ssor_core::SemiObliviousRouter;
use ssor_flow::rounding::round_routing;
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::{generators, Graph};
use ssor_oblivious::{RaeckeOptions, RaeckeRouting};
use ssor_sim::{simulate_routing, Scheduler, SimConfig};

#[derive(Serialize)]
struct Row {
    graph: String,
    strategy: String,
    congestion: f64,
    dilation: usize,
    objective: f64,
    makespan: usize,
}

fn eval(
    name: &str,
    strategy: &str,
    g: &Graph,
    d: &Demand,
    routing: ssor_flow::Routing,
    rng: &mut StdRng,
    table: &mut Table,
    rows: &mut Vec<Row>,
) {
    let cong = routing.congestion(g, d);
    let dil = routing.dilation(d);
    let rounded = round_routing(g, &routing, d, 16, rng);
    let sim = simulate_routing(g, &rounded.routing, &SimConfig { scheduler: Scheduler::RandomRank, seed: 11 });
    table.row(&[
        name.to_string(),
        strategy.to_string(),
        f3(cong),
        dil.to_string(),
        f3(cong + dil as f64),
        sim.makespan.to_string(),
    ]);
    rows.push(Row {
        graph: name.into(),
        strategy: strategy.into(),
        congestion: cong,
        dilation: dil,
        objective: cong + dil as f64,
        makespan: sim.makespan,
    });
}

fn main() {
    banner(
        "E6",
        "Lemmas 2.8/2.9 (Section 7, completion time)",
        "sampling hop-constrained oblivious routings at O(log n / log log n) scales gives polylog cong+dil competitiveness",
    );
    let opts = SolveOptions::with_eps(0.05);
    let mut table = Table::new(&["graph", "strategy", "congestion", "dilation", "cong+dil", "makespan"]);
    let mut rows = Vec::new();

    let cases: Vec<(&str, Graph, Demand)> = vec![
        (
            "barbell(8,10)",
            generators::barbell(8, 10),
            {
                let mut d = Demand::new();
                for i in 0..7u32 {
                    d.set(i, i + 1, 1.0);
                    d.set(8 + i, 8 + i + 1, 1.0);
                }
                d.set(0, 8, 1.0);
                d
            },
        ),
        (
            "ring(24)",
            generators::ring(24),
            Demand::from_pairs(&(0..12u32).map(|i| (i, i + 12)).collect::<Vec<_>>()),
        ),
        (
            "torus(5,5)",
            generators::torus(5, 5),
            Demand::random_permutation(25, &mut StdRng::seed_from_u64(77)),
        ),
    ];

    for (name, g, d) in cases {
        let mut rng = StdRng::seed_from_u64(700);
        // Strategy A: congestion-only Räcke sample (ignores dilation).
        let raecke = RaeckeRouting::build(&g, &RaeckeOptions::default(), &mut rng);
        let ps = alpha_sample(&raecke, &d.support(), 4, &mut rng);
        let router = SemiObliviousRouter::new(g.clone(), ps);
        let sol = router.route_fractional(&d, &opts);
        eval(name, "congestion-only", &g, &d, sol.routing, &mut rng, &mut table, &mut rows);

        // Strategy B: Section 7 hop-ladder router.
        let comp = CompletionTimeRouter::build(
            &g,
            &d.support(),
            &CompletionOptions { alpha: 4, growth: ScaleGrowth::Log, ..Default::default() },
            &mut rng,
        );
        let route = comp.route(&d, &opts);
        eval(name, "hop-ladder (§7)", &g, &d, route.routing, &mut rng, &mut table, &mut rows);
    }
    table.print();

    println!("\nshape check: the §7 router matches congestion-only routing where dilation is");
    println!("             forced, and wins decisively where congestion-only routing detours");
    println!("             (GHZ21's motivating gap, the torus row); simulated makespans track");
    println!("             cong+dil within a small constant (LMR94).");
    if let Some(p) = ssor_bench::save_json("e6_completion_time", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
