//! A2 — ablation: the Stage-4 solver's certified accuracy vs cost, and a
//! cross-check against the exact simplex LP.
//!
//! Every competitive ratio the experiments report passes through the
//! Frank–Wolfe solver; this ablation shows how the certified optimality
//! gap and the iteration count trade off, and confirms against exact LP
//! solves that the certificates are honest.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, Table};
use ssor_core::sample::alpha_sample;
use ssor_flow::lp::exact_restricted_congestion;
use ssor_flow::solver::{min_congestion_restricted, SolveOptions};
use ssor_flow::Demand;
use ssor_oblivious::{ObliviousRouting, ValiantRouting};

#[derive(Serialize)]
struct Row {
    eps: f64,
    congestion: f64,
    certified_gap: f64,
    iterations: usize,
    converged: bool,
    oracle_calls: usize,
    oracle_share: f64,
    stages: usize,
}

fn main() {
    banner(
        "A2",
        "ablation: Frank-Wolfe accuracy/cost + exact-LP cross-check",
        "the Stage-4 solver's certified gap is honest and tightens smoothly with eps",
    );
    let dim = 5u32;
    let valiant = ValiantRouting::new(dim);
    let d = Demand::hypercube_bit_reversal(dim);
    let mut rng = StdRng::seed_from_u64(12);
    let ps = alpha_sample(&valiant, &d.support(), 4, &mut rng);
    println!("instance: hypercube n = 32, bit-reversal demand, α = 4 sample\n");

    let mut table = Table::new(&[
        "eps",
        "congestion",
        "certified gap",
        "iterations",
        "converged",
        "oracle calls",
        "oracle share",
        "stages",
    ]);
    let mut rows = Vec::new();
    for eps in [0.5f64, 0.2, 0.1, 0.05, 0.02, 0.01] {
        let sol = min_congestion_restricted(
            valiant.graph(),
            &d,
            ps.candidates(),
            &SolveOptions {
                eps,
                max_iters: 20_000,
            },
        );
        // The stats make the solver's cost structure visible: how many
        // oracle batches ran, what share of the wall-clock they took
        // (the parallelizable part), and how the staged smoothing
        // progressed.
        let stats = &sol.stats;
        table.row(&[
            f3(eps),
            f3(sol.congestion),
            f3(sol.gap()),
            sol.iterations.to_string(),
            sol.converged.to_string(),
            stats.oracle_calls.to_string(),
            format!("{:.0}%", stats.oracle_share() * 100.0),
            stats.stages.len().to_string(),
        ]);
        rows.push(Row {
            eps,
            congestion: sol.congestion,
            certified_gap: sol.gap(),
            iterations: sol.iterations,
            converged: sol.converged,
            oracle_calls: stats.oracle_calls,
            oracle_share: stats.oracle_share(),
            stages: stats.stages.len(),
        });
    }
    table.print();

    // Exact cross-check on a smaller instance the dense simplex can chew.
    println!("\n-- exact simplex cross-check (hypercube n = 8, complement demand) --");
    let small = ValiantRouting::new(3);
    let ds = Demand::hypercube_complement(3);
    let pss = alpha_sample(&small, &ds.support(), 3, &mut rng);
    let exact =
        exact_restricted_congestion(small.graph(), &ds, pss.candidates()).expect("feasible LP");
    let fw = min_congestion_restricted(
        small.graph(),
        &ds,
        pss.candidates(),
        &SolveOptions {
            eps: 0.01,
            max_iters: 20_000,
        },
    );
    println!("exact simplex optimum : {exact:.6}");
    println!("Frank-Wolfe primal    : {:.6}", fw.congestion);
    println!("Frank-Wolfe dual LB   : {:.6}", fw.lower_bound);
    assert!(
        fw.congestion >= exact - 1e-6,
        "primal below exact optimum: impossible"
    );
    assert!(
        fw.lower_bound <= exact + 1e-6,
        "dual above exact optimum: certificate broken"
    );
    println!("\nshape check: exact ∈ [dual, primal] — certificates honest; gap → 1 as eps → 0.");

    if let Some(p) = ssor_bench::save_json("a2_solver_ablation", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
