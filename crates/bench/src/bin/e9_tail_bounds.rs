//! E9 — the Section 5.3 machinery, measured: Monte-Carlo success rates of
//! the weak-routing process and the concentration the proof relies on.
//!
//! For fixed demands on a hypercube, runs the edge-deletion process over
//! many independent samples and reports the empirical failure rate of
//! "route at least half the demand at allowance γ" as α and γ vary —
//! the quantity Lemma 5.6 bounds by `m^{-(h+3)|supp(d)|}`. Also runs the
//! full Lemma 5.8 weak→strong pipeline end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, Table};
use ssor_core::special::{process_weak_router, weak_to_strong};
use ssor_core::weak::{sample_multiset, verify_lemma_5_10, weak_route};
use ssor_core::PathSystem;
use ssor_flow::Demand;
use ssor_oblivious::{ObliviousRouting, ValiantRouting};

#[derive(Serialize)]
struct Row {
    alpha: usize,
    gamma: f64,
    trials: usize,
    success_rate: f64,
    mean_routed_fraction: f64,
    mean_overcongested_edges: f64,
}

fn main() {
    banner(
        "E9",
        "Section 5.3 dynamic process + Lemma 5.8 pipeline",
        "the sampled process routes >= half of a fixed demand except with probability exponentially small in siz(d)",
    );
    let dim = 5u32;
    let n = 1usize << dim;
    let valiant = ValiantRouting::new(dim);
    let d = Demand::hypercube_complement(dim);
    println!(
        "graph: hypercube n = {n}; demand: complement permutation (siz = {})\n",
        d.size()
    );

    let trials = 60usize;
    let mut table = Table::new(&[
        "α",
        "γ",
        "trials",
        "success",
        "mean routed",
        "mean overcong edges",
    ]);
    let mut rows = Vec::new();
    for alpha in [2usize, 4, 6] {
        for gamma in [2.0f64, 4.0, 8.0, 16.0] {
            let mut succ = 0usize;
            let mut frac_sum = 0.0;
            let mut over_sum = 0usize;
            for seed in 0..trials {
                let mut rng = StdRng::seed_from_u64(1000 + seed as u64 * 17 + alpha as u64);
                let ms = sample_multiset(&valiant, &d.support(), |_, _| alpha, &mut rng);
                let out = weak_route(valiant.graph(), &ms, &d, gamma);
                verify_lemma_5_10(valiant.graph(), &d, &out).expect("Lemma 5.10 invariants");
                if out.succeeded() {
                    succ += 1;
                }
                frac_sum += out.routed_fraction;
                over_sum += out.overcongested_edges();
            }
            let rate = succ as f64 / trials as f64;
            table.row(&[
                alpha.to_string(),
                f3(gamma),
                trials.to_string(),
                f3(rate),
                f3(frac_sum / trials as f64),
                f3(over_sum as f64 / trials as f64),
            ]);
            rows.push(Row {
                alpha,
                gamma,
                trials,
                success_rate: rate,
                mean_routed_fraction: frac_sum / trials as f64,
                mean_overcongested_edges: over_sum as f64 / trials as f64,
            });
        }
    }
    table.print();
    println!("\nshape check: success jumps to 1 once γ clears a small multiple of the oblivious");
    println!("             congestion, faster for larger α — the Lemma 5.6 concentration.\n");

    // End-to-end Lemma 5.8 weak -> strong run.
    println!("-- Lemma 5.8 weak-to-strong pipeline (α = 5, γ = 10) --");
    let mut rng = StdRng::seed_from_u64(4242);
    let ms = sample_multiset(&valiant, &d.support(), |_, _| 5, &mut rng);
    let mut ps = PathSystem::new();
    for paths in ms.values() {
        for p in paths {
            ps.insert(p.clone());
        }
    }
    let mut weak = process_weak_router(valiant.graph(), &ms, 10.0);
    let out = weak_to_strong(valiant.graph(), &d, &ps, &mut weak);
    println!(
        "covered {:.1}% of the demand in {} rounds with congestion {:.3} (γ·O(log m) budget: {:.1})",
        100.0 * out.covered.size() / d.size(),
        out.rounds,
        out.congestion,
        4.0 * 10.0 * (valiant.graph().m() as f64).ln()
    );
    if let Some(p) = ssor_bench::save_json("e9_tail_bounds", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
