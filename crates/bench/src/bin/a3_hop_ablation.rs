//! A3 — ablation: the simulated hop-constrained routing's two knobs
//! (landmark count, hop-stretch β) and their effect on the Section 7
//! completion-time pipeline.
//!
//! The GHZ21 interface promises dilation ≤ β·h with competitive
//! congestion; our landmark-Valiant stand-in enforces the dilation bound
//! structurally, so the knobs trade congestion against path diversity.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use ssor_bench::{banner, f3, Table};
use ssor_core::completion::{CompletionOptions, CompletionTimeRouter, ScaleGrowth};
use ssor_flow::{Demand, SolveOptions};
use ssor_graph::generators;
use ssor_oblivious::HopOptions;

#[derive(Serialize)]
struct Row {
    landmarks: usize,
    hop_stretch: f64,
    congestion: f64,
    dilation: usize,
    objective: f64,
    union_sparsity: usize,
}

fn main() {
    banner(
        "A3",
        "ablation: hop-constrained routing knobs (landmarks, hop-stretch) in the §7 pipeline",
        "dilation is capped structurally at β·h; more landmarks buy congestion through diversity",
    );
    let g = generators::torus(6, 6);
    let mut seed_rng = StdRng::seed_from_u64(13);
    let d = Demand::random_permutation(36, &mut seed_rng);
    let opts = SolveOptions::with_eps(0.06);
    println!("graph: torus 6x6 (n = 36); demand: random permutation; α = 4 per scale\n");

    let mut table = Table::new(&[
        "landmarks",
        "β",
        "congestion",
        "dilation",
        "cong+dil",
        "union sparsity",
    ]);
    let mut rows = Vec::new();
    for landmarks in [2usize, 8, 24] {
        for stretch in [1.5f64, 3.0, 6.0] {
            let mut rng = StdRng::seed_from_u64(14);
            let router = CompletionTimeRouter::build(
                &g,
                &d.support(),
                &CompletionOptions {
                    alpha: 4,
                    growth: ScaleGrowth::Log,
                    hop: HopOptions {
                        landmarks,
                        hop_stretch: stretch,
                    },
                },
                &mut rng,
            );
            let route = router.route(&d, &opts);
            table.row(&[
                landmarks.to_string(),
                f3(stretch),
                f3(route.congestion),
                route.dilation.to_string(),
                f3(route.objective()),
                router.path_system().sparsity().to_string(),
            ]);
            rows.push(Row {
                landmarks,
                hop_stretch: stretch,
                congestion: route.congestion,
                dilation: route.dilation,
                objective: route.objective(),
                union_sparsity: router.path_system().sparsity(),
            });
        }
    }
    table.print();
    println!("\nshape check: congestion improves with landmark count (more diverse detours)");
    println!("             while dilation stays capped; β trades the two exactly as the");
    println!("             GHZ21 hop-stretch knob should.");
    if let Some(p) = ssor_bench::save_json("a3_hop_ablation", &rows) {
        println!("\nresults -> {}", p.display());
    }
}
