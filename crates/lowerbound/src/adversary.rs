//! The constructive adversary of Lemma 8.1.
//!
//! Given *any* `(α - 1 + cut)`-sparse path system on `C(n, k)`, the proof
//! finds a permutation demand it routes badly, via two pigeonhole steps
//! and a Hall matching:
//!
//! 1. every cross pair `(s, t)` gets a *hitting set* `f(s, t)` of `α`
//!    middle vertices covering all its candidate paths (possible since
//!    every `V1 -> V2` path crosses the middle, and there are at most `α`
//!    candidates);
//! 2. pigeonhole over the at most `C(k, α) <= sqrt(n)` possible sets: some
//!    `f(s)` repeats for `sqrt(n)` targets of each `s`, and some `S'`
//!    repeats as `f(s)` for `sqrt(n)` sources;
//! 3. Hall's condition then yields a `k`-matching whose demand must cram
//!    `2k` edge-crossings through the `2α` edges at `S'` — congestion
//!    `>= k / α` while the optimum routes it with congestion 1 through
//!    distinct middles.
//!
//! This module implements that argument as an algorithm, so experiment E3
//! can run it against concrete sampled path systems.

use crate::graphs::CGraphMeta;
use ssor_core::PathSystem;
use ssor_flow::{Demand, IntegralRouting};
use ssor_graph::matching::BipartiteMatching;
use ssor_graph::{Graph, Path, VertexId};
use std::collections::{HashMap, HashSet};

/// Outcome of the adversary search.
#[derive(Debug, Clone)]
pub struct AdversaryResult {
    /// The permutation demand found (cross pairs, weight 1 each).
    pub demand: Demand,
    /// The pinned middle-vertex set `S'` every candidate path crosses.
    pub hitting_set: Vec<VertexId>,
    /// Number of matched pairs (`k` when the pigeonhole has full room).
    pub matched: usize,
    /// The implied lower bound `matched / |S'|` on the semi-oblivious
    /// congestion (the optimum is 1, so this is also a competitive-ratio
    /// lower bound).
    pub congestion_lower_bound: f64,
}

/// First middle vertex crossed by a path (given as its vertex sequence),
/// in path order.
fn first_middle(vertices: &[VertexId], middle: &HashSet<VertexId>) -> Option<VertexId> {
    vertices.iter().copied().find(|v| middle.contains(v))
}

/// The canonical hitting set `f(s, t)`: first middle vertex of each
/// candidate path, deduplicated, padded with the smallest unused middles
/// to exactly `alpha` elements, sorted. Returns `None` if more than
/// `alpha` middles are needed (the system is not `α`-sparse for the pair).
fn hitting_set(
    paths: &PathSystem,
    s: VertexId,
    t: VertexId,
    middle_set: &HashSet<VertexId>,
    middle_sorted: &[VertexId],
    alpha: usize,
) -> Option<Vec<VertexId>> {
    let mut set: Vec<VertexId> = Vec::new();
    if let Some(ids) = paths.path_ids(s, t) {
        let store = paths.store();
        for &id in ids {
            // Zero-copy: read the vertex sequence straight from the arena.
            let first = first_middle(store.vertices(id), middle_set)?;
            if !set.contains(&first) {
                set.push(first);
            }
        }
    }
    if set.len() > alpha {
        return None;
    }
    for &m in middle_sorted {
        if set.len() == alpha {
            break;
        }
        if !set.contains(&m) {
            set.push(m);
        }
    }
    set.sort_unstable();
    Some(set)
}

/// Runs the Lemma 8.1 adversary against a path system on `C(n, k)`.
///
/// `alpha` is the sparsity budget the hitting sets use (`|f(s, t)| = α`);
/// the returned demand forces congestion at least `matched / α` on any
/// routing supported by `paths`, versus an optimal congestion of 1.
///
/// Pairs whose candidate set needs more than `alpha` middles are skipped
/// (the adversary is only guaranteed against `α`-sparse systems).
///
/// # Panics
///
/// Panics if `alpha` exceeds the number of middle vertices.
pub fn find_adversarial_demand(
    meta: &CGraphMeta,
    paths: &PathSystem,
    alpha: usize,
) -> AdversaryResult {
    assert!(
        alpha <= meta.middle.len(),
        "alpha {alpha} exceeds middle count {}",
        meta.middle.len()
    );
    let middle_set: HashSet<VertexId> = meta.middle.iter().copied().collect();
    let middle_sorted: Vec<VertexId> = {
        let mut m = meta.middle.clone();
        m.sort_unstable();
        m
    };

    // Step 1+2a: per source, the most common hitting set over targets.
    // f_of[s] = (set, targets with that set).
    let mut f_of: HashMap<VertexId, (Vec<VertexId>, Vec<VertexId>)> = HashMap::new();
    for &s in &meta.left_leaves {
        let mut counter: HashMap<Vec<VertexId>, Vec<VertexId>> = HashMap::new();
        for &t in &meta.right_leaves {
            if let Some(set) = hitting_set(paths, s, t, &middle_set, &middle_sorted, alpha) {
                counter.entry(set).or_default().push(t);
            }
        }
        if let Some((set, ts)) = counter
            .into_iter()
            .max_by(|a, b| a.1.len().cmp(&b.1.len()).then_with(|| b.0.cmp(&a.0)))
        {
            f_of.insert(s, (set, ts));
        }
    }

    // Step 2b: the most common f(s) across sources.
    let mut groups: HashMap<Vec<VertexId>, Vec<VertexId>> = HashMap::new();
    for (&s, (set, _)) in &f_of {
        groups.entry(set.clone()).or_default().push(s);
    }
    let (s_prime, mut sources) = groups
        .into_iter()
        .max_by(|a, b| a.1.len().cmp(&b.1.len()).then_with(|| b.0.cmp(&a.0)))
        .expect("at least one group");
    sources.sort_unstable();

    // Step 3: Hall matching between (up to k) sources and their targets.
    let take = sources.len().min(meta.k);
    let chosen: Vec<VertexId> = sources.into_iter().take(take).collect();
    let mut target_ids: Vec<VertexId> = Vec::new();
    let mut target_index: HashMap<VertexId, u32> = HashMap::new();
    let adj: Vec<Vec<u32>> = chosen
        .iter()
        .map(|s| {
            let (_, ts) = &f_of[s];
            ts.iter()
                .map(|&t| {
                    *target_index.entry(t).or_insert_with(|| {
                        target_ids.push(t);
                        (target_ids.len() - 1) as u32
                    })
                })
                .collect()
        })
        .collect();
    let matching = BipartiteMatching::solve(chosen.len(), target_ids.len(), &adj);

    let mut demand = Demand::new();
    let mut matched = 0;
    for (li, &s) in chosen.iter().enumerate() {
        if matched == meta.k {
            break;
        }
        if let Some(ri) = matching.pair_of_left(li as u32) {
            demand.set(s, target_ids[ri as usize], 1.0);
            matched += 1;
        }
    }

    AdversaryResult {
        demand,
        congestion_lower_bound: matched as f64 / alpha as f64,
        hitting_set: s_prime,
        matched,
    }
}

/// The optimal routing witnessing `opt_{G,Z}(d) = 1` for an adversary
/// demand: route the `i`-th pair through the `i`-th middle vertex
/// (distinct middles, distinct leaf edges — every edge carries at most
/// one packet).
///
/// # Panics
///
/// Panics if the demand has more pairs than there are middle vertices or
/// contains non-cross pairs.
pub fn optimal_witness(g: &Graph, meta: &CGraphMeta, demand: &Demand) -> IntegralRouting {
    assert!(demand.support_len() <= meta.middle.len());
    let mut out = IntegralRouting::new();
    for (i, ((s, t), w)) in demand.iter().enumerate() {
        assert_eq!(w, 1.0, "adversary demands are permutations");
        let mid = meta.middle[i];
        let p = Path::from_vertices(g, &[s, meta.left_center, mid, meta.right_center, t])
            .expect("C(n,k) cross path");
        out.set_paths(s, t, vec![p]);
    }
    out
}

/// Certifies the lower bound combinatorially: every candidate path of
/// every demanded pair crosses the hitting set, hence any routing on
/// `paths` has congestion at least `siz(d) / |S'|` on the edges incident
/// to `S'`. Returns `Err` describing the first violation.
pub fn certify_hitting(paths: &PathSystem, result: &AdversaryResult) -> Result<(), String> {
    let set: HashSet<VertexId> = result.hitting_set.iter().copied().collect();
    for ((s, t), _) in result.demand.iter() {
        if let Some(ids) = paths.path_ids(s, t) {
            let store = paths.store();
            for &id in ids {
                if !store.vertices(id).iter().any(|v| set.contains(v)) {
                    return Err(format!(
                        "path {:?} for pair ({s}, {t}) avoids the hitting set",
                        store.materialize(id)
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{c_graph, k_for_alpha};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_core::sample::alpha_sample;
    use ssor_oblivious::KspRouting;

    /// A path system built by k-shortest-paths sampling on C(n, k) for all
    /// cross pairs.
    fn sampled_system(
        g: &ssor_graph::Graph,
        meta: &CGraphMeta,
        alpha: usize,
        seed: u64,
    ) -> PathSystem {
        let r = KspRouting::new(g, alpha);
        let pairs: Vec<(u32, u32)> = meta
            .left_leaves
            .iter()
            .flat_map(|&s| meta.right_leaves.iter().map(move |&t| (s, t)))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        alpha_sample(&r, &pairs, alpha, &mut rng)
    }

    #[test]
    fn adversary_beats_sparse_system() {
        let n = 36;
        let alpha = 1;
        let k = k_for_alpha(n, alpha); // floor(36^{1/2}) = 6
        assert_eq!(k, 6);
        let (g, meta) = c_graph(n, k);
        let ps = sampled_system(&g, &meta, alpha, 7);
        let res = find_adversarial_demand(&meta, &ps, alpha);
        assert!(res.matched >= 2, "matched only {}", res.matched);
        assert!(res.demand.is_permutation());
        certify_hitting(&ps, &res).unwrap();
        // The optimum routes it with congestion 1.
        let opt = optimal_witness(&g, &meta, &res.demand);
        assert!(opt.routes(&res.demand));
        assert_eq!(opt.congestion(&g), 1);
    }

    #[test]
    fn certified_congestion_realized_by_lp() {
        // The restricted LP congestion must be at least matched / alpha.
        use ssor_flow::solver::{min_congestion_restricted, SolveOptions};
        let n = 16;
        let alpha = 2;
        let k = k_for_alpha(n, alpha); // 16^{1/4} = 2
        let (g, meta) = c_graph(n, k);
        let ps = sampled_system(&g, &meta, alpha, 3);
        let res = find_adversarial_demand(&meta, &ps, alpha);
        if res.demand.is_empty() {
            return; // degenerate tiny instance
        }
        let sol =
            min_congestion_restricted(&g, &res.demand, ps.candidates(), &SolveOptions::default());
        assert!(
            sol.congestion + 1e-6 >= res.congestion_lower_bound,
            "LP congestion {} below certified bound {}",
            sol.congestion,
            res.congestion_lower_bound
        );
    }

    #[test]
    fn hitting_set_pads_to_alpha() {
        let (g, meta) = c_graph(4, 3);
        let middle_set: HashSet<u32> = meta.middle.iter().copied().collect();
        let p = Path::from_vertices(
            &g,
            &[
                meta.left_leaves[0],
                meta.left_center,
                meta.middle[1],
                meta.right_center,
                meta.right_leaves[0],
            ],
        )
        .unwrap();
        let mut ps = PathSystem::new();
        let (s, t) = (p.source(), p.target());
        ps.insert(p);
        let hs = hitting_set(&ps, s, t, &middle_set, &meta.middle, 2).unwrap();
        assert_eq!(hs.len(), 2);
        assert!(hs.contains(&meta.middle[1]));
    }

    #[test]
    fn adversary_scales_with_k_over_alpha() {
        // With alpha = 1 on C(n, k), the bound is the full k.
        let n = 25;
        let (g, meta) = c_graph(n, 5);
        let ps = sampled_system(&g, &meta, 1, 11);
        let res = find_adversarial_demand(&meta, &ps, 1);
        assert!(
            res.congestion_lower_bound >= 2.0,
            "bound {} too weak",
            res.congestion_lower_bound
        );
        let _ = g;
    }
}
