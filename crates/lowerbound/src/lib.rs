//! # ssor-lowerbound
//!
//! The Section 8 lower-bound constructions of *Sparse Semi-Oblivious
//! Routing: Few Random Paths Suffice* (PODC 2023), executable.
//!
//! * [`c_graph`] — the two-stars-with-middles graph `C(n, k)` of
//!   Lemma 8.1 (Figure 1);
//! * [`g_graph`] — the multi-scale composite `G(n)` of Lemma 8.2;
//! * [`adversary`] — the pigeonhole + Hall-matching argument of Lemma 8.1
//!   as an *algorithm* that, given any sparse path system, outputs the
//!   permutation demand forcing congestion `k/α` while the optimum is 1.
//!
//! Experiment E3 runs this adversary against actual `α`-samples to
//! regenerate the sparsity-competitiveness lower-bound curve
//! (Lemmas 2.4 / 2.6).
//!
//! # Examples
//!
//! ```
//! use ssor_lowerbound::{c_graph, k_for_alpha};
//!
//! // For sparsity alpha = 1 on n = 16 leaves, k = sqrt(16) = 4 middles.
//! let k = k_for_alpha(16, 1);
//! let (g, meta) = c_graph(16, k);
//! assert_eq!(meta.k, 4);
//! assert!(g.is_connected());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod graphs;

pub use adversary::{certify_hitting, find_adversarial_demand, optimal_witness, AdversaryResult};
pub use graphs::{c_graph, g_graph, k_for_alpha, CGraphMeta};
