//! The lower-bound graph families of Section 8: `C(n, k)` (Figure 1) and
//! the multi-scale composite `G(n)` (Lemma 8.2).

use ssor_graph::{Graph, VertexId};

/// Vertex-role bookkeeping for one `C(n, k)` instance.
///
/// `C(n, k)` (Lemma 8.1 / Figure 1) consists of two `(n+1)`-vertex stars
/// whose centers are joined through `k` middle vertices:
/// `2n + 2 + k` vertices and `2n + 2k` edges.
#[derive(Debug, Clone)]
pub struct CGraphMeta {
    /// Leaf count per star (`n` in the paper's notation).
    pub n: usize,
    /// Middle-vertex count (`k = floor(n^{1/(2α)})` in the lower bound).
    pub k: usize,
    /// Left-star leaves `V1`.
    pub left_leaves: Vec<VertexId>,
    /// Left-star center `v1`.
    pub left_center: VertexId,
    /// Right-star center `v2`.
    pub right_center: VertexId,
    /// Right-star leaves `V2`.
    pub right_leaves: Vec<VertexId>,
    /// The middle vertices `K`.
    pub middle: Vec<VertexId>,
}

/// Builds `C(n, k)` with vertex ids offset by `base` inside a graph that
/// must already contain the `2n + 2 + k` vertices starting at `base`.
fn build_c_into(g: &mut Graph, base: u32, n: usize, k: usize) -> CGraphMeta {
    let left_center = base;
    let right_center = base + 1;
    let left_leaves: Vec<VertexId> = (0..n as u32).map(|i| base + 2 + i).collect();
    let right_leaves: Vec<VertexId> = (0..n as u32).map(|i| base + 2 + n as u32 + i).collect();
    let middle: Vec<VertexId> = (0..k as u32).map(|i| base + 2 + 2 * n as u32 + i).collect();
    for &l in &left_leaves {
        g.add_edge(left_center, l);
    }
    for &r in &right_leaves {
        g.add_edge(right_center, r);
    }
    for &m in &middle {
        g.add_edge(left_center, m);
        g.add_edge(m, right_center);
    }
    CGraphMeta {
        n,
        k,
        left_leaves,
        left_center,
        right_center,
        right_leaves,
        middle,
    }
}

/// The `C(n, k)` graph of Lemma 8.1 (Figure 1 of the paper).
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
///
/// # Examples
///
/// ```
/// let (g, meta) = ssor_lowerbound::c_graph(256, 4);
/// assert_eq!(g.n(), 2 * 256 + 2 + 4);
/// assert_eq!(g.m(), 2 * 256 + 2 * 4);
/// assert_eq!(meta.middle.len(), 4);
/// ```
pub fn c_graph(n: usize, k: usize) -> (Graph, CGraphMeta) {
    assert!(n >= 1 && k >= 1);
    let mut g = Graph::new(2 * n + 2 + k);
    let meta = build_c_into(&mut g, 0, n, k);
    (g, meta)
}

/// `k = floor(n^{1/(2α)})`, the middle-vertex count of the Lemma 8.1
/// construction for sparsity `α`.
pub fn k_for_alpha(n: usize, alpha: usize) -> usize {
    ((n as f64).powf(1.0 / (2.0 * alpha as f64))).floor() as usize
}

/// The composite graph `G(n)` of Lemma 8.2: one copy of
/// `C(n, k_for_alpha(n, α))` for every `α in 1..=floor(log2 n)`, chained
/// with bridge edges between consecutive copies' left centers.
///
/// Returns the graph and per-copy metadata, indexed by `α - 1`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn g_graph(n: usize) -> (Graph, Vec<CGraphMeta>) {
    assert!(n >= 2);
    let copies = (n as f64).log2().floor() as usize;
    let sizes: Vec<usize> = (1..=copies)
        .map(|alpha| k_for_alpha(n, alpha).max(1))
        .collect();
    let total: usize = sizes.iter().map(|&k| 2 * n + 2 + k).sum();
    let mut g = Graph::new(total);
    let mut metas = Vec::with_capacity(copies);
    let mut base = 0u32;
    for &k in &sizes {
        let meta = build_c_into(&mut g, base, n, k);
        base += (2 * n + 2 + k) as u32;
        metas.push(meta);
    }
    // Bridges between consecutive copies (arbitrary per the paper; we use
    // left centers).
    for w in metas.windows(2) {
        g.add_edge(w[0].left_center, w[1].left_center);
    }
    (g, metas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::maxflow::min_cut_value;
    use ssor_graph::shortest_path::hop_distance;

    #[test]
    fn c_graph_counts_match_lemma() {
        for (n, k) in [(4, 2), (16, 4), (100, 3)] {
            let (g, meta) = c_graph(n, k);
            assert_eq!(g.n(), 2 * n + 2 + k, "Lemma 8.1 vertex count");
            assert_eq!(g.m(), 2 * n + 2 * k, "Lemma 8.1 edge count");
            assert!(g.is_connected());
            assert_eq!(meta.left_leaves.len(), n);
            assert_eq!(meta.right_leaves.len(), n);
        }
    }

    #[test]
    fn leaf_to_leaf_cut_is_one() {
        // cut(s, t) = 1 for s in V1, t in V2 — the demands of the lower
        // bound live on unit cuts, so it applies to (α + cut)-sparsity too.
        let (g, meta) = c_graph(8, 3);
        let s = meta.left_leaves[0];
        let t = meta.right_leaves[5];
        assert_eq!(min_cut_value(&g, s, t), 1);
    }

    #[test]
    fn cross_paths_have_four_hops() {
        let (g, meta) = c_graph(8, 3);
        let s = meta.left_leaves[2];
        let t = meta.right_leaves[7];
        assert_eq!(hop_distance(&g, s, t), 4, "leaf-center-middle-center-leaf");
    }

    #[test]
    fn k_for_alpha_matches_formula() {
        assert_eq!(k_for_alpha(256, 1), 16);
        assert_eq!(k_for_alpha(256, 2), 4);
        assert_eq!(k_for_alpha(256, 4), 2);
        assert_eq!(k_for_alpha(65536, 2), 16);
    }

    #[test]
    fn g_graph_is_connected_with_all_copies() {
        let (g, metas) = g_graph(16);
        assert_eq!(metas.len(), 4, "floor(log2 16) copies");
        assert!(g.is_connected());
        // Bridges do not change in-copy cuts.
        let m0 = &metas[0];
        assert_eq!(min_cut_value(&g, m0.left_leaves[0], m0.right_leaves[0]), 1);
    }

    #[test]
    fn g_graph_copy_sizes_decrease() {
        let (_, metas) = g_graph(64);
        for w in metas.windows(2) {
            assert!(w[0].k >= w[1].k, "larger alpha needs fewer middles");
        }
    }
}
