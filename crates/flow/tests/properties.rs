//! Property-based tests for demands, routings, and the min-congestion
//! solvers — the paper's Section 4/5.4 identities.

use proptest::prelude::*;
use ssor_flow::oracle::{AllPathsOracle, PathOracle};
use ssor_flow::solver::{min_congestion_unrestricted, SolveOptions};
use ssor_flow::{Demand, Routing};
use ssor_graph::shortest_path::{dijkstra_tree_csr, dijkstra_tree_csr_view};
use ssor_graph::{generators, Graph, PathId, PathStore, VertexId};
use std::collections::BTreeMap;

fn connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..=10, 0.1f64..0.8, any::<u64>()).prop_map(|(n, p, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(n, p, &mut rng)
    })
}

fn demand_on(n: usize) -> impl Strategy<Value = Demand> {
    proptest::collection::vec(((0..n as VertexId), (0..n as VertexId), 0.1f64..5.0), 0..6).prop_map(
        |entries| {
            let mut d = Demand::new();
            for (s, t, w) in entries {
                if s != t {
                    d.add(s, t, w);
                }
            }
            d
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn demand_scaling_is_linear(
        (g, d) in connected_graph().prop_flat_map(|g| {
            let n = g.n();
            (Just(g), demand_on(n))
        }),
        c in 0.1f64..4.0,
    ) {
        // siz(c * d) = c * siz(d); support preserved.
        let scaled = d.scaled(c);
        prop_assert!((scaled.size() - c * d.size()).abs() < 1e-9 * (1.0 + d.size()));
        prop_assert_eq!(scaled.support_len(), d.support_len());
        let _ = g;
    }

    #[test]
    fn demand_plus_minus_roundtrip(
        (g, a, b) in connected_graph().prop_flat_map(|g| {
            let n = g.n();
            (Just(g), demand_on(n), demand_on(n))
        }),
    ) {
        let sum = a.plus(&b);
        prop_assert!((sum.size() - (a.size() + b.size())).abs() < 1e-9 * (1.0 + sum.size()));
        let back = sum.minus_clamped(&b);
        for ((s, t), w) in a.iter() {
            prop_assert!((back.get(s, t) - w).abs() < 1e-6, "minus undoes plus");
        }
        let _ = g;
    }

    #[test]
    fn solver_congestion_within_certified_gap(
        (g, d) in connected_graph().prop_flat_map(|g| {
            let n = g.n();
            (Just(g), demand_on(n))
        }),
    ) {
        prop_assume!(!d.is_empty());
        let sol = min_congestion_unrestricted(&g, &d, &SolveOptions { eps: 0.1, max_iters: 1500 });
        // Primal dominates dual.
        prop_assert!(sol.congestion + 1e-9 >= sol.lower_bound);
        // Lemma 5.16: siz(d)/m <= cong <= siz(d).
        prop_assert!(sol.congestion <= d.size() + 1e-6);
        prop_assert!(sol.congestion >= d.size() / g.m() as f64 - 1e-6);
        // The routing actually routes d and is structurally valid.
        prop_assert!(sol.routing.covers(&d));
        prop_assert!(sol.routing.is_valid(&g));
    }

    #[test]
    fn congestion_is_monotone_in_demand(
        (g, a, b) in connected_graph().prop_flat_map(|g| {
            let n = g.n();
            (Just(g), demand_on(n), demand_on(n))
        }),
    ) {
        prop_assume!(!a.is_empty());
        let sum = a.plus(&b);
        let opts = SolveOptions { eps: 0.08, max_iters: 1500 };
        let oa = min_congestion_unrestricted(&g, &a, &opts);
        let osum = min_congestion_unrestricted(&g, &sum, &opts);
        // OPT is monotone: certified lower bound of the part cannot exceed
        // the primal of the whole (allow the solver gap).
        prop_assert!(oa.lower_bound <= osum.congestion * 1.01 + 1e-6);
    }

    #[test]
    fn demand_weighted_merge_satisfies_lemma_5_15(
        (g, a, b) in connected_graph().prop_flat_map(|g| {
            let n = g.n();
            (Just(g), demand_on(n), demand_on(n))
        }),
    ) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let opts = SolveOptions { eps: 0.1, max_iters: 800 };
        let ra = min_congestion_unrestricted(&g, &a, &opts);
        let rb = min_congestion_unrestricted(&g, &b, &opts);
        let merged = Routing::demand_weighted_merge(&ra.routing, &a, &rb.routing, &b);
        let sum = a.plus(&b);
        let cong = merged.congestion(&g, &sum);
        prop_assert!(
            cong <= ra.congestion + rb.congestion + 1e-6,
            "Lemma 5.15: {} > {} + {}", cong, ra.congestion, rb.congestion
        );
    }

    #[test]
    fn single_path_routing_congestion_counts_exactly(
        g in connected_graph(),
        w in 0.5f64..5.0,
    ) {
        // Route one pair over one explicit path; every edge of the path
        // must carry exactly w.
        let s = 0 as VertexId;
        let t = (g.n() - 1) as VertexId;
        prop_assume!(s != t);
        let p = ssor_graph::shortest_path::bfs_path(&g, s, t).unwrap();
        prop_assume!(p.hop() >= 1);
        let mut r = Routing::new();
        r.set_single_path(p.clone());
        let mut d = Demand::new();
        d.set(s, t, w);
        let loads = r.edge_loads(&g, &d);
        for &e in p.edges() {
            prop_assert!((loads.get(e) - w).abs() < 1e-12);
        }
        prop_assert!((loads.total() - w * p.hop() as f64).abs() < 1e-9);
    }

    #[test]
    fn integral_rounding_preserves_counts(
        (g, pairs) in connected_graph().prop_flat_map(|g| {
            let n = g.n();
            let pair = ((0..n as VertexId), (0..n as VertexId), 1usize..4);
            (Just(g), proptest::collection::vec(pair, 1..4))
        }),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut d = Demand::new();
        let mut r = Routing::new();
        for (s, t, c) in pairs {
            if s == t || d.get(s, t) > 0.0 { continue; }
            let p = ssor_graph::shortest_path::bfs_path(&g, s, t).unwrap();
            if p.hop() == 0 { continue; }
            d.set(s, t, c as f64);
            r.set_single_path(p);
        }
        prop_assume!(!d.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let ir = ssor_flow::rounding::sample_integral(&r, &d, &mut rng);
        prop_assert!(ir.routes(&d));
        // With single-path support, rounding is deterministic: integral
        // congestion equals fractional congestion exactly.
        let frac = r.congestion(&g, &d);
        prop_assert!((ir.congestion(&g) as f64 - frac).abs() < 1e-9);
    }
}

/// A connected random graph with a few duplicated (parallel) edges — the
/// multigraph form the capacity-expanded WANs use.
fn multigraph() -> impl Strategy<Value = Graph> {
    (
        connected_graph(),
        proptest::collection::vec(any::<u32>(), 0..5),
    )
        .prop_map(|(base, dupes)| {
            let mut g = base.clone();
            let ends: Vec<(VertexId, VertexId)> = base.edges().map(|(_, uv)| uv).collect();
            for pick in dupes {
                let (u, v) = ends[pick as usize % ends.len()];
                g.add_edge(u, v);
            }
            g
        })
}

/// The serial reference the parallel batch oracle must match bit for bit:
/// one Dijkstra per distinct source, sources ascending, pairs interned in
/// index order within each source.
fn serial_best_paths(
    g: &Graph,
    usable: Option<&[bool]>,
    pairs: &[(VertexId, VertexId)],
    w: &[f64],
    store: &mut PathStore,
) -> Vec<Option<(PathId, f64)>> {
    let csr = g.csr();
    let mut by_source: BTreeMap<VertexId, Vec<usize>> = BTreeMap::new();
    for (i, &(s, _)) in pairs.iter().enumerate() {
        by_source.entry(s).or_default().push(i);
    }
    let mut out: Vec<Option<(PathId, f64)>> = vec![None; pairs.len()];
    for (s, idxs) in by_source {
        let tree = match usable {
            None => dijkstra_tree_csr(&csr, s, &|e| w[e as usize]),
            Some(mask) => dijkstra_tree_csr_view(&csr, s, &|e| w[e as usize], &mask.to_vec()),
        };
        for i in idxs {
            let t = pairs[i].1;
            out[i] = tree
                .path_to(g, t)
                .map(|p| (store.intern(&p), tree.dist_to(t)));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The rayon-parallel batch oracle promises results bitwise-equal to a
    // serial per-source sweep — ids, costs, and the arena's interning
    // order — on any weighted multigraph, masked or not, at whatever
    // worker count the test runs under.
    #[test]
    fn parallel_batch_oracle_matches_serial_reference(
        (g, pairs, weights, mask_seed) in multigraph().prop_flat_map(|g| {
            let n = g.n() as VertexId;
            let m = g.m();
            // Distinct endpoints by construction (n >= 3 here).
            let pair = (0..n, 0..n)
                .prop_map(move |(s, t)| if s == t { (s, (t + 1) % n) } else { (s, t) });
            (
                Just(g),
                proptest::collection::vec(pair, 1..24),
                proptest::collection::vec(1e-3f64..10.0, m..m + 1),
                any::<u64>(),
            )
        }),
    ) {
        let mut pairs = pairs;
        pairs.sort_unstable();
        pairs.dedup();
        // Unmasked oracle vs reference.
        let mut store_par = PathStore::new();
        let mut store_ser = PathStore::new();
        let mut oracle = AllPathsOracle::new(&g);
        let got = oracle.best_paths(&pairs, &weights, &mut store_par);
        let want = serial_best_paths(&g, None, &pairs, &weights, &mut store_ser);
        prop_assert_eq!(&got, &want);
        for (a, b) in got.iter().zip(want.iter()) {
            let (ida, idb) = (a.unwrap().0, b.unwrap().0);
            prop_assert_eq!(store_par.materialize(ida), store_ser.materialize(idb));
        }
        // Masked oracle vs reference (random knockouts; disconnected
        // pairs must come back None identically on both sides).
        let mut mask = vec![true; g.m()];
        let mut x = mask_seed;
        for bit in mask.iter_mut() {
            // SplitMix64-ish scramble; ~1/4 of edges die.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *bit = (x >> 62) != 0;
        }
        let mut store_par = PathStore::new();
        let mut store_ser = PathStore::new();
        let mut oracle = AllPathsOracle::masked(&g, &mask);
        let got = oracle.best_paths(&pairs, &weights, &mut store_par);
        let want = serial_best_paths(&g, Some(&mask), &pairs, &weights, &mut store_ser);
        prop_assert_eq!(&got, &want);
        for (a, b) in got.iter().zip(want.iter()) {
            match (a, b) {
                (Some((ida, _)), Some((idb, _))) => {
                    prop_assert_eq!(store_par.materialize(*ida), store_ser.materialize(*idb));
                }
                (None, None) => {}
                _ => prop_assert!(false, "reachability mismatch"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Solver tolerances are relative to demand size (the solver
    // normalizes internally), so congestion must scale linearly with the
    // demand across many orders of magnitude.
    #[test]
    fn min_congestion_is_scale_equivariant(
        (g, d) in connected_graph().prop_flat_map(|g| {
            let n = g.n();
            (Just(g), demand_on(n))
        }),
        exp in -6i32..7,
    ) {
        prop_assume!(!d.is_empty());
        let c = 10f64.powi(exp);
        let opts = SolveOptions { eps: 0.05, max_iters: 3000 };
        let base = min_congestion_unrestricted(&g, &d, &opts);
        let scaled = min_congestion_unrestricted(&g, &d.scaled(c), &opts);
        // Each solve is certified within (1 + eps) of the same optimum
        // (at its own scale), so the two can differ by at most ~eps each
        // way.
        let expected = c * base.congestion;
        prop_assert!(
            scaled.congestion <= expected * 1.11 + f64::MIN_POSITIVE,
            "scale {}: got {}, expected ~{}", c, scaled.congestion, expected
        );
        prop_assert!(
            scaled.congestion >= expected / 1.11 - f64::MIN_POSITIVE,
            "scale {}: got {}, expected ~{}", c, scaled.congestion, expected
        );
        // The dual certificate survives scaling too.
        prop_assert!(scaled.lower_bound <= scaled.congestion * (1.0 + 1e-9));
        prop_assert!(scaled.lower_bound > 0.0);
    }
}

/// Regression for the absolute-threshold convergence bug: before the
/// solver normalized demands internally, an extreme demand scale pushed
/// the softmax temperature `beta ~ 1 / (eps * max_load)` outside f64
/// range (overflow to `inf` for subnormal loads), turning the dual
/// weights into NaN — the solve finished with a zero lower bound and an
/// infinite "certified" gap. With internal normalization every tolerance
/// is relative to demand size, so the same instance stays certified and
/// exactly linear at any positive scale.
#[test]
fn extreme_demand_scales_stay_certified_and_linear() {
    let g = generators::ring(6);
    let d = Demand::from_pairs(&[(0, 3), (1, 4)]);
    let opts = SolveOptions {
        eps: 0.05,
        max_iters: 2000,
    };
    let base = min_congestion_unrestricted(&g, &d, &opts);
    assert!(base.gap() <= 1.06, "base gap {}", base.gap());
    for c in [1e-310, 1e-150, 1e150, 1e300] {
        let sol = min_congestion_unrestricted(&g, &d.scaled(c), &opts);
        assert!(sol.congestion.is_finite(), "scale {c}: NaN/inf congestion");
        assert!(
            sol.gap().is_finite() && sol.gap() <= 1.06,
            "scale {c}: uncertified gap {}",
            sol.gap()
        );
        let rel = sol.congestion / (c * base.congestion);
        assert!((rel - 1.0).abs() < 0.06, "scale {c}: nonlinear by {rel}");
    }
}
