//! Minimum-congestion multicommodity routing.
//!
//! Two uses in the reproduction:
//!
//! 1. **Stage-4 rate adaptation** (Definition 5.1): given the sparse path
//!    system `P` and the revealed demand, compute
//!    `cong_R(P, d) = min_{R on P} cong(R, d)` — a packing LP over the
//!    candidate paths.
//! 2. **Offline OPT** (`opt_{G,R}(d)`, Section 4): the same LP over *all*
//!    simple paths, solved with a shortest-path (column-generation) oracle.
//!
//! Both are handled by one Frank–Wolfe solver on the softmax (log-sum-exp)
//! smoothing of the max-congestion objective. Every run also produces a
//! *dual certificate*: for any nonnegative edge weights `w`,
//!
//! ```text
//! OPT >= sum_{s,t} d(s,t) * min_{p in paths(s,t)} w(p) / sum_e w_e ,
//! ```
//!
//! because a congestion-λ routing satisfies
//! `sum_e w_e * load_e <= λ * sum_e w_e` while every unit of demand pays at
//! least the min-weight path. The solver reports the best such bound seen,
//! so callers can verify the optimality gap of every number we report.
//!
//! Internally the solver works on the workspace's shared representation
//! layer: edge loads accumulate in a dense [`EdgeLoads`], and every
//! discovered path is interned into a per-solve [`PathStore`] so path
//! identity is a `Copy`-able [`PathId`] comparison instead of an
//! edge-vector scan. Owned [`Path`]s only appear at the boundary, in the
//! returned [`Routing`].

use crate::candidates::Candidates;
use crate::demand::Demand;
use crate::routing::Routing;
use ssor_graph::shortest_path::{dijkstra_tree_csr, dijkstra_tree_csr_masked};
use ssor_graph::{Csr, EdgeLoads, Graph, Path, PathId, PathStore, VertexId};
use std::collections::BTreeMap;

/// Per-pair weights at or below this fraction of the pair's probability
/// mass are dropped when a routing is materialized. Each pair's weights
/// sum to 1 and the solver normalizes demands to unit size internally
/// (see [`min_congestion`]), so this threshold — like every other solver
/// tolerance — is *relative* to the demand's scale, never absolute flow.
pub(crate) const WEIGHT_PRUNE: f64 = 1e-15;

/// Line-search steps at or below this count as "no progress at the
/// current smoothing". `gamma` is a convex-combination coefficient in
/// `[0, 1]` — dimensionless — so the cutoff is scale-free by
/// construction.
const GAMMA_MIN: f64 = 1e-12;

/// Result of a min-congestion solve.
#[derive(Debug, Clone)]
pub struct MinCongSolution {
    /// The (fractional) routing achieving `congestion`.
    pub routing: Routing,
    /// Primal value: max edge load of `routing` on the demand.
    pub congestion: f64,
    /// Best dual lower bound on the optimum over the oracle's path space.
    pub lower_bound: f64,
    /// Frank–Wolfe iterations performed.
    pub iterations: usize,
}

impl MinCongSolution {
    /// Multiplicative optimality gap `congestion / lower_bound`
    /// (`1.0` means provably optimal; `inf` if the bound is zero).
    pub fn gap(&self) -> f64 {
        if self.lower_bound <= 0.0 {
            if self.congestion <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.congestion / self.lower_bound
        }
    }
}

/// Oracle answering "cheapest usable path per pair" under edge weights.
///
/// Restricting the oracle restricts the LP: candidate-set oracles give the
/// semi-oblivious Stage-4 problem, the all-paths oracle gives offline OPT.
pub trait PathOracle {
    /// For each pair `(s, t)`, interns the minimum-weight usable path into
    /// `store` and returns `(id, weight)` under `w` (indexed by edge id).
    /// Pairs are distinct.
    fn best_paths(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        w: &[f64],
        store: &mut PathStore,
    ) -> Vec<(PathId, f64)>;
}

/// Oracle over an explicit candidate set per pair (the path system).
#[derive(Debug)]
pub struct CandidateOracle<'a> {
    candidates: Candidates<'a>,
}

impl<'a> CandidateOracle<'a> {
    /// Creates the oracle; every queried pair must have at least one
    /// candidate.
    pub fn new(candidates: Candidates<'a>) -> Self {
        CandidateOracle { candidates }
    }
}

impl PathOracle for CandidateOracle<'_> {
    fn best_paths(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        w: &[f64],
        store: &mut PathStore,
    ) -> Vec<(PathId, f64)> {
        let ext = self.candidates.store();
        pairs
            .iter()
            .map(|&(s, t)| {
                let cands = self
                    .candidates
                    .ids(s, t)
                    .unwrap_or_else(|| panic!("no candidate paths for pair ({s}, {t})"));
                assert!(!cands.is_empty(), "empty candidate set for ({s}, {t})");
                let mut best: Option<(PathId, f64)> = None;
                for &id in cands {
                    let cost = ext.weight(id, w);
                    if best.is_none_or(|(_, bc)| cost < bc) {
                        best = Some((id, cost));
                    }
                }
                let (id, cost) = best.unwrap();
                (store.intern_parts(ext.vertices(id), ext.edges(id)), cost)
            })
            .collect()
    }
}

/// Oracle over *all* simple paths via Dijkstra (column generation). Groups
/// queries by source so each distinct source costs one Dijkstra run, over
/// a CSR adjacency built once for the whole solve.
#[derive(Debug)]
pub struct AllPathsOracle<'a> {
    graph: &'a Graph,
    csr: Csr,
}

impl<'a> AllPathsOracle<'a> {
    /// Creates an oracle over the whole graph.
    pub fn new(graph: &'a Graph) -> Self {
        AllPathsOracle {
            graph,
            csr: graph.csr(),
        }
    }
}

impl PathOracle for AllPathsOracle<'_> {
    fn best_paths(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        w: &[f64],
        store: &mut PathStore,
    ) -> Vec<(PathId, f64)> {
        let mut by_source: BTreeMap<VertexId, Vec<usize>> = BTreeMap::new();
        for (i, &(s, _)) in pairs.iter().enumerate() {
            by_source.entry(s).or_default().push(i);
        }
        let mut out: Vec<Option<(PathId, f64)>> = vec![None; pairs.len()];
        for (s, idxs) in by_source {
            let tree = dijkstra_tree_csr(&self.csr, s, &|e| w[e as usize]);
            for i in idxs {
                let t = pairs[i].1;
                let p = tree
                    .path_to(self.graph, t)
                    .unwrap_or_else(|| panic!("graph disconnected between {s} and {t}"));
                out[i] = Some((store.intern(&p), tree.dist_to(t)));
            }
        }
        out.into_iter().map(Option::unwrap).collect()
    }
}

/// Options for the Frank–Wolfe solver.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Target multiplicative optimality gap (stop when `gap <= 1 + eps`).
    pub eps: f64,
    /// Hard cap on iterations.
    pub max_iters: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            eps: 0.05,
            max_iters: 600,
        }
    }
}

impl SolveOptions {
    /// Preset with a custom gap target.
    pub fn with_eps(eps: f64) -> Self {
        SolveOptions {
            eps,
            ..Default::default()
        }
    }
}

/// Per-pair convex combination over discovered paths (interned in the
/// solve's shared [`PathStore`]; membership is an id scan, never an
/// edge-vector comparison). Shared with the warm-start wrapper in
/// [`crate::warm`], which persists these states across related solves.
pub(crate) struct PairState {
    pub(crate) pair: (VertexId, VertexId),
    /// The pair's demand, normalized by the total demand size.
    pub(crate) demand: f64,
    pub(crate) ids: Vec<PathId>,
    pub(crate) weights: Vec<f64>,
}

impl PairState {
    fn ensure(&mut self, id: PathId) -> usize {
        if let Some(i) = self.ids.iter().position(|&x| x == id) {
            i
        } else {
            self.ids.push(id);
            self.weights.push(0.0);
            self.ids.len() - 1
        }
    }
}

/// Softmax value `max + ln(sum exp(beta*(load - max)))/beta` of edge loads.
fn softmax(loads: &[f64], beta: f64) -> f64 {
    let mx = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let s: f64 = loads.iter().map(|&l| ((l - mx) * beta).exp()).sum();
    mx + s.ln() / beta
}

/// Solves `min max_e load_e` over routings whose per-pair paths come from
/// `oracle`, routing the full demand `d` on graph `g`.
///
/// Returns the empty solution with congestion 0 for an empty demand.
///
/// Internally the demand is normalized to unit size (`siz(d) = 1`) and
/// the bounds are scaled back afterwards, so every solver tolerance is
/// relative to the demand's scale: solving `c * d` yields `c` times the
/// congestion and lower bound of `d` (up to floating-point roundoff) for
/// any positive finite `c`, including extreme scales where the smoothing
/// temperature would otherwise overflow.
///
/// # Panics
///
/// Panics if the oracle cannot produce a path for some demanded pair, or
/// if the demand's total size overflows `f64`.
pub fn min_congestion(
    g: &Graph,
    d: &Demand,
    oracle: &mut dyn PathOracle,
    opts: &SolveOptions,
) -> MinCongSolution {
    let pairs: Vec<(VertexId, VertexId)> = d.support();
    if pairs.is_empty() {
        return MinCongSolution {
            routing: Routing::new(),
            congestion: 0.0,
            lower_bound: 0.0,
            iterations: 0,
        };
    }
    let m = g.m();
    let scale = d.size();
    assert!(scale.is_finite(), "demand size must be finite, got {scale}");
    let demands: Vec<f64> = pairs.iter().map(|&(s, t)| d.get(s, t) / scale).collect();

    // One arena per solve: every path the oracle returns is interned here,
    // so re-discovered best responses dedup to the same id for free.
    let mut store = PathStore::new();

    // Initialize with the min-hop best response (all weights 1).
    let ones = vec![1.0; m];
    let first = oracle.best_paths(&pairs, &ones, &mut store);
    let mut states: Vec<PairState> = pairs
        .iter()
        .zip(demands.iter())
        .map(|(&pair, &dem)| PairState {
            pair,
            demand: dem,
            ids: Vec::new(),
            weights: Vec::new(),
        })
        .collect();
    let mut loads = EdgeLoads::zeros(m);
    // Dual bound from the all-ones weights.
    let lower_bound = {
        let num: f64 = first
            .iter()
            .zip(demands.iter())
            .map(|((_, c), dem)| c * dem)
            .sum();
        num / m as f64
    };
    for (st, &(id, _)) in states.iter_mut().zip(first.iter()) {
        let i = st.ensure(id);
        st.weights[i] = 1.0;
        loads.add_path(&store, id, st.demand);
    }

    let (lower_bound, iterations) = frank_wolfe(
        m,
        &mut states,
        &mut loads,
        &mut store,
        oracle,
        opts,
        0.5,
        lower_bound,
    );

    // Assemble the routing (paths materialize out of the arena only here,
    // at the boundary) and measure it against the *original* demand.
    let routing = assemble_routing(&states, &store);
    let congestion = routing.congestion(g, d);
    MinCongSolution {
        routing,
        congestion,
        lower_bound: lower_bound * scale,
        iterations,
    }
}

/// Materializes the per-pair convex combinations into a [`Routing`],
/// dropping weights at or below [`WEIGHT_PRUNE`].
pub(crate) fn assemble_routing(states: &[PairState], store: &PathStore) -> Routing {
    let mut routing = Routing::new();
    for st in states {
        let dist: Vec<(Path, f64)> = st
            .ids
            .iter()
            .zip(st.weights.iter())
            .filter(|(_, w)| **w > WEIGHT_PRUNE)
            .map(|(&id, &w)| (store.materialize(id), w))
            .collect();
        routing.set_distribution(st.pair.0, st.pair.1, dist);
    }
    routing
}

/// The staged-smoothing Frank–Wolfe loop, shared by the cold entry points
/// and the warm-started [`crate::warm::Solution`].
///
/// `states` holds the starting per-pair convex combinations (weights
/// summing to 1 per pair, demands normalized to unit total size) and
/// `loads` the matching edge-load accumulation. `stage_eps0` is the
/// initial smoothing stage; both entry points start coarse (0.5) — from
/// a warm near-optimal start the no-progress line-search path cascades
/// the smoothing to the accuracy floor in a few cheap iterations, so no
/// special schedule is needed.
///
/// Returns the best dual lower bound seen (at unit demand scale) and the
/// number of iterations performed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn frank_wolfe(
    m: usize,
    states: &mut [PairState],
    loads: &mut EdgeLoads,
    store: &mut PathStore,
    oracle: &mut dyn PathOracle,
    opts: &SolveOptions,
    stage_eps0: f64,
    mut lower_bound: f64,
) -> (f64, usize) {
    let pairs: Vec<(VertexId, VertexId)> = states.iter().map(|st| st.pair).collect();
    let demands: Vec<f64> = states.iter().map(|st| st.demand).collect();

    // Staged smoothing: start with a coarse softmax (fast global progress)
    // and sharpen whenever the primal stalls, down to the target accuracy.
    // A sharp softmax from the start makes Frank–Wolfe crawl: the gradient
    // concentrates on the single most-congested edge and only one path
    // shifts per iteration.
    let eps_floor = (opts.eps * 0.25).min(0.5);
    let mut stage_eps = stage_eps0.clamp(eps_floor, 0.5);
    let mut stall = 0usize;
    let mut prev_ub = f64::INFINITY;

    let mut loads_y = EdgeLoads::zeros(m);
    let mut iterations = 0;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        let ub = loads.max();
        if ub <= 0.0 {
            break;
        }
        // Stall detection: sharpen the smoothing when the primal stops
        // improving at the current stage.
        if ub > prev_ub * 0.9995 {
            stall += 1;
            if stall >= 15 && stage_eps > eps_floor {
                stage_eps *= 0.5;
                stall = 0;
            }
        } else {
            stall = 0;
        }
        prev_ub = ub;
        // Smoothing: approximation error ln(m)/beta <= stage_eps/4 * ub.
        let beta = (m as f64).ln().max(1.0) / (0.25 * stage_eps * ub);
        // Softmax gradient weights (scaled to max 1 for numerical safety).
        let mx = ub;
        let w: Vec<f64> = loads.iter().map(|l| ((l - mx) * beta).exp()).collect();
        let wsum: f64 = w.iter().sum();

        // Best response under w.
        let best = oracle.best_paths(&pairs, &w, store);

        // Dual certificate from these weights.
        let num: f64 = best
            .iter()
            .zip(demands.iter())
            .map(|((_, c), dem)| c * dem)
            .sum();
        lower_bound = lower_bound.max(num / wsum);

        if ub <= (1.0 + opts.eps) * lower_bound {
            break;
        }

        // Loads of the pure best-response routing.
        loads_y.clear();
        for (&(id, _), dem) in best.iter().zip(demands.iter()) {
            loads_y.add_path(store, id, *dem);
        }

        // Exact line search on the softmax potential (convex in gamma).
        let phi = |gamma: f64| -> f64 {
            let mixed: Vec<f64> = loads
                .iter()
                .zip(loads_y.iter())
                .map(|(a, b)| (1.0 - gamma) * a + gamma * b)
                .collect();
            softmax(&mixed, beta)
        };
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        for _ in 0..30 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if phi(m1) <= phi(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        let gamma = 0.5 * (lo + hi);
        if gamma <= GAMMA_MIN {
            // No progress along this direction at the current smoothing:
            // sharpen if we can, otherwise we are done.
            if stage_eps > eps_floor {
                stage_eps *= 0.5;
                stall = 0;
                continue;
            }
            break;
        }

        // Apply the update to per-pair weights and the aggregate loads.
        for st in states.iter_mut() {
            for wgt in st.weights.iter_mut() {
                *wgt *= 1.0 - gamma;
            }
        }
        for (st, &(id, _)) in states.iter_mut().zip(best.iter()) {
            let i = st.ensure(id);
            st.weights[i] += gamma;
        }
        for (a, b) in loads.as_mut_slice().iter_mut().zip(loads_y.as_slice()) {
            *a = (1.0 - gamma) * *a + gamma * b;
        }
    }

    (lower_bound, iterations)
}

/// Stage-4 rate adaptation: `cong_R(P, d)` over the candidate sets
/// (Definition 5.1). `candidates` is the interned view a `PathSystem`
/// exposes through its `candidates()` method.
///
/// # Panics
///
/// Panics if some demanded pair has no candidate path.
pub fn min_congestion_restricted(
    g: &Graph,
    d: &Demand,
    candidates: Candidates<'_>,
    opts: &SolveOptions,
) -> MinCongSolution {
    let mut oracle = CandidateOracle::new(candidates);
    min_congestion(g, d, &mut oracle, opts)
}

/// Offline fractional optimum `opt_{G,R}(d)` over all paths (Section 4).
pub fn min_congestion_unrestricted(g: &Graph, d: &Demand, opts: &SolveOptions) -> MinCongSolution {
    let mut oracle = AllPathsOracle::new(g);
    min_congestion(g, d, &mut oracle, opts)
}

/// Oracle over all simple paths of the *usable* part of a masked
/// topology (see `ssor_graph::SubTopology::usable_edges`): dead edges
/// get infinite weight in the Dijkstra sweep, so they are never chosen,
/// while edge ids and traversal order stay identical to the unmasked
/// [`AllPathsOracle`] — no graph is rebuilt and no ids shift.
#[derive(Debug)]
pub struct MaskedPathsOracle<'a> {
    graph: &'a Graph,
    csr: Csr,
    usable: Vec<bool>,
}

impl<'a> MaskedPathsOracle<'a> {
    /// Creates the oracle; `usable` is indexed by edge id.
    ///
    /// # Panics
    ///
    /// Panics if `usable.len() != graph.m()`.
    pub fn new(graph: &'a Graph, usable: &[bool]) -> Self {
        assert_eq!(usable.len(), graph.m(), "one mask bit per edge required");
        MaskedPathsOracle {
            graph,
            csr: graph.csr(),
            usable: usable.to_vec(),
        }
    }
}

impl PathOracle for MaskedPathsOracle<'_> {
    fn best_paths(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        w: &[f64],
        store: &mut PathStore,
    ) -> Vec<(PathId, f64)> {
        let mut by_source: BTreeMap<VertexId, Vec<usize>> = BTreeMap::new();
        for (i, &(s, _)) in pairs.iter().enumerate() {
            by_source.entry(s).or_default().push(i);
        }
        let mut out: Vec<Option<(PathId, f64)>> = vec![None; pairs.len()];
        for (s, idxs) in by_source {
            let tree = dijkstra_tree_csr_masked(&self.csr, s, &|e| w[e as usize], &self.usable);
            for i in idxs {
                let t = pairs[i].1;
                let p = tree.path_to(self.graph, t).unwrap_or_else(|| {
                    panic!("pair ({s}, {t}) is unreachable in the masked topology")
                });
                out[i] = Some((store.intern(&p), tree.dist_to(t)));
            }
        }
        out.into_iter().map(Option::unwrap).collect()
    }
}

/// Offline fractional optimum on a failure-masked topology: like
/// [`min_congestion_unrestricted`], but only edges marked usable may
/// carry flow. `usable` is the combined mask a
/// `ssor_graph::SubTopology` exports; the graph itself is untouched, so
/// the resulting loads and routing use the base graph's edge ids.
///
/// # Panics
///
/// Panics if some demanded pair is unreachable through usable edges, or
/// if `usable.len() != g.m()`.
pub fn min_congestion_masked(
    g: &Graph,
    d: &Demand,
    usable: &[bool],
    opts: &SolveOptions,
) -> MinCongSolution {
    let mut oracle = MaskedPathsOracle::new(g, usable);
    min_congestion(g, d, &mut oracle, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use ssor_graph::generators;

    fn opts() -> SolveOptions {
        SolveOptions {
            eps: 0.02,
            max_iters: 2000,
        }
    }

    #[test]
    fn empty_demand_is_trivial() {
        let g = generators::ring(4);
        let sol = min_congestion_unrestricted(&g, &Demand::new(), &opts());
        assert_eq!(sol.congestion, 0.0);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn single_pair_on_ring_splits_both_ways() {
        // Ring of 6: one unit 0 -> 3 can split into two disjoint 3-hop
        // paths, halving congestion.
        let g = generators::ring(6);
        let d = Demand::from_pairs(&[(0, 3)]);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!(
            (sol.congestion - 0.5).abs() < 0.02,
            "congestion = {}",
            sol.congestion
        );
        assert!(sol.gap() <= 1.1, "gap = {}", sol.gap());
        assert!(sol.routing.is_valid(&g));
    }

    #[test]
    fn parallel_edges_split_flow() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let d = Demand::from_pairs(&[(0, 1)]).scaled(3.0);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!(
            (sol.congestion - 1.0).abs() < 0.05,
            "congestion = {}",
            sol.congestion
        );
    }

    #[test]
    fn restricted_single_candidate_is_forced() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let sol = min_congestion_restricted(&g, &d, cands.as_candidates(), &opts());
        assert!((sol.congestion - 1.0).abs() < 1e-9);
    }

    #[test]
    fn restricted_two_candidates_split() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        cands.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let sol = min_congestion_restricted(&g, &d, cands.as_candidates(), &opts());
        assert!(
            (sol.congestion - 0.5).abs() < 0.02,
            "congestion = {}",
            sol.congestion
        );
    }

    #[test]
    fn lower_bound_never_exceeds_primal() {
        let g = generators::grid(3, 3);
        let mut rng = rand::rngs::mock::StepRng::new(7, 13);
        let _ = &mut rng;
        let d = Demand::from_pairs(&[(0, 8), (2, 6), (1, 7), (3, 5)]);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!(sol.lower_bound <= sol.congestion + 1e-9);
        assert!(sol.gap() < 1.25, "gap = {}", sol.gap());
    }

    #[test]
    fn congestion_matches_flow_lower_bound_on_star() {
        // Star: all paths go through the center; k demands from leaf i to
        // leaf i+1 forces congestion >= ... each pair uses 2 edges, and the
        // center's incident edges each see the demands of their leaf.
        let g = generators::star(6);
        let d = Demand::from_pairs(&[(1, 2), (3, 4), (5, 6)]);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        // Unique routing: each pair uses its two leaf edges once.
        assert!((sol.congestion - 1.0).abs() < 1e-6);
        assert!(sol.gap() < 1.05);
    }

    #[test]
    fn many_commodities_on_hypercube_nearly_optimal() {
        let g = generators::hypercube(4);
        let d = Demand::hypercube_complement(4);
        let sol = min_congestion_unrestricted(
            &g,
            &d,
            &SolveOptions {
                eps: 0.1,
                max_iters: 3000,
            },
        );
        // Complement demand on Q4: every pair at distance 4; total flow
        // >= 16*4 = 64 over 32 edges => congestion >= 2. An optimal routing
        // achieves exactly 2 (edge-disjoint dimension-ordered batches).
        assert!(sol.congestion < 2.3, "congestion = {}", sol.congestion);
        assert!(sol.lower_bound >= 1.9, "lb = {}", sol.lower_bound);
    }

    #[test]
    fn masked_solve_avoids_dead_edges() {
        // Ring of 6 with one edge of the short side failed: the whole
        // 0 -> 3 unit is forced onto the surviving side.
        let g = generators::ring(6);
        let mut sub = g.sub_topology();
        sub.fail_edge(1); // the (1, 2) edge
        let d = Demand::from_pairs(&[(0, 3)]);
        let sol = min_congestion_masked(&g, &d, &sub.usable_edges(), &opts());
        assert!(
            (sol.congestion - 1.0).abs() < 1e-6,
            "congestion = {}",
            sol.congestion
        );
        let loads = sol.routing.edge_loads(&g, &d);
        assert_eq!(loads.get(1), 0.0, "no flow on the dead edge");
    }

    #[test]
    fn masked_solve_with_full_mask_matches_unrestricted() {
        let g = generators::grid(3, 3);
        let d = Demand::from_pairs(&[(0, 8), (2, 6)]);
        let full = vec![true; g.m()];
        let masked = min_congestion_masked(&g, &d, &full, &opts());
        let open = min_congestion_unrestricted(&g, &d, &opts());
        assert!((masked.congestion - open.congestion).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unreachable in the masked topology")]
    fn masked_solve_detects_disconnection() {
        let g = generators::ring(4);
        let mut sub = g.sub_topology();
        sub.fail_edge(0); // (0, 1)
        sub.fail_edge(2); // (2, 3)
        let d = Demand::from_pairs(&[(0, 2)]);
        min_congestion_masked(&g, &d, &sub.usable_edges(), &opts());
    }

    #[test]
    fn routing_routes_full_demand() {
        let g = generators::grid(3, 4);
        let d = Demand::from_pairs(&[(0, 11), (4, 7)]).scaled(2.0);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!(sol.routing.covers(&d));
        assert!(sol.routing.is_valid(&g));
        // Total flow conservation: sum of edge loads equals sum over pairs
        // of demand * expected path length; just sanity-check positivity.
        let loads = sol.routing.edge_loads(&g, &d);
        assert!(
            loads.total() >= d.size() * 3.0 - 1e-6,
            "paths are >= 3 hops here"
        );
    }
}
