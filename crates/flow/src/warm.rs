//! Warm-started incremental min-congestion solves.
//!
//! Dynamic scenarios — demand streams drifting over time, link-failure
//! sweeps — solve a *sequence* of closely related min-congestion
//! problems. Solving each from scratch throws away the previous answer;
//! [`Solution`] keeps the Frank–Wolfe state (the interned path arena and
//! every pair's convex combination over its discovered paths) alive
//! between solves, so [`Solution::resolve`] restarts the solver from the
//! previous optimum instead of from the min-hop initialization.
//!
//! When the demand drifts mildly, the previous per-pair distributions
//! are already near-optimal for the new demand: the staged-smoothing
//! schedule detects "no progress" immediately, sharpens down to the
//! accuracy floor in a handful of cheap iterations, certifies a tight
//! dual bound, and stops — a measurable factor over cold solves on
//! realistic streams (see `benches/pipeline.rs`, group `stream`).
//!
//! Link failures compose with warm starts through
//! [`Solution::invalidate_edges`]: paths crossing dead edges are dropped
//! from the carried state (per-pair mass renormalizes onto the
//! survivors) before the next [`Solution::resolve`].
//!
//! # Examples
//!
//! ```
//! use ssor_flow::warm::{DemandDelta, Solution};
//! use ssor_flow::mincong::AllPathsOracle;
//! use ssor_flow::{Demand, SolveOptions};
//! use ssor_graph::generators;
//!
//! let g = generators::ring(6);
//! let opts = SolveOptions::with_eps(0.05);
//! let mut oracle = AllPathsOracle::new(&g);
//! let mut warm = Solution::new(&g);
//! let d = Demand::from_pairs(&[(0, 3)]);
//! let first = warm.resolve(&g, DemandDelta::Replace(d.clone()), &mut oracle, &opts);
//! assert!((first.congestion - 0.5).abs() < 0.05, "splits both ways");
//! // A 10% demand bump re-solves in very few iterations.
//! let again = warm.resolve(&g, DemandDelta::Scale(1.1), &mut oracle, &opts);
//! assert!((again.congestion - 0.55).abs() < 0.06);
//! assert!(again.iterations <= first.iterations);
//! ```

use crate::demand::Demand;
use crate::mincong::{
    assemble_routing, frank_wolfe, MinCongSolution, PairState, PathOracle, SolveOptions,
    WEIGHT_PRUNE,
};
use ssor_graph::{EdgeId, EdgeLoads, Graph, PathId, PathStore, VertexId};
use std::collections::BTreeMap;

/// How the demand changes between two warm solves.
#[derive(Debug, Clone)]
pub enum DemandDelta {
    /// Replace the demand wholesale (the demand-stream case: each step
    /// reveals a fresh traffic snapshot).
    Replace(Demand),
    /// Scale the current demand by a positive finite factor.
    Scale(f64),
    /// Set individual pair entries (`0` removes a pair), leaving the rest
    /// of the demand untouched.
    Set(Vec<((VertexId, VertexId), f64)>),
}

/// A min-congestion solution that stays warm: the solver state survives
/// between solves so the next [`Solution::resolve`] starts from the
/// previous optimum.
///
/// The carried state is the interned [`PathStore`] arena plus, per pair
/// ever routed, the convex combination over that pair's discovered paths
/// (weights summing to 1). Pairs that leave the demand keep their
/// distribution — a pair that returns (bursty ON/OFF traffic) warm-starts
/// too.
#[derive(Debug, Clone)]
pub struct Solution {
    store: PathStore,
    /// Per-pair `(path ids, weights)`; weights sum to 1 per pair.
    choices: BTreeMap<(VertexId, VertexId), (Vec<PathId>, Vec<f64>)>,
    demand: Demand,
    m: usize,
    congestion: f64,
    lower_bound: f64,
    iterations: usize,
}

impl Solution {
    /// An empty warm solution for graphs with `g.m()` edges (no demand
    /// routed yet). The first [`Solution::resolve`] is a cold solve.
    pub fn new(g: &Graph) -> Solution {
        Solution {
            store: PathStore::new(),
            choices: BTreeMap::new(),
            demand: Demand::new(),
            m: g.m(),
            congestion: 0.0,
            lower_bound: 0.0,
            iterations: 0,
        }
    }

    /// Cold-solves `d` and returns the warm state ready for incremental
    /// re-solves (convenience over [`Solution::new`] + [`Solution::resolve`]).
    pub fn solve(
        g: &Graph,
        d: &Demand,
        oracle: &mut dyn PathOracle,
        opts: &SolveOptions,
    ) -> Solution {
        let mut s = Solution::new(g);
        s.resolve(g, DemandDelta::Replace(d.clone()), oracle, opts);
        s
    }

    /// The demand of the last solve.
    pub fn demand(&self) -> &Demand {
        &self.demand
    }

    /// Congestion achieved by the last solve.
    pub fn congestion(&self) -> f64 {
        self.congestion
    }

    /// Certified dual lower bound of the last solve.
    pub fn lower_bound(&self) -> f64 {
        self.lower_bound
    }

    /// Frank–Wolfe iterations the last solve took.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Multiplicative optimality gap of the last solve (see
    /// [`MinCongSolution::gap`]).
    pub fn gap(&self) -> f64 {
        if self.lower_bound <= 0.0 {
            if self.congestion <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.congestion / self.lower_bound
        }
    }

    /// Applies `delta` to the demand and re-solves, warm-starting from
    /// the carried per-pair distributions. Pairs new to the demand are
    /// initialized from the oracle's min-hop best response; pairs that
    /// left contribute nothing but keep their state for a possible
    /// return.
    ///
    /// Returns the full per-step solution (routing materialized at the
    /// boundary, like the cold entry points).
    ///
    /// # Panics
    ///
    /// Panics if the oracle cannot produce a path for some demanded pair
    /// (e.g. a candidate oracle after failures wiped a pair's paths — in
    /// failure drills restrict the demand to covered pairs first), if a
    /// [`DemandDelta::Scale`] factor is negative or non-finite, or if the
    /// demand size overflows `f64`.
    pub fn resolve(
        &mut self,
        g: &Graph,
        delta: DemandDelta,
        oracle: &mut dyn PathOracle,
        opts: &SolveOptions,
    ) -> MinCongSolution {
        match delta {
            DemandDelta::Replace(d) => self.demand = d,
            DemandDelta::Scale(c) => self.demand = self.demand.scaled(c),
            DemandDelta::Set(entries) => {
                for ((s, t), w) in entries {
                    self.demand.set(s, t, w);
                }
            }
        }
        let pairs = self.demand.support();
        if pairs.is_empty() {
            self.congestion = 0.0;
            self.lower_bound = 0.0;
            self.iterations = 0;
            return MinCongSolution {
                routing: crate::routing::Routing::new(),
                congestion: 0.0,
                lower_bound: 0.0,
                iterations: 0,
            };
        }
        let scale = self.demand.size();
        assert!(scale.is_finite(), "demand size must be finite, got {scale}");

        // Build the per-pair states: carried distributions where we have
        // them, oracle-initialized fresh states for new pairs.
        let mut states: Vec<PairState> = Vec::with_capacity(pairs.len());
        let mut fresh: Vec<usize> = Vec::new();
        for &(s, t) in &pairs {
            let demand = self.demand.get(s, t) / scale;
            match self.choices.get(&(s, t)) {
                Some((ids, weights)) if !ids.is_empty() => states.push(PairState {
                    pair: (s, t),
                    demand,
                    ids: ids.clone(),
                    weights: weights.clone(),
                }),
                _ => {
                    fresh.push(states.len());
                    states.push(PairState {
                        pair: (s, t),
                        demand,
                        ids: Vec::new(),
                        weights: Vec::new(),
                    });
                }
            }
        }
        if !fresh.is_empty() {
            let ones = vec![1.0; self.m];
            let fresh_pairs: Vec<(VertexId, VertexId)> =
                fresh.iter().map(|&i| states[i].pair).collect();
            let first = oracle.best_paths(&fresh_pairs, &ones, &mut self.store);
            for (&i, &(id, _)) in fresh.iter().zip(first.iter()) {
                states[i].ids.push(id);
                states[i].weights.push(1.0);
            }
        }

        // Re-accumulate the loads of the starting point (normalized).
        let mut loads = EdgeLoads::zeros(self.m);
        for st in &states {
            for (&id, &w) in st.ids.iter().zip(st.weights.iter()) {
                loads.add_path(&self.store, id, w * st.demand);
            }
        }

        // Both cold and warm solves start at the coarse smoothing stage.
        // From a near-optimal warm point the line search immediately finds
        // no coarse-stage progress, which cascades the smoothing down to
        // the accuracy floor in O(log(1/eps)) cheap iterations and lets
        // the sharp dual certificate stop the loop — starting sharp
        // instead makes Frank–Wolfe crawl even from a warm point (the
        // gradient pins to the single most-congested edge).
        let (lower_bound, iterations) = frank_wolfe(
            self.m,
            &mut states,
            &mut loads,
            &mut self.store,
            oracle,
            opts,
            0.5,
            0.0,
        );

        // Persist the updated distributions (pruning negligible weights
        // so state does not grow without bound across a long stream).
        for st in &states {
            let mut ids = Vec::with_capacity(st.ids.len());
            let mut weights = Vec::with_capacity(st.ids.len());
            for (&id, &w) in st.ids.iter().zip(st.weights.iter()) {
                if w > WEIGHT_PRUNE {
                    ids.push(id);
                    weights.push(w);
                }
            }
            self.choices.insert(st.pair, (ids, weights));
        }

        let routing = assemble_routing(&states, &self.store);
        let congestion = routing.congestion(g, &self.demand);
        self.congestion = congestion;
        self.lower_bound = lower_bound * scale;
        self.iterations = iterations;
        MinCongSolution {
            routing,
            congestion,
            lower_bound: self.lower_bound,
            iterations,
        }
    }

    /// Drops every carried path that crosses one of the `dead` edges,
    /// renormalizing each affected pair's remaining mass onto its
    /// surviving paths; pairs left without survivors are cleared (the
    /// next [`Solution::resolve`] re-initializes them from the oracle).
    ///
    /// Returns the number of dropped paths. The demand is untouched —
    /// restrict it separately if pairs lost coverage in the oracle too.
    pub fn invalidate_edges(&mut self, dead: &[EdgeId]) -> usize {
        let store = &self.store;
        let mut removed = 0usize;
        self.choices.retain(|_, (ids, weights)| {
            let before = ids.len();
            let mut keep_ids = Vec::with_capacity(before);
            let mut keep_w = Vec::with_capacity(before);
            for (&id, &w) in ids.iter().zip(weights.iter()) {
                if !dead.iter().any(|&e| store.contains_edge(id, e)) {
                    keep_ids.push(id);
                    keep_w.push(w);
                }
            }
            removed += before - keep_ids.len();
            let total: f64 = keep_w.iter().sum();
            if keep_ids.is_empty() || total <= 0.0 {
                return false;
            }
            for w in keep_w.iter_mut() {
                *w /= total;
            }
            *ids = keep_ids;
            *weights = keep_w;
            true
        });
        removed
    }

    /// Materializes the current per-pair distributions (demanded pairs
    /// only) as a [`crate::Routing`].
    pub fn routing(&self) -> crate::routing::Routing {
        let mut r = crate::routing::Routing::new();
        for (s, t) in self.demand.support() {
            if let Some((ids, weights)) = self.choices.get(&(s, t)) {
                let dist: Vec<(ssor_graph::Path, f64)> = ids
                    .iter()
                    .zip(weights.iter())
                    .map(|(&id, &w)| (self.store.materialize(id), w))
                    .collect();
                if !dist.is_empty() {
                    r.set_distribution(s, t, dist);
                }
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use crate::mincong::{min_congestion_restricted, AllPathsOracle, CandidateOracle};
    use ssor_graph::{generators, Path};

    fn opts() -> SolveOptions {
        SolveOptions {
            eps: 0.05,
            max_iters: 2000,
        }
    }

    #[test]
    fn cold_resolve_matches_cold_solver() {
        let g = generators::grid(3, 3);
        let d = Demand::from_pairs(&[(0, 8), (2, 6), (1, 7)]);
        let mut oracle = AllPathsOracle::new(&g);
        let warm = Solution::solve(&g, &d, &mut oracle, &opts());
        let mut oracle2 = AllPathsOracle::new(&g);
        let cold = crate::mincong::min_congestion(&g, &d, &mut oracle2, &opts());
        assert!((warm.congestion() - cold.congestion).abs() < 1e-9);
        assert_eq!(warm.iterations(), cold.iterations);
    }

    #[test]
    fn warm_resolve_reconverges_faster_on_drift() {
        let g = generators::grid(4, 4);
        let mut d = Demand::from_pairs(&[(0, 15), (3, 12), (5, 10), (1, 14)]);
        let mut oracle = AllPathsOracle::new(&g);
        let mut warm = Solution::solve(&g, &d, &mut oracle, &opts());
        let cold_iters = warm.iterations();
        // Mild drift: +5% on one pair.
        d.set(0, 15, 1.05);
        let sol = warm.resolve(&g, DemandDelta::Replace(d.clone()), &mut oracle, &opts());
        assert!(
            sol.iterations <= cold_iters,
            "warm start should not regress"
        );
        // Quality stays certified.
        let mut oracle2 = AllPathsOracle::new(&g);
        let cold = crate::mincong::min_congestion(&g, &d, &mut oracle2, &opts());
        let tol = 1.0 + opts().eps + 0.02;
        assert!(sol.congestion <= cold.congestion * tol + 1e-12);
        assert!(cold.congestion <= sol.congestion * tol + 1e-12);
    }

    #[test]
    fn scale_delta_scales_congestion_linearly() {
        let g = generators::ring(6);
        let d = Demand::from_pairs(&[(0, 3)]);
        let mut oracle = AllPathsOracle::new(&g);
        let mut warm = Solution::solve(&g, &d, &mut oracle, &opts());
        let c1 = warm.congestion();
        warm.resolve(&g, DemandDelta::Scale(3.0), &mut oracle, &opts());
        assert!((warm.congestion() - 3.0 * c1).abs() < 1e-9 * (1.0 + 3.0 * c1));
    }

    #[test]
    fn set_delta_adds_and_removes_pairs() {
        let g = generators::ring(8);
        let d = Demand::from_pairs(&[(0, 4)]);
        let mut oracle = AllPathsOracle::new(&g);
        let mut warm = Solution::solve(&g, &d, &mut oracle, &opts());
        // Add a pair, drop the old one.
        warm.resolve(
            &g,
            DemandDelta::Set(vec![((0, 4), 0.0), ((1, 5), 2.0)]),
            &mut oracle,
            &opts(),
        );
        assert_eq!(warm.demand().support(), vec![(1, 5)]);
        assert!(warm.congestion() > 0.0);
        // Emptying the demand gives the trivial solution but keeps state.
        let empty = warm.resolve(
            &g,
            DemandDelta::Set(vec![((1, 5), 0.0)]),
            &mut oracle,
            &opts(),
        );
        assert_eq!(empty.congestion, 0.0);
        assert_eq!(empty.iterations, 0);
        // The pair returns: its carried distribution warm-starts again.
        let back = warm.resolve(
            &g,
            DemandDelta::Set(vec![((1, 5), 2.0)]),
            &mut oracle,
            &opts(),
        );
        assert!(back.congestion > 0.0);
    }

    #[test]
    fn invalidate_edges_moves_mass_to_survivors() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        cands.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let mut oracle = CandidateOracle::new(cands.as_candidates());
        let mut warm = Solution::solve(&g, &d, &mut oracle, &opts());
        assert!((warm.congestion() - 0.5).abs() < 0.05, "splits both ways");
        // Kill edge (1, 2): the clockwise path dies, all mass shifts.
        let removed = warm.invalidate_edges(&[1]);
        assert_eq!(removed, 1);
        let r = warm.routing();
        let dist = r.distribution(0, 3).expect("pair still routed");
        assert_eq!(dist.len(), 1);
        assert!((dist[0].weight - 1.0).abs() < 1e-12);
        // Re-solving against the surviving candidate set stays correct.
        let mut survivors = CandidateSet::new();
        survivors.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let mut oracle2 = CandidateOracle::new(survivors.as_candidates());
        let sol = warm.resolve(&g, DemandDelta::Replace(d.clone()), &mut oracle2, &opts());
        assert!((sol.congestion - 1.0).abs() < 1e-9);
        let loads = sol.routing.edge_loads(&g, &d);
        assert_eq!(loads.get(1), 0.0, "dead edge carries nothing");
        // Matches a cold restricted solve on the survivors.
        let cold = min_congestion_restricted(&g, &d, survivors.as_candidates(), &opts());
        assert!((sol.congestion - cold.congestion).abs() < 1e-9);
    }

    #[test]
    fn invalidate_all_paths_of_a_pair_forces_reinit() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let mut oracle = CandidateOracle::new(cands.as_candidates());
        let mut warm = Solution::solve(&g, &d, &mut oracle, &opts());
        warm.invalidate_edges(&[0]);
        assert!(warm.routing().is_empty(), "no survivors for the pair");
        // Resolve with an oracle that still covers the pair re-initializes.
        let mut fresh = CandidateSet::new();
        fresh.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let mut oracle2 = CandidateOracle::new(fresh.as_candidates());
        let sol = warm.resolve(&g, DemandDelta::Replace(d), &mut oracle2, &opts());
        assert!((sol.congestion - 1.0).abs() < 1e-9);
    }
}
