//! Randomized rounding of fractional routings (Lemma 6.3) plus local-search
//! polish.
//!
//! Lemma 6.3 (the Rounding Lemma): for any routing `R` and integral demand
//! `d` there is a routing on `supp(R)` that is integral on `d` with
//! congestion at most `2 * cong(R, d) + 3 ln m`. The proof samples
//! `d(s, t)` paths per pair from `R(s, t)`; we do exactly that, keep the
//! best of several attempts, and then locally improve by moving single
//! packets off the most congested edges.

use crate::demand::Demand;
use crate::routing::{IntegralRouting, Routing};
use rand::Rng;
use ssor_graph::{Graph, Path};

/// Statistics from a rounding run.
#[derive(Debug, Clone)]
pub struct RoundingOutcome {
    /// The integral routing produced.
    pub routing: IntegralRouting,
    /// Its max edge congestion.
    pub congestion: u64,
    /// The fractional congestion of the input on the same demand.
    pub fractional_congestion: f64,
    /// Number of sampling attempts consumed.
    pub attempts: usize,
}

impl RoundingOutcome {
    /// Whether the Lemma 6.3 guarantee `cong <= 2 cong_R + 3 ln m` holds.
    pub fn within_lemma_bound(&self, m: usize) -> bool {
        (self.congestion as f64) <= 2.0 * self.fractional_congestion + 3.0 * (m as f64).ln() + 1e-9
    }
}

/// Samples one integral routing: `d(s, t)` iid paths from `R(s, t)`.
///
/// # Panics
///
/// Panics if `d` is not integral or if `routing` does not cover `d`.
pub fn sample_integral<R: Rng + ?Sized>(
    routing: &Routing,
    d: &Demand,
    rng: &mut R,
) -> IntegralRouting {
    assert!(d.is_integral(), "rounding needs an integral demand");
    let mut out = IntegralRouting::new();
    for ((s, t), w) in d.iter() {
        let dist = routing
            .distribution(s, t)
            .unwrap_or_else(|| panic!("routing does not cover pair ({s}, {t})"));
        let count = w.round() as usize;
        let mut paths = Vec::with_capacity(count);
        for _ in 0..count {
            paths.push(sample_from_distribution(dist, rng));
        }
        out.set_paths(s, t, paths);
    }
    out
}

fn sample_from_distribution<R: Rng + ?Sized>(
    dist: &[crate::routing::WeightedPath],
    rng: &mut R,
) -> Path {
    let total: f64 = dist.iter().map(|wp| wp.weight).sum();
    let mut x = rng.gen::<f64>() * total;
    for wp in dist {
        x -= wp.weight;
        if x <= 0.0 {
            return wp.path.clone();
        }
    }
    dist.last().expect("nonempty distribution").path.clone()
}

/// Lemma 6.3 rounding: best-of-`attempts` randomized rounding followed by
/// local search. The returned routing is integral on `d` and supported on
/// `supp(routing)`.
///
/// # Panics
///
/// Panics if `d` is not integral, `attempts == 0`, or coverage is missing.
pub fn round_routing<R: Rng + ?Sized>(
    g: &Graph,
    routing: &Routing,
    d: &Demand,
    attempts: usize,
    rng: &mut R,
) -> RoundingOutcome {
    assert!(attempts > 0);
    let frac = routing.congestion(g, d);
    let mut best: Option<IntegralRouting> = None;
    let mut best_cong = u64::MAX;
    let mut used = 0;
    for _ in 0..attempts {
        used += 1;
        let cand = sample_integral(routing, d, rng);
        let c = cand.congestion(g);
        if c < best_cong {
            best_cong = c;
            best = Some(cand);
        }
        // Early exit once we're under the lemma bound.
        if (best_cong as f64) <= 2.0 * frac + 3.0 * (g.m() as f64).ln() {
            break;
        }
    }
    let mut ir = best.expect("at least one attempt");
    local_search(g, routing, &mut ir);
    let congestion = ir.congestion(g);
    RoundingOutcome {
        routing: ir,
        congestion,
        fractional_congestion: frac,
        attempts: used,
    }
}

/// First-improvement local search: repeatedly take a packet crossing a
/// maximally congested edge and move it to the alternative supported path
/// minimizing the resulting maximum congestion along its own edges.
/// Terminates when no single move strictly improves.
pub fn local_search(g: &Graph, support: &Routing, ir: &mut IntegralRouting) {
    let mut loads = ir.edge_loads(g);
    loop {
        let max_load = loads.iter().copied().max().unwrap_or(0);
        if max_load <= 1 {
            return;
        }
        let mut improved = false;
        let pairs: Vec<(u32, u32)> = ir.pairs().collect();
        'outer: for (s, t) in pairs {
            let Some(paths) = ir.paths(s, t).map(|p| p.to_vec()) else {
                continue;
            };
            let Some(dist) = support.distribution(s, t) else {
                continue;
            };
            for (pi, p) in paths.iter().enumerate() {
                // Only consider packets on a maximally congested edge.
                if !p.edges().iter().any(|&e| loads[e as usize] == max_load) {
                    continue;
                }
                // Tentatively remove this packet.
                for &e in p.edges() {
                    loads[e as usize] -= 1;
                }
                // Best alternative path: minimize its own max resulting load.
                let mut best_alt: Option<(usize, u64)> = None;
                for (ai, alt) in dist.iter().enumerate() {
                    let worst = alt
                        .path
                        .edges()
                        .iter()
                        .map(|&e| loads[e as usize] + 1)
                        .max()
                        .unwrap_or(0);
                    if best_alt.is_none_or(|(_, b)| worst < b) {
                        best_alt = Some((ai, worst));
                    }
                }
                let (ai, worst) = best_alt.expect("distribution nonempty");
                if worst < max_load {
                    // Commit the move.
                    let newp = dist[ai].path.clone();
                    for &e in newp.edges() {
                        loads[e as usize] += 1;
                    }
                    let mut newpaths = paths.clone();
                    newpaths[pi] = newp;
                    ir.set_paths(s, t, newpaths);
                    improved = true;
                    break 'outer;
                } else {
                    // Revert.
                    for &e in p.edges() {
                        loads[e as usize] += 1;
                    }
                }
            }
        }
        if !improved {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssor_graph::generators;

    fn even_split_routing(g: &Graph, pairs: &[(u32, u32, Vec<Vec<u32>>)]) -> Routing {
        let mut r = Routing::new();
        for (s, t, vpaths) in pairs {
            let dist: Vec<(Path, f64)> = vpaths
                .iter()
                .map(|vs| (Path::from_vertices(g, vs).unwrap(), 1.0))
                .collect();
            r.set_distribution(*s, *t, dist);
        }
        r
    }

    #[test]
    fn sample_integral_respects_counts() {
        let g = generators::ring(6);
        let r = even_split_routing(&g, &[(0, 3, vec![vec![0, 1, 2, 3], vec![0, 5, 4, 3]])]);
        let d = Demand::from_pairs(&[(0, 3)]).scaled(5.0);
        let mut rng = StdRng::seed_from_u64(2);
        let ir = sample_integral(&r, &d, &mut rng);
        assert!(ir.routes(&d));
        assert_eq!(ir.paths(0, 3).unwrap().len(), 5);
    }

    #[test]
    fn rounding_meets_lemma_bound() {
        let g = generators::hypercube(3);
        // Fractional routing: split every complement pair over 2 candidate
        // shortest paths found by KSP.
        let d = Demand::hypercube_complement(3);
        let mut r = Routing::new();
        for (s, t) in d.support() {
            let ps = ssor_graph::ksp::k_shortest_paths(&g, s, t, 2, &|_| 1.0);
            r.set_distribution(s, t, ps.into_iter().map(|p| (p, 1.0)).collect());
        }
        let mut rng = StdRng::seed_from_u64(3);
        let out = round_routing(&g, &r, &d, 50, &mut rng);
        assert!(out.routing.routes(&d));
        assert!(
            out.within_lemma_bound(g.m()),
            "cong {} vs frac {} on m = {}",
            out.congestion,
            out.fractional_congestion,
            g.m()
        );
    }

    #[test]
    fn local_search_fixes_bad_assignment() {
        // Two parallel 2-hop routes; both packets start on the same route.
        let g = generators::ring(4); // 0-1-2-3-0
        let support = even_split_routing(&g, &[(0, 2, vec![vec![0, 1, 2], vec![0, 3, 2]])]);
        let mut ir = IntegralRouting::new();
        let p = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        ir.set_paths(0, 2, vec![p.clone(), p]);
        assert_eq!(ir.congestion(&g), 2);
        local_search(&g, &support, &mut ir);
        assert_eq!(ir.congestion(&g), 1, "one packet should move to 0-3-2");
    }

    #[test]
    fn rounding_is_supported_on_input_routing() {
        let g = generators::grid(3, 3);
        let d = Demand::from_pairs(&[(0, 8), (2, 6)]);
        let mut r = Routing::new();
        for (s, t) in d.support() {
            let ps = ssor_graph::ksp::k_shortest_paths(&g, s, t, 3, &|_| 1.0);
            r.set_distribution(s, t, ps.into_iter().map(|p| (p, 1.0)).collect());
        }
        let mut rng = StdRng::seed_from_u64(4);
        let out = round_routing(&g, &r, &d, 10, &mut rng);
        for (s, t) in d.support() {
            let support: Vec<&Path> = r
                .distribution(s, t)
                .unwrap()
                .iter()
                .map(|wp| &wp.path)
                .collect();
            for p in out.routing.paths(s, t).unwrap() {
                assert!(
                    support.iter().any(|sp| sp.edges() == p.edges()),
                    "rounded path must come from the support"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "integral demand")]
    fn rejects_fractional_demand() {
        let g = generators::ring(4);
        let r = even_split_routing(&g, &[(0, 2, vec![vec![0, 1, 2]])]);
        let mut d = Demand::new();
        d.set(0, 2, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_integral(&r, &d, &mut rng);
    }
}
